//! Quickstart: run a distinct-object limit query with ExSample on a small
//! synthetic dataset and compare it against random sampling.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use exsample::core::ExSampleConfig;
use exsample::data::{GridWorkload, SkewLevel};
use exsample::sim::{MethodKind, QueryRunner, StopCondition};

fn main() {
    // 1. Build a synthetic video repository: 200k frames (~1.9 hours of 30 fps
    //    video), 500 object instances whose placement is skewed toward the middle
    //    of the dataset, split into 32 chunks.
    let dataset = GridWorkload::builder()
        .frames(200_000)
        .instances(500)
        .chunks(32)
        .mean_duration(150.0)
        .skew(SkewLevel::ThirtySecond)
        .seed(42)
        .build()
        .expect("valid workload")
        .generate();

    println!(
        "dataset: {} frames, {} chunks, {} instances of class `{}`",
        dataset.total_frames(),
        dataset.chunking().len(),
        dataset.instance_count(&GridWorkload::class()),
        GridWorkload::class()
    );

    // 2. "Find 50 distinct objects" with ExSample.
    let limit = 50;
    let exsample = QueryRunner::new(&dataset)
        .stop(StopCondition::DistinctResults(limit))
        .seed(7)
        .run(MethodKind::ExSample(ExSampleConfig::default()))
        .expect("query run succeeded");

    // 3. The same query with the uniform random-sampling baseline.
    let random = QueryRunner::new(&dataset)
        .stop(StopCondition::DistinctResults(limit))
        .seed(7)
        .run(MethodKind::Random)
        .expect("query run succeeded");

    println!("\nquery: find {limit} distinct objects");
    for result in [&exsample, &random] {
        println!(
            "  {:<9} processed {:>6} frames  ({} distinct objects found, recall {:.2})",
            result.method,
            result.frames_processed,
            result.distinct_found,
            result.recall()
        );
    }
    let savings = random.frames_processed as f64 / exsample.frames_processed.max(1) as f64;
    println!("\nExSample needed {savings:.2}x fewer detector invocations than random sampling.");
    println!(
        "At the paper's measured 20 frames/second of detector throughput that is {:.0}s vs {:.0}s of GPU time.",
        exsample.frames_processed as f64 / 20.0,
        random.frames_processed as f64 / 20.0
    );
}
