//! Engine quickstart: run several concurrent distinct-object queries over one
//! shared video repository with the batched multi-query engine.
//!
//! ```bash
//! cargo run --release --example engine_quickstart
//! ```
//!
//! Three queries — ExSample, uniform random, and `random+` — execute together
//! in staged pick → detect → fan-out pipelines.  Frames that several queries
//! request in the same stage are run through the detector once and the result
//! is shared (coalescing), which is where a multi-query deployment saves real
//! detector time.

use exsample::core::ExSampleConfig;
use exsample::data::{GridWorkload, SkewLevel};
use exsample::detect::PerfectDetector;
use exsample::engine::{ExSamplePolicy, FrameSamplerPolicy, QueryEngine, QuerySpec};
use std::sync::Arc;

fn main() {
    // 1. A synthetic repository: 60k frames, 16 chunks, instances skewed
    //    toward one part of the dataset.
    let dataset = GridWorkload::builder()
        .frames(60_000)
        .instances(200)
        .chunks(16)
        .mean_duration(120.0)
        .skew(SkewLevel::ThirtySecond)
        .seed(42)
        .build()
        .expect("valid workload")
        .generate();
    let detector = PerfectDetector::new(Arc::clone(dataset.ground_truth()), GridWorkload::class());
    println!(
        "repository: {} frames, {} chunks, {} instances of `{}`",
        dataset.total_frames(),
        dataset.chunking().len(),
        dataset.instance_count(&GridWorkload::class()),
        GridWorkload::class()
    );

    // 2. Three concurrent queries, each with its own sampling policy, budget
    //    and private RNG stream, all sharing the repository and detector.
    let budget = 2_000u64;
    let limit = 40usize;
    let mut engine = QueryEngine::new();
    engine
        .push(
            QuerySpec::new(
                "exsample",
                Box::new(ExSamplePolicy::new(
                    ExSampleConfig::default(),
                    dataset.chunking(),
                )),
                &detector,
            )
            .seed(7)
            .batch(16)
            .result_limit(limit)
            .frame_budget(budget),
        )
        .expect("valid spec");
    engine
        .push(
            QuerySpec::new(
                "random",
                Box::new(FrameSamplerPolicy::uniform(dataset.total_frames())),
                &detector,
            )
            .seed(8)
            .batch(16)
            .result_limit(limit)
            .frame_budget(budget),
        )
        .expect("valid spec");
    engine
        .push(
            QuerySpec::new(
                "random+",
                Box::new(FrameSamplerPolicy::random_plus(dataset.total_frames())),
                &detector,
            )
            .seed(9)
            .batch(16)
            .result_limit(limit)
            .frame_budget(budget),
        )
        .expect("valid spec");

    // 3. One run executes all queries to completion in shared stages.
    let report = engine.run().expect("queries registered");

    println!("\nquery: find {limit} distinct objects (budget {budget} frames each)");
    for q in &report.outcomes {
        println!(
            "  {:<9} processed {:>5} frames, found {:>3} distinct objects ({:?})",
            q.label,
            q.frames_processed,
            q.distinct_found,
            q.stop_reason.expect("run completed")
        );
    }
    println!(
        "\nengine: {} stages, {} frames demanded, {} run through the detector \
         ({} shared across queries by coalescing)",
        report.stages,
        report.demanded_frames,
        report.detector_frames,
        report.coalesced_savings()
    );
}
