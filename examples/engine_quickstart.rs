//! Engine quickstart: run several concurrent distinct-object queries over one
//! shared video repository with the batched multi-query engine.
//!
//! ```bash
//! cargo run --release --example engine_quickstart
//! ```
//!
//! Three queries — ExSample, uniform random, and `random+` — execute together
//! in staged pick → detect → fan-out pipelines.  Frames that several queries
//! request in the same stage are run through the detector once and the result
//! is shared (coalescing), which is where a multi-query deployment saves real
//! detector time.  The same run is then repeated on a 2-shard engine — the
//! chunk axis split across two shard workers — to show that sharding changes
//! *where* detector work executes (the per-shard breakdown) but not a single
//! query outcome, and once more with the two shard workers' DETECT phases
//! running on scoped threads (`ExecutionMode::Parallel`), which changes
//! nothing observable at all.

use exsample::core::ExSampleConfig;
use exsample::data::{Dataset, GridWorkload, SkewLevel};
use exsample::detect::PerfectDetector;
use exsample::engine::{
    Dispatch, ExSamplePolicy, ExecutionMode, FrameSamplerPolicy, QueryEngine, QuerySpec,
    ShardRouter,
};
use exsample::video::ShardSpec;
use std::sync::Arc;

/// Register the example's three concurrent queries on `engine`.
fn push_queries<'a>(
    engine: &mut QueryEngine<'a>,
    dataset: &'a Dataset,
    detector: &'a PerfectDetector,
    limit: usize,
    budget: u64,
) {
    engine
        .push(
            QuerySpec::new(
                "exsample",
                Box::new(ExSamplePolicy::new(
                    ExSampleConfig::default(),
                    dataset.chunking(),
                )),
                detector,
            )
            .seed(7)
            .batch(16)
            .result_limit(limit)
            .frame_budget(budget),
        )
        .expect("valid spec");
    engine
        .push(
            QuerySpec::new(
                "random",
                Box::new(FrameSamplerPolicy::uniform(dataset.total_frames())),
                detector,
            )
            .seed(8)
            .batch(16)
            .result_limit(limit)
            .frame_budget(budget),
        )
        .expect("valid spec");
    engine
        .push(
            QuerySpec::new(
                "random+",
                Box::new(FrameSamplerPolicy::random_plus(dataset.total_frames())),
                detector,
            )
            .seed(9)
            .batch(16)
            .result_limit(limit)
            .frame_budget(budget),
        )
        .expect("valid spec");
}

fn main() {
    // 1. A synthetic repository: 60k frames, 16 chunks, instances skewed
    //    toward one part of the dataset.
    let dataset = GridWorkload::builder()
        .frames(60_000)
        .instances(200)
        .chunks(16)
        .mean_duration(120.0)
        .skew(SkewLevel::ThirtySecond)
        .seed(42)
        .build()
        .expect("valid workload")
        .generate();
    let detector = PerfectDetector::new(Arc::clone(dataset.ground_truth()), GridWorkload::class());
    println!(
        "repository: {} frames, {} chunks, {} instances of `{}`",
        dataset.total_frames(),
        dataset.chunking().len(),
        dataset.instance_count(&GridWorkload::class()),
        GridWorkload::class()
    );

    // 2. Three concurrent queries, each with its own sampling policy, budget
    //    and private RNG stream, all sharing the repository and detector.
    let budget = 2_000u64;
    let limit = 40usize;
    let mut engine = QueryEngine::new();
    push_queries(&mut engine, &dataset, &detector, limit, budget);

    // 3. One run executes all queries to completion in shared stages.
    let report = engine.run().expect("queries registered");

    println!("\nquery: find {limit} distinct objects (budget {budget} frames each)");
    for q in &report.outcomes {
        println!(
            "  {:<9} processed {:>5} frames, found {:>3} distinct objects ({:?})",
            q.label,
            q.frames_processed,
            q.distinct_found,
            q.stop_reason.expect("run completed")
        );
    }
    println!(
        "\nengine: {} stages, {} frames demanded, {} run through the detector \
         ({} shared across queries by coalescing)",
        report.stages,
        report.demanded_frames,
        report.detector_frames,
        report.coalesced_savings()
    );

    // 4. The same three queries on a 2-shard engine: the chunk axis is split
    //    into two contiguous ranges, each owned by a shard worker that runs
    //    the detector invocations for its frames.  The merged report is
    //    bitwise-identical to the unsharded run — only the per-shard
    //    breakdown and the physical invocation count differ.
    let spec = ShardSpec::contiguous(dataset.chunking().len(), 2);
    let router = ShardRouter::new(dataset.chunking(), &spec).expect("spec matches chunking");
    let mut sharded = QueryEngine::new().sharded(router);
    push_queries(&mut sharded, &dataset, &detector, limit, budget);
    let _ = sharded.run().expect("queries registered");
    let merged = sharded.report_sharded();

    println!("\n2-shard run (contiguous chunk ranges):");
    for (a, b) in merged.report.outcomes.iter().zip(&report.outcomes) {
        assert_eq!(a.frames_processed, b.frames_processed);
        assert_eq!(a.found_instances, b.found_instances);
        assert_eq!(a.stop_reason, b.stop_reason);
    }
    assert_eq!(merged.report.detector_frames, report.detector_frames);
    println!("  every query outcome is bitwise-identical to the unsharded run");
    for shard in &merged.shards {
        println!(
            "  shard {}: {} detector frames in {} batched invocations",
            shard.shard, shard.detector_frames, shard.detector_calls
        );
    }
    println!(
        "  merge overhead: {} physical invocations vs {} logical ({} extra from splitting groups across shards)",
        merged.physical_detector_calls,
        merged.report.detector_calls,
        merged.shard_overhead_calls()
    );

    // 5. The same 2-shard run with the workers' DETECT phases on two worker
    //    threads — under the default persistent per-run worker pool, and
    //    again under the legacy per-stage scoped spawn.  Parallel execution
    //    reorders *work*, never results: either way the merged report —
    //    outcomes, per-shard breakdown, physical invocation counts — is
    //    bitwise-identical to the serial sharded run.
    println!("\n2-shard run with 2 DETECT worker threads:");
    for dispatch in [Dispatch::Pooled, Dispatch::Scoped] {
        let router = ShardRouter::new(dataset.chunking(), &spec).expect("spec matches chunking");
        let mut parallel = QueryEngine::new()
            .sharded(router)
            .execution(ExecutionMode::Parallel(2))
            .expect("a positive thread count is valid")
            .dispatch(dispatch);
        push_queries(&mut parallel, &dataset, &detector, limit, budget);
        let _ = parallel.run().expect("queries registered");
        let parallel_merged = parallel.report_sharded();

        for (a, b) in parallel_merged
            .report
            .outcomes
            .iter()
            .zip(&merged.report.outcomes)
        {
            assert_eq!(a.frames_processed, b.frames_processed);
            assert_eq!(a.found_instances, b.found_instances);
            assert_eq!(a.trajectory, b.trajectory);
            assert_eq!(a.stop_reason, b.stop_reason);
        }
        assert_eq!(parallel_merged.shards, merged.shards);
        assert_eq!(
            parallel_merged.physical_detector_calls,
            merged.physical_detector_calls
        );
        match dispatch {
            Dispatch::Pooled => assert!(
                parallel.pooled_stage_dispatches() > 0,
                "the default dispatch runs stages on the persistent pool"
            ),
            Dispatch::Scoped => assert_eq!(parallel.pooled_stage_dispatches(), 0),
        }
        println!(
            "  {dispatch:?} dispatch: bitwise-identical to the serial sharded run, down to the per-shard breakdown"
        );
    }
}
