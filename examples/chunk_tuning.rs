//! How the chunking choice affects ExSample (Section IV-C of the paper).
//!
//! The number of chunks is the one structural parameter the user chooses before a
//! query.  This example sweeps the chunk count on a skewed synthetic workload and
//! prints how many distinct objects each configuration finds within a fixed frame
//! budget, together with the optimal static allocation from Eq. IV.1 as an upper
//! reference.
//!
//! ```bash
//! cargo run --release --example chunk_tuning
//! ```

use exsample::core::ExSampleConfig;
use exsample::data::{GridWorkload, SkewLevel};
use exsample::opt::{optimal_weights, InstanceChunkProbabilities, SolverOptions};
use exsample::sim::{MethodKind, QueryRunner, StopCondition};

fn main() {
    let budget = 8_000u64;
    println!("workload: 1M frames, 1000 instances, skew 1/32, mean duration 400 frames");
    println!("budget:   {budget} detector invocations per run\n");
    println!(
        "{:>7} {:>18} {:>22}",
        "chunks", "instances found", "optimal (Eq. IV.1)"
    );

    for &chunks in &[1u32, 4, 16, 64, 256, 1024] {
        let dataset = GridWorkload::builder()
            .frames(1_000_000)
            .instances(1_000)
            .chunks(chunks)
            .mean_duration(400.0)
            .skew(SkewLevel::ThirtySecond)
            .seed(11)
            .build()
            .expect("valid workload")
            .generate();

        let result = QueryRunner::new(&dataset)
            .stop(StopCondition::FrameBudget(budget))
            .seed(5)
            .run(MethodKind::ExSample(ExSampleConfig::default()))
            .expect("query run succeeded");

        // The optimal static allocation with perfect knowledge of instance placement.
        let intervals: Vec<(u64, u64)> = dataset
            .ground_truth()
            .instances()
            .iter()
            .map(|i| (i.first_frame(), i.last_frame()))
            .collect();
        let ranges: Vec<(u64, u64)> = dataset
            .chunking()
            .chunks()
            .iter()
            .map(|c| (c.start(), c.end()))
            .collect();
        let probs = InstanceChunkProbabilities::from_intervals(&intervals, &ranges);
        let optimal = optimal_weights(&probs, budget, SolverOptions::default());

        println!(
            "{chunks:>7} {:>18} {:>22.0}",
            result.true_found, optimal.expected_found
        );
    }

    println!();
    println!("A single chunk reduces ExSample to random sampling; a moderate number of");
    println!("chunks captures the skew; a very large number wastes the budget exploring");
    println!("chunks whose statistics never get enough samples to be informative.");
}
