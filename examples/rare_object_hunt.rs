//! Searching for a *rare* object class with a realistic, noisy pipeline.
//!
//! The paper's urban-planning / mapping scenario: find most instances (90 % recall)
//! of a rare class — motorcycles in the night-street analog — using the noisy
//! simulated detector and the paper-faithful tracking discriminator instead of the
//! oracle used in controlled simulations.  This exercises the full substrate stack:
//! detector misses and false positives, IoU matching against stored track
//! positions, and per-chunk statistics that can dip below zero when an object is
//! re-seen from another chunk.
//!
//! ```bash
//! cargo run --release --example rare_object_hunt
//! ```

use exsample::core::ExSampleConfig;
use exsample::data::datasets::{night_street, DatasetAnalog};
use exsample::detect::DetectorNoise;
use exsample::sim::runner::DiscriminatorKind;
use exsample::sim::{format_duration, MethodKind, QueryRunner, StopCondition};
use exsample::video::DecodeCostModel;

fn main() {
    let dataset = DatasetAnalog::new(night_street(), 21)
        .with_scale(0.25)
        .generate();
    let class = "motorcycle";
    let total = dataset.instance_count(&class.into());
    let cost = DecodeCostModel::paper();

    println!(
        "night-street analog: {:.1} hours of video, {} chunks, {} distinct motorcycles",
        dataset.repository().total_duration_hours(),
        dataset.chunking().len(),
        total
    );
    println!("query: reach 90% recall with a noisy detector and the tracking discriminator\n");

    let noise = DetectorNoise {
        miss_rate: 0.1,
        false_positives_per_frame: 0.05,
        localization_sigma: 0.01,
        min_true_score: 0.5,
    };

    for (label, kind) in [
        ("exsample", MethodKind::ExSample(ExSampleConfig::default())),
        ("random", MethodKind::Random),
    ] {
        let result = QueryRunner::new(&dataset)
            .class(class)
            .stop(StopCondition::Recall(0.9))
            .frame_cap(dataset.total_frames() / 2)
            .detector_noise(noise)
            .discriminator(DiscriminatorKind::Tracking)
            .seed(17)
            .run(kind)
            .expect("query run succeeded");
        println!(
            "{label:<9} frames: {:>7}  recall: {:.2}  distinct objects reported: {:>4}  (of which {} are real)  time: {}",
            result.frames_processed,
            result.recall(),
            result.distinct_found,
            result.true_found,
            format_duration(cost.sampled_processing_secs(result.frames_processed)),
        );
    }

    println!();
    println!("The tracking discriminator occasionally reports a false-positive detection as");
    println!("a distinct object (the detector noise is configured to produce them), which is");
    println!("why `distinct objects reported` can exceed the number of real motorcycles");
    println!("found — exactly the behaviour a deployment with an imperfect detector shows.");
}
