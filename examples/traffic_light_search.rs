//! The paper's motivating scenario: "find traffic lights in dashcam video" — a
//! distinct-object limit query over the dashcam dataset analog, comparing
//! ExSample, random sampling and a BlazeIt-style proxy baseline, with the paper's
//! virtual-time cost model (scan at 100 fps, sampled processing at 20 fps).
//!
//! ```bash
//! cargo run --release --example traffic_light_search
//! ```

use exsample::baselines::ProxyConfig;
use exsample::core::ExSampleConfig;
use exsample::data::datasets::{dashcam, DatasetAnalog};
use exsample::sim::{format_duration, MethodKind, QueryRunner, StopCondition};
use exsample::video::DecodeCostModel;

fn main() {
    // A quarter-scale dashcam analog keeps this example under a minute; the
    // relative comparison between the methods is unaffected by the scale.
    let dataset = DatasetAnalog::new(dashcam(), 1).with_scale(0.25).generate();
    let class = "traffic light";
    let cost = DecodeCostModel::paper();
    let total = dataset.instance_count(&class.into());

    println!(
        "dashcam analog: {:.1} hours of video, {} chunks, {} distinct traffic lights",
        dataset.repository().total_duration_hours(),
        dataset.chunking().len(),
        total
    );

    // The autonomous-vehicle data-scientist scenario from the paper: a few dozen
    // examples are enough (limit query / ~10% recall).
    let limit = (total / 10).max(20);
    println!("\nquery: find {limit} distinct traffic lights\n");

    let runs = vec![
        (
            "exsample",
            QueryRunner::new(&dataset)
                .class(class)
                .stop(StopCondition::DistinctResults(limit))
                .seed(3)
                .run(MethodKind::ExSample(ExSampleConfig::default()))
                .expect("query run succeeded"),
        ),
        (
            "random",
            QueryRunner::new(&dataset)
                .class(class)
                .stop(StopCondition::DistinctResults(limit))
                .seed(3)
                .run(MethodKind::Random)
                .expect("query run succeeded"),
        ),
        (
            "proxy (BlazeIt-style)",
            QueryRunner::new(&dataset)
                .class(class)
                .stop(StopCondition::DistinctResults(limit))
                .seed(3)
                .run(MethodKind::Proxy(ProxyConfig::default()))
                .expect("query run succeeded"),
        ),
    ];

    println!(
        "{:<22} {:>14} {:>14} {:>14} {:>14}",
        "method", "scan time", "detector time", "total time", "frames detected"
    );
    for (label, result) in &runs {
        let scan = cost.proxy_scoring_secs(result.upfront_scan_frames);
        let detect = cost.sampled_processing_secs(result.frames_processed);
        println!(
            "{label:<22} {:>14} {:>14} {:>14} {:>14}",
            format_duration(scan),
            format_duration(detect),
            format_duration(scan + detect),
            result.frames_processed
        );
    }

    let exsample_total = runs[0].1.total_secs();
    let proxy_total = runs[2].1.total_secs();
    println!("\nEven with a *perfectly ordered* score list, the proxy baseline cannot return its",);
    println!(
        "first result before scanning the whole dataset ({}); ExSample finished the entire",
        format_duration(cost.proxy_scoring_secs(dataset.total_frames()))
    );
    println!(
        "query in {} — {:.1}x less total time.",
        format_duration(exsample_total),
        proxy_total / exsample_total
    );
}
