//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset of the criterion 0.5 API used by this workspace's
//! benches (`criterion_group!` / `criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with `bench_with_input`, and `black_box`) on top of a plain
//! wall-clock measurement loop:
//!
//! 1. warm up the closure for a fixed wall-clock budget,
//! 2. pick an iteration count that makes one measurement batch take roughly a
//!    millisecond,
//! 3. run `sample_size` batches and report the median ns/iteration.
//!
//! Two environment variables adjust behaviour:
//!
//! * `BENCH_QUICK=1` shrinks the measurement budget (used by CI smoke runs);
//! * `BENCH_JSON=<path>` writes one JSON line per benchmark, which is how the
//!   committed `BENCH_*.json` baselines are produced.  The process's *first*
//!   write to a given path truncates it — a regenerated baseline replaces the
//!   stale file instead of silently appending to it — and every later write
//!   of the same process appends, so one bench binary's benchmarks accumulate
//!   into one file.  (Separate bench binaries are separate processes: point
//!   each at its own baseline file.)  A relative path is
//!   resolved against the **workspace root** (the nearest ancestor of the
//!   running package's manifest directory whose `Cargo.toml` declares
//!   `[workspace]`), so `BENCH_JSON=BENCH_foo.json cargo bench -p
//!   exsample-bench` writes next to the committed baselines no matter which
//!   directory cargo runs the bench binary from.  Absolute paths are used
//!   verbatim.

#![deny(unsafe_code)]

pub use std::hint::black_box;

use std::collections::HashSet;
use std::fmt::Display;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Resolve a `BENCH_JSON` value: absolute paths pass through, relative paths
/// land in the workspace root so the committed `BENCH_*.json` baselines can
/// be regenerated without worrying about which directory cargo runs the
/// bench binary from (cargo sets the bench process's working directory — and
/// `CARGO_MANIFEST_DIR` — to the *package*, not the workspace).
fn bench_json_path(raw: &str) -> PathBuf {
    let path = Path::new(raw);
    if path.is_absolute() {
        return path.to_path_buf();
    }
    match workspace_root() {
        Some(root) => root.join(path),
        None => path.to_path_buf(),
    }
}

/// The `BENCH_JSON` paths this process has already truncated.  The first
/// report written to a path replaces whatever stale baseline was there (the
/// historical append-only behaviour quietly produced files mixing old and new
/// runs); every later report of the same process appends.
fn truncated_paths() -> &'static Mutex<HashSet<PathBuf>> {
    static TRUNCATED: OnceLock<Mutex<HashSet<PathBuf>>> = OnceLock::new();
    TRUNCATED.get_or_init(|| Mutex::new(HashSet::new()))
}

/// The nearest ancestor of the running package's manifest directory (falling
/// back to the current directory) whose `Cargo.toml` declares a
/// `[workspace]` section.
fn workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::var_os("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .or_else(|| std::env::current_dir().ok())?;
    loop {
        if let Ok(manifest) = std::fs::read_to_string(dir.join("Cargo.toml")) {
            if manifest.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Measurement configuration shared by all benchmarks of a binary.
pub struct Criterion {
    sample_size: usize,
    warmup: Duration,
    measure_target: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::var("BENCH_QUICK").is_ok_and(|v| v == "1");
        Criterion {
            sample_size: if quick { 10 } else { 30 },
            warmup: if quick {
                Duration::from_millis(20)
            } else {
                Duration::from_millis(150)
            },
            measure_target: if quick {
                Duration::from_millis(1)
            } else {
                Duration::from_millis(4)
            },
        }
    }
}

impl Criterion {
    /// Benchmark a closure under `name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            warmup: self.warmup,
            measure_target: self.measure_target,
            sample_size: self.sample_size,
            result: None,
        };
        f(&mut bencher);
        bencher.report(name);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    /// Compatibility no-op (criterion configures this on the group).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Compatibility no-op: upstream criterion parses CLI filters here.
    pub fn final_summary(&self) {}
}

/// A group of benchmarks sharing a name prefix and sample-size override.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Override the number of measurement batches for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Benchmark a closure under `group/name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Display,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        let mut bencher = Bencher {
            warmup: self.criterion.warmup,
            measure_target: self.criterion.measure_target,
            sample_size: self.sample_size.unwrap_or(self.criterion.sample_size),
            result: None,
        };
        f(&mut bencher);
        bencher.report(&full);
        self
    }

    /// Benchmark a closure parameterised by `input` under `group/id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        let mut bencher = Bencher {
            warmup: self.criterion.warmup,
            measure_target: self.criterion.measure_target,
            sample_size: self.sample_size.unwrap_or(self.criterion.sample_size),
            result: None,
        };
        f(&mut bencher, input);
        bencher.report(&full);
        self
    }

    /// Finish the group (no-op beyond matching the upstream API).
    pub fn finish(self) {}
}

/// Identifier for a parameterised benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Identifier rendered from the parameter value alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }

    /// Identifier with an explicit function name and parameter.
    pub fn new<P: Display>(function: &str, parameter: P) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }
}

/// Passed to the benchmark closure; `iter` runs the measurement loop.
pub struct Bencher {
    warmup: Duration,
    measure_target: Duration,
    sample_size: usize,
    result: Option<Measurement>,
}

struct Measurement {
    median_ns: f64,
    iters_per_batch: u64,
    batches: usize,
}

impl Bencher {
    /// Measure `routine`, recording the median batch time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: also estimates the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warmup {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let iters_per_batch =
            ((self.measure_target.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_batch {
                black_box(routine());
            }
            samples.push(start.elapsed().as_secs_f64() / iters_per_batch as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median_ns = samples[samples.len() / 2] * 1e9;
        self.result = Some(Measurement {
            median_ns,
            iters_per_batch,
            batches: self.sample_size,
        });
    }

    fn report(self, name: &str) {
        let Some(m) = self.result else {
            println!("{name:<56} (no measurement: Bencher::iter never called)");
            return;
        };
        let per_sec = 1e9 / m.median_ns;
        println!(
            "{name:<56} {:>12.1} ns/iter {:>16.0} iter/s  ({} x {} iters)",
            m.median_ns, per_sec, m.batches, m.iters_per_batch
        );
        if let Ok(path) = std::env::var("BENCH_JSON") {
            let line = format!(
                "{{\"name\":\"{}\",\"median_ns\":{:.2},\"iters_per_sec\":{:.1},\"batches\":{},\"iters_per_batch\":{}}}\n",
                name, m.median_ns, per_sec, m.batches, m.iters_per_batch
            );
            let path = bench_json_path(&path);
            let first_write = truncated_paths().lock().unwrap().insert(path.clone());
            let mut options = OpenOptions::new();
            options.create(true);
            if first_write {
                options.write(true).truncate(true);
            } else {
                options.append(true);
            }
            let _ = options
                .open(&path)
                .and_then(|mut f| f.write_all(line.as_bytes()));
        }
    }
}

/// Declare a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_a_trivial_closure() {
        std::env::set_var("BENCH_QUICK", "1");
        let mut c = Criterion::default();
        let mut x = 0u64;
        c.bench_function("trivial", |b| b.iter(|| x = x.wrapping_add(1)));
        assert!(x > 0);
    }

    #[test]
    fn relative_bench_json_paths_resolve_to_the_workspace_root() {
        // The shim's own CARGO_MANIFEST_DIR is shims/criterion; the workspace
        // root is two levels up and declares [workspace].
        let root = workspace_root().expect("the shim lives inside a workspace");
        assert!(root.join("Cargo.toml").exists());
        assert!(
            std::fs::read_to_string(root.join("Cargo.toml"))
                .unwrap()
                .contains("[workspace]"),
            "workspace_root found a non-workspace manifest at {root:?}"
        );
        assert_eq!(bench_json_path("BENCH_x.json"), root.join("BENCH_x.json"));
        assert_eq!(
            bench_json_path("sub/BENCH_x.json"),
            root.join("sub/BENCH_x.json")
        );
        // Absolute paths pass through untouched.
        let absolute = root.join("BENCH_abs.json");
        assert_eq!(bench_json_path(absolute.to_str().unwrap()), absolute);
    }

    #[test]
    fn bench_json_truncates_the_stale_baseline_once_then_appends() {
        // A stale baseline from an earlier run must be replaced by the
        // process's first write, while writes after the first accumulate.
        // Uses an absolute path (passes through `bench_json_path` untouched)
        // unique to this process so parallel test runs cannot collide.
        let path =
            std::env::temp_dir().join(format!("BENCH_shim_truncate_{}.json", std::process::id()));
        std::fs::write(&path, "{\"name\":\"stale_line_from_last_run\"}\n").unwrap();
        std::env::set_var("BENCH_QUICK", "1");
        std::env::set_var("BENCH_JSON", path.to_str().unwrap());
        let mut c = Criterion::default();
        let mut x = 0u64;
        c.bench_function("shim_truncate_first", |b| b.iter(|| x = x.wrapping_add(1)));
        c.bench_function("shim_truncate_second", |b| b.iter(|| x = x.wrapping_add(1)));
        std::env::remove_var("BENCH_JSON");
        let contents = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(
            !contents.contains("stale_line_from_last_run"),
            "first write must truncate the stale baseline: {contents}"
        );
        assert!(
            contents.contains("shim_truncate_first"),
            "first benchmark line missing: {contents}"
        );
        assert!(
            contents.contains("shim_truncate_second"),
            "later benchmarks must append, not truncate: {contents}"
        );
    }

    #[test]
    fn group_api_compiles_and_runs() {
        std::env::set_var("BENCH_QUICK", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }
}
