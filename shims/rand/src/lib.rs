//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in an environment with no access to crates.io, so the
//! small slice of the `rand 0.8` API the code base actually uses is implemented
//! here, backed by the xoshiro256++ generator (Blackman & Vigna) seeded through
//! SplitMix64.  The API is call-compatible with the subset used in-tree:
//!
//! * [`Rng::gen`] for `f64`/`f32`/`bool` and the unsigned integer types,
//! * [`Rng::gen_range`] over half-open and inclusive integer/float ranges,
//! * [`SeedableRng::seed_from_u64`] plus the [`rngs::StdRng`] / [`rngs::SmallRng`]
//!   type aliases.
//!
//! Determinism note: streams differ from the real `rand` crate (which uses
//! ChaCha12 for `StdRng`), but every consumer in this workspace only relies on
//! *reproducibility under a fixed seed*, not on matching upstream streams.

#![deny(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of uniformly distributed 64-bit values.
pub trait RngCore {
    /// Produce the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Produce 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an `Rng` without extra parameters
/// (the stand-in for `rand::distributions::Standard`).
pub trait Standard: Sized {
    /// Draw one uniformly distributed value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Integer / float types that support uniform range sampling.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draw uniformly from the half-open range `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Draw uniformly from the closed range `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Unbiased uniform draw from `[0, span)` via Lemire's widening-multiply method.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let low = m as u64;
        if low >= span {
            return (m >> 64) as u64;
        }
        // Rejection zone: accept unless `low` falls below the bias threshold.
        let threshold = span.wrapping_neg() % span;
        if low >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u64;
                low.wrapping_add(uniform_below(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty inclusive range");
                let span = (high as i128 - low as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for the full u64/i64 domain: any draw is valid.
                    return rng.next_u64() as $t;
                }
                low.wrapping_add(uniform_below(rng, span as u64) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        let u = f64::from_rng(rng);
        low + u * (high - low)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        Self::sample_half_open(rng, low, high)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        let u = f32::from_rng(rng);
        low + u * (high - low)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        Self::sample_half_open(rng, low, high)
    }
}

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// The user-facing random-value API, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draw uniformly from `range`.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (via SplitMix64 state expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step, used for seed expansion.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ (Blackman & Vigna, 2019): fast, tiny state, passes BigCrush.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl RngCore for Xoshiro256PlusPlus {
    fn next_u64(&mut self) -> u64 {
        let result = (self.s[0].wrapping_add(self.s[3]))
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256PlusPlus {
    fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut state);
        }
        // All-zero state is a fixed point of xoshiro; SplitMix64 cannot produce
        // four zero outputs in a row, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256PlusPlus { s }
    }
}

/// Concrete generator types, mirroring `rand::rngs`.
pub mod rngs {
    /// The workspace's standard generator (xoshiro256++ here; ChaCha12 upstream).
    pub type StdRng = super::Xoshiro256PlusPlus;
    /// The small/fast generator; identical to [`StdRng`] in this stand-in.
    pub type SmallRng = super::Xoshiro256PlusPlus;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_gen_is_in_unit_interval_with_correct_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..100_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        assert!((sum / 100_000.0 - 0.5).abs() < 0.005);
    }

    #[test]
    fn int_ranges_cover_bounds_uniformly() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 500.0, "count {c}");
        }
        // Inclusive ranges reach the upper bound.
        let mut saw_upper = false;
        for _ in 0..1_000 {
            if rng.gen_range(0u64..=3) == 3 {
                saw_upper = true;
            }
        }
        assert!(saw_upper);
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
        }
    }

    #[test]
    fn works_through_unsized_references() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(6);
        let r: &mut dyn RngCore = &mut rng;
        assert!((0.0..1.0).contains(&draw(r)));
    }
}
