//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset used by this workspace's property tests:
//!
//! * the [`proptest!`] macro over `fn name(arg in strategy, ...) { body }` items,
//! * numeric range strategies (`1u64..5_000`, `1e-6f64..0.2`),
//! * [`collection::vec`] with either a fixed size or a size range,
//! * [`bool::ANY`],
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`].
//!
//! Differences from upstream: no shrinking (failures report the generated inputs
//! verbatim), and the number of cases per test defaults to 64 (override with the
//! `PROPTEST_CASES` environment variable).

#![deny(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform};
use std::fmt::Debug;
use std::ops::Range;

/// The RNG handed to strategies by the generated test runner.
pub type TestRng = StdRng;

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` and should not be counted.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Build a rejection (used by `prop_assume!`).
    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

/// A generator of random test-case values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: Debug;
    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<T> Strategy for Range<T>
where
    T: SampleUniform + Debug + Copy,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

/// Number of cases each `proptest!` test runs (`PROPTEST_CASES`, default 64).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Derive a deterministic per-test RNG from the test's name.
pub fn test_rng(name: &str) -> TestRng {
    use rand::SeedableRng;
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    TestRng::seed_from_u64(hash)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::fmt::Debug;
    use std::ops::Range;

    /// Acceptable size arguments for [`vec`]: a fixed size or a size range.
    pub trait IntoSizeRange {
        /// Draw a concrete length.
        fn pick_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn pick_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.start..self.end)
        }
    }

    /// Strategy producing vectors whose elements come from `elem`.
    pub struct VecStrategy<S, L> {
        elem: S,
        len: L,
    }

    /// A vector strategy with the given element strategy and size (fixed or range).
    pub fn vec<S: Strategy, L: IntoSizeRange>(elem: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { elem, len }
    }

    impl<S, L> Strategy for VecStrategy<S, L>
    where
        S: Strategy,
        S::Value: Debug,
        L: IntoSizeRange,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.len.pick_len(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy producing unbiased booleans.
    pub struct Any;

    /// The strategy for an arbitrary boolean.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen::<bool>()
        }
    }
}

/// Common imports for property tests.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use crate::{Strategy, TestCaseError};
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Reject the current case (it does not count towards the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject());
        }
    };
}

/// Define property tests.  Each inner `fn` runs [`cases`] random cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut rng = $crate::test_rng(stringify!($name));
            let target = $crate::cases();
            let mut accepted = 0u32;
            let mut attempts = 0u32;
            while accepted < target {
                attempts += 1;
                assert!(
                    attempts <= target.saturating_mul(200),
                    "proptest '{}': too many rejected cases ({} accepted of {} wanted)",
                    stringify!($name), accepted, target
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; ",)*),
                    $(&$arg),*
                );
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || { $body Ok(()) })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::TestCaseError::Reject) => continue,
                    Err($crate::TestCaseError::Fail(msg)) => panic!(
                        "proptest '{}' failed after {} case(s): {}\n  inputs: {}",
                        stringify!($name), accepted + 1, msg, inputs
                    ),
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    proptest! {
        #[test]
        fn ranges_and_vectors_generate_in_bounds(
            x in 1u64..100,
            v in crate::collection::vec(0.0f64..1.0, 2..10),
            flag in crate::bool::ANY,
        ) {
            prop_assert!((1..100).contains(&x));
            prop_assert!(v.len() >= 2 && v.len() < 10, "len {}", v.len());
            prop_assert!(v.iter().all(|&p| (0.0..1.0).contains(&p)));
            let _ = flag;
        }

        #[test]
        fn fixed_size_vec_and_assume(
            v in crate::collection::vec(0usize..50, 3),
        ) {
            prop_assume!(v.iter().sum::<usize>() > 0);
            prop_assert_eq!(v.len(), 3);
        }
    }

    #[test]
    #[should_panic(expected = "inputs:")]
    fn failing_case_reports_inputs() {
        proptest! {
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
