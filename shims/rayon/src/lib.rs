//! Offline stand-in for `rayon`.
//!
//! Provides `into_par_iter().map(f).collect()` over integer ranges and vectors,
//! which is all this workspace needs for its trial sweeps.  The implementation
//! materialises the items, splits them into contiguous per-thread slices, runs
//! the mapping closure on `std::thread::scope` threads, and writes each result
//! into its item's original slot — so `collect()` preserves input order exactly,
//! and a deterministic per-item computation yields bitwise-identical output
//! regardless of thread count (the property the sweep harness's tests assert).

#![deny(unsafe_code)]

/// Common imports, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, ParallelIterator};
}

/// Parallel iterator types.
pub mod iter {
    /// Types convertible into a parallel iterator.
    pub trait IntoParallelIterator {
        /// Element type.
        type Item: Send;
        /// Convert into a parallel iterator over the items.
        fn into_par_iter(self) -> ParIter<Self::Item>;
    }

    macro_rules! impl_for_range {
        ($($t:ty),*) => {$(
            impl IntoParallelIterator for std::ops::Range<$t> {
                type Item = $t;
                fn into_par_iter(self) -> ParIter<$t> {
                    ParIter { items: self.collect() }
                }
            }
        )*};
    }
    impl_for_range!(u32, u64, usize, i32, i64);

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        fn into_par_iter(self) -> ParIter<T> {
            ParIter { items: self }
        }
    }

    /// A materialised parallel iterator.
    pub struct ParIter<T> {
        items: Vec<T>,
    }

    /// The subset of rayon's `ParallelIterator` surface used in-tree, expressed
    /// as a trait so `use rayon::prelude::*` brings the methods into scope.
    pub trait ParallelIterator: Sized {
        /// Element type.
        type Item: Send;

        /// Map every element through `f` in parallel.
        fn map<R, F>(self, f: F) -> MapPar<Self::Item, R, F>
        where
            R: Send,
            F: Fn(Self::Item) -> R + Sync;
    }

    impl<T: Send> ParallelIterator for ParIter<T> {
        type Item = T;

        fn map<R, F>(self, f: F) -> MapPar<T, R, F>
        where
            R: Send,
            F: Fn(T) -> R + Sync,
        {
            MapPar {
                items: self.items,
                f,
                _result: std::marker::PhantomData,
            }
        }
    }

    /// A pending parallel map; executed by [`MapPar::collect`].
    pub struct MapPar<T, R, F> {
        items: Vec<T>,
        f: F,
        _result: std::marker::PhantomData<fn() -> R>,
    }

    impl<T, R, F> MapPar<T, R, F>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        /// Run the map on as many threads as the host offers and collect the
        /// results in input order.
        pub fn collect<C: FromIterator<R>>(self) -> C {
            let n = self.items.len();
            if n == 0 {
                return std::iter::empty().collect();
            }
            let threads = std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
                .min(n);
            if threads <= 1 {
                return self.items.into_iter().map(self.f).collect();
            }
            let f = &self.f;
            let mut inputs: Vec<Option<T>> = self.items.into_iter().map(Some).collect();
            let mut outputs: Vec<Option<R>> = (0..n).map(|_| None).collect();
            let chunk = n.div_ceil(threads);
            std::thread::scope(|scope| {
                for (in_chunk, out_chunk) in inputs.chunks_mut(chunk).zip(outputs.chunks_mut(chunk))
                {
                    scope.spawn(move || {
                        for (item, slot) in in_chunk.iter_mut().zip(out_chunk.iter_mut()) {
                            *slot = Some(f(item.take().expect("item present")));
                        }
                    });
                }
            });
            outputs
                .into_iter()
                .map(|r| r.expect("every slot filled by its worker"))
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out: Vec<u64> = (0u64..1_000).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out.len(), 1_000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64 * 2);
        }
    }

    #[test]
    fn vec_input_and_empty_input() {
        let out: Vec<String> = vec![3usize, 1, 2]
            .into_par_iter()
            .map(|x| x.to_string())
            .collect();
        assert_eq!(out, vec!["3", "1", "2"]);
        let empty: Vec<u32> = (0u32..0).into_par_iter().map(|x| x).collect();
        assert!(empty.is_empty());
    }

    #[test]
    fn matches_sequential_map_exactly() {
        let seq: Vec<u64> = (0u64..257)
            .map(|x| x.wrapping_mul(0x9E3779B97F4A7C15))
            .collect();
        let par: Vec<u64> = (0u64..257)
            .into_par_iter()
            .map(|x| x.wrapping_mul(0x9E3779B97F4A7C15))
            .collect();
        assert_eq!(seq, par);
    }
}
