//! # exsample-detect
//!
//! Object-detection substrate for the ExSample reproduction.
//!
//! ExSample treats the object detector as a *black box with a costly runtime*
//! (Section II-A of the paper): the algorithm hands the detector a decoded frame
//! and receives a set of bounding boxes.  The paper uses Faster-RCNN with a
//! ResNet-50 backbone running at roughly 10 fps on a GPU; this crate replaces that
//! stack with a **simulated detector** driven by ground-truth object instances, so
//! the whole evaluation can run deterministically on a laptop while exercising the
//! exact same interfaces the real pipeline would.
//!
//! The crate provides:
//!
//! * [`bbox`] — axis-aligned bounding boxes in normalised image coordinates with
//!   IoU (intersection over union) arithmetic.
//! * [`class`] — object classes (car, person, traffic light, …).
//! * [`detection`] — a single detection (box + class + confidence) and the set of
//!   detections produced for one frame.
//! * [`instance`] — a ground-truth *object instance*: one physical object visible
//!   over an interval of frames, with a simple motion model giving its box in each
//!   frame where it is visible.
//! * [`ground_truth`] — a queryable collection of instances with a temporal index.
//! * [`detector`] — the [`detector::Detector`] trait (thread-safe: `Send + Sync`,
//!   so engines can share one instance across concurrent shard workers) plus
//!   [`detector::PerfectDetector`] and [`detector::SimulatedDetector`]
//!   (configurable miss rate, false positives, localisation noise;
//!   deterministic per frame).  Detection can fail: the fallible
//!   [`detector::Detector::try_detect_batch`] entry point returns typed
//!   [`detector::DetectError`]s (transient vs permanent) instead of panicking.
//! * [`fault`] — deterministic fault injection: a seeded [`fault::FaultPlan`]
//!   schedules transient errors, permanent failures and slow calls per
//!   `(frame, attempt)`, and [`fault::FaultInjectingDetector`] wraps any
//!   detector with that schedule — reproducible faults for testing
//!   fault-tolerant engines.
//! * [`batching`] — a tunable `per_call + per_frame × n` invocation cost model
//!   ([`batching::BatchCostModel`], the GPU-shaped curve) and
//!   [`batching::BatchingDetector`], a wrapper charging that model per
//!   physical invocation so batching strategies are measurable by modelled
//!   cost instead of wall-clock noise.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod batching;
pub mod bbox;
pub mod class;
pub mod detection;
pub mod detector;
pub mod fault;
pub mod ground_truth;
pub mod instance;

pub use batching::{BatchCostModel, BatchingDetector};
pub use bbox::BBox;
pub use class::ObjectClass;
pub use detection::{Detection, FrameDetections};
pub use detector::{DetectError, Detector, DetectorNoise, PerfectDetector, SimulatedDetector};
pub use fault::{FaultInjectingDetector, FaultPlan};
pub use ground_truth::GroundTruth;
pub use instance::{InstanceId, MotionModel, ObjectInstance};
