//! A cost-model instrumented detector for measuring batching strategies.
//!
//! Real inference backends have a GPU-shaped cost curve: every invocation pays
//! a fixed dispatch cost (kernel launch, host↔device transfer setup, request
//! framing) plus a per-frame marginal cost.  Batching wins precisely because
//! the fixed cost amortises over the batch — `per_call + per_frame × n` for a
//! batch of `n` frames is much cheaper than `n × (per_call + per_frame)` for
//! `n` singleton calls.
//!
//! [`BatchCostModel`] makes that curve explicit and tunable, and
//! [`BatchingDetector`] wraps any [`Detector`] to *charge* it: every physical
//! invocation increments thread-safe counters for calls, frames and modelled
//! cost, without changing any detection result.  Execution engines can then
//! compare per-shard vs cross-shard-aggregated invocation strategies by the
//! number this module produces instead of by wall-clock noise — which is what
//! makes batching gains measurable on a 1-vCPU container.

use crate::class::ObjectClass;
use crate::detection::FrameDetections;
use crate::detector::{DetectError, Detector};
use exsample_video::FrameId;
use std::sync::atomic::{AtomicU64, Ordering};

/// A `per_call + per_frame × n` invocation cost model.
///
/// Costs are in abstract units (the simulator bills them onto its virtual
/// clock; benches report them directly).  The model is intentionally affine —
/// the simplest shape that still rewards batching — and mirrors how the
/// engine's own [`StageStats`] batch tallies are converted to cost:
/// `cost = per_call × calls + per_frame × frames`.
///
/// [`StageStats`]: https://docs.rs/exsample-engine
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchCostModel {
    /// Fixed cost charged per physical invocation, regardless of batch size.
    pub per_call: u64,
    /// Marginal cost charged per frame in the batch.
    pub per_frame: u64,
}

impl BatchCostModel {
    /// Create a cost model with the given fixed and marginal costs.
    pub fn new(per_call: u64, per_frame: u64) -> Self {
        BatchCostModel {
            per_call,
            per_frame,
        }
    }

    /// A GPU-shaped default: dispatch overhead worth 32 frames of marginal
    /// work (`per_call = 32`, `per_frame = 1`).
    ///
    /// With this curve, halving the number of physical calls at a fixed frame
    /// count saves 32 units per call eliminated — large enough that cross-shard
    /// aggregation visibly beats per-shard batching in the benches, small
    /// enough that per-frame work still dominates for batches of a few hundred
    /// frames.
    pub fn gpu_default() -> Self {
        BatchCostModel::new(32, 1)
    }

    /// The modelled cost of one physical call over `n` frames.
    pub fn call_cost(&self, n: u64) -> u64 {
        self.per_call + self.per_frame * n
    }

    /// The modelled cost of `calls` physical invocations covering `frames`
    /// frames in total.
    pub fn cost(&self, calls: u64, frames: u64) -> u64 {
        self.per_call * calls + self.per_frame * frames
    }
}

impl Default for BatchCostModel {
    fn default() -> Self {
        BatchCostModel::gpu_default()
    }
}

/// A [`Detector`] wrapper that counts physical invocations and charges a
/// [`BatchCostModel`] for each, without altering any detection result.
///
/// Counters are atomics, so one `BatchingDetector` can be shared across
/// concurrent shard workers (the [`Detector`] thread-safety contract) and the
/// totals stay exact regardless of which thread issued which call.  Relaxed
/// ordering suffices: the counters are independent monotone tallies read only
/// after the run joins its workers.
///
/// A failed [`Detector::try_detect_batch`] probe still counts — the backend
/// was invoked and the dispatch cost was paid even though no detections came
/// back, matching how execution engines account physical calls.
#[derive(Debug)]
pub struct BatchingDetector<D> {
    inner: D,
    model: BatchCostModel,
    physical_calls: AtomicU64,
    physical_frames: AtomicU64,
    modelled_cost: AtomicU64,
}

impl<D: Detector> BatchingDetector<D> {
    /// Wrap `inner`, charging `model` for every physical invocation.
    pub fn new(inner: D, model: BatchCostModel) -> Self {
        BatchingDetector {
            inner,
            model,
            physical_calls: AtomicU64::new(0),
            physical_frames: AtomicU64::new(0),
            modelled_cost: AtomicU64::new(0),
        }
    }

    /// The wrapped detector.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// The cost model being charged.
    pub fn model(&self) -> BatchCostModel {
        self.model
    }

    /// Physical invocations issued so far (single-frame `detect` calls count
    /// as batches of one).
    pub fn physical_calls(&self) -> u64 {
        self.physical_calls.load(Ordering::Relaxed)
    }

    /// Frames submitted across all physical invocations so far.
    pub fn physical_frames(&self) -> u64 {
        self.physical_frames.load(Ordering::Relaxed)
    }

    /// Total modelled cost charged so far
    /// (`per_call × calls + per_frame × frames`).
    pub fn modelled_cost(&self) -> u64 {
        self.modelled_cost.load(Ordering::Relaxed)
    }

    /// Reset all counters to zero (e.g. between bench iterations).
    pub fn reset(&self) {
        self.physical_calls.store(0, Ordering::Relaxed);
        self.physical_frames.store(0, Ordering::Relaxed);
        self.modelled_cost.store(0, Ordering::Relaxed);
    }

    fn charge(&self, frames: u64) {
        self.physical_calls.fetch_add(1, Ordering::Relaxed);
        self.physical_frames.fetch_add(frames, Ordering::Relaxed);
        self.modelled_cost
            .fetch_add(self.model.call_cost(frames), Ordering::Relaxed);
    }
}

impl<D: Detector> Detector for BatchingDetector<D> {
    fn detect(&self, frame: FrameId) -> FrameDetections {
        self.charge(1);
        self.inner.detect(frame)
    }

    fn detect_batch(&self, frames: &[FrameId], out: &mut Vec<FrameDetections>) {
        self.charge(frames.len() as u64);
        self.inner.detect_batch(frames, out);
    }

    fn try_detect_batch(
        &self,
        frames: &[FrameId],
        out: &mut Vec<FrameDetections>,
    ) -> Result<(), DetectError> {
        self.charge(frames.len() as u64);
        self.inner.try_detect_batch(frames, out)
    }

    fn class(&self) -> &ObjectClass {
        self.inner.class()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::PerfectDetector;
    use crate::ground_truth::GroundTruth;
    use crate::instance::ObjectInstance;
    use std::sync::Arc;

    fn wrapped() -> BatchingDetector<PerfectDetector> {
        let truth = Arc::new(GroundTruth::from_instances(
            1_000,
            vec![ObjectInstance::simple(0, "car", 0, 499)],
        ));
        BatchingDetector::new(
            PerfectDetector::new(truth, ObjectClass::from("car")),
            BatchCostModel::new(10, 2),
        )
    }

    #[test]
    fn cost_model_is_affine_in_calls_and_frames() {
        let model = BatchCostModel::new(10, 2);
        assert_eq!(model.call_cost(0), 10);
        assert_eq!(model.call_cost(5), 20);
        assert_eq!(model.cost(3, 5), 40);
        // One big batch beats the same frames split into singleton calls.
        assert!(model.call_cost(8) < 8 * model.call_cost(1));
        assert_eq!(BatchCostModel::gpu_default(), BatchCostModel::default());
    }

    #[test]
    fn wrapper_preserves_results_and_charges_each_invocation() {
        let det = wrapped();
        let direct = det.inner().detect(100);
        assert_eq!(det.detect(100), direct);
        assert_eq!(det.physical_calls(), 1);
        assert_eq!(det.physical_frames(), 1);
        assert_eq!(det.modelled_cost(), 12);

        let mut out = Vec::new();
        det.detect_batch(&[100, 200, 900], &mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0], direct);
        assert_eq!(det.physical_calls(), 2);
        assert_eq!(det.physical_frames(), 4);
        assert_eq!(det.modelled_cost(), 12 + 16);

        out.clear();
        det.try_detect_batch(&[300, 400], &mut out).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(det.physical_calls(), 3);
        assert_eq!(det.physical_frames(), 6);
        assert_eq!(det.modelled_cost(), 12 + 16 + 14);
        assert_eq!(det.class().name(), "car");
    }

    #[test]
    fn reset_zeroes_all_counters() {
        let det = wrapped();
        let mut out = Vec::new();
        det.detect_batch(&[1, 2], &mut out);
        assert!(det.physical_calls() > 0);
        det.reset();
        assert_eq!(det.physical_calls(), 0);
        assert_eq!(det.physical_frames(), 0);
        assert_eq!(det.modelled_cost(), 0);
    }

    #[test]
    fn failed_probes_still_charge_the_dispatch_cost() {
        use crate::fault::{FaultInjectingDetector, FaultPlan};
        let truth = Arc::new(GroundTruth::from_instances(
            1_000,
            vec![ObjectInstance::simple(0, "car", 0, 499)],
        ));
        let inner = PerfectDetector::new(truth, ObjectClass::from("car"));
        // A permanent-fault-only plan at rate 1.0 fails every frame.
        let faulty = FaultInjectingDetector::new(inner, FaultPlan::new(7).permanent_rate(1.0));
        let det = BatchingDetector::new(faulty, BatchCostModel::new(10, 2));
        let mut out = Vec::new();
        assert!(det.try_detect_batch(&[5, 6], &mut out).is_err());
        assert_eq!(det.physical_calls(), 1);
        assert_eq!(det.physical_frames(), 2);
        assert_eq!(det.modelled_cost(), 14);
    }
}
