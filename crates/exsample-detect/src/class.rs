//! Object classes.
//!
//! The paper's queries search for a specific class of object per query ("find 20
//! traffic lights").  Classes are plain interned strings; the constants below cover
//! every class that appears in the paper's Table I / Figure 5 query list so dataset
//! analogs and experiments can refer to them without typos.

use std::borrow::Cow;
use std::fmt;
use std::sync::Arc;

/// An object class (e.g. "traffic light").
///
/// Internally an `Arc<str>` so that cloning a class (which happens once per
/// detection) never allocates.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectClass(Arc<str>);

impl ObjectClass {
    /// Create a class from a name.
    pub fn new(name: impl Into<Cow<'static, str>>) -> Self {
        ObjectClass(Arc::from(name.into().as_ref()))
    }

    /// The class name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ObjectClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ObjectClass {
    fn from(name: &str) -> Self {
        ObjectClass(Arc::from(name))
    }
}

impl From<String> for ObjectClass {
    fn from(name: String) -> Self {
        ObjectClass(Arc::from(name.as_str()))
    }
}

/// Class-name constants used by the paper's evaluation queries.
pub mod classes {
    /// Bicycles (dashcam, BDD, amsterdam, archie).
    pub const BICYCLE: &str = "bicycle";
    /// Buses (all datasets).
    pub const BUS: &str = "bus";
    /// Cars (BDD MOT, amsterdam, archie, night-street).
    pub const CAR: &str = "car";
    /// Dogs (amsterdam, night-street).
    pub const DOG: &str = "dog";
    /// Fire hydrants (dashcam).
    pub const FIRE_HYDRANT: &str = "fire hydrant";
    /// Motorcycles (BDD, amsterdam, archie, night-street).
    pub const MOTORCYCLE: &str = "motorcycle";
    /// Pedestrians (BDD MOT).
    pub const PEDESTRIAN: &str = "pedestrian";
    /// Persons (BDD, amsterdam, archie, dashcam, night-street).
    pub const PERSON: &str = "person";
    /// Riders (BDD).
    pub const RIDER: &str = "rider";
    /// Stop signs (dashcam).
    pub const STOP_SIGN: &str = "stop sign";
    /// Traffic lights (BDD, dashcam).
    pub const TRAFFIC_LIGHT: &str = "traffic light";
    /// Traffic signs (BDD).
    pub const TRAFFIC_SIGN: &str = "traffic sign";
    /// Trailers (BDD MOT).
    pub const TRAILER: &str = "trailer";
    /// Trains (BDD MOT).
    pub const TRAIN: &str = "train";
    /// Trucks (all datasets).
    pub const TRUCK: &str = "truck";
    /// Boats (amsterdam).
    pub const BOAT: &str = "boat";
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn equality_and_hashing() {
        let a = ObjectClass::from("car");
        let b = ObjectClass::new("car");
        let c = ObjectClass::from("bus");
        assert_eq!(a, b);
        assert_ne!(a, c);
        let set: HashSet<ObjectClass> = [a.clone(), b, c].into_iter().collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn display_and_name() {
        let c = ObjectClass::from(classes::TRAFFIC_LIGHT);
        assert_eq!(c.to_string(), "traffic light");
        assert_eq!(c.name(), "traffic light");
    }

    #[test]
    fn from_string() {
        let c = ObjectClass::from(String::from("boat"));
        assert_eq!(c.name(), "boat");
    }

    #[test]
    fn clone_is_cheap_and_equal() {
        let a = ObjectClass::from("person");
        let b = a.clone();
        assert_eq!(a, b);
    }
}
