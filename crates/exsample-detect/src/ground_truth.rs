//! A queryable collection of ground-truth object instances.
//!
//! The simulated detector needs to answer "which instances are visible in frame f?"
//! millions of times per experiment, over collections of up to tens of thousands of
//! instances spanning tens of millions of frames.  A bucketed interval index keeps
//! that query fast without the complexity of a full interval tree: instances are
//! registered in every fixed-width bucket their interval overlaps, and a lookup
//! scans only the (small) bucket containing the frame.

use crate::class::ObjectClass;
use crate::instance::{InstanceId, ObjectInstance};
use exsample_video::FrameId;
use std::collections::HashMap;

/// Width of an index bucket in frames.
///
/// 4096 frames (~2.3 minutes of 30 fps video) keeps buckets small relative to chunk
/// sizes while bounding the per-instance registration cost for long-lived objects.
const BUCKET_FRAMES: u64 = 4096;

/// The set of ground-truth object instances for a repository.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    instances: Vec<ObjectInstance>,
    by_id: HashMap<InstanceId, usize>,
    /// `buckets[b]` lists indices of instances whose interval intersects bucket `b`.
    buckets: Vec<Vec<u32>>,
    total_frames: u64,
}

impl GroundTruth {
    /// Create an empty ground truth for a repository of `total_frames` frames.
    pub fn new(total_frames: u64) -> Self {
        let bucket_count = (total_frames / BUCKET_FRAMES + 1) as usize;
        GroundTruth {
            instances: Vec::new(),
            by_id: HashMap::new(),
            buckets: vec![Vec::new(); bucket_count],
            total_frames,
        }
    }

    /// Build a ground truth from a list of instances.
    ///
    /// # Panics
    /// Panics if any instance extends beyond `total_frames` or reuses an id.
    pub fn from_instances(total_frames: u64, instances: Vec<ObjectInstance>) -> Self {
        let mut gt = GroundTruth::new(total_frames);
        for inst in instances {
            gt.push(inst);
        }
        gt
    }

    /// Add one instance.
    ///
    /// # Panics
    /// Panics if the instance extends beyond the repository or its id is already
    /// registered.
    pub fn push(&mut self, instance: ObjectInstance) {
        assert!(
            instance.last_frame() < self.total_frames,
            "instance {} ends at frame {} but the repository has only {} frames",
            instance.id(),
            instance.last_frame(),
            self.total_frames
        );
        assert!(
            !self.by_id.contains_key(&instance.id()),
            "duplicate instance id {}",
            instance.id()
        );
        let index = self.instances.len();
        let first_bucket = (instance.first_frame() / BUCKET_FRAMES) as usize;
        let last_bucket = (instance.last_frame() / BUCKET_FRAMES) as usize;
        for bucket in &mut self.buckets[first_bucket..=last_bucket] {
            bucket.push(index as u32);
        }
        self.by_id.insert(instance.id(), index);
        self.instances.push(instance);
    }

    /// Total frames in the underlying repository.
    pub fn total_frames(&self) -> u64 {
        self.total_frames
    }

    /// Number of instances (across all classes).
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// Whether there are no instances.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// All instances.
    pub fn instances(&self) -> &[ObjectInstance] {
        &self.instances
    }

    /// Look up an instance by id.
    pub fn get(&self, id: InstanceId) -> Option<&ObjectInstance> {
        self.by_id.get(&id).map(|&i| &self.instances[i])
    }

    /// Instances of a particular class.
    pub fn of_class<'a>(
        &'a self,
        class: &'a ObjectClass,
    ) -> impl Iterator<Item = &'a ObjectInstance> + 'a {
        self.instances.iter().filter(move |i| i.class() == class)
    }

    /// Number of instances of a particular class.
    pub fn count_of_class(&self, class: &ObjectClass) -> usize {
        self.of_class(class).count()
    }

    /// The distinct classes present, in first-appearance order.
    pub fn classes(&self) -> Vec<ObjectClass> {
        let mut seen = Vec::new();
        for inst in &self.instances {
            if !seen.contains(inst.class()) {
                seen.push(inst.class().clone());
            }
        }
        seen
    }

    /// Instances visible in `frame` (any class).
    pub fn visible_at(&self, frame: FrameId) -> Vec<&ObjectInstance> {
        let bucket = (frame / BUCKET_FRAMES) as usize;
        if bucket >= self.buckets.len() {
            return Vec::new();
        }
        self.buckets[bucket]
            .iter()
            .map(|&i| &self.instances[i as usize])
            .filter(|inst| inst.visible_at(frame))
            .collect()
    }

    /// Instances of `class` visible in `frame`.
    pub fn visible_of_class_at(&self, frame: FrameId, class: &ObjectClass) -> Vec<&ObjectInstance> {
        self.visible_at(frame)
            .into_iter()
            .filter(|inst| inst.class() == class)
            .collect()
    }

    /// The per-instance hit probabilities `p_i` for instances of `class`, each equal
    /// to the instance duration divided by the total number of frames.
    pub fn hit_probabilities(&self, class: &ObjectClass) -> Vec<f64> {
        self.of_class(class)
            .map(|i| i.hit_probability(self.total_frames))
            .collect()
    }

    /// Count how many instances of `class` have at least one visible frame within
    /// the global frame range `[start, end)`.
    pub fn count_in_range(&self, class: &ObjectClass, start: FrameId, end: FrameId) -> usize {
        self.of_class(class)
            .filter(|i| i.first_frame() < end && i.last_frame() >= start)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::ObjectInstance;

    fn gt() -> GroundTruth {
        GroundTruth::from_instances(
            100_000,
            vec![
                ObjectInstance::simple(0, "car", 0, 99),
                ObjectInstance::simple(1, "car", 50, 149),
                ObjectInstance::simple(2, "bus", 5_000, 5_999),
                ObjectInstance::simple(3, "car", 90_000, 99_999),
            ],
        )
    }

    #[test]
    fn visible_at_returns_overlapping_instances() {
        let gt = gt();
        let at_75: Vec<u64> = gt.visible_at(75).iter().map(|i| i.id().0).collect();
        assert_eq!(at_75, vec![0, 1]);
        assert!(gt.visible_at(200).is_empty());
        assert_eq!(gt.visible_at(5_500).len(), 1);
        assert_eq!(gt.visible_at(99_999).len(), 1);
    }

    #[test]
    fn visible_of_class_filters_class() {
        let gt = gt();
        let car = ObjectClass::from("car");
        let bus = ObjectClass::from("bus");
        assert_eq!(gt.visible_of_class_at(75, &car).len(), 2);
        assert_eq!(gt.visible_of_class_at(75, &bus).len(), 0);
        assert_eq!(gt.visible_of_class_at(5_500, &bus).len(), 1);
    }

    #[test]
    fn class_counting_and_lookup() {
        let gt = gt();
        let car = ObjectClass::from("car");
        assert_eq!(gt.count_of_class(&car), 3);
        assert_eq!(gt.len(), 4);
        assert_eq!(gt.classes().len(), 2);
        assert!(gt.get(InstanceId(2)).is_some());
        assert!(gt.get(InstanceId(99)).is_none());
    }

    #[test]
    fn hit_probabilities_scale_with_duration() {
        let gt = gt();
        let car = ObjectClass::from("car");
        let probs = gt.hit_probabilities(&car);
        assert_eq!(probs.len(), 3);
        assert!((probs[0] - 100.0 / 100_000.0).abs() < 1e-12);
        assert!((probs[2] - 10_000.0 / 100_000.0).abs() < 1e-12);
    }

    #[test]
    fn count_in_range_counts_overlaps() {
        let gt = gt();
        let car = ObjectClass::from("car");
        assert_eq!(gt.count_in_range(&car, 0, 100), 2);
        assert_eq!(gt.count_in_range(&car, 140, 200), 1);
        assert_eq!(gt.count_in_range(&car, 200, 80_000), 0);
        assert_eq!(gt.count_in_range(&car, 0, 100_000), 3);
    }

    #[test]
    fn instances_spanning_many_buckets_are_found_everywhere() {
        let mut gt = GroundTruth::new(1_000_000);
        gt.push(ObjectInstance::simple(7, "truck", 10_000, 500_000));
        for &frame in &[10_000u64, 123_456, 250_000, 499_999] {
            assert_eq!(gt.visible_at(frame).len(), 1, "frame {frame}");
        }
        assert!(gt.visible_at(500_001).is_empty());
        assert!(gt.visible_at(9_999).is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate instance id")]
    fn duplicate_id_panics() {
        let mut gt = GroundTruth::new(1000);
        gt.push(ObjectInstance::simple(1, "car", 0, 10));
        gt.push(ObjectInstance::simple(1, "bus", 20, 30));
    }

    #[test]
    #[should_panic(expected = "ends at frame")]
    fn out_of_range_instance_panics() {
        let mut gt = GroundTruth::new(1000);
        gt.push(ObjectInstance::simple(1, "car", 990, 1_000));
    }

    #[test]
    fn empty_ground_truth() {
        let gt = GroundTruth::new(500);
        assert!(gt.is_empty());
        assert!(gt.visible_at(100).is_empty());
        assert!(gt.classes().is_empty());
    }
}
