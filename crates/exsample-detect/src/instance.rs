//! Ground-truth object instances.
//!
//! The paper reasons about search in terms of *instances*: one physical object
//! (a particular traffic light, a particular pedestrian) that is visible to the
//! camera for a contiguous interval of frames.  Instance `i`'s visibility duration
//! determines its probability `p_i` of being hit by a random frame sample, the core
//! quantity of Section III.  The simulated detector and the discriminator both work
//! off these instances.

use crate::bbox::BBox;
use crate::class::ObjectClass;
use exsample_video::FrameId;

/// Identifier of a ground-truth object instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstanceId(pub u64);

impl std::fmt::Display for InstanceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

/// How an instance's bounding box moves over its visibility interval.
#[derive(Debug, Clone, PartialEq)]
pub enum MotionModel {
    /// The box stays put for the whole interval (typical of infrastructure seen by a
    /// fixed camera, e.g. a parked car).
    Static {
        /// The box in every visible frame.
        bbox: BBox,
    },
    /// The box interpolates linearly from `start` to `end` over the interval
    /// (typical of objects passing a fixed camera, or infrastructure approached by a
    /// dashcam).
    Linear {
        /// Box in the first visible frame.
        start: BBox,
        /// Box in the last visible frame.
        end: BBox,
    },
}

impl MotionModel {
    /// The box at interpolation parameter `t` in `[0, 1]` across the interval.
    pub fn bbox_at(&self, t: f64) -> BBox {
        let t = t.clamp(0.0, 1.0);
        match self {
            MotionModel::Static { bbox } => *bbox,
            MotionModel::Linear { start, end } => BBox::new(
                start.x + t * (end.x - start.x),
                start.y + t * (end.y - start.y),
                start.w + t * (end.w - start.w),
                start.h + t * (end.h - start.h),
            ),
        }
    }
}

/// A ground-truth object instance: one distinct result of a distinct-object query.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectInstance {
    id: InstanceId,
    class: ObjectClass,
    /// First global frame in which the object is visible.
    first_frame: FrameId,
    /// Last global frame (inclusive) in which the object is visible.
    last_frame: FrameId,
    motion: MotionModel,
    /// Per-frame probability that a detector of nominal quality actually fires on
    /// this instance when it is visible (models small/occluded objects).
    detectability: f64,
}

impl ObjectInstance {
    /// Create an instance visible over `[first_frame, last_frame]` (inclusive).
    ///
    /// # Panics
    /// Panics if the interval is inverted or `detectability` is outside `[0, 1]`.
    pub fn new(
        id: InstanceId,
        class: ObjectClass,
        first_frame: FrameId,
        last_frame: FrameId,
        motion: MotionModel,
        detectability: f64,
    ) -> Self {
        assert!(
            last_frame >= first_frame,
            "instance interval is inverted: [{first_frame}, {last_frame}]"
        );
        assert!(
            (0.0..=1.0).contains(&detectability),
            "detectability must be a probability, got {detectability}"
        );
        ObjectInstance {
            id,
            class,
            first_frame,
            last_frame,
            motion,
            detectability,
        }
    }

    /// Convenience constructor: a fully detectable static instance.
    pub fn simple(
        id: u64,
        class: impl Into<ObjectClass>,
        first_frame: FrameId,
        last_frame: FrameId,
    ) -> Self {
        ObjectInstance::new(
            InstanceId(id),
            class.into(),
            first_frame,
            last_frame,
            MotionModel::Static {
                bbox: BBox::new(0.4, 0.4, 0.2, 0.2),
            },
            1.0,
        )
    }

    /// Instance identifier.
    pub fn id(&self) -> InstanceId {
        self.id
    }

    /// Object class.
    pub fn class(&self) -> &ObjectClass {
        &self.class
    }

    /// First visible frame.
    pub fn first_frame(&self) -> FrameId {
        self.first_frame
    }

    /// Last visible frame (inclusive).
    pub fn last_frame(&self) -> FrameId {
        self.last_frame
    }

    /// Number of frames the instance is visible for.
    pub fn duration(&self) -> u64 {
        self.last_frame - self.first_frame + 1
    }

    /// Per-frame detection probability when visible.
    pub fn detectability(&self) -> f64 {
        self.detectability
    }

    /// Whether the instance is visible in `frame`.
    pub fn visible_at(&self, frame: FrameId) -> bool {
        frame >= self.first_frame && frame <= self.last_frame
    }

    /// The instance's bounding box in `frame`, or `None` if not visible there.
    pub fn bbox_at(&self, frame: FrameId) -> Option<BBox> {
        if !self.visible_at(frame) {
            return None;
        }
        let t = if self.duration() == 1 {
            0.0
        } else {
            (frame - self.first_frame) as f64 / (self.duration() - 1) as f64
        };
        Some(self.motion.bbox_at(t))
    }

    /// The probability `p_i` of hitting this instance with one uniform frame sample
    /// from a range of `total_frames` frames (Section III-A).
    pub fn hit_probability(&self, total_frames: u64) -> f64 {
        assert!(total_frames > 0);
        self.duration() as f64 / total_frames as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_is_inclusive() {
        let i = ObjectInstance::simple(1, "car", 10, 10);
        assert_eq!(i.duration(), 1);
        let i = ObjectInstance::simple(1, "car", 10, 19);
        assert_eq!(i.duration(), 10);
    }

    #[test]
    fn visibility_interval() {
        let i = ObjectInstance::simple(1, "car", 100, 200);
        assert!(!i.visible_at(99));
        assert!(i.visible_at(100));
        assert!(i.visible_at(150));
        assert!(i.visible_at(200));
        assert!(!i.visible_at(201));
    }

    #[test]
    fn static_motion_box_is_constant() {
        let i = ObjectInstance::simple(1, "car", 0, 9);
        assert_eq!(i.bbox_at(0), i.bbox_at(9));
        assert_eq!(i.bbox_at(100), None);
    }

    #[test]
    fn linear_motion_interpolates() {
        let start = BBox::new(0.0, 0.0, 0.1, 0.1);
        let end = BBox::new(0.8, 0.4, 0.1, 0.1);
        let i = ObjectInstance::new(
            InstanceId(2),
            ObjectClass::from("bus"),
            0,
            10,
            MotionModel::Linear { start, end },
            1.0,
        );
        let mid = i.bbox_at(5).unwrap();
        assert!((mid.x - 0.4).abs() < 1e-12);
        assert!((mid.y - 0.2).abs() < 1e-12);
        assert_eq!(i.bbox_at(0).unwrap(), start);
        assert_eq!(i.bbox_at(10).unwrap(), end);
    }

    #[test]
    fn single_frame_linear_motion_does_not_divide_by_zero() {
        let i = ObjectInstance::new(
            InstanceId(3),
            ObjectClass::from("dog"),
            7,
            7,
            MotionModel::Linear {
                start: BBox::new(0.0, 0.0, 0.1, 0.1),
                end: BBox::new(0.5, 0.5, 0.1, 0.1),
            },
            1.0,
        );
        assert_eq!(i.bbox_at(7).unwrap(), BBox::new(0.0, 0.0, 0.1, 0.1));
    }

    #[test]
    fn hit_probability_is_duration_over_total() {
        let i = ObjectInstance::simple(1, "car", 0, 299);
        assert!((i.hit_probability(3000) - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_interval_panics() {
        let _ = ObjectInstance::simple(1, "car", 10, 9);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_detectability_panics() {
        let _ = ObjectInstance::new(
            InstanceId(1),
            ObjectClass::from("car"),
            0,
            1,
            MotionModel::Static {
                bbox: BBox::new(0.0, 0.0, 0.1, 0.1),
            },
            1.5,
        );
    }

    #[test]
    fn display_of_instance_id() {
        assert_eq!(InstanceId(12).to_string(), "obj12");
    }
}
