//! Deterministic fault injection for fallible detection.
//!
//! Testing a fault-tolerant execution engine needs faults that are
//! *reproducible*: the same seed must schedule the same failures on the same
//! frames in every run, regardless of shard count, thread count or dispatch
//! runtime.  [`FaultInjectingDetector`] wraps any [`Detector`] and injects
//! typed [`DetectError`]s according to a seeded [`FaultPlan`] — never
//! `Math.random`-style nondeterminism.
//!
//! # Determinism contract
//!
//! A frame's fault schedule is a pure function of `(frame, attempt)`, where
//! `attempt` counts how many fallible calls have included that frame so far.
//! Every [`Detector::try_detect_batch`] call charges **one attempt to every
//! frame in the batch**, whether or not the call succeeds and wherever the
//! frame sits in the batch.  Because a frame belongs to exactly one shard and
//! within a shard its lane is processed in a fixed order, a frame's attempt
//! counter advances identically across shard counts, thread counts and
//! dispatch runtimes — so a fixed seed + plan yields bitwise-identical fault
//! behaviour in every engine configuration (pinned by the engine's
//! fault-determinism matrix).
//!
//! Three fault kinds are scheduled:
//!
//! * **transient** — a frame drawn with probability `transient_rate` fails its
//!   first `transient_attempts` attempts with [`DetectError::Transient`], then
//!   succeeds.  This is the shape retry machinery exists for.
//! * **permanent** — a frame drawn with probability `permanent_rate` fails
//!   *every* attempt with [`DetectError::Permanent`].  Retrying is futile;
//!   drop-frame and quarantine handling exist for this shape.
//! * **slow** — a frame drawn with probability `slow_rate` makes every call
//!   that includes it sleep for `slow_delay` before delegating.  Slowness
//!   affects wall-clock only, never results, so it cannot perturb determinism.

use crate::class::ObjectClass;
use crate::detection::FrameDetections;
use crate::detector::{DetectError, Detector};
use exsample_rand::SeedSequence;
use exsample_video::FrameId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// What a [`FaultPlan`] schedules for one `(frame, attempt)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fault {
    Transient,
    Permanent,
}

/// A seeded, reproducible fault schedule for [`FaultInjectingDetector`].
///
/// All rates default to zero: `FaultPlan::new(seed)` injects nothing until a
/// builder method turns a fault kind on.  The plan is `Copy`-cheap
/// configuration; the wrapper derives its seed stream once at construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    transient_rate: f64,
    transient_attempts: u32,
    permanent_rate: f64,
    slow_rate: f64,
    slow_delay: Duration,
}

impl FaultPlan {
    /// A plan with the given seed and no faults scheduled.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            transient_rate: 0.0,
            transient_attempts: 2,
            permanent_rate: 0.0,
            slow_rate: 0.0,
            slow_delay: Duration::ZERO,
        }
    }

    /// Probability that a frame is scheduled for transient failures.
    ///
    /// A transient frame fails its first `transient_attempts` attempts (see
    /// [`FaultPlan::transient_attempts`]) and succeeds afterwards.
    pub fn transient_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
        self.transient_rate = rate;
        self
    }

    /// How many leading attempts a transient frame fails before recovering.
    ///
    /// Defaults to 2.  Engines typically spend one batch-level attempt probing
    /// a lane before falling back to single-frame recovery, so a value of 2
    /// means "the batch probe and the first single-frame attempt fail; the
    /// first *retry* succeeds" — the schedule that exercises retry machinery.
    pub fn transient_attempts(mut self, attempts: u32) -> Self {
        assert!(attempts > 0, "a transient fault must fail at least once");
        self.transient_attempts = attempts;
        self
    }

    /// Probability that a frame is scheduled to fail permanently (every
    /// attempt fails with [`DetectError::Permanent`]).
    pub fn permanent_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
        self.permanent_rate = rate;
        self
    }

    /// Probability that a frame is scheduled as slow, and the delay every
    /// call including a slow frame sleeps for before delegating.
    pub fn slow(mut self, rate: f64, delay: Duration) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
        self.slow_rate = rate;
        self.slow_delay = delay;
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The fault (if any) scheduled for this `(frame, attempt)`, plus whether
    /// the frame is flagged slow.  Pure function of the arguments.
    fn schedule(
        &self,
        seeds: &SeedSequence,
        frame: FrameId,
        attempt: u32,
    ) -> (Option<Fault>, bool) {
        if self.transient_rate == 0.0 && self.permanent_rate == 0.0 && self.slow_rate == 0.0 {
            return (None, false);
        }
        let mut rng = StdRng::seed_from_u64(seeds.index(frame).seed());
        let kind: f64 = rng.gen();
        let slow = self.slow_rate > 0.0 && rng.gen::<f64>() < self.slow_rate;
        let fault = if kind < self.permanent_rate {
            Some(Fault::Permanent)
        } else if kind < self.permanent_rate + self.transient_rate
            && attempt < self.transient_attempts
        {
            Some(Fault::Transient)
        } else {
            None
        };
        (fault, slow)
    }
}

/// A [`Detector`] wrapper that injects deterministic faults per its
/// [`FaultPlan`].
///
/// The infallible [`Detector::detect`] / [`Detector::detect_batch`] paths
/// delegate straight to the inner detector — faults are only expressible
/// through the fallible [`Detector::try_detect_batch`] entry point, which is
/// the one execution engines use.  Attempt counters are per-frame and
/// independent of each other, so concurrent calls on disjoint frames cannot
/// perturb any frame's schedule (the counter map is mutex-guarded for the
/// `Send + Sync` bound, not for cross-frame ordering).
pub struct FaultInjectingDetector<D> {
    inner: D,
    plan: FaultPlan,
    seeds: SeedSequence,
    attempts: Mutex<HashMap<FrameId, u32>>,
    injected_faults: AtomicU64,
    slow_calls: AtomicU64,
}

impl<D: Detector> FaultInjectingDetector<D> {
    /// Wrap `inner`, injecting faults per `plan`.
    pub fn new(inner: D, plan: FaultPlan) -> Self {
        FaultInjectingDetector {
            inner,
            plan,
            seeds: SeedSequence::new(plan.seed()).derive("fault-plan"),
            attempts: Mutex::new(HashMap::new()),
            injected_faults: AtomicU64::new(0),
            slow_calls: AtomicU64::new(0),
        }
    }

    /// The wrapped detector.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// The plan faults are scheduled from.
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    /// Total scheduled faults encountered so far (each faulted frame in each
    /// failing call counts once).
    pub fn injected_faults(&self) -> u64 {
        self.injected_faults.load(Ordering::SeqCst)
    }

    /// Total calls that slept because they included a slow-flagged frame.
    pub fn slow_calls(&self) -> u64 {
        self.slow_calls.load(Ordering::SeqCst)
    }
}

impl<D: Detector> Detector for FaultInjectingDetector<D> {
    fn detect(&self, frame: FrameId) -> FrameDetections {
        self.inner.detect(frame)
    }

    fn detect_batch(&self, frames: &[FrameId], out: &mut Vec<FrameDetections>) {
        self.inner.detect_batch(frames, out);
    }

    fn try_detect_batch(
        &self,
        frames: &[FrameId],
        out: &mut Vec<FrameDetections>,
    ) -> Result<(), DetectError> {
        // Charge one attempt to every frame in the batch up front, so a
        // frame's schedule depends only on its own attempt count — never on
        // batch composition or on where in the batch a fault sits.
        let mut first_fault: Option<DetectError> = None;
        let mut faults = 0u64;
        let mut slow = false;
        {
            let mut attempts = self.attempts.lock().expect("attempt map poisoned");
            for &frame in frames {
                let attempt = attempts.entry(frame).or_insert(0);
                let n = *attempt;
                *attempt += 1;
                let (fault, slow_frame) = self.plan.schedule(&self.seeds, frame, n);
                slow |= slow_frame;
                if let Some(fault) = fault {
                    faults += 1;
                    if first_fault.is_none() {
                        first_fault = Some(match fault {
                            Fault::Transient => DetectError::Transient {
                                frame,
                                message: format!("injected transient fault (attempt {n})"),
                            },
                            Fault::Permanent => DetectError::Permanent {
                                frame,
                                message: "injected permanent fault".to_string(),
                            },
                        });
                    }
                }
            }
        }
        if slow {
            self.slow_calls.fetch_add(1, Ordering::SeqCst);
            if !self.plan.slow_delay.is_zero() {
                std::thread::sleep(self.plan.slow_delay);
            }
        }
        if let Some(err) = first_fault {
            self.injected_faults.fetch_add(faults, Ordering::SeqCst);
            return Err(err);
        }
        self.inner.try_detect_batch(frames, out)
    }

    fn class(&self) -> &ObjectClass {
        self.inner.class()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::PerfectDetector;
    use crate::ground_truth::GroundTruth;
    use crate::instance::ObjectInstance;
    use std::sync::Arc;

    fn perfect() -> PerfectDetector {
        let truth = Arc::new(GroundTruth::from_instances(
            10_000,
            vec![ObjectInstance::simple(0, "car", 0, 999)],
        ));
        PerfectDetector::new(truth, ObjectClass::from("car"))
    }

    #[test]
    fn zero_rate_plan_is_transparent() {
        let det = FaultInjectingDetector::new(perfect(), FaultPlan::new(1));
        let frames: Vec<FrameId> = (0..100).collect();
        let mut out = Vec::new();
        det.try_detect_batch(&frames, &mut out).unwrap();
        assert_eq!(out.len(), frames.len());
        assert_eq!(det.injected_faults(), 0);
        assert_eq!(det.slow_calls(), 0);
    }

    #[test]
    fn transient_frames_fail_then_recover() {
        let plan = FaultPlan::new(7).transient_rate(1.0).transient_attempts(2);
        let det = FaultInjectingDetector::new(perfect(), plan);
        let mut out = Vec::new();
        // Attempts 0 and 1 fail transiently; attempt 2 succeeds.
        for attempt in 0..2 {
            let err = det.try_detect_batch(&[42], &mut out).unwrap_err();
            assert!(err.is_transient(), "attempt {attempt}: {err}");
            assert_eq!(err.frame(), 42);
        }
        out.clear();
        det.try_detect_batch(&[42], &mut out).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(det.injected_faults(), 2);
    }

    #[test]
    fn permanent_frames_never_recover() {
        let plan = FaultPlan::new(7).permanent_rate(1.0);
        let det = FaultInjectingDetector::new(perfect(), plan);
        let mut out = Vec::new();
        for _ in 0..5 {
            let err = det.try_detect_batch(&[9], &mut out).unwrap_err();
            assert!(!err.is_transient());
            assert_eq!(err.frame(), 9);
        }
    }

    #[test]
    fn schedule_is_independent_of_batch_composition() {
        // The same frame reaches the same fault decisions whether attempted in
        // a large batch or alone: attempts are charged per frame, per call.
        let plan = FaultPlan::new(23).transient_rate(0.3).transient_attempts(1);
        let solo = FaultInjectingDetector::new(perfect(), plan);
        let batched = FaultInjectingDetector::new(perfect(), plan);
        let frames: Vec<FrameId> = (0..200).collect();
        let mut solo_faulty = Vec::new();
        let mut out = Vec::new();
        for &frame in &frames {
            out.clear();
            if solo.try_detect_batch(&[frame], &mut out).is_err() {
                solo_faulty.push(frame);
            }
        }
        assert!(!solo_faulty.is_empty(), "plan scheduled no faults at 30%");
        // One big batch fails on the first scheduled fault...
        out.clear();
        let err = batched.try_detect_batch(&frames, &mut out).unwrap_err();
        assert_eq!(err.frame(), solo_faulty[0]);
        // ...and after that probe every frame's next attempt matches the solo
        // run's *second* attempt: transient faults with one failing attempt
        // have cleared in both.
        for &frame in &frames {
            out.clear();
            assert!(
                batched.try_detect_batch(&[frame], &mut out).is_ok(),
                "frame {frame} should have recovered"
            );
        }
    }

    #[test]
    fn infallible_paths_bypass_injection() {
        let plan = FaultPlan::new(7).permanent_rate(1.0);
        let det = FaultInjectingDetector::new(perfect(), plan);
        let mut out = Vec::new();
        det.detect_batch(&[1, 2, 3], &mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(det.detect(500).frame, 500);
        assert_eq!(det.injected_faults(), 0);
    }

    #[test]
    fn slow_frames_count_slow_calls() {
        let plan = FaultPlan::new(3).slow(1.0, Duration::ZERO);
        let det = FaultInjectingDetector::new(perfect(), plan);
        let mut out = Vec::new();
        det.try_detect_batch(&[5], &mut out).unwrap();
        det.try_detect_batch(&[6], &mut out).unwrap();
        assert_eq!(det.slow_calls(), 2);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_rate_panics() {
        let _ = FaultPlan::new(1).transient_rate(1.5);
    }
}
