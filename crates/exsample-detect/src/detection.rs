//! Detections: the output of an object detector on one frame.

use crate::bbox::BBox;
use crate::class::ObjectClass;
use crate::instance::InstanceId;
use exsample_video::FrameId;

/// One detection produced by an object detector.
#[derive(Debug, Clone, PartialEq)]
pub struct Detection {
    /// Bounding box of the detection in normalised frame coordinates.
    pub bbox: BBox,
    /// Predicted object class.
    pub class: ObjectClass,
    /// Detector confidence score in `[0, 1]`.
    pub score: f64,
    /// Ground-truth instance this detection corresponds to, if any.
    ///
    /// Populated by the simulated detector so that experiments can compute exact
    /// recall; `None` for false positives.  A real detector would always report
    /// `None` here — nothing in the sampling pipeline reads this field, it exists
    /// purely for evaluation.
    pub truth: Option<InstanceId>,
}

impl Detection {
    /// Create a detection without ground-truth linkage.
    pub fn new(bbox: BBox, class: ObjectClass, score: f64) -> Self {
        Detection {
            bbox,
            class,
            score,
            truth: None,
        }
    }

    /// Create a detection linked to a ground-truth instance.
    pub fn with_truth(bbox: BBox, class: ObjectClass, score: f64, truth: InstanceId) -> Self {
        Detection {
            bbox,
            class,
            score,
            truth: Some(truth),
        }
    }

    /// Whether this detection is a false positive (only meaningful for simulated
    /// detections).
    pub fn is_false_positive(&self) -> bool {
        self.truth.is_none()
    }
}

/// All detections produced for a single frame.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameDetections {
    /// The frame the detector was run on.
    pub frame: FrameId,
    /// Detections in no particular order.
    pub detections: Vec<Detection>,
}

impl FrameDetections {
    /// Create an empty result for a frame.
    pub fn empty(frame: FrameId) -> Self {
        FrameDetections {
            frame,
            detections: Vec::new(),
        }
    }

    /// Create a result from a list of detections.
    pub fn new(frame: FrameId, detections: Vec<Detection>) -> Self {
        FrameDetections { frame, detections }
    }

    /// Number of detections.
    pub fn len(&self) -> usize {
        self.detections.len()
    }

    /// Whether the detector found nothing.
    pub fn is_empty(&self) -> bool {
        self.detections.is_empty()
    }

    /// Iterate over detections of a given class.
    pub fn of_class<'a>(
        &'a self,
        class: &'a ObjectClass,
    ) -> impl Iterator<Item = &'a Detection> + 'a {
        self.detections.iter().filter(move |d| &d.class == class)
    }

    /// Keep only detections whose score is at least `threshold`.
    pub fn filter_by_score(&self, threshold: f64) -> FrameDetections {
        FrameDetections {
            frame: self.frame,
            detections: self
                .detections
                .iter()
                .filter(|d| d.score >= threshold)
                .cloned()
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(class: &str, score: f64) -> Detection {
        Detection::new(
            BBox::new(0.1, 0.1, 0.2, 0.2),
            ObjectClass::from(class),
            score,
        )
    }

    #[test]
    fn of_class_filters() {
        let fd = FrameDetections::new(5, vec![det("car", 0.9), det("bus", 0.8), det("car", 0.7)]);
        let car = ObjectClass::from("car");
        assert_eq!(fd.of_class(&car).count(), 2);
        assert_eq!(fd.len(), 3);
        assert!(!fd.is_empty());
    }

    #[test]
    fn filter_by_score() {
        let fd = FrameDetections::new(5, vec![det("car", 0.9), det("car", 0.3)]);
        let kept = fd.filter_by_score(0.5);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept.frame, 5);
    }

    #[test]
    fn false_positive_flag() {
        let fp = det("car", 0.5);
        assert!(fp.is_false_positive());
        let tp = Detection::with_truth(
            BBox::new(0.0, 0.0, 0.1, 0.1),
            ObjectClass::from("car"),
            0.9,
            InstanceId(3),
        );
        assert!(!tp.is_false_positive());
        assert_eq!(tp.truth, Some(InstanceId(3)));
    }

    #[test]
    fn empty_frame_result() {
        let fd = FrameDetections::empty(42);
        assert!(fd.is_empty());
        assert_eq!(fd.frame, 42);
    }
}
