//! Object detectors: the trait and its simulated implementations.
//!
//! ExSample regards the detector as "a black box with a costly runtime" (Section
//! II-A).  The [`Detector`] trait captures the only interface the sampling loop
//! needs — frame id in, detections out — so a real GPU-backed detector could be
//! dropped in behind it.  The two provided implementations drive that interface
//! from ground truth:
//!
//! * [`PerfectDetector`] reports exactly the ground-truth boxes for every visible
//!   instance.  Used for controlled simulations (Figures 2–4) where detector noise
//!   would only obscure the sampling behaviour under study.
//! * [`SimulatedDetector`] adds the imperfections of a real detector: per-instance
//!   misses, spurious false-positive boxes and localisation jitter.  Crucially it is
//!   **deterministic per frame** — running the detector twice on the same frame
//!   yields identical detections, just like re-running a real (deterministic) neural
//!   network on the same pixels would.

use crate::bbox::BBox;
use crate::class::ObjectClass;
use crate::detection::{Detection, FrameDetections};
use crate::ground_truth::GroundTruth;
use exsample_rand::SeedSequence;
use exsample_video::FrameId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::sync::Arc;

/// A typed detection failure from the fallible [`Detector::try_detect_batch`]
/// entry point.
///
/// Real inference backends fail in two qualitatively different ways, and the
/// retry machinery upstream needs to tell them apart:
///
/// * [`DetectError::Transient`] — the *call* failed (a timeout, an exhausted
///   queue, a dropped connection).  Retrying the same frame may succeed.
/// * [`DetectError::Permanent`] — the *frame* fails (corrupt input, an
///   unservable request).  Every retry will fail the same way; callers should
///   give up on the frame immediately.
///
/// Both variants name the offending frame so engines can attribute the
/// failure, retry at frame granularity, and report degraded runs precisely.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DetectError {
    /// A transient failure: retrying the same frame may succeed.
    Transient {
        /// The frame whose detection attempt failed.
        frame: FrameId,
        /// Backend-specific description of the failure.
        message: String,
    },
    /// A permanent failure: retrying the same frame will fail again.
    Permanent {
        /// The frame whose detection attempt failed.
        frame: FrameId,
        /// Backend-specific description of the failure.
        message: String,
    },
}

impl DetectError {
    /// The frame whose detection attempt failed.
    pub fn frame(&self) -> FrameId {
        match self {
            DetectError::Transient { frame, .. } | DetectError::Permanent { frame, .. } => *frame,
        }
    }

    /// Whether retrying the same frame may succeed.
    pub fn is_transient(&self) -> bool {
        matches!(self, DetectError::Transient { .. })
    }
}

impl fmt::Display for DetectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DetectError::Transient { frame, message } => {
                write!(f, "transient detection failure on frame {frame}: {message}")
            }
            DetectError::Permanent { frame, message } => {
                write!(f, "permanent detection failure on frame {frame}: {message}")
            }
        }
    }
}

impl std::error::Error for DetectError {}

/// An object detector restricted to one class of interest.
///
/// Distinct-object queries target a single class ("find 20 traffic lights"), so the
/// detector interface is parameterised the same way: implementations only report
/// detections of the query class.
///
/// # Thread safety
///
/// `Detector` is `Send + Sync`: execution engines share one detector instance
/// across concurrently running shard workers (scoped threads), so detection
/// must be callable through `&self` from several threads at once.  Both
/// simulated implementations satisfy this for free — they are pure functions
/// of the frame id over immutable ground truth.  An implementation that keeps
/// interior state (an invocation counter, a GPU handle) must synchronise it
/// itself (atomics, a mutex); detection results must remain a deterministic
/// function of the frame id regardless of invocation order, which is the
/// property every engine determinism guarantee is built on.
pub trait Detector: Send + Sync {
    /// Run the detector on `frame` and return its detections of the query class.
    fn detect(&self, frame: FrameId) -> FrameDetections;

    /// Run the detector on a batch of frames, appending one [`FrameDetections`]
    /// per input frame to `out` (in input order).
    ///
    /// This is the invocation shape batched execution engines use: a GPU-backed
    /// implementation would submit the whole batch in one inference call.  The
    /// default implementation simply loops over [`Detector::detect`], which is
    /// exact for the simulated detectors (they are deterministic per frame, so
    /// batching cannot change any result).
    fn detect_batch(&self, frames: &[FrameId], out: &mut Vec<FrameDetections>) {
        out.reserve(frames.len());
        for &frame in frames {
            out.push(self.detect(frame));
        }
    }

    /// Fallible batched detection: the entry point execution engines use.
    ///
    /// A real inference backend can fail — a timeout, a lost connection, a
    /// corrupt frame — and a panic is the wrong vocabulary for that.  This
    /// method surfaces such failures as typed [`DetectError`]s so engines can
    /// retry, drop the frame, or quarantine the detector.  The default
    /// implementation wraps the infallible [`Detector::detect_batch`] path and
    /// never fails, so existing detectors keep working unchanged.
    ///
    /// On `Err` the contents of `out` are unspecified; callers must clear or
    /// discard the buffer before reusing it.  Implementations must stay
    /// deterministic: for a fixed internal state, whether a given
    /// (frame, attempt) fails may not depend on wall-clock time or on which
    /// thread issued the call (see [`crate::fault::FaultInjectingDetector`]
    /// for the reference fault schedule shape).
    fn try_detect_batch(
        &self,
        frames: &[FrameId],
        out: &mut Vec<FrameDetections>,
    ) -> Result<(), DetectError> {
        self.detect_batch(frames, out);
        Ok(())
    }

    /// The class this detector instance reports.
    fn class(&self) -> &ObjectClass;
}

/// Boxed detectors forward every method — including the fallible entry point
/// — so wrapping a `Box<dyn Detector>` (e.g. in a
/// [`crate::fault::FaultInjectingDetector`]) never silently reverts a method
/// to its infallible default.
impl<D: Detector + ?Sized> Detector for Box<D> {
    fn detect(&self, frame: FrameId) -> FrameDetections {
        (**self).detect(frame)
    }

    fn detect_batch(&self, frames: &[FrameId], out: &mut Vec<FrameDetections>) {
        (**self).detect_batch(frames, out);
    }

    fn try_detect_batch(
        &self,
        frames: &[FrameId],
        out: &mut Vec<FrameDetections>,
    ) -> Result<(), DetectError> {
        (**self).try_detect_batch(frames, out)
    }

    fn class(&self) -> &ObjectClass {
        (**self).class()
    }
}

/// A detector that reports the ground truth exactly.
#[derive(Debug, Clone)]
pub struct PerfectDetector {
    truth: Arc<GroundTruth>,
    class: ObjectClass,
}

impl PerfectDetector {
    /// Create a perfect detector for `class` over the given ground truth.
    pub fn new(truth: Arc<GroundTruth>, class: ObjectClass) -> Self {
        PerfectDetector { truth, class }
    }
}

impl Detector for PerfectDetector {
    fn detect(&self, frame: FrameId) -> FrameDetections {
        let detections = self
            .truth
            .visible_of_class_at(frame, &self.class)
            .into_iter()
            .map(|inst| {
                Detection::with_truth(
                    inst.bbox_at(frame).expect("instance visible at frame"),
                    self.class.clone(),
                    1.0,
                    inst.id(),
                )
            })
            .collect();
        FrameDetections::new(frame, detections)
    }

    fn class(&self) -> &ObjectClass {
        &self.class
    }
}

/// Noise configuration for [`SimulatedDetector`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorNoise {
    /// Probability that a visible instance is *missed* in a given frame, on top of
    /// the instance's own detectability.
    pub miss_rate: f64,
    /// Expected number of false-positive boxes per frame (drawn Poisson-like via a
    /// Bernoulli per candidate slot).
    pub false_positives_per_frame: f64,
    /// Standard deviation of the localisation jitter applied to box centres, as a
    /// fraction of frame size.
    pub localization_sigma: f64,
    /// Lowest confidence score assigned to a true-positive detection.
    pub min_true_score: f64,
}

impl Default for DetectorNoise {
    fn default() -> Self {
        DetectorNoise {
            miss_rate: 0.05,
            false_positives_per_frame: 0.02,
            localization_sigma: 0.01,
            min_true_score: 0.5,
        }
    }
}

impl DetectorNoise {
    /// No noise at all: behaves like [`PerfectDetector`] (modulo instance
    /// detectability).
    pub fn none() -> Self {
        DetectorNoise {
            miss_rate: 0.0,
            false_positives_per_frame: 0.0,
            localization_sigma: 0.0,
            min_true_score: 1.0,
        }
    }

    fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.miss_rate),
            "miss_rate must be a probability"
        );
        assert!(
            self.false_positives_per_frame >= 0.0,
            "false positive rate must be non-negative"
        );
        assert!(
            self.localization_sigma >= 0.0,
            "localisation sigma must be non-negative"
        );
        assert!((0.0..=1.0).contains(&self.min_true_score));
    }
}

/// A noisy, ground-truth-driven object detector.
#[derive(Debug, Clone)]
pub struct SimulatedDetector {
    truth: Arc<GroundTruth>,
    class: ObjectClass,
    noise: DetectorNoise,
    seeds: SeedSequence,
}

impl SimulatedDetector {
    /// Create a simulated detector.
    ///
    /// `seed` fixes the detector's noise pattern; the same seed always misses the
    /// same instances in the same frames.
    pub fn new(
        truth: Arc<GroundTruth>,
        class: ObjectClass,
        noise: DetectorNoise,
        seed: u64,
    ) -> Self {
        noise.validate();
        SimulatedDetector {
            truth,
            class,
            noise,
            seeds: SeedSequence::new(seed).derive("simulated-detector"),
        }
    }

    /// The noise configuration.
    pub fn noise(&self) -> DetectorNoise {
        self.noise
    }

    /// Deterministic per-frame RNG.
    fn frame_rng(&self, frame: FrameId) -> StdRng {
        StdRng::seed_from_u64(self.seeds.index(frame).seed())
    }
}

impl Detector for SimulatedDetector {
    fn detect(&self, frame: FrameId) -> FrameDetections {
        let mut rng = self.frame_rng(frame);
        let mut detections = Vec::new();

        for inst in self.truth.visible_of_class_at(frame, &self.class) {
            // The instance's own detectability models persistent difficulty (small
            // object, occlusion); the detector's miss rate models per-frame noise.
            let keep: f64 = rng.gen();
            let detect_prob = inst.detectability() * (1.0 - self.noise.miss_rate);
            if keep >= detect_prob {
                continue;
            }
            let truth_box = inst.bbox_at(frame).expect("instance visible at frame");
            let jitter = self.noise.localization_sigma;
            let bbox = if jitter > 0.0 {
                let dx = (rng.gen::<f64>() - 0.5) * 2.0 * jitter;
                let dy = (rng.gen::<f64>() - 0.5) * 2.0 * jitter;
                truth_box.translated(dx, dy).clamp_to_frame()
            } else {
                truth_box
            };
            let score =
                self.noise.min_true_score + rng.gen::<f64>() * (1.0 - self.noise.min_true_score);
            detections.push(Detection::with_truth(
                bbox,
                self.class.clone(),
                score,
                inst.id(),
            ));
        }

        // False positives: expected count is small (well below one per frame), so a
        // simple two-slot Bernoulli scheme reproduces the expectation exactly while
        // staying deterministic per frame.
        let mut fp_budget = self.noise.false_positives_per_frame;
        while fp_budget > 0.0 {
            let p = fp_budget.min(1.0);
            if rng.gen::<f64>() < p {
                let bbox = BBox::from_center(
                    rng.gen::<f64>(),
                    rng.gen::<f64>(),
                    0.02 + rng.gen::<f64>() * 0.1,
                    0.02 + rng.gen::<f64>() * 0.1,
                )
                .clamp_to_frame();
                let score = self.noise.min_true_score * rng.gen::<f64>();
                detections.push(Detection::new(bbox, self.class.clone(), score));
            }
            fp_budget -= 1.0;
        }

        FrameDetections::new(frame, detections)
    }

    fn class(&self) -> &ObjectClass {
        &self.class
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::ObjectInstance;

    fn truth() -> Arc<GroundTruth> {
        Arc::new(GroundTruth::from_instances(
            10_000,
            vec![
                ObjectInstance::simple(0, "car", 0, 999),
                ObjectInstance::simple(1, "car", 500, 1_499),
                ObjectInstance::simple(2, "bus", 500, 1_499),
            ],
        ))
    }

    #[test]
    fn perfect_detector_reports_all_visible_instances_of_class() {
        let det = PerfectDetector::new(truth(), ObjectClass::from("car"));
        assert_eq!(det.detect(750).len(), 2);
        assert_eq!(det.detect(100).len(), 1);
        assert_eq!(det.detect(2_000).len(), 0);
        assert_eq!(det.class().name(), "car");
        // Ground-truth linkage is populated.
        assert!(det.detect(750).detections.iter().all(|d| d.truth.is_some()));
    }

    #[test]
    fn detect_batch_matches_per_frame_detection() {
        let det = SimulatedDetector::new(
            truth(),
            ObjectClass::from("car"),
            DetectorNoise::default(),
            17,
        );
        let frames = [750u64, 100, 2_000, 750];
        let mut batched = Vec::new();
        det.detect_batch(&frames, &mut batched);
        assert_eq!(batched.len(), frames.len());
        for (&frame, result) in frames.iter().zip(&batched) {
            assert_eq!(result, &det.detect(frame), "frame {frame}");
        }
    }

    #[test]
    fn simulated_detector_is_deterministic_per_frame() {
        let det = SimulatedDetector::new(
            truth(),
            ObjectClass::from("car"),
            DetectorNoise::default(),
            42,
        );
        let a = det.detect(750);
        let b = det.detect(750);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_give_different_noise() {
        let noisy = DetectorNoise {
            miss_rate: 0.5,
            ..DetectorNoise::default()
        };
        let det_a = SimulatedDetector::new(truth(), ObjectClass::from("car"), noisy, 1);
        let det_b = SimulatedDetector::new(truth(), ObjectClass::from("car"), noisy, 2);
        // Over many frames the two seeds should not produce identical outcomes.
        let mut differ = false;
        for frame in 500..600 {
            if det_a.detect(frame).len() != det_b.detect(frame).len() {
                differ = true;
                break;
            }
        }
        assert!(differ);
    }

    #[test]
    fn zero_noise_matches_perfect_detector_counts() {
        let det =
            SimulatedDetector::new(truth(), ObjectClass::from("car"), DetectorNoise::none(), 7);
        let perfect = PerfectDetector::new(truth(), ObjectClass::from("car"));
        for frame in [0u64, 400, 750, 1_200, 5_000] {
            assert_eq!(
                det.detect(frame).len(),
                perfect.detect(frame).len(),
                "frame {frame}"
            );
        }
    }

    #[test]
    fn miss_rate_reduces_detections() {
        let lossy = SimulatedDetector::new(
            truth(),
            ObjectClass::from("car"),
            DetectorNoise {
                miss_rate: 0.9,
                false_positives_per_frame: 0.0,
                localization_sigma: 0.0,
                min_true_score: 0.5,
            },
            3,
        );
        let total: usize = (0..1_000u64).map(|f| lossy.detect(f).len()).sum();
        // Perfect detection over frames 0..1000 of instance 0 (plus instance 1 after
        // frame 500) would be ~1500 detections; with 90% misses expect ~150.
        assert!(total < 400, "total detections {total}");
        assert!(total > 20, "total detections {total}");
    }

    #[test]
    fn false_positives_have_no_truth_link() {
        let fp_only = SimulatedDetector::new(
            truth(),
            ObjectClass::from("car"),
            DetectorNoise {
                miss_rate: 1.0,
                false_positives_per_frame: 0.5,
                localization_sigma: 0.0,
                min_true_score: 0.5,
            },
            9,
        );
        let mut saw_fp = false;
        for frame in 0..200u64 {
            for d in &fp_only.detect(frame).detections {
                assert!(d.is_false_positive());
                saw_fp = true;
            }
        }
        assert!(saw_fp, "expected at least one false positive in 200 frames");
    }

    #[test]
    fn localisation_jitter_moves_boxes_but_keeps_overlap() {
        let jittery = SimulatedDetector::new(
            truth(),
            ObjectClass::from("car"),
            DetectorNoise {
                miss_rate: 0.0,
                false_positives_per_frame: 0.0,
                localization_sigma: 0.02,
                min_true_score: 0.5,
            },
            11,
        );
        let perfect = PerfectDetector::new(truth(), ObjectClass::from("car"));
        let noisy_box = jittery.detect(100).detections[0].bbox;
        let true_box = perfect.detect(100).detections[0].bbox;
        assert!(
            noisy_box.iou(&true_box) > 0.5,
            "jittered box should still overlap heavily"
        );
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_noise_panics() {
        let _ = SimulatedDetector::new(
            truth(),
            ObjectClass::from("car"),
            DetectorNoise {
                miss_rate: 1.5,
                ..DetectorNoise::default()
            },
            1,
        );
    }
}
