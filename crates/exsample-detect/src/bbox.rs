//! Axis-aligned bounding boxes in normalised image coordinates.

/// An axis-aligned bounding box.
///
/// Coordinates are normalised to the frame: `(0, 0)` is the top-left corner and
/// `(1, 1)` the bottom-right, so boxes are resolution-independent.  Boxes produced
/// by motion models or localisation noise may poke slightly outside the frame; the
/// IoU arithmetic still works, and [`BBox::clamp_to_frame`] is available when a
/// strictly in-frame box is required.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BBox {
    /// Left edge.
    pub x: f64,
    /// Top edge.
    pub y: f64,
    /// Width (must be >= 0).
    pub w: f64,
    /// Height (must be >= 0).
    pub h: f64,
}

impl BBox {
    /// Create a box from its top-left corner and size.
    ///
    /// # Panics
    /// Panics if width or height is negative or non-finite.
    pub fn new(x: f64, y: f64, w: f64, h: f64) -> Self {
        assert!(w.is_finite() && h.is_finite() && x.is_finite() && y.is_finite());
        assert!(w >= 0.0 && h >= 0.0, "box dimensions must be non-negative");
        BBox { x, y, w, h }
    }

    /// Create a box from its centre point and size.
    pub fn from_center(cx: f64, cy: f64, w: f64, h: f64) -> Self {
        BBox::new(cx - w / 2.0, cy - h / 2.0, w, h)
    }

    /// Right edge.
    pub fn x2(&self) -> f64 {
        self.x + self.w
    }

    /// Bottom edge.
    pub fn y2(&self) -> f64 {
        self.y + self.h
    }

    /// Centre point `(cx, cy)`.
    pub fn center(&self) -> (f64, f64) {
        (self.x + self.w / 2.0, self.y + self.h / 2.0)
    }

    /// Area of the box.
    pub fn area(&self) -> f64 {
        self.w * self.h
    }

    /// Area of the intersection with another box.
    pub fn intersection_area(&self, other: &BBox) -> f64 {
        let ix = (self.x2().min(other.x2()) - self.x.max(other.x)).max(0.0);
        let iy = (self.y2().min(other.y2()) - self.y.max(other.y)).max(0.0);
        ix * iy
    }

    /// Intersection over union with another box, in `[0, 1]`.
    ///
    /// Two degenerate (zero-area) boxes have IoU 0 by convention.
    pub fn iou(&self, other: &BBox) -> f64 {
        let inter = self.intersection_area(other);
        let union = self.area() + other.area() - inter;
        if union <= 0.0 {
            0.0
        } else {
            inter / union
        }
    }

    /// Whether this box overlaps the other at all.
    pub fn overlaps(&self, other: &BBox) -> bool {
        self.intersection_area(other) > 0.0
    }

    /// Euclidean distance between box centres.
    pub fn center_distance(&self, other: &BBox) -> f64 {
        let (ax, ay) = self.center();
        let (bx, by) = other.center();
        ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
    }

    /// Translate the box by `(dx, dy)`.
    pub fn translated(&self, dx: f64, dy: f64) -> BBox {
        BBox {
            x: self.x + dx,
            y: self.y + dy,
            ..*self
        }
    }

    /// Scale width and height by `factor` around the box centre.
    pub fn scaled(&self, factor: f64) -> BBox {
        assert!(factor >= 0.0, "scale factor must be non-negative");
        let (cx, cy) = self.center();
        BBox::from_center(cx, cy, self.w * factor, self.h * factor)
    }

    /// Clamp the box to the unit frame `[0, 1] x [0, 1]`.
    pub fn clamp_to_frame(&self) -> BBox {
        let x1 = self.x.clamp(0.0, 1.0);
        let y1 = self.y.clamp(0.0, 1.0);
        let x2 = self.x2().clamp(0.0, 1.0);
        let y2 = self.y2().clamp(0.0, 1.0);
        BBox::new(x1, y1, (x2 - x1).max(0.0), (y2 - y1).max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iou_of_identical_boxes_is_one() {
        let b = BBox::new(0.1, 0.2, 0.3, 0.4);
        assert!((b.iou(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn iou_of_disjoint_boxes_is_zero() {
        let a = BBox::new(0.0, 0.0, 0.2, 0.2);
        let b = BBox::new(0.5, 0.5, 0.2, 0.2);
        assert_eq!(a.iou(&b), 0.0);
        assert!(!a.overlaps(&b));
    }

    #[test]
    fn iou_of_half_overlapping_boxes() {
        // Two unit-area squares offset by half their width: intersection 0.5,
        // union 1.5, IoU = 1/3.
        let a = BBox::new(0.0, 0.0, 1.0, 1.0);
        let b = BBox::new(0.5, 0.0, 1.0, 1.0);
        assert!((a.iou(&b) - 1.0 / 3.0).abs() < 1e-12);
        assert!(a.overlaps(&b));
    }

    #[test]
    fn iou_is_symmetric() {
        let a = BBox::new(0.1, 0.1, 0.4, 0.3);
        let b = BBox::new(0.3, 0.2, 0.35, 0.4);
        assert!((a.iou(&b) - b.iou(&a)).abs() < 1e-15);
    }

    #[test]
    fn degenerate_boxes_have_zero_iou() {
        let a = BBox::new(0.5, 0.5, 0.0, 0.0);
        let b = BBox::new(0.5, 0.5, 0.0, 0.0);
        assert_eq!(a.iou(&b), 0.0);
    }

    #[test]
    fn from_center_round_trips() {
        let b = BBox::from_center(0.5, 0.5, 0.2, 0.1);
        let (cx, cy) = b.center();
        assert!((cx - 0.5).abs() < 1e-12);
        assert!((cy - 0.5).abs() < 1e-12);
        assert!((b.x - 0.4).abs() < 1e-12);
        assert!((b.y - 0.45).abs() < 1e-12);
    }

    #[test]
    fn translated_and_scaled() {
        let b = BBox::new(0.2, 0.2, 0.2, 0.2);
        let t = b.translated(0.1, -0.1);
        assert!((t.x - 0.3).abs() < 1e-12);
        assert!((t.y - 0.1).abs() < 1e-12);
        let s = b.scaled(2.0);
        assert!((s.area() - 4.0 * b.area()).abs() < 1e-12);
        let (c0, c1) = b.center();
        let (s0, s1) = s.center();
        assert!((c0 - s0).abs() < 1e-12 && (c1 - s1).abs() < 1e-12);
    }

    #[test]
    fn clamp_to_frame() {
        let b = BBox::new(-0.1, 0.9, 0.3, 0.3).clamp_to_frame();
        assert!(b.x >= 0.0 && b.y >= 0.0);
        assert!(b.x2() <= 1.0 + 1e-12 && b.y2() <= 1.0 + 1e-12);
    }

    #[test]
    fn center_distance() {
        let a = BBox::from_center(0.0, 0.0, 0.1, 0.1);
        let b = BBox::from_center(0.3, 0.4, 0.1, 0.1);
        assert!((a.center_distance(&b) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_width_panics() {
        let _ = BBox::new(0.0, 0.0, -0.1, 0.1);
    }
}
