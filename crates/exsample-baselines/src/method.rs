//! The common interface all sampling methods implement.

use exsample_track::MatchOutcome;
use exsample_video::FrameId;
use rand::RngCore;

/// A method for choosing which frame of the repository to process next.
///
/// The query runner repeatedly asks for the next frame, runs the detector and
/// discriminator on it, and feeds the discriminator's verdict back to the method.
/// Baselines that do not adapt (sequential, random, proxy order) simply ignore the
/// feedback; ExSample uses it to update its per-chunk statistics.
///
/// The RNG is taken as a `&mut dyn RngCore` trait object (rather than a generic
/// parameter) so the trait stays object-safe end to end: execution engines hold
/// methods, policies *and* their RNG streams behind `dyn` pointers.
pub trait SamplingMethod {
    /// A short human-readable name, used in experiment tables ("exsample",
    /// "random", "random+", "proxy", "sequential").
    fn name(&self) -> &'static str;

    /// Number of frames that must be *scanned* (decoded and scored, but not run
    /// through the full object detector) before the method can produce its first
    /// frame.  Zero for every method except the proxy baseline, whose defining
    /// cost is the upfront full-dataset scoring pass (Section V-B).
    fn upfront_scan_frames(&self) -> u64 {
        0
    }

    /// The next frame to process, or `None` when the method has exhausted the
    /// repository.
    fn next_frame(&mut self, rng: &mut dyn RngCore) -> Option<FrameId>;

    /// Feed back the discriminator outcome for a frame previously returned by
    /// [`SamplingMethod::next_frame`].
    fn record(&mut self, frame: FrameId, outcome: &MatchOutcome);
}

/// Mutable references forward to the referenced method, so an execution engine
/// can drive a method owned by its caller (who inspects it afterwards).
impl<M: SamplingMethod + ?Sized> SamplingMethod for &mut M {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn upfront_scan_frames(&self) -> u64 {
        (**self).upfront_scan_frames()
    }

    fn next_frame(&mut self, rng: &mut dyn RngCore) -> Option<FrameId> {
        (**self).next_frame(rng)
    }

    fn record(&mut self, frame: FrameId, outcome: &MatchOutcome) {
        (**self).record(frame, outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal implementation used to exercise the trait's default method.
    struct Fixed(Vec<FrameId>);

    impl SamplingMethod for Fixed {
        fn name(&self) -> &'static str {
            "fixed"
        }
        fn next_frame(&mut self, _rng: &mut dyn RngCore) -> Option<FrameId> {
            self.0.pop()
        }
        fn record(&mut self, _frame: FrameId, _outcome: &MatchOutcome) {}
    }

    #[test]
    fn default_upfront_scan_is_zero() {
        let m = Fixed(vec![1, 2, 3]);
        assert_eq!(m.upfront_scan_frames(), 0);
        assert_eq!(m.name(), "fixed");
    }

    #[test]
    fn trait_object_is_usable() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut m: Box<dyn SamplingMethod> = Box::new(Fixed(vec![7]));
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(m.next_frame(&mut rng), Some(7));
        assert_eq!(m.next_frame(&mut rng), None);
    }
}
