//! ExSample adapted to the [`SamplingMethod`] interface.
//!
//! This is a thin wrapper over [`exsample_core::ExSample`]: it translates the
//! sampler's `(chunk, offset)` picks into global frame ids using the dataset's
//! chunking, and routes discriminator feedback back to the chunk the frame was
//! sampled from.

use crate::method::SamplingMethod;
use exsample_core::{ExSample, ExSampleConfig};
use exsample_track::MatchOutcome;
use exsample_video::{Chunking, FrameId};
use rand::rngs::StdRng;
use std::collections::HashMap;

/// The ExSample algorithm behind the common sampling-method interface.
#[derive(Debug, Clone)]
pub struct ExSampleMethod {
    sampler: ExSample,
    chunk_starts: Vec<u64>,
    chunk_ends: Vec<u64>,
    /// Frames handed out but not yet recorded, mapped to the chunk they came from.
    pending: HashMap<FrameId, usize>,
}

impl ExSampleMethod {
    /// Create the method from a configuration and a chunking of the repository.
    pub fn new(config: ExSampleConfig, chunking: &Chunking) -> Self {
        let sampler = ExSample::new(config, &chunking.chunk_lengths());
        ExSampleMethod {
            sampler,
            chunk_starts: chunking.chunks().iter().map(|c| c.start()).collect(),
            chunk_ends: chunking.chunks().iter().map(|c| c.end()).collect(),
            pending: HashMap::new(),
        }
    }

    /// Create the method with the paper's default configuration.
    pub fn with_defaults(chunking: &Chunking) -> Self {
        ExSampleMethod::new(ExSampleConfig::default(), chunking)
    }

    /// Wrap an existing, already-configured sampler.
    ///
    /// # Panics
    /// Panics if the sampler's chunk count does not match the chunking.
    pub fn from_sampler(sampler: ExSample, chunking: &Chunking) -> Self {
        assert_eq!(
            sampler.chunk_count(),
            chunking.len(),
            "sampler and chunking disagree on the number of chunks"
        );
        ExSampleMethod {
            sampler,
            chunk_starts: chunking.chunks().iter().map(|c| c.start()).collect(),
            chunk_ends: chunking.chunks().iter().map(|c| c.end()).collect(),
            pending: HashMap::new(),
        }
    }

    /// Access the underlying sampler (e.g. to inspect per-chunk statistics).
    pub fn sampler(&self) -> &ExSample {
        &self.sampler
    }

    /// Which chunk a global frame id belongs to.
    fn chunk_of(&self, frame: FrameId) -> usize {
        match self.chunk_ends.partition_point(|&end| end <= frame) {
            idx if idx < self.chunk_starts.len() && frame >= self.chunk_starts[idx] => idx,
            _ => panic!("frame {frame} is not covered by the chunking"),
        }
    }
}

impl SamplingMethod for ExSampleMethod {
    fn name(&self) -> &'static str {
        "exsample"
    }

    fn next_frame(&mut self, rng: &mut StdRng) -> Option<FrameId> {
        let pick = self.sampler.next_frame(rng)?;
        let frame = self.chunk_starts[pick.chunk] + pick.offset;
        self.pending.insert(frame, pick.chunk);
        Some(frame)
    }

    fn record(&mut self, frame: FrameId, outcome: &MatchOutcome) {
        // Prefer the recorded pick (robust even if two chunks were ever to share a
        // frame id); fall back to locating the chunk from the frame id so that the
        // method also accepts feedback about frames it did not itself produce.
        let chunk = self
            .pending
            .remove(&frame)
            .unwrap_or_else(|| self.chunk_of(frame));
        self.sampler.record(chunk, outcome.n1_delta());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exsample_detect::{BBox, Detection, ObjectClass};
    use exsample_video::{Chunking, ChunkingPolicy, VideoRepository};
    use rand::SeedableRng;

    fn chunking(frames: u64, chunks: u32) -> Chunking {
        let repo = VideoRepository::single_clip(frames);
        Chunking::new(&repo, ChunkingPolicy::FixedCount { chunks })
    }

    fn new_object_outcome() -> MatchOutcome {
        MatchOutcome {
            new: vec![Detection::new(
                BBox::new(0.1, 0.1, 0.1, 0.1),
                ObjectClass::from("car"),
                0.9,
            )],
            matched_once: Vec::new(),
            matched_more: Vec::new(),
        }
    }

    #[test]
    fn frames_are_global_ids_within_the_repository() {
        let chunking = chunking(1_000, 10);
        let mut method = ExSampleMethod::with_defaults(&chunking);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let frame = method.next_frame(&mut rng).unwrap();
            assert!(frame < 1_000);
            method.record(frame, &MatchOutcome::default());
        }
        assert_eq!(method.sampler().stats().total_samples(), 200);
    }

    #[test]
    fn feedback_reaches_the_correct_chunk() {
        let chunking = chunking(1_000, 4);
        let mut method = ExSampleMethod::with_defaults(&chunking);
        let mut rng = StdRng::seed_from_u64(2);
        // Reward only frames from the last chunk (frames >= 750).
        for _ in 0..300 {
            let frame = method.next_frame(&mut rng).unwrap();
            let outcome = if frame >= 750 {
                new_object_outcome()
            } else {
                MatchOutcome::default()
            };
            method.record(frame, &outcome);
        }
        let stats = method.sampler().stats();
        let last = stats.chunk(3).samples();
        assert!(
            last > stats.chunk(0).samples(),
            "adaptive sampling should favour the rewarded chunk: {:?}",
            (0..4).map(|j| stats.chunk(j).samples()).collect::<Vec<_>>()
        );
        assert!(stats.chunk(3).n1() > 0);
    }

    #[test]
    fn record_accepts_frames_without_pending_entry() {
        let chunking = chunking(100, 4);
        let mut method = ExSampleMethod::with_defaults(&chunking);
        // Frame 80 belongs to chunk 3 even though the method never produced it.
        method.record(80, &new_object_outcome());
        assert_eq!(method.sampler().stats().chunk(3).samples(), 1);
        assert_eq!(method.sampler().stats().chunk(3).n1(), 1);
    }

    #[test]
    fn exhausts_exactly_the_repository() {
        let chunking = chunking(64, 8);
        let mut method = ExSampleMethod::with_defaults(&chunking);
        let mut rng = StdRng::seed_from_u64(3);
        let mut count = 0;
        while let Some(frame) = method.next_frame(&mut rng) {
            method.record(frame, &MatchOutcome::default());
            count += 1;
        }
        assert_eq!(count, 64);
    }

    #[test]
    fn name_and_cost() {
        let chunking = chunking(10, 2);
        let method = ExSampleMethod::with_defaults(&chunking);
        assert_eq!(method.name(), "exsample");
        assert_eq!(method.upfront_scan_frames(), 0);
    }
}
