//! Naive sequential execution.
//!
//! "A straightforward method is to process frames sequentially, applying the object
//! detector on each frame of each video […] A natural extension is to sample only
//! one out of every n frames."  (Section II-B.)  Sequential execution exhibits high
//! variance: it can get stuck in long stretches of video with no objects, and
//! repeatedly detects the same long-lived object.

use crate::method::SamplingMethod;
use exsample_track::MatchOutcome;
use exsample_video::FrameId;
use rand::RngCore;

/// Process frames in temporal order, visiting one frame out of every `stride`.
#[derive(Debug, Clone)]
pub struct SequentialScan {
    total_frames: u64,
    stride: u64,
    next: u64,
}

impl SequentialScan {
    /// Scan every frame of a repository of `total_frames` frames.
    pub fn every_frame(total_frames: u64) -> Self {
        SequentialScan::with_stride(total_frames, 1)
    }

    /// Scan one frame out of every `stride` (e.g. `stride = 30` is one frame per
    /// second of 30 fps video).
    ///
    /// # Panics
    /// Panics if `stride == 0`.
    pub fn with_stride(total_frames: u64, stride: u64) -> Self {
        assert!(stride > 0, "stride must be positive");
        SequentialScan {
            total_frames,
            stride,
            next: 0,
        }
    }

    /// The stride between visited frames.
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// Number of frames this scan will visit in total.
    pub fn planned_frames(&self) -> u64 {
        if self.total_frames == 0 {
            0
        } else {
            (self.total_frames - 1) / self.stride + 1
        }
    }
}

impl SamplingMethod for SequentialScan {
    fn name(&self) -> &'static str {
        "sequential"
    }

    fn next_frame(&mut self, _rng: &mut dyn RngCore) -> Option<FrameId> {
        if self.next >= self.total_frames {
            return None;
        }
        let frame = self.next;
        self.next += self.stride;
        Some(frame)
    }

    fn record(&mut self, _frame: FrameId, _outcome: &MatchOutcome) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn visits_every_frame_in_order() {
        let mut scan = SequentialScan::every_frame(5);
        let mut rng = StdRng::seed_from_u64(1);
        let frames: Vec<FrameId> = std::iter::from_fn(|| scan.next_frame(&mut rng)).collect();
        assert_eq!(frames, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn stride_skips_frames() {
        let mut scan = SequentialScan::with_stride(10, 3);
        let mut rng = StdRng::seed_from_u64(1);
        let frames: Vec<FrameId> = std::iter::from_fn(|| scan.next_frame(&mut rng)).collect();
        assert_eq!(frames, vec![0, 3, 6, 9]);
        assert_eq!(SequentialScan::with_stride(10, 3).planned_frames(), 4);
    }

    #[test]
    fn empty_repository_yields_nothing() {
        let mut scan = SequentialScan::every_frame(0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(scan.next_frame(&mut rng), None);
        assert_eq!(scan.planned_frames(), 0);
    }

    #[test]
    fn no_upfront_cost() {
        assert_eq!(SequentialScan::every_frame(100).upfront_scan_frames(), 0);
        assert_eq!(SequentialScan::every_frame(100).name(), "sequential");
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn zero_stride_panics() {
        let _ = SequentialScan::with_stride(10, 0);
    }
}
