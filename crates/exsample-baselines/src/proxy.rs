//! A BlazeIt-style proxy-score baseline.
//!
//! Proxy-based systems (BlazeIt being the paper's representative) train a cheap
//! model per query, run it over **every frame** of the dataset to obtain a score,
//! and then process frames through the expensive detector in descending score
//! order.  Two properties matter for the comparison with ExSample:
//!
//! 1. the *upfront cost*: every frame must be decoded and scored before the first
//!    result can be produced (the paper measures ~100 fps for this scan, and
//!    Table I shows the scan alone often exceeds ExSample's total time);
//! 2. the *ordering quality*: a good proxy puts frames containing the object first,
//!    but not necessarily frames containing *new* objects — so even a perfect proxy
//!    keeps returning the same long-lived object.  BlazeIt mitigates this with a
//!    duplicate-avoidance heuristic (do not process frames too close to already
//!    processed ones), which is also modelled here.
//!
//! The simulated proxy scores a frame as (number of query-class instances visible)
//! plus Gaussian noise whose magnitude controls the proxy's quality.

use crate::method::SamplingMethod;
use exsample_detect::{GroundTruth, ObjectClass};
use exsample_rand::SeedSequence;
use exsample_track::MatchOutcome;
use exsample_video::FrameId;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::collections::BTreeSet;

/// Configuration of the simulated proxy baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProxyConfig {
    /// Standard deviation of the Gaussian noise added to the presence signal.
    /// `0.0` is a perfect proxy; around `0.5` is a realistic cheap model.
    pub score_noise: f64,
    /// Duplicate-avoidance gap in frames: frames within this distance of an
    /// already-processed frame are skipped.  `0` disables the heuristic.
    pub dedup_gap: u64,
    /// Seed for the proxy's score noise.
    pub seed: u64,
}

impl Default for ProxyConfig {
    fn default() -> Self {
        ProxyConfig {
            score_noise: 0.25,
            dedup_gap: 0,
            seed: 0,
        }
    }
}

/// The proxy-ordered sampling method.
#[derive(Debug, Clone)]
pub struct ProxyBaseline {
    /// Frame ids sorted by descending proxy score.
    order: Vec<FrameId>,
    /// Position of the next candidate in `order`.
    cursor: usize,
    /// Frames already emitted (for the duplicate-avoidance heuristic).
    emitted: BTreeSet<FrameId>,
    dedup_gap: u64,
    total_frames: u64,
}

impl ProxyBaseline {
    /// Build the proxy baseline for one query.
    ///
    /// Scoring every frame is exactly the upfront scan the real system performs;
    /// here it costs a pass over the ground-truth intervals plus a sort.
    pub fn new(truth: &GroundTruth, class: &ObjectClass, config: ProxyConfig) -> Self {
        let total_frames = truth.total_frames();
        assert!(
            total_frames > 0,
            "cannot build a proxy over an empty repository"
        );
        let mut scores = vec![0.0f32; total_frames as usize];
        for inst in truth.of_class(class) {
            for frame in inst.first_frame()..=inst.last_frame() {
                scores[frame as usize] += 1.0;
            }
        }
        if config.score_noise > 0.0 {
            let seed = SeedSequence::new(config.seed).derive("proxy-scores").seed();
            let mut rng = StdRng::seed_from_u64(seed);
            for s in &mut scores {
                // A cheap triangular approximation of Gaussian noise is plenty here
                // and avoids a per-frame Box-Muller in the scoring loop.
                let noise = (rng.gen::<f64>() + rng.gen::<f64>() - 1.0) * config.score_noise * 1.7;
                *s += noise as f32;
            }
        }
        let mut order: Vec<FrameId> = (0..total_frames).collect();
        order.sort_by(|&a, &b| {
            scores[b as usize]
                .partial_cmp(&scores[a as usize])
                .expect("scores are never NaN")
        });
        ProxyBaseline {
            order,
            cursor: 0,
            emitted: BTreeSet::new(),
            dedup_gap: config.dedup_gap,
            total_frames,
        }
    }

    /// Whether a frame is within the duplicate-avoidance gap of an emitted frame.
    fn is_blocked(&self, frame: FrameId) -> bool {
        if self.dedup_gap == 0 {
            return false;
        }
        let lo = frame.saturating_sub(self.dedup_gap);
        let hi = frame.saturating_add(self.dedup_gap);
        self.emitted.range(lo..=hi).next().is_some()
    }
}

impl SamplingMethod for ProxyBaseline {
    fn name(&self) -> &'static str {
        "proxy"
    }

    fn upfront_scan_frames(&self) -> u64 {
        self.total_frames
    }

    fn next_frame(&mut self, _rng: &mut dyn RngCore) -> Option<FrameId> {
        while self.cursor < self.order.len() {
            let frame = self.order[self.cursor];
            self.cursor += 1;
            if self.is_blocked(frame) {
                continue;
            }
            self.emitted.insert(frame);
            return Some(frame);
        }
        None
    }

    fn record(&mut self, _frame: FrameId, _outcome: &MatchOutcome) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use exsample_detect::ObjectInstance;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn truth() -> GroundTruth {
        GroundTruth::from_instances(
            10_000,
            vec![
                ObjectInstance::simple(0, "car", 1_000, 1_499),
                ObjectInstance::simple(1, "car", 7_000, 7_099),
                ObjectInstance::simple(2, "bus", 3_000, 3_999),
            ],
        )
    }

    #[test]
    fn perfect_proxy_visits_object_frames_first() {
        let truth = truth();
        let proxy = ProxyBaseline::new(
            &truth,
            &ObjectClass::from("car"),
            ProxyConfig {
                score_noise: 0.0,
                dedup_gap: 0,
                seed: 0,
            },
        );
        let mut proxy = proxy;
        let mut rng = StdRng::seed_from_u64(1);
        // The 600 car frames should be emitted before any non-car frame.
        let mut emitted = Vec::new();
        for _ in 0..600 {
            emitted.push(proxy.next_frame(&mut rng).unwrap());
        }
        assert!(emitted
            .iter()
            .all(|&f| (1_000..1_500).contains(&f) || (7_000..7_100).contains(&f)));
    }

    #[test]
    fn upfront_cost_is_the_full_dataset() {
        let truth = truth();
        let proxy = ProxyBaseline::new(&truth, &ObjectClass::from("car"), ProxyConfig::default());
        assert_eq!(proxy.upfront_scan_frames(), 10_000);
        assert_eq!(proxy.name(), "proxy");
    }

    #[test]
    fn noisy_proxy_still_prioritises_object_frames_on_average() {
        let truth = truth();
        let mut proxy = ProxyBaseline::new(
            &truth,
            &ObjectClass::from("car"),
            ProxyConfig {
                score_noise: 0.4,
                dedup_gap: 0,
                seed: 3,
            },
        );
        let mut rng = StdRng::seed_from_u64(1);
        let first_thousand: Vec<FrameId> = (0..1_000)
            .map(|_| proxy.next_frame(&mut rng).unwrap())
            .collect();
        let car_frames = first_thousand
            .iter()
            .filter(|&&f| (1_000..1_500).contains(&f) || (7_000..7_100).contains(&f))
            .count();
        // 600 of 10_000 frames contain cars; random order would put ~60 of them in
        // the first 1000. A noisy-but-useful proxy puts far more.
        assert!(
            car_frames > 300,
            "car frames in first 1000 picks: {car_frames}"
        );
    }

    #[test]
    fn dedup_gap_spreads_out_emitted_frames() {
        let truth = truth();
        let mut proxy = ProxyBaseline::new(
            &truth,
            &ObjectClass::from("car"),
            ProxyConfig {
                score_noise: 0.0,
                dedup_gap: 100,
                seed: 0,
            },
        );
        let mut rng = StdRng::seed_from_u64(1);
        let picks: Vec<FrameId> = (0..10)
            .map(|_| proxy.next_frame(&mut rng).unwrap())
            .collect();
        for (i, &a) in picks.iter().enumerate() {
            for &b in &picks[i + 1..] {
                assert!(a.abs_diff(b) > 100, "picks too close: {a} and {b}");
            }
        }
    }

    #[test]
    fn exhausts_every_frame_exactly_once_without_dedup() {
        let truth =
            GroundTruth::from_instances(500, vec![ObjectInstance::simple(0, "car", 10, 40)]);
        let mut proxy =
            ProxyBaseline::new(&truth, &ObjectClass::from("car"), ProxyConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = HashSet::new();
        while let Some(f) = proxy.next_frame(&mut rng) {
            assert!(seen.insert(f));
        }
        assert_eq!(seen.len(), 500);
    }

    #[test]
    fn feedback_is_ignored() {
        let truth = truth();
        let mut proxy =
            ProxyBaseline::new(&truth, &ObjectClass::from("car"), ProxyConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let a = proxy.next_frame(&mut rng).unwrap();
        proxy.record(a, &MatchOutcome::default());
        let b = proxy.next_frame(&mut rng).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "empty repository")]
    fn empty_repository_panics() {
        let truth = GroundTruth::new(0);
        let _ = ProxyBaseline::new(&truth, &ObjectClass::from("car"), ProxyConfig::default());
    }
}
