//! Uniform random and `random+` sampling over the whole repository.
//!
//! Uniform random sampling without replacement is the paper's efficient baseline:
//! "iteratively process frames uniformly sampled from the video repository (without
//! replacement)".  `random+` (Section III-F) additionally avoids sampling
//! temporally close to previous samples and is both evaluated as a separate
//! baseline and used inside ExSample's chunks.

use crate::method::SamplingMethod;
use exsample_track::MatchOutcome;
use exsample_video::{FrameId, FrameSampler, UniformSampler};
use rand::RngCore;

/// Uniform random sampling without replacement over `0..total_frames`.
#[derive(Debug, Clone)]
pub struct RandomSampler {
    inner: UniformSampler,
}

impl RandomSampler {
    /// Create a sampler over a repository of `total_frames` frames.
    pub fn new(total_frames: u64) -> Self {
        RandomSampler {
            inner: UniformSampler::new(total_frames),
        }
    }

    /// Frames not yet sampled.
    pub fn remaining(&self) -> u64 {
        self.inner.remaining()
    }
}

impl SamplingMethod for RandomSampler {
    fn name(&self) -> &'static str {
        "random"
    }

    fn next_frame(&mut self, rng: &mut dyn RngCore) -> Option<FrameId> {
        self.inner.next_frame(rng)
    }

    fn record(&mut self, _frame: FrameId, _outcome: &MatchOutcome) {}
}

/// `random+` sampling over the whole repository (Section III-F).
#[derive(Debug, Clone)]
pub struct RandomPlusSampler {
    inner: exsample_video::RandomPlusSampler,
}

impl RandomPlusSampler {
    /// Create a sampler over a repository of `total_frames` frames.
    pub fn new(total_frames: u64) -> Self {
        RandomPlusSampler {
            inner: exsample_video::RandomPlusSampler::new(total_frames),
        }
    }

    /// Frames not yet sampled.
    pub fn remaining(&self) -> u64 {
        self.inner.remaining()
    }
}

impl SamplingMethod for RandomPlusSampler {
    fn name(&self) -> &'static str {
        "random+"
    }

    fn next_frame(&mut self, rng: &mut dyn RngCore) -> Option<FrameId> {
        self.inner.next_frame(rng)
    }

    fn record(&mut self, _frame: FrameId, _outcome: &MatchOutcome) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    #[test]
    fn random_covers_repository_without_repeats() {
        let mut method = RandomSampler::new(500);
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = HashSet::new();
        while let Some(f) = method.next_frame(&mut rng) {
            assert!(f < 500);
            assert!(seen.insert(f));
        }
        assert_eq!(seen.len(), 500);
        assert_eq!(method.remaining(), 0);
    }

    #[test]
    fn random_plus_covers_repository_without_repeats() {
        let mut method = RandomPlusSampler::new(333);
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = HashSet::new();
        while let Some(f) = method.next_frame(&mut rng) {
            assert!(f < 333);
            assert!(seen.insert(f));
        }
        assert_eq!(seen.len(), 333);
    }

    #[test]
    fn names_and_costs() {
        assert_eq!(RandomSampler::new(10).name(), "random");
        assert_eq!(RandomPlusSampler::new(10).name(), "random+");
        assert_eq!(RandomSampler::new(10).upfront_scan_frames(), 0);
        assert_eq!(RandomPlusSampler::new(10).upfront_scan_frames(), 0);
    }

    #[test]
    fn feedback_is_ignored_without_effect() {
        let mut method = RandomSampler::new(50);
        let mut rng = StdRng::seed_from_u64(3);
        let before = method.remaining();
        method.record(7, &MatchOutcome::default());
        assert_eq!(method.remaining(), before);
        let _ = method.next_frame(&mut rng);
        assert_eq!(method.remaining(), before - 1);
    }
}
