//! # exsample-baselines
//!
//! The baselines ExSample is evaluated against (Section II-B and Section V of the
//! paper), all speaking a single [`SamplingMethod`] interface so the query runner
//! in `exsample-sim` can drive them interchangeably:
//!
//! * [`sequential::SequentialScan`] — naive execution: process frames in temporal
//!   order (optionally one out of every `k` frames).
//! * [`random::RandomSampler`] — uniform random sampling without replacement over
//!   the whole repository, the paper's main efficient baseline.
//! * [`random::RandomPlusSampler`] — the `random+` refinement (Section III-F)
//!   applied to the whole repository, evaluated separately as an ablation.
//! * [`proxy::ProxyBaseline`] — a BlazeIt-style proxy-score baseline: an upfront
//!   full-dataset scoring scan, then frames processed in descending proxy-score
//!   order with an optional duplicate-avoidance gap.
//!
//! ExSample itself speaks the engine-level `SamplingPolicy` interface directly
//! (see `exsample-engine`'s `ExSamplePolicy`); any [`SamplingMethod`] can be
//! lifted into that interface via the engine's `MethodPolicy` adapter.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod method;
pub mod proxy;
pub mod random;
pub mod sequential;

pub use method::SamplingMethod;
pub use proxy::{ProxyBaseline, ProxyConfig};
pub use random::{RandomPlusSampler, RandomSampler};
pub use sequential::SequentialScan;
