//! # exsample-baselines
//!
//! The baselines ExSample is evaluated against (Section II-B and Section V of the
//! paper), all speaking a single [`SamplingMethod`] interface so the query runner
//! in `exsample-sim` can drive them interchangeably:
//!
//! * [`sequential::SequentialScan`] — naive execution: process frames in temporal
//!   order (optionally one out of every `k` frames).
//! * [`random::RandomSampler`] — uniform random sampling without replacement over
//!   the whole repository, the paper's main efficient baseline.
//! * [`random::RandomPlusSampler`] — the `random+` refinement (Section III-F)
//!   applied to the whole repository, evaluated separately as an ablation.
//! * [`exsample_method::ExSampleMethod`] — the ExSample algorithm adapted to the
//!   same interface (a thin wrapper over `exsample-core`).
//! * [`proxy::ProxyBaseline`] — a BlazeIt-style proxy-score baseline: an upfront
//!   full-dataset scoring scan, then frames processed in descending proxy-score
//!   order with an optional duplicate-avoidance gap.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod exsample_method;
pub mod method;
pub mod proxy;
pub mod random;
pub mod sequential;

pub use exsample_method::ExSampleMethod;
pub use method::SamplingMethod;
pub use proxy::{ProxyBaseline, ProxyConfig};
pub use random::{RandomPlusSampler, RandomSampler};
pub use sequential::SequentialScan;
