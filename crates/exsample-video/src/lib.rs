//! # exsample-video
//!
//! A simulated video-repository substrate for the ExSample reproduction.
//!
//! ExSample (Moll et al., ICDE 2022) searches *un-indexed* video repositories: large
//! collections of video files ("clips") from dashcams, drones and fixed street
//! cameras.  The algorithm never inspects pixels itself — it asks the repository for
//! a frame, pays the cost of decoding it, and hands the decoded frame to an object
//! detector.  This crate models exactly that interface:
//!
//! * [`clip`] — a single encoded video file with a GOP (keyframe) structure that
//!   determines random-access decode cost.  The paper re-encodes its datasets with a
//!   keyframe every 20 frames to make random access cheap; the same parameter is
//!   exposed here.
//! * [`repository`] — an ordered collection of clips with a global frame index.
//! * [`chunk`] — partitioning the repository into the temporal chunks over which
//!   ExSample maintains its per-chunk statistics (20-minute chunks for long video,
//!   one chunk per clip for short-clip datasets like BDD).
//! * [`cost`] — the decode / IO cost model (sequential scan vs. random access).
//! * [`sampler`] — within-chunk frame samplers: uniform-without-replacement and the
//!   paper's `random+` hierarchical sampler (Section III-F).
//! * [`shard`] — partitioning the chunk axis across shards: [`ShardSpec`]
//!   (round-robin and contiguous-range partitioners with per-shard chunk index
//!   remapping), [`ShardedRepository`], and the shard-agnostic
//!   [`RepositoryAccess`] trait under which the monolithic repository is just
//!   the 1-shard case.
//!
//! Everything is deterministic given a seed and completely independent of any real
//! video codec: what matters for reproducing the paper is *which frame indexes are
//! read in which order and at what cost*, not the pixel contents.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod chunk;
pub mod clip;
pub mod cost;
pub mod repository;
pub mod sampler;
pub mod shard;

pub use chunk::{Chunk, ChunkId, Chunking, ChunkingPolicy};
pub use clip::{ClipId, VideoClip};
pub use cost::{DecodeCostModel, FrameCost};
pub use repository::{FrameRef, VideoRepository};
pub use sampler::{FrameSampler, RandomPlusSampler, UniformSampler};
pub use shard::{RepositoryAccess, ShardId, ShardPartitioner, ShardSpec, ShardedRepository};

/// A global frame index into a [`VideoRepository`].
///
/// Frames are numbered consecutively across clips in clip order, starting at zero.
pub type FrameId = u64;

/// Frames per second used throughout the paper's datasets (30 fps video).
pub const DEFAULT_FPS: f64 = 30.0;

/// The keyframe interval the paper re-encodes its video with ("we re-encode our
/// video data to insert keyframes every 20 frames").
pub const DEFAULT_GOP: u32 = 20;
