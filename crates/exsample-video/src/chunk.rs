//! Partitioning a video repository into temporal chunks.
//!
//! ExSample maintains one `(N1_j, n_j)` statistic pair per chunk and Thompson-samples
//! over chunks, so the chunking policy is the one structural knob the user chooses
//! ahead of time (Section IV-C studies its effect).  The paper uses:
//!
//! * 20-minute chunks for the long dashcam / static-camera datasets ("drives longer
//!   than 20 minutes are split into 20 minute chunks", "about 60 chunks" for each
//!   20-hour static-camera dataset);
//! * one chunk per clip for BDD, whose clips are under a minute long (1000 chunks);
//! * a fixed chunk count (e.g. 128) for the simulation experiments of Figures 3–4.

use crate::clip::VideoClip;
use crate::repository::VideoRepository;
use crate::FrameId;

/// Identifier of a chunk within a [`Chunking`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChunkId(pub u32);

impl std::fmt::Display for ChunkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "chunk{}", self.0)
    }
}

/// A contiguous range of global frames belonging to a single clip.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chunk {
    id: ChunkId,
    /// Index of the clip this chunk lies within.
    clip_index: usize,
    /// Global frame range `[start, end)`.
    start: FrameId,
    end: FrameId,
}

impl Chunk {
    /// Chunk identifier.
    pub fn id(&self) -> ChunkId {
        self.id
    }

    /// Index of the clip the chunk belongs to.
    pub fn clip_index(&self) -> usize {
        self.clip_index
    }

    /// First global frame id of the chunk.
    pub fn start(&self) -> FrameId {
        self.start
    }

    /// One-past-the-last global frame id of the chunk.
    pub fn end(&self) -> FrameId {
        self.end
    }

    /// Number of frames in the chunk.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Whether the chunk is empty (never true for chunks built by [`Chunking`]).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Whether the chunk contains the global frame id.
    pub fn contains(&self, frame: FrameId) -> bool {
        frame >= self.start && frame < self.end
    }

    /// The global frame range of the chunk.
    pub fn range(&self) -> std::ops::Range<FrameId> {
        self.start..self.end
    }
}

/// How to partition a repository into chunks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChunkingPolicy {
    /// Split every clip into chunks of at most this many seconds (the paper's
    /// default is 20 minutes = 1200 seconds).
    FixedDuration {
        /// Maximum chunk duration in seconds.
        seconds: f64,
    },
    /// Split every clip into chunks of at most this many frames.
    FixedFrames {
        /// Maximum chunk length in frames.
        frames: u64,
    },
    /// One chunk per clip (used for the BDD datasets, whose clips are short).
    PerClip,
    /// Split the whole repository into exactly this many equal-length chunks,
    /// ignoring clip boundaries (used by the Figure 3 / Figure 4 simulations, which
    /// model the repository as one long frame axis).
    FixedCount {
        /// Total number of chunks.
        chunks: u32,
    },
}

impl ChunkingPolicy {
    /// The paper's default for long video: 20-minute chunks.
    pub fn twenty_minutes() -> Self {
        ChunkingPolicy::FixedDuration { seconds: 1200.0 }
    }
}

/// A complete partition of a repository's frames into chunks.
#[derive(Debug, Clone)]
pub struct Chunking {
    chunks: Vec<Chunk>,
    policy: ChunkingPolicy,
}

impl Chunking {
    /// Partition `repo` according to `policy`.
    ///
    /// Every frame of the repository belongs to exactly one chunk and every chunk is
    /// non-empty.
    ///
    /// # Panics
    /// Panics if the repository is empty, if `FixedCount` requests zero chunks, or if
    /// a duration/frame bound is non-positive.
    pub fn new(repo: &VideoRepository, policy: ChunkingPolicy) -> Self {
        assert!(repo.total_frames() > 0, "cannot chunk an empty repository");
        let chunks = match policy {
            ChunkingPolicy::FixedDuration { seconds } => {
                assert!(seconds > 0.0, "chunk duration must be positive");
                Self::per_clip_split(repo, |clip| ((seconds * clip.fps()).floor() as u64).max(1))
            }
            ChunkingPolicy::FixedFrames { frames } => {
                assert!(frames > 0, "chunk frame bound must be positive");
                Self::per_clip_split(repo, |_| frames)
            }
            ChunkingPolicy::PerClip => Self::per_clip_split(repo, VideoClip::frame_count),
            ChunkingPolicy::FixedCount { chunks } => {
                assert!(chunks > 0, "chunk count must be positive");
                Self::fixed_count_split(repo, u64::from(chunks))
            }
        };
        Chunking { chunks, policy }
    }

    fn per_clip_split(repo: &VideoRepository, max_len: impl Fn(&VideoClip) -> u64) -> Vec<Chunk> {
        let mut chunks = Vec::new();
        for (clip_index, clip) in repo.clips().iter().enumerate() {
            let clip_start = repo.clip_offset(clip_index);
            let limit = max_len(clip).max(1);
            let mut local = 0u64;
            while local < clip.frame_count() {
                let len = limit.min(clip.frame_count() - local);
                let id = ChunkId(chunks.len() as u32);
                chunks.push(Chunk {
                    id,
                    clip_index,
                    start: clip_start + local,
                    end: clip_start + local + len,
                });
                local += len;
            }
        }
        chunks
    }

    fn fixed_count_split(repo: &VideoRepository, count: u64) -> Vec<Chunk> {
        let total = repo.total_frames();
        let count = count.min(total);
        let mut chunks = Vec::with_capacity(count as usize);
        for i in 0..count {
            // Near-equal split: sizes differ by at most one, with the
            // remainder frames landing on the later chunks.
            let start = i * total / count;
            let end = (i + 1) * total / count;
            let clip_index = repo.resolve(start).clip_index;
            chunks.push(Chunk {
                id: ChunkId(i as u32),
                clip_index,
                start,
                end,
            });
        }
        chunks
    }

    /// The chunking policy this partition was built with.
    pub fn policy(&self) -> ChunkingPolicy {
        self.policy
    }

    /// Number of chunks.
    pub fn len(&self) -> usize {
        self.chunks.len()
    }

    /// Whether there are no chunks (never true for a constructed chunking).
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// All chunks in temporal order.
    pub fn chunks(&self) -> &[Chunk] {
        &self.chunks
    }

    /// Look up a chunk by id.
    pub fn chunk(&self, id: ChunkId) -> &Chunk {
        &self.chunks[id.0 as usize]
    }

    /// The lengths (in frames) of every chunk, indexed by chunk id.
    pub fn chunk_lengths(&self) -> Vec<u64> {
        self.chunks.iter().map(Chunk::len).collect()
    }

    /// Find the chunk containing a global frame id.
    pub fn chunk_of_frame(&self, frame: FrameId) -> ChunkId {
        let idx = self.chunks.partition_point(|c| c.end <= frame);
        assert!(
            idx < self.chunks.len() && self.chunks[idx].contains(frame),
            "frame {frame} is not covered by any chunk"
        );
        self.chunks[idx].id()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clip::ClipId;

    fn repo() -> VideoRepository {
        VideoRepository::from_clips(vec![
            VideoClip::new(ClipId(0), "a", 100, 30.0, 20),
            VideoClip::new(ClipId(1), "b", 45, 30.0, 20),
            VideoClip::new(ClipId(2), "c", 250, 30.0, 20),
        ])
    }

    fn assert_partition(repo: &VideoRepository, chunking: &Chunking) {
        // Every frame covered exactly once, chunks non-empty and ordered.
        let mut covered = 0u64;
        let mut prev_end = 0;
        for chunk in chunking.chunks() {
            assert!(!chunk.is_empty());
            assert_eq!(chunk.start(), prev_end);
            prev_end = chunk.end();
            covered += chunk.len();
        }
        assert_eq!(prev_end, repo.total_frames());
        assert_eq!(covered, repo.total_frames());
    }

    #[test]
    fn per_clip_gives_one_chunk_per_clip() {
        let r = repo();
        let c = Chunking::new(&r, ChunkingPolicy::PerClip);
        assert_eq!(c.len(), 3);
        assert_partition(&r, &c);
        assert_eq!(c.chunk(ChunkId(1)).len(), 45);
        assert_eq!(c.chunk(ChunkId(1)).clip_index(), 1);
    }

    #[test]
    fn fixed_frames_splits_within_clips() {
        let r = repo();
        let c = Chunking::new(&r, ChunkingPolicy::FixedFrames { frames: 60 });
        // clip a: 60 + 40, clip b: 45, clip c: 60*4 + 10 -> total 2 + 1 + 5 = 8 chunks.
        assert_eq!(c.len(), 8);
        assert_partition(&r, &c);
        // No chunk crosses a clip boundary.
        for chunk in c.chunks() {
            let span = r.clip_span(chunk.clip_index());
            assert!(chunk.start() >= span.start && chunk.end() <= span.end);
        }
    }

    #[test]
    fn fixed_duration_converts_seconds_to_frames() {
        let r = repo();
        // 1 second at 30 fps = 30-frame chunks.
        let c = Chunking::new(&r, ChunkingPolicy::FixedDuration { seconds: 1.0 });
        assert_partition(&r, &c);
        assert!(c.chunks().iter().all(|ch| ch.len() <= 30));
    }

    #[test]
    fn fixed_count_splits_evenly() {
        let r = repo();
        let c = Chunking::new(&r, ChunkingPolicy::FixedCount { chunks: 7 });
        assert_eq!(c.len(), 7);
        assert_partition(&r, &c);
        let lengths = c.chunk_lengths();
        let min = *lengths.iter().min().unwrap();
        let max = *lengths.iter().max().unwrap();
        assert!(
            max - min <= 1,
            "fixed-count chunks should be within one frame of equal"
        );
    }

    #[test]
    fn fixed_count_never_exceeds_frame_count() {
        let r = VideoRepository::single_clip(5);
        let c = Chunking::new(&r, ChunkingPolicy::FixedCount { chunks: 100 });
        assert_eq!(c.len(), 5);
        assert_partition(&r, &c);
    }

    #[test]
    fn chunk_of_frame_finds_containing_chunk() {
        let r = repo();
        let c = Chunking::new(&r, ChunkingPolicy::FixedFrames { frames: 60 });
        for frame in 0..r.total_frames() {
            let id = c.chunk_of_frame(frame);
            assert!(c.chunk(id).contains(frame));
        }
    }

    #[test]
    fn twenty_minute_default_policy() {
        match ChunkingPolicy::twenty_minutes() {
            ChunkingPolicy::FixedDuration { seconds } => assert_eq!(seconds, 1200.0),
            other => panic!("unexpected policy {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "empty repository")]
    fn chunking_empty_repository_panics() {
        let r = VideoRepository::new();
        let _ = Chunking::new(&r, ChunkingPolicy::PerClip);
    }

    #[test]
    #[should_panic(expected = "chunk count must be positive")]
    fn zero_chunk_count_panics() {
        let r = repo();
        let _ = Chunking::new(&r, ChunkingPolicy::FixedCount { chunks: 0 });
    }

    #[test]
    fn chunk_display() {
        assert_eq!(ChunkId(4).to_string(), "chunk4");
    }
}
