//! A repository of video clips with a global frame index.

use crate::clip::{ClipId, VideoClip};
use crate::FrameId;

/// Resolution of a global frame id into (clip, local frame).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameRef {
    /// Which clip the frame belongs to.
    pub clip: ClipId,
    /// Index of the clip within the repository's clip list.
    pub clip_index: usize,
    /// Frame index within the clip (0-based).
    pub local_frame: u64,
    /// The original global frame id.
    pub global_frame: FrameId,
}

/// An ordered collection of video clips forming one searchable repository.
///
/// Global frame ids run consecutively across clips in insertion order; this is the
/// coordinate system in which chunks, ground-truth object instances and sampling
/// decisions are all expressed.
#[derive(Debug, Clone, Default)]
pub struct VideoRepository {
    clips: Vec<VideoClip>,
    /// `offsets[i]` is the global frame id of the first frame of `clips[i]`.
    offsets: Vec<FrameId>,
    total_frames: u64,
}

impl VideoRepository {
    /// Create an empty repository.
    pub fn new() -> Self {
        VideoRepository::default()
    }

    /// Create a repository from a list of clips.
    pub fn from_clips(clips: Vec<VideoClip>) -> Self {
        let mut repo = VideoRepository::new();
        for clip in clips {
            repo.push_clip(clip);
        }
        repo
    }

    /// Convenience constructor: a repository consisting of a single clip of
    /// `frame_count` frames with default encoding parameters.
    pub fn single_clip(frame_count: u64) -> Self {
        VideoRepository::from_clips(vec![VideoClip::with_defaults(
            ClipId(0),
            "clip0",
            frame_count,
        )])
    }

    /// Append a clip to the repository.
    pub fn push_clip(&mut self, clip: VideoClip) {
        self.offsets.push(self.total_frames);
        self.total_frames += clip.frame_count();
        self.clips.push(clip);
    }

    /// Number of clips.
    pub fn clip_count(&self) -> usize {
        self.clips.len()
    }

    /// All clips in order.
    pub fn clips(&self) -> &[VideoClip] {
        &self.clips
    }

    /// Total number of frames across all clips.
    pub fn total_frames(&self) -> u64 {
        self.total_frames
    }

    /// Total duration of the repository in seconds.
    pub fn total_duration_secs(&self) -> f64 {
        self.clips.iter().map(VideoClip::duration_secs).sum()
    }

    /// Total duration of the repository in hours.
    pub fn total_duration_hours(&self) -> f64 {
        self.total_duration_secs() / 3600.0
    }

    /// The global frame id of the first frame of clip `index`.
    pub fn clip_offset(&self, index: usize) -> FrameId {
        self.offsets[index]
    }

    /// The global frame range covered by clip `index`.
    pub fn clip_span(&self, index: usize) -> std::ops::Range<FrameId> {
        self.clips[index].span(self.offsets[index])
    }

    /// Resolve a global frame id into a [`FrameRef`].
    ///
    /// # Panics
    /// Panics if `frame` is out of range.
    pub fn resolve(&self, frame: FrameId) -> FrameRef {
        assert!(
            frame < self.total_frames,
            "frame {frame} out of range (repository has {} frames)",
            self.total_frames
        );
        // Binary search over clip offsets: partition_point returns the first clip
        // whose offset is greater than `frame`, so the containing clip is one less.
        let idx = self.offsets.partition_point(|&off| off <= frame) - 1;
        FrameRef {
            clip: self.clips[idx].id(),
            clip_index: idx,
            local_frame: frame - self.offsets[idx],
            global_frame: frame,
        }
    }

    /// Number of frames that must be decoded to materialise `frame` via random
    /// access (see [`VideoClip::random_access_decode_frames`]).
    pub fn random_access_decode_frames(&self, frame: FrameId) -> u64 {
        let r = self.resolve(frame);
        self.clips[r.clip_index].random_access_decode_frames(r.local_frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repo() -> VideoRepository {
        VideoRepository::from_clips(vec![
            VideoClip::with_defaults(ClipId(0), "a", 100),
            VideoClip::with_defaults(ClipId(1), "b", 50),
            VideoClip::with_defaults(ClipId(2), "c", 200),
        ])
    }

    #[test]
    fn total_frames_and_offsets() {
        let r = repo();
        assert_eq!(r.total_frames(), 350);
        assert_eq!(r.clip_offset(0), 0);
        assert_eq!(r.clip_offset(1), 100);
        assert_eq!(r.clip_offset(2), 150);
        assert_eq!(r.clip_span(1), 100..150);
    }

    #[test]
    fn resolve_maps_global_to_local() {
        let r = repo();
        let f = r.resolve(0);
        assert_eq!((f.clip_index, f.local_frame), (0, 0));
        let f = r.resolve(99);
        assert_eq!((f.clip_index, f.local_frame), (0, 99));
        let f = r.resolve(100);
        assert_eq!((f.clip_index, f.local_frame), (1, 0));
        assert_eq!(f.clip, ClipId(1));
        let f = r.resolve(349);
        assert_eq!((f.clip_index, f.local_frame), (2, 199));
        assert_eq!(f.global_frame, 349);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn resolve_out_of_range_panics() {
        repo().resolve(350);
    }

    #[test]
    fn resolve_round_trips_for_all_frames() {
        let r = repo();
        for frame in 0..r.total_frames() {
            let f = r.resolve(frame);
            assert_eq!(r.clip_offset(f.clip_index) + f.local_frame, frame);
        }
    }

    #[test]
    fn duration_sums_clips() {
        let r = repo();
        assert!((r.total_duration_secs() - 350.0 / 30.0).abs() < 1e-9);
        assert!((r.total_duration_hours() - 350.0 / 30.0 / 3600.0).abs() < 1e-12);
    }

    #[test]
    fn single_clip_constructor() {
        let r = VideoRepository::single_clip(1_000);
        assert_eq!(r.clip_count(), 1);
        assert_eq!(r.total_frames(), 1_000);
    }

    #[test]
    fn decode_cost_respects_clip_boundaries() {
        let r = repo();
        // Frame 100 is local frame 0 of clip 1 -> keyframe -> cost 1.
        assert_eq!(r.random_access_decode_frames(100), 1);
        // Frame 119 is local frame 19 of clip 1 -> cost 20.
        assert_eq!(r.random_access_decode_frames(119), 20);
    }

    #[test]
    fn empty_repository() {
        let r = VideoRepository::new();
        assert_eq!(r.total_frames(), 0);
        assert_eq!(r.clip_count(), 0);
        assert_eq!(r.total_duration_secs(), 0.0);
    }
}
