//! A single encoded video clip.

use crate::{FrameId, DEFAULT_FPS, DEFAULT_GOP};

/// Identifier of a clip within a [`crate::VideoRepository`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClipId(pub u32);

impl std::fmt::Display for ClipId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "clip{}", self.0)
    }
}

/// A single encoded video file.
///
/// The only encoding property that matters to the sampling pipeline is the GOP
/// (group-of-pictures) structure: decoding a random frame requires decoding forward
/// from the nearest preceding keyframe, so the keyframe interval bounds the cost of
/// random access.  The paper re-encodes all its datasets with a keyframe every 20
/// frames precisely to keep this cost low.
#[derive(Debug, Clone, PartialEq)]
pub struct VideoClip {
    id: ClipId,
    name: String,
    frame_count: u64,
    fps: f64,
    gop_size: u32,
}

impl VideoClip {
    /// Create a clip with explicit parameters.
    ///
    /// # Panics
    /// Panics if `frame_count == 0`, `fps <= 0`, or `gop_size == 0`.
    pub fn new(
        id: ClipId,
        name: impl Into<String>,
        frame_count: u64,
        fps: f64,
        gop_size: u32,
    ) -> Self {
        assert!(frame_count > 0, "a clip must contain at least one frame");
        assert!(fps > 0.0, "fps must be positive");
        assert!(gop_size > 0, "GOP size must be positive");
        VideoClip {
            id,
            name: name.into(),
            frame_count,
            fps,
            gop_size,
        }
    }

    /// Create a clip with the paper's defaults (30 fps, keyframe every 20 frames).
    pub fn with_defaults(id: ClipId, name: impl Into<String>, frame_count: u64) -> Self {
        VideoClip::new(id, name, frame_count, DEFAULT_FPS, DEFAULT_GOP)
    }

    /// Create a clip of the given duration in seconds with the paper's defaults.
    pub fn from_duration_secs(id: ClipId, name: impl Into<String>, seconds: f64) -> Self {
        let frames = (seconds * DEFAULT_FPS).round().max(1.0) as u64;
        VideoClip::with_defaults(id, name, frames)
    }

    /// Clip identifier.
    pub fn id(&self) -> ClipId {
        self.id
    }

    /// Human-readable clip name (e.g. `"drive_2021_03_14_a"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of frames in the clip.
    pub fn frame_count(&self) -> u64 {
        self.frame_count
    }

    /// Frames per second.
    pub fn fps(&self) -> f64 {
        self.fps
    }

    /// Keyframe interval.
    pub fn gop_size(&self) -> u32 {
        self.gop_size
    }

    /// Duration of the clip in seconds.
    pub fn duration_secs(&self) -> f64 {
        self.frame_count as f64 / self.fps
    }

    /// Whether the local frame index is a keyframe.
    pub fn is_keyframe(&self, local_frame: u64) -> bool {
        local_frame.is_multiple_of(u64::from(self.gop_size))
    }

    /// Number of frames that must be decoded to materialise `local_frame` when
    /// seeking to it cold (i.e. not already positioned on the previous frame).
    ///
    /// Decoding must start at the nearest preceding keyframe, so the cost is the
    /// offset within the GOP plus one (for the target frame itself).
    pub fn random_access_decode_frames(&self, local_frame: u64) -> u64 {
        assert!(
            local_frame < self.frame_count,
            "frame {local_frame} out of range for clip with {} frames",
            self.frame_count
        );
        local_frame % u64::from(self.gop_size) + 1
    }

    /// Convert a local frame index to a timestamp in seconds from the clip start.
    pub fn frame_to_secs(&self, local_frame: u64) -> f64 {
        local_frame as f64 / self.fps
    }

    /// Convert a timestamp (seconds from clip start) to the local frame index,
    /// clamped to the clip's range.
    pub fn secs_to_frame(&self, secs: f64) -> u64 {
        if secs <= 0.0 {
            return 0;
        }
        ((secs * self.fps) as u64).min(self.frame_count - 1)
    }

    /// Global frame id of the clip's first frame given the clip's global offset.
    pub(crate) fn span(&self, global_offset: FrameId) -> std::ops::Range<FrameId> {
        global_offset..global_offset + self.frame_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clip() -> VideoClip {
        VideoClip::new(ClipId(3), "test", 100, 30.0, 20)
    }

    #[test]
    fn keyframes_every_gop() {
        let c = clip();
        assert!(c.is_keyframe(0));
        assert!(c.is_keyframe(20));
        assert!(c.is_keyframe(80));
        assert!(!c.is_keyframe(1));
        assert!(!c.is_keyframe(19));
    }

    #[test]
    fn random_access_cost_is_offset_in_gop_plus_one() {
        let c = clip();
        assert_eq!(c.random_access_decode_frames(0), 1);
        assert_eq!(c.random_access_decode_frames(19), 20);
        assert_eq!(c.random_access_decode_frames(20), 1);
        assert_eq!(c.random_access_decode_frames(39), 20);
        assert_eq!(c.random_access_decode_frames(99), 20);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn random_access_out_of_range_panics() {
        clip().random_access_decode_frames(100);
    }

    #[test]
    fn duration_and_timestamp_round_trip() {
        let c = clip();
        assert!((c.duration_secs() - 100.0 / 30.0).abs() < 1e-12);
        assert_eq!(c.secs_to_frame(c.frame_to_secs(57)), 57);
        assert_eq!(c.secs_to_frame(0.0), 0);
        assert_eq!(c.secs_to_frame(1e9), 99);
        assert_eq!(c.secs_to_frame(-5.0), 0);
    }

    #[test]
    fn from_duration_secs_rounds_to_frames() {
        let c = VideoClip::from_duration_secs(ClipId(0), "x", 10.0);
        assert_eq!(c.frame_count(), 300);
        let c = VideoClip::from_duration_secs(ClipId(0), "x", 0.001);
        assert_eq!(c.frame_count(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_frames_panics() {
        let _ = VideoClip::with_defaults(ClipId(0), "bad", 0);
    }

    #[test]
    fn display_of_clip_id() {
        assert_eq!(ClipId(7).to_string(), "clip7");
    }
}
