//! Decode / IO cost model.
//!
//! The paper's time accounting (Section V-B) rests on two measured throughputs:
//!
//! * **Scanning** (sequential io + decode, as a proxy model must do to score every
//!   frame): about **100 frames per second**.
//! * **Sampled processing** (random-access decode + object detection, as ExSample
//!   and the random baseline do): about **20 frames per second**, dominated by the
//!   object detector.
//!
//! This module models those costs explicitly so experiments can convert "frames
//!  processed" into wall-clock / GPU seconds the way the paper does, and also
//! exposes a finer-grained per-frame model (decode cost proportional to keyframe
//! distance) used in ablation experiments.

use crate::repository::VideoRepository;
use crate::FrameId;

/// The cost of materialising one frame, broken into decode and detection parts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameCost {
    /// Seconds spent on IO + decode.
    pub decode_secs: f64,
    /// Seconds spent running the object detector (zero for scan-only operations).
    pub detect_secs: f64,
}

impl FrameCost {
    /// Total seconds for this frame.
    pub fn total_secs(&self) -> f64 {
        self.decode_secs + self.detect_secs
    }
}

/// Throughput-based cost model matching the paper's measured rates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecodeCostModel {
    /// Sequential scan throughput in frames/second (io + decode only).
    pub scan_fps: f64,
    /// Random-access sampling throughput in frames/second including detection.
    pub sample_fps: f64,
    /// Object detector throughput in frames/second on its own.
    pub detector_fps: f64,
    /// If true, random-access decode cost scales with the distance to the previous
    /// keyframe instead of being a flat per-frame constant.
    pub keyframe_aware: bool,
}

impl Default for DecodeCostModel {
    fn default() -> Self {
        DecodeCostModel {
            scan_fps: 100.0,
            sample_fps: 20.0,
            detector_fps: 10.0,
            keyframe_aware: false,
        }
    }
}

impl DecodeCostModel {
    /// The paper's measured configuration (scan 100 fps, sample 20 fps, detector
    /// 10 fps).
    pub fn paper() -> Self {
        DecodeCostModel::default()
    }

    /// A keyframe-aware variant of the paper configuration, used in ablations.
    pub fn keyframe_aware() -> Self {
        DecodeCostModel {
            keyframe_aware: true,
            ..DecodeCostModel::default()
        }
    }

    /// Seconds to *scan* (decode sequentially, without detection) `frames` frames.
    pub fn scan_secs(&self, frames: u64) -> f64 {
        frames as f64 / self.scan_fps
    }

    /// Seconds to *scan and score* `frames` frames with a cheap proxy model.
    ///
    /// The paper measures the proxy scoring phase to be bound by io+decode, so this
    /// equals [`DecodeCostModel::scan_secs`]; it exists as a separate method so
    /// call sites say what they mean.
    pub fn proxy_scoring_secs(&self, frames: u64) -> f64 {
        self.scan_secs(frames)
    }

    /// Seconds to process `frames` *sampled* frames (random-access decode plus
    /// object detection).
    pub fn sampled_processing_secs(&self, frames: u64) -> f64 {
        frames as f64 / self.sample_fps
    }

    /// Cost of one sampled frame, optionally keyframe-aware.
    ///
    /// In the flat model the decode share of a sampled frame is the difference
    /// between the full sampling cost (`1/sample_fps`) and the pure detection cost
    /// (`1/detector_fps` would exceed it, so we attribute `1/sample_fps` minus the
    /// scan cost to detection instead).  In the keyframe-aware model the decode
    /// share scales with the number of frames decoded to reach the target.
    pub fn sampled_frame_cost(&self, repo: &VideoRepository, frame: FrameId) -> FrameCost {
        let per_frame_decode = 1.0 / self.scan_fps;
        let decode_secs = if self.keyframe_aware {
            per_frame_decode * repo.random_access_decode_frames(frame) as f64
        } else {
            per_frame_decode
        };
        let detect_secs = (1.0 / self.sample_fps - per_frame_decode).max(0.0);
        FrameCost {
            decode_secs,
            detect_secs,
        }
    }

    /// Seconds to process `frames` frames in batches of `batch` on a detector whose
    /// batched throughput improves by `batch_speedup` (>= 1) relative to the
    /// single-frame rate.
    ///
    /// Models the "Batched sampling" optimisation of Section III-F.
    pub fn batched_processing_secs(&self, frames: u64, batch: usize, batch_speedup: f64) -> f64 {
        assert!(batch > 0, "batch size must be positive");
        assert!(
            batch_speedup >= 1.0,
            "batched inference cannot be slower than single-frame"
        );
        self.sampled_processing_secs(frames) / batch_speedup
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rates() {
        let m = DecodeCostModel::paper();
        assert_eq!(m.scan_fps, 100.0);
        assert_eq!(m.sample_fps, 20.0);
        // 1.1M frames (the dashcam dataset) scans in ~3.06 hours: the paper's
        // Table I quotes 2h54m for the dashcam scan, same order.
        let hours = m.scan_secs(1_100_000) / 3600.0;
        assert!((hours - 3.06).abs() < 0.1, "hours {hours}");
    }

    #[test]
    fn sampling_is_slower_per_frame_than_scanning() {
        let m = DecodeCostModel::paper();
        assert!(m.sampled_processing_secs(100) > m.scan_secs(100));
    }

    #[test]
    fn frame_cost_flat_model() {
        let m = DecodeCostModel::paper();
        let repo = VideoRepository::single_clip(1000);
        let c = m.sampled_frame_cost(&repo, 57);
        assert!((c.total_secs() - 1.0 / 20.0).abs() < 1e-12);
        assert!(c.decode_secs > 0.0 && c.detect_secs > 0.0);
    }

    #[test]
    fn frame_cost_keyframe_aware_model() {
        let m = DecodeCostModel::keyframe_aware();
        let repo = VideoRepository::single_clip(1000);
        // Frame 0 is a keyframe: decode cost = 1 frame. Frame 19 needs 20 frames.
        let cheap = m.sampled_frame_cost(&repo, 0);
        let dear = m.sampled_frame_cost(&repo, 19);
        assert!(dear.decode_secs > cheap.decode_secs);
        assert!((dear.decode_secs - 20.0 * cheap.decode_secs).abs() < 1e-12);
        // Detection cost identical in both.
        assert_eq!(cheap.detect_secs, dear.detect_secs);
    }

    #[test]
    fn proxy_scoring_matches_scan() {
        let m = DecodeCostModel::paper();
        assert_eq!(m.proxy_scoring_secs(12345), m.scan_secs(12345));
    }

    #[test]
    fn batched_processing_speedup() {
        let m = DecodeCostModel::paper();
        let single = m.sampled_processing_secs(1000);
        let batched = m.batched_processing_secs(1000, 16, 2.0);
        assert!((batched - single / 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_panics() {
        DecodeCostModel::paper().batched_processing_secs(10, 0, 1.0);
    }

    #[test]
    #[should_panic(expected = "cannot be slower")]
    fn sub_one_speedup_panics() {
        DecodeCostModel::paper().batched_processing_secs(10, 4, 0.5);
    }
}
