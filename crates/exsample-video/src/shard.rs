//! Partitioning a chunked repository across shards.
//!
//! The ROADMAP's service shape — many concurrent queries over a repository far
//! too large for one node — partitions the *chunk* axis: every chunk of a
//! [`Chunking`] is owned by exactly one shard, and a shard serves the frames
//! of its chunks.  Two deterministic partitioners cover the common layouts:
//!
//! * [`ShardPartitioner::RoundRobin`] — chunk `j` goes to shard `j mod S`.
//!   Spreads temporally adjacent chunks (which tend to have correlated load)
//!   across shards.
//! * [`ShardPartitioner::Contiguous`] — the chunk axis is cut into `S`
//!   contiguous ranges of near-equal chunk count.  Keeps each shard's frames
//!   contiguous, which is what a deployment that stores video by time range
//!   wants.
//!
//! A [`ShardSpec`] is the pure chunk→shard mapping (with the per-shard *local
//! chunk index* remapping a shard-resident sampler would use);
//! [`ShardedRepository`] binds a spec to a concrete repository and chunking
//! and answers frame-level questions (`shard_of_frame`, per-shard frame
//! counts).  The single-shard case is just `S = 1`: every accessor degenerates
//! to the unsharded answer, which is what lets shard-agnostic code (see
//! [`RepositoryAccess`]) treat the monolithic repository as the 1-shard case.

use crate::chunk::Chunking;
use crate::repository::{FrameRef, VideoRepository};
use crate::FrameId;

/// Identifier of a shard within a [`ShardSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardId(pub u32);

impl std::fmt::Display for ShardId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shard{}", self.0)
    }
}

/// How chunks are assigned to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPartitioner {
    /// Chunk `j` belongs to shard `j mod S`.
    RoundRobin,
    /// The chunk axis is split into `S` contiguous ranges of near-equal size
    /// (the same remainder-spreading rule [`crate::ChunkingPolicy::FixedCount`]
    /// uses for frames).
    Contiguous,
}

/// A complete assignment of chunks to shards, with the per-shard local chunk
/// index remapping.
///
/// The spec is pure bookkeeping over chunk *indices* — it knows nothing about
/// frames.  Pair it with a [`Chunking`] (via [`ShardedRepository`]) to answer
/// frame-level questions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpec {
    partitioner: ShardPartitioner,
    /// `assignment[j]` = shard owning chunk `j`.
    assignment: Vec<u32>,
    /// `local_index[j]` = index of chunk `j` within its shard's chunk list.
    local_index: Vec<u32>,
    /// `members[s]` = global chunk indices owned by shard `s`, in global order.
    members: Vec<Vec<u32>>,
}

impl ShardSpec {
    /// Assign `chunks` chunks round-robin over `shards` shards.
    ///
    /// # Panics
    /// Panics if `chunks` or `shards` is zero.
    pub fn round_robin(chunks: usize, shards: u32) -> Self {
        Self::build(ShardPartitioner::RoundRobin, chunks, shards, |j, s| {
            (j % s as usize) as u32
        })
    }

    /// Split `chunks` chunks into `shards` contiguous ranges whose sizes
    /// differ by at most one (the `floor(s * chunks / shards)` start rule —
    /// the same rule [`crate::ChunkingPolicy::FixedCount`] applies to frames
    /// — which lands the remainder chunks on the *later* shards).
    ///
    /// # Panics
    /// Panics if `chunks` or `shards` is zero.
    pub fn contiguous(chunks: usize, shards: u32) -> Self {
        let s = shards as usize;
        Self::build(ShardPartitioner::Contiguous, chunks, shards, |j, _| {
            // Inverse of the range starts `start_s = s * chunks / shards`.
            let mut shard = j * s / chunks;
            while (shard + 1) * chunks / s <= j {
                shard += 1;
            }
            shard as u32
        })
    }

    /// Build a spec for the given partitioner.
    ///
    /// # Panics
    /// Panics if `chunks` or `shards` is zero.
    pub fn new(partitioner: ShardPartitioner, chunks: usize, shards: u32) -> Self {
        match partitioner {
            ShardPartitioner::RoundRobin => Self::round_robin(chunks, shards),
            ShardPartitioner::Contiguous => Self::contiguous(chunks, shards),
        }
    }

    fn build(
        partitioner: ShardPartitioner,
        chunks: usize,
        shards: u32,
        shard_of: impl Fn(usize, u32) -> u32,
    ) -> Self {
        assert!(chunks > 0, "cannot shard an empty chunking");
        assert!(shards > 0, "shard count must be positive");
        let mut assignment = Vec::with_capacity(chunks);
        let mut local_index = Vec::with_capacity(chunks);
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); shards as usize];
        for j in 0..chunks {
            let s = shard_of(j, shards);
            debug_assert!(s < shards, "partitioner produced an out-of-range shard");
            assignment.push(s);
            local_index.push(members[s as usize].len() as u32);
            members[s as usize].push(j as u32);
        }
        ShardSpec {
            partitioner,
            assignment,
            local_index,
            members,
        }
    }

    /// The partitioner this spec was built with.
    pub fn partitioner(&self) -> ShardPartitioner {
        self.partitioner
    }

    /// Number of chunks covered by the spec.
    pub fn chunk_count(&self) -> usize {
        self.assignment.len()
    }

    /// Number of shards (some may own zero chunks when there are more shards
    /// than chunks).
    pub fn shard_count(&self) -> u32 {
        self.members.len() as u32
    }

    /// The shard owning a global chunk index.
    ///
    /// # Panics
    /// Panics if `chunk` is out of range.
    pub fn shard_of_chunk(&self, chunk: usize) -> ShardId {
        ShardId(self.assignment[chunk])
    }

    /// The index of a global chunk within its shard's chunk list (the
    /// remapping a shard-resident sampler indexes its statistics by).
    ///
    /// # Panics
    /// Panics if `chunk` is out of range.
    pub fn local_chunk_index(&self, chunk: usize) -> usize {
        self.local_index[chunk] as usize
    }

    /// The inverse remapping: the global chunk index of a shard's `local`-th
    /// chunk.
    ///
    /// # Panics
    /// Panics if `shard` or `local` is out of range.
    pub fn global_chunk_index(&self, shard: ShardId, local: usize) -> usize {
        self.members[shard.0 as usize][local] as usize
    }

    /// The global chunk indices owned by a shard, in global chunk order.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn shard_chunks(&self, shard: ShardId) -> &[u32] {
        &self.members[shard.0 as usize]
    }

    /// `assignment` as a slice: `shard_assignment()[j]` is the shard owning
    /// chunk `j`.
    pub fn shard_assignment(&self) -> &[u32] {
        &self.assignment
    }
}

/// Shard-agnostic read access to a repository of frames.
///
/// The engine and cost-model layers only ever ask these questions; expressing
/// them as a trait lets code written against "a repository" run unchanged over
/// the monolithic [`VideoRepository`] (the 1-shard case) or a
/// [`ShardedRepository`].
pub trait RepositoryAccess {
    /// Total number of frames across all clips (all shards).
    fn total_frames(&self) -> u64;

    /// Number of clips.
    fn clip_count(&self) -> usize;

    /// Total duration in seconds.
    fn total_duration_secs(&self) -> f64;

    /// Resolve a global frame id into a [`FrameRef`].
    fn resolve(&self, frame: FrameId) -> FrameRef;

    /// Frames that must be decoded to materialise `frame` via random access.
    fn random_access_decode_frames(&self, frame: FrameId) -> u64;
}

impl RepositoryAccess for VideoRepository {
    fn total_frames(&self) -> u64 {
        VideoRepository::total_frames(self)
    }

    fn clip_count(&self) -> usize {
        VideoRepository::clip_count(self)
    }

    fn total_duration_secs(&self) -> f64 {
        VideoRepository::total_duration_secs(self)
    }

    fn resolve(&self, frame: FrameId) -> FrameRef {
        VideoRepository::resolve(self, frame)
    }

    fn random_access_decode_frames(&self, frame: FrameId) -> u64 {
        VideoRepository::random_access_decode_frames(self, frame)
    }
}

/// A chunked repository partitioned across shards.
///
/// Binds a [`VideoRepository`], the [`Chunking`] over it, and a [`ShardSpec`]
/// assigning each chunk to a shard.  Frame-level routing
/// ([`ShardedRepository::shard_of_frame`]) goes through the chunking, so a
/// frame's shard is the shard of its chunk.
#[derive(Debug, Clone)]
pub struct ShardedRepository {
    repo: VideoRepository,
    chunking: Chunking,
    spec: ShardSpec,
}

impl ShardedRepository {
    /// Bind a spec to a repository and its chunking.
    ///
    /// # Panics
    /// Panics if the spec's chunk count does not match the chunking.
    pub fn new(repo: VideoRepository, chunking: Chunking, spec: ShardSpec) -> Self {
        assert_eq!(
            spec.chunk_count(),
            chunking.len(),
            "shard spec covers {} chunks but the chunking has {}",
            spec.chunk_count(),
            chunking.len()
        );
        ShardedRepository {
            repo,
            chunking,
            spec,
        }
    }

    /// The 1-shard case: a sharded view that behaves exactly like the
    /// monolithic repository.
    pub fn single(repo: VideoRepository, chunking: Chunking) -> Self {
        let spec = ShardSpec::contiguous(chunking.len(), 1);
        ShardedRepository::new(repo, chunking, spec)
    }

    /// The underlying repository.
    pub fn repository(&self) -> &VideoRepository {
        &self.repo
    }

    /// The chunking the shard spec partitions.
    pub fn chunking(&self) -> &Chunking {
        &self.chunking
    }

    /// The chunk→shard assignment.
    pub fn spec(&self) -> &ShardSpec {
        &self.spec
    }

    /// Number of shards.
    pub fn shard_count(&self) -> u32 {
        self.spec.shard_count()
    }

    /// The shard owning a global frame id.
    ///
    /// # Panics
    /// Panics if `frame` is not covered by the chunking.
    pub fn shard_of_frame(&self, frame: FrameId) -> ShardId {
        let chunk = self.chunking.chunk_of_frame(frame);
        self.spec.shard_of_chunk(chunk.0 as usize)
    }

    /// Total frames owned by a shard.
    pub fn shard_frame_count(&self, shard: ShardId) -> u64 {
        self.spec
            .shard_chunks(shard)
            .iter()
            .map(|&j| self.chunking.chunks()[j as usize].len())
            .sum()
    }

    /// The lengths of a shard's chunks, indexed by *local* chunk index — the
    /// chunk-length vector a shard-resident sampler would be built from.
    pub fn shard_chunk_lengths(&self, shard: ShardId) -> Vec<u64> {
        self.spec
            .shard_chunks(shard)
            .iter()
            .map(|&j| self.chunking.chunks()[j as usize].len())
            .collect()
    }
}

impl RepositoryAccess for ShardedRepository {
    fn total_frames(&self) -> u64 {
        self.repo.total_frames()
    }

    fn clip_count(&self) -> usize {
        self.repo.clip_count()
    }

    fn total_duration_secs(&self) -> f64 {
        self.repo.total_duration_secs()
    }

    fn resolve(&self, frame: FrameId) -> FrameRef {
        self.repo.resolve(frame)
    }

    fn random_access_decode_frames(&self, frame: FrameId) -> u64 {
        self.repo.random_access_decode_frames(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::ChunkingPolicy;

    fn sharded(frames: u64, chunks: u32, shards: u32, p: ShardPartitioner) -> ShardedRepository {
        let repo = VideoRepository::single_clip(frames);
        let chunking = Chunking::new(&repo, ChunkingPolicy::FixedCount { chunks });
        let spec = ShardSpec::new(p, chunking.len(), shards);
        ShardedRepository::new(repo, chunking, spec)
    }

    #[test]
    fn round_robin_assignment_and_remapping() {
        let spec = ShardSpec::round_robin(7, 3);
        assert_eq!(spec.shard_assignment(), &[0, 1, 2, 0, 1, 2, 0]);
        assert_eq!(spec.shard_chunks(ShardId(0)), &[0, 3, 6]);
        assert_eq!(spec.shard_chunks(ShardId(1)), &[1, 4]);
        assert_eq!(spec.local_chunk_index(4), 1);
        assert_eq!(spec.global_chunk_index(ShardId(1), 1), 4);
        assert_eq!(spec.partitioner(), ShardPartitioner::RoundRobin);
    }

    #[test]
    fn contiguous_assignment_is_ordered_and_balanced() {
        let spec = ShardSpec::contiguous(10, 3);
        // Shards own contiguous, near-equal ranges covering every chunk once.
        let mut sizes = Vec::new();
        let mut prev_last: Option<u32> = None;
        for s in 0..spec.shard_count() {
            let chunks = spec.shard_chunks(ShardId(s));
            sizes.push(chunks.len());
            assert!(chunks.windows(2).all(|w| w[1] == w[0] + 1), "{chunks:?}");
            if let (Some(prev), Some(&first)) = (prev_last, chunks.first()) {
                assert_eq!(first, prev + 1);
            }
            prev_last = chunks.last().copied().or(prev_last);
        }
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn every_chunk_round_trips_through_the_remapping() {
        for shards in [1u32, 2, 3, 7, 16] {
            for p in [ShardPartitioner::RoundRobin, ShardPartitioner::Contiguous] {
                let spec = ShardSpec::new(p, 13, shards);
                assert_eq!(spec.shard_count(), shards);
                for j in 0..13 {
                    let s = spec.shard_of_chunk(j);
                    let local = spec.local_chunk_index(j);
                    assert_eq!(spec.global_chunk_index(s, local), j, "{p:?}/{shards}");
                }
                // Members partition the chunk axis.
                let total: usize = (0..shards)
                    .map(|s| spec.shard_chunks(ShardId(s)).len())
                    .sum();
                assert_eq!(total, 13);
            }
        }
    }

    #[test]
    fn more_shards_than_chunks_leaves_empty_shards() {
        let spec = ShardSpec::round_robin(2, 5);
        assert_eq!(spec.shard_count(), 5);
        assert_eq!(spec.shard_chunks(ShardId(0)), &[0]);
        assert_eq!(spec.shard_chunks(ShardId(1)), &[1]);
        assert!(spec.shard_chunks(ShardId(4)).is_empty());
    }

    #[test]
    fn sharded_repository_routes_frames_by_chunk() {
        let r = sharded(1_000, 10, 3, ShardPartitioner::RoundRobin);
        for frame in 0..1_000 {
            let chunk = r.chunking().chunk_of_frame(frame);
            assert_eq!(
                r.shard_of_frame(frame),
                r.spec().shard_of_chunk(chunk.0 as usize)
            );
        }
        // Per-shard frame counts partition the total.
        let total: u64 = (0..3).map(|s| r.shard_frame_count(ShardId(s))).sum();
        assert_eq!(total, 1_000);
    }

    #[test]
    fn shard_chunk_lengths_follow_the_local_order() {
        let r = sharded(1_000, 10, 4, ShardPartitioner::Contiguous);
        for s in 0..4 {
            let lengths = r.shard_chunk_lengths(ShardId(s));
            let expected: Vec<u64> = r
                .spec()
                .shard_chunks(ShardId(s))
                .iter()
                .map(|&j| r.chunking().chunks()[j as usize].len())
                .collect();
            assert_eq!(lengths, expected);
        }
    }

    #[test]
    fn single_shard_view_matches_the_monolithic_repository() {
        let r = sharded(350, 7, 1, ShardPartitioner::Contiguous);
        assert_eq!(r.shard_count(), 1);
        assert_eq!(r.shard_frame_count(ShardId(0)), 350);
        for frame in [0u64, 100, 349] {
            assert_eq!(r.shard_of_frame(frame), ShardId(0));
        }
        // The trait view is indistinguishable from the raw repository.
        let mono = VideoRepository::single_clip(350);
        let a: &dyn RepositoryAccess = &mono;
        let b: &dyn RepositoryAccess = &r;
        assert_eq!(a.total_frames(), b.total_frames());
        assert_eq!(a.clip_count(), b.clip_count());
        assert_eq!(a.resolve(123), b.resolve(123));
        assert_eq!(
            a.random_access_decode_frames(123),
            b.random_access_decode_frames(123)
        );
        assert!((a.total_duration_secs() - b.total_duration_secs()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "shard spec covers")]
    fn mismatched_spec_panics() {
        let repo = VideoRepository::single_clip(100);
        let chunking = Chunking::new(&repo, ChunkingPolicy::FixedCount { chunks: 4 });
        let spec = ShardSpec::contiguous(5, 2);
        let _ = ShardedRepository::new(repo, chunking, spec);
    }

    #[test]
    #[should_panic(expected = "shard count must be positive")]
    fn zero_shards_panics() {
        let _ = ShardSpec::round_robin(4, 0);
    }

    #[test]
    fn shard_id_display() {
        assert_eq!(ShardId(3).to_string(), "shard3");
    }
}
