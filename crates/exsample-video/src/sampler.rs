//! Within-chunk frame samplers.
//!
//! ExSample picks a chunk via Thompson sampling and then a frame *within* that
//! chunk.  The paper uses two within-chunk strategies:
//!
//! * plain uniform sampling **without replacement** ([`UniformSampler`]), which is
//!   also the global `random` baseline when applied to the whole repository as a
//!   single chunk; and
//! * **`random+`** ([`RandomPlusSampler`], Section III-F), which avoids sampling
//!   temporally close to previous samples by working through a hierarchy of
//!   progressively finer segments: first one random frame from the whole range,
//!   then one from each unsampled half, then from each quarter, and so on until the
//!   full range is exhausted.

use crate::FrameId;
use rand::Rng;
use std::collections::HashMap;

/// Shared without-replacement progress bookkeeping.
///
/// Every [`FrameSampler`] must hand out each of its `len` offsets exactly once;
/// the counters that enforce this (range length, draws so far, exhaustion) are
/// identical across implementations, so they live here instead of being
/// duplicated per sampler.  The strategy-specific part — *which* untaken offset
/// the next draw returns — stays with the individual samplers.
#[derive(Debug, Clone)]
struct WithoutReplacement {
    len: u64,
    drawn: u64,
}

impl WithoutReplacement {
    fn new(len: u64) -> Self {
        WithoutReplacement { len, drawn: 0 }
    }

    fn len(&self) -> u64 {
        self.len
    }

    fn sampled(&self) -> u64 {
        self.drawn
    }

    fn is_exhausted(&self) -> bool {
        self.drawn >= self.len
    }

    /// Record one completed draw, returning its position in the output sequence
    /// (which doubles as the sparse Fisher–Yates cursor).
    fn note_drawn(&mut self) -> u64 {
        debug_assert!(!self.is_exhausted());
        let position = self.drawn;
        self.drawn += 1;
        position
    }
}

/// A sampler producing frame offsets `0..len` in some order, without replacement.
///
/// Offsets are relative to the start of the range being sampled (a chunk or the
/// whole repository); callers add the chunk's start frame to obtain global ids.
pub trait FrameSampler {
    /// Total number of frames in the range.
    fn len(&self) -> u64;

    /// Whether the range is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of frames already produced.
    fn sampled(&self) -> u64;

    /// Number of frames not yet produced.
    fn remaining(&self) -> u64 {
        self.len() - self.sampled()
    }

    /// Produce the next frame offset, or `None` when the range is exhausted.
    fn next_frame<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<FrameId>;
}

/// Uniform sampling without replacement over `0..len`.
///
/// Implemented as a sparse Fisher–Yates shuffle: the virtual array `0..len` is
/// shuffled lazily, storing only the entries that have been displaced.  Memory is
/// proportional to the number of frames *sampled*, not to the length of the range,
/// which matters because simulated repositories reach tens of millions of frames
/// while queries typically sample only thousands.
#[derive(Debug, Clone)]
pub struct UniformSampler {
    progress: WithoutReplacement,
    /// Sparse representation of the partially shuffled array.
    displaced: HashMap<u64, u64>,
}

impl UniformSampler {
    /// Create a sampler over the range `0..len`.
    pub fn new(len: u64) -> Self {
        UniformSampler {
            progress: WithoutReplacement::new(len),
            displaced: HashMap::new(),
        }
    }
}

impl FrameSampler for UniformSampler {
    fn len(&self) -> u64 {
        self.progress.len()
    }

    fn sampled(&self) -> u64 {
        self.progress.sampled()
    }

    fn next_frame<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<FrameId> {
        if self.progress.is_exhausted() {
            return None;
        }
        // Classic sparse Fisher-Yates: pick a position in [cursor, len), swap its
        // value with the cursor position, return the value at the picked slot.
        let cursor = self.progress.note_drawn();
        let pick = rng.gen_range(cursor..self.progress.len());
        let picked_value = *self.displaced.get(&pick).unwrap_or(&pick);
        let current_value = *self.displaced.get(&cursor).unwrap_or(&cursor);
        self.displaced.insert(pick, current_value);
        self.displaced.remove(&cursor);
        Some(picked_value)
    }
}

/// The `random+` sampler of Section III-F.
///
/// Maintains a frontier of segments.  Each *round* visits every segment in random
/// order and draws one not-yet-sampled frame from it; segments are then split in
/// half for the next round.  Early samples are therefore spread out across the
/// whole range (one per segment) instead of clustering the way independent uniform
/// draws can, while the eventual ordering still covers every frame exactly once.
#[derive(Debug, Clone)]
pub struct RandomPlusSampler {
    progress: WithoutReplacement,
    /// Segments remaining to be visited in the current round, in randomised order.
    current_round: Vec<Segment>,
    /// Segments queued for the next round.
    next_round: Vec<Segment>,
}

/// A contiguous sub-range together with the offsets already sampled from it.
#[derive(Debug, Clone)]
struct Segment {
    start: u64,
    end: u64,
    /// Offsets (absolute, within `0..len`) already drawn from this segment.
    ///
    /// A segment is visited once per round and split each round, so this list stays
    /// short (its length is bounded by the number of rounds, i.e. `log2(len)`).
    taken: Vec<u64>,
}

impl Segment {
    fn len(&self) -> u64 {
        self.end - self.start
    }

    fn available(&self) -> u64 {
        self.len() - self.taken.len() as u64
    }

    /// Draw one untaken offset uniformly from this segment.
    fn draw<R: Rng + ?Sized>(&mut self, rng: &mut R) -> u64 {
        debug_assert!(self.available() > 0);
        // Rejection sampling is fine: at most log2(len) offsets are ever taken from
        // a segment, so the acceptance probability stays close to one except for
        // tiny (few-frame) segments, where the loop still terminates quickly.
        loop {
            let candidate = rng.gen_range(self.start..self.end);
            if !self.taken.contains(&candidate) {
                self.taken.push(candidate);
                return candidate;
            }
        }
    }

    /// Split the segment into halves, partitioning the taken offsets accordingly.
    fn split(self) -> (Option<Segment>, Option<Segment>) {
        if self.len() <= 1 {
            // A single-frame segment cannot be split; it survives as-is if untaken.
            return if self.available() > 0 {
                (Some(self), None)
            } else {
                (None, None)
            };
        }
        let mid = self.start + self.len() / 2;
        let (left_taken, right_taken): (Vec<u64>, Vec<u64>) =
            self.taken.iter().partition(|&&o| o < mid);
        let left = Segment {
            start: self.start,
            end: mid,
            taken: left_taken,
        };
        let right = Segment {
            start: mid,
            end: self.end,
            taken: right_taken,
        };
        let keep = |s: Segment| if s.available() > 0 { Some(s) } else { None };
        (keep(left), keep(right))
    }
}

impl RandomPlusSampler {
    /// Create a `random+` sampler over the range `0..len`.
    pub fn new(len: u64) -> Self {
        let current_round = if len > 0 {
            vec![Segment {
                start: 0,
                end: len,
                taken: Vec::new(),
            }]
        } else {
            Vec::new()
        };
        RandomPlusSampler {
            progress: WithoutReplacement::new(len),
            current_round,
            next_round: Vec::new(),
        }
    }

    /// Advance to the next round: split every pending segment and shuffle the order
    /// in which the new segments will be visited.
    fn advance_round<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        debug_assert!(self.current_round.is_empty());
        let pending = std::mem::take(&mut self.next_round);
        let mut fresh = Vec::with_capacity(pending.len() * 2);
        for segment in pending {
            let (a, b) = segment.split();
            if let Some(a) = a {
                fresh.push(a);
            }
            if let Some(b) = b {
                fresh.push(b);
            }
        }
        // Visit segments in random order within the round (Fisher–Yates).
        for i in (1..fresh.len()).rev() {
            let j = rng.gen_range(0..=i);
            fresh.swap(i, j);
        }
        self.current_round = fresh;
    }
}

impl FrameSampler for RandomPlusSampler {
    fn len(&self) -> u64 {
        self.progress.len()
    }

    fn sampled(&self) -> u64 {
        self.progress.sampled()
    }

    fn next_frame<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<FrameId> {
        if self.progress.is_exhausted() {
            return None;
        }
        if self.current_round.is_empty() {
            self.advance_round(rng);
            if self.current_round.is_empty() {
                return None;
            }
        }
        let mut segment = self
            .current_round
            .pop()
            .expect("current round checked non-empty above");
        let offset = segment.draw(rng);
        if segment.available() > 0 {
            self.next_round.push(segment);
        }
        self.progress.note_drawn();
        Some(offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn drain<S: FrameSampler>(sampler: &mut S, rng: &mut StdRng) -> Vec<u64> {
        let mut out = Vec::new();
        while let Some(f) = sampler.next_frame(rng) {
            out.push(f);
        }
        out
    }

    #[test]
    fn uniform_covers_range_without_repeats() {
        let mut rng = StdRng::seed_from_u64(81);
        let mut s = UniformSampler::new(1000);
        let drawn = drain(&mut s, &mut rng);
        assert_eq!(drawn.len(), 1000);
        let unique: HashSet<u64> = drawn.iter().copied().collect();
        assert_eq!(unique.len(), 1000);
        assert!(drawn.iter().all(|&f| f < 1000));
        assert_eq!(s.remaining(), 0);
        assert!(s.next_frame(&mut rng).is_none());
    }

    #[test]
    fn uniform_first_draw_is_uniform() {
        // Draw the first sample from a fresh sampler many times; the empirical
        // distribution over 10 buckets should be close to uniform.
        let mut rng = StdRng::seed_from_u64(82);
        let mut buckets = [0u32; 10];
        for _ in 0..20_000 {
            let mut s = UniformSampler::new(100);
            let f = s.next_frame(&mut rng).unwrap();
            buckets[(f / 10) as usize] += 1;
        }
        for &b in &buckets {
            assert!((f64::from(b) - 2000.0).abs() < 250.0, "bucket count {b}");
        }
    }

    #[test]
    fn uniform_memory_is_proportional_to_draws() {
        let mut rng = StdRng::seed_from_u64(83);
        let mut s = UniformSampler::new(10_000_000);
        for _ in 0..100 {
            s.next_frame(&mut rng).unwrap();
        }
        assert!(s.displaced.len() <= 200);
    }

    #[test]
    fn uniform_empty_range() {
        let mut rng = StdRng::seed_from_u64(84);
        let mut s = UniformSampler::new(0);
        assert!(s.is_empty());
        assert!(s.next_frame(&mut rng).is_none());
    }

    #[test]
    fn random_plus_covers_range_without_repeats() {
        let mut rng = StdRng::seed_from_u64(85);
        for len in [1u64, 2, 3, 7, 64, 100, 1023] {
            let mut s = RandomPlusSampler::new(len);
            let drawn = drain(&mut s, &mut rng);
            assert_eq!(drawn.len() as u64, len, "len {len}");
            let unique: HashSet<u64> = drawn.iter().copied().collect();
            assert_eq!(unique.len() as u64, len, "len {len}");
            assert!(drawn.iter().all(|&f| f < len));
        }
    }

    #[test]
    fn random_plus_spreads_early_samples() {
        // The first 32 samples include a full round of 16 segments of 64 frames
        // each; those 16 samples necessarily land in 16 distinct 32-frame stripes,
        // so the first 32 samples of a 1024-frame range must hit at least 16
        // distinct stripes. (Uniform sampling gives no such guarantee.)
        let mut rng = StdRng::seed_from_u64(86);
        let mut s = RandomPlusSampler::new(1024);
        let mut stripes = HashSet::new();
        for _ in 0..32 {
            let f = s.next_frame(&mut rng).unwrap();
            stripes.insert(f / 32);
        }
        assert!(stripes.len() >= 16, "stripes hit: {}", stripes.len());
    }

    #[test]
    fn random_plus_first_sample_spread_beats_uniform_on_average() {
        // Average number of distinct 1/32 stripes hit by the first 32 samples,
        // across many trials: random+ should dominate uniform.
        let trials = 200;
        let mut rng = StdRng::seed_from_u64(87);
        let mut rp_total = 0usize;
        let mut uni_total = 0usize;
        for _ in 0..trials {
            let mut rp = RandomPlusSampler::new(4096);
            let mut uni = UniformSampler::new(4096);
            let mut rp_stripes = HashSet::new();
            let mut uni_stripes = HashSet::new();
            for _ in 0..32 {
                rp_stripes.insert(rp.next_frame(&mut rng).unwrap() / 128);
                uni_stripes.insert(uni.next_frame(&mut rng).unwrap() / 128);
            }
            rp_total += rp_stripes.len();
            uni_total += uni_stripes.len();
        }
        assert!(
            rp_total > uni_total,
            "random+ stripes {rp_total} vs uniform {uni_total}"
        );
    }

    #[test]
    fn random_plus_empty_and_single() {
        let mut rng = StdRng::seed_from_u64(88);
        let mut s = RandomPlusSampler::new(0);
        assert!(s.next_frame(&mut rng).is_none());
        let mut s = RandomPlusSampler::new(1);
        assert_eq!(s.next_frame(&mut rng), Some(0));
        assert!(s.next_frame(&mut rng).is_none());
    }

    #[test]
    fn samplers_report_progress() {
        let mut rng = StdRng::seed_from_u64(89);
        let mut s = RandomPlusSampler::new(10);
        assert_eq!(s.sampled(), 0);
        assert_eq!(s.remaining(), 10);
        s.next_frame(&mut rng);
        s.next_frame(&mut rng);
        assert_eq!(s.sampled(), 2);
        assert_eq!(s.remaining(), 8);
    }
}
