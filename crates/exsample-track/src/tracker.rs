//! A SORT-like IoU tracker.
//!
//! The paper constructs approximate ground truth by sequentially scanning every
//! video, running the reference detector on every frame, and linking detections
//! across adjacent frames with IoU matching "similar to SORT" (Section V-A).  This
//! module implements that tracker: it consumes per-frame detections in temporal
//! order and emits tracks, each of which corresponds to one distinct object
//! instance.

use crate::matcher::{greedy_iou_match, unmatched_right};
use exsample_detect::{BBox, Detection};
use exsample_video::FrameId;

/// Identifier assigned to a track by the tracker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TrackId(pub u64);

impl std::fmt::Display for TrackId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "track{}", self.0)
    }
}

/// A track: one object followed over consecutive frames.
#[derive(Debug, Clone, PartialEq)]
pub struct Track {
    /// Track identifier.
    pub id: TrackId,
    /// `(frame, box)` observations in increasing frame order.
    pub observations: Vec<(FrameId, BBox)>,
}

impl Track {
    /// First frame of the track.
    pub fn first_frame(&self) -> FrameId {
        self.observations.first().expect("tracks are never empty").0
    }

    /// Last frame of the track.
    pub fn last_frame(&self) -> FrameId {
        self.observations.last().expect("tracks are never empty").0
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// Whether the track has no observations (never true for emitted tracks).
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// The most recent box.
    pub fn last_box(&self) -> BBox {
        self.observations.last().expect("tracks are never empty").1
    }
}

/// Configuration and state of the IoU tracker.
#[derive(Debug, Clone)]
pub struct IouTracker {
    /// Minimum IoU to link a detection to an existing track.
    min_iou: f64,
    /// A track is closed if it has not been matched for this many frames.
    max_gap: u64,
    next_id: u64,
    active: Vec<Track>,
    finished: Vec<Track>,
    last_frame: Option<FrameId>,
}

impl IouTracker {
    /// Create a tracker.
    ///
    /// `min_iou` is the association threshold (the SORT default of 0.3 is a good
    /// choice for adjacent-frame matching); `max_gap` is the number of frames a
    /// track may go unmatched before it is closed.
    pub fn new(min_iou: f64, max_gap: u64) -> Self {
        assert!((0.0..=1.0).contains(&min_iou));
        IouTracker {
            min_iou,
            max_gap,
            next_id: 0,
            active: Vec::new(),
            finished: Vec::new(),
            last_frame: None,
        }
    }

    /// A tracker with typical SORT-style defaults (IoU 0.3, gap 3 frames).
    pub fn with_defaults() -> Self {
        IouTracker::new(0.3, 3)
    }

    /// Feed the detections of one frame.  Frames must be fed in increasing order.
    pub fn step(&mut self, frame: FrameId, detections: &[Detection]) {
        if let Some(last) = self.last_frame {
            assert!(frame > last, "frames must be fed in increasing order");
        }
        self.last_frame = Some(frame);

        // Close tracks that have gone stale.
        let max_gap = self.max_gap;
        let mut still_active = Vec::with_capacity(self.active.len());
        for track in self.active.drain(..) {
            if frame - track.last_frame() > max_gap {
                self.finished.push(track);
            } else {
                still_active.push(track);
            }
        }
        self.active = still_active;

        // Associate detections with active tracks.
        let track_boxes: Vec<BBox> = self.active.iter().map(Track::last_box).collect();
        let det_boxes: Vec<BBox> = detections.iter().map(|d| d.bbox).collect();
        let matches = greedy_iou_match(&track_boxes, &det_boxes, self.min_iou);
        for m in &matches {
            self.active[m.left]
                .observations
                .push((frame, det_boxes[m.right]));
        }

        // Unmatched detections start new tracks.
        for idx in unmatched_right(det_boxes.len(), &matches) {
            let id = TrackId(self.next_id);
            self.next_id += 1;
            self.active.push(Track {
                id,
                observations: vec![(frame, det_boxes[idx])],
            });
        }
    }

    /// Number of currently active (not yet closed) tracks.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Finish tracking and return all tracks (closed and still active), sorted by
    /// their first frame.
    pub fn finish(mut self) -> Vec<Track> {
        self.finished.append(&mut self.active);
        self.finished.sort_by_key(Track::first_frame);
        self.finished
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exsample_detect::ObjectClass;

    fn det(x: f64, y: f64) -> Detection {
        Detection::new(BBox::new(x, y, 0.1, 0.1), ObjectClass::from("car"), 0.9)
    }

    #[test]
    fn single_object_forms_single_track() {
        let mut t = IouTracker::with_defaults();
        for frame in 0..10u64 {
            // Object drifts slowly to the right.
            t.step(frame, &[det(0.1 + frame as f64 * 0.005, 0.5)]);
        }
        let tracks = t.finish();
        assert_eq!(tracks.len(), 1);
        assert_eq!(tracks[0].len(), 10);
        assert_eq!(tracks[0].first_frame(), 0);
        assert_eq!(tracks[0].last_frame(), 9);
    }

    #[test]
    fn two_separated_objects_form_two_tracks() {
        let mut t = IouTracker::with_defaults();
        for frame in 0..5u64 {
            t.step(frame, &[det(0.1, 0.1), det(0.8, 0.8)]);
        }
        let tracks = t.finish();
        assert_eq!(tracks.len(), 2);
        assert!(tracks.iter().all(|tr| tr.len() == 5));
    }

    #[test]
    fn gap_longer_than_max_gap_splits_track() {
        let mut t = IouTracker::new(0.3, 2);
        t.step(0, &[det(0.5, 0.5)]);
        t.step(1, &[det(0.5, 0.5)]);
        // Object disappears for 5 frames.
        t.step(2, &[]);
        t.step(6, &[]);
        t.step(7, &[det(0.5, 0.5)]);
        let tracks = t.finish();
        assert_eq!(tracks.len(), 2, "a long gap should start a new track");
    }

    #[test]
    fn gap_within_max_gap_keeps_track_alive() {
        let mut t = IouTracker::new(0.3, 3);
        t.step(0, &[det(0.5, 0.5)]);
        t.step(1, &[]);
        t.step(2, &[det(0.5, 0.5)]);
        let tracks = t.finish();
        assert_eq!(tracks.len(), 1);
        assert_eq!(tracks[0].len(), 2);
    }

    #[test]
    fn fast_moving_object_splits_when_iou_drops() {
        let mut t = IouTracker::new(0.5, 3);
        t.step(0, &[det(0.1, 0.1)]);
        // Jumps far away: IoU 0 with the previous box, so a new track must start.
        t.step(1, &[det(0.7, 0.7)]);
        let tracks = t.finish();
        assert_eq!(tracks.len(), 2);
    }

    #[test]
    fn crossing_objects_keep_identity_by_best_overlap() {
        let mut t = IouTracker::new(0.1, 3);
        // Two objects approach each other slowly; greedy best-overlap matching
        // should keep two tracks alive the whole time.
        for frame in 0..20u64 {
            let a = det(0.2 + frame as f64 * 0.01, 0.5);
            let b = det(0.6 - frame as f64 * 0.01, 0.5);
            t.step(frame, &[a, b]);
        }
        let tracks = t.finish();
        assert_eq!(tracks.len(), 2);
        assert!(tracks.iter().all(|tr| tr.len() == 20));
    }

    #[test]
    fn active_count_reflects_open_tracks() {
        let mut t = IouTracker::with_defaults();
        t.step(0, &[det(0.1, 0.1), det(0.8, 0.8)]);
        assert_eq!(t.active_count(), 2);
    }

    #[test]
    #[should_panic(expected = "increasing order")]
    fn out_of_order_frames_panic() {
        let mut t = IouTracker::with_defaults();
        t.step(5, &[]);
        t.step(4, &[]);
    }

    #[test]
    fn finish_sorts_by_first_frame() {
        let mut t = IouTracker::new(0.3, 1);
        t.step(0, &[det(0.1, 0.1)]);
        t.step(10, &[det(0.8, 0.8)]);
        t.step(20, &[det(0.4, 0.4)]);
        let tracks = t.finish();
        assert_eq!(tracks.len(), 3);
        assert!(tracks
            .windows(2)
            .all(|w| w[0].first_frame() <= w[1].first_frame()));
    }
}
