//! Building approximate ground truth by sequential scanning.
//!
//! The paper's evaluation datasets have no human-labelled instance ids (except BDD
//! MOT), so the authors *construct* approximate ground truth by scanning every
//! frame with the reference detector and linking detections into tracks with IoU
//! matching (Section V-A).  This module reproduces that pipeline on the simulated
//! substrate: scan a frame range with any [`Detector`], feed the per-frame
//! detections to the [`IouTracker`], and convert the resulting tracks back into
//! [`ObjectInstance`]s that can serve as the ground truth for query evaluation.
//!
//! Besides being part of the reproduction, this closes the loop for users who want
//! to point the library at a real detector: the same function builds a queryable
//! instance set from raw detections.

use crate::tracker::{IouTracker, Track};
use exsample_detect::{Detector, InstanceId, MotionModel, ObjectClass, ObjectInstance};
use exsample_video::FrameId;

/// Configuration of the ground-truth construction scan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroundTruthBuildConfig {
    /// Visit one frame out of every `stride` (1 = every frame, as in the paper).
    pub stride: u64,
    /// IoU threshold for linking detections across visited frames.
    pub min_iou: f64,
    /// Maximum number of *visited* frames a track may go unmatched before closing.
    pub max_gap: u64,
    /// Tracks with fewer observations than this are discarded as detector noise.
    pub min_track_length: usize,
}

impl Default for GroundTruthBuildConfig {
    fn default() -> Self {
        GroundTruthBuildConfig {
            stride: 1,
            min_iou: 0.3,
            max_gap: 3,
            min_track_length: 2,
        }
    }
}

/// Scan `[start, end)` with `detector` and return the tracks found.
pub fn scan_tracks<D: Detector>(
    detector: &D,
    start: FrameId,
    end: FrameId,
    config: GroundTruthBuildConfig,
) -> Vec<Track> {
    assert!(end >= start, "scan range is inverted");
    assert!(config.stride > 0, "stride must be positive");
    let mut tracker = IouTracker::new(config.min_iou, config.max_gap * config.stride);
    let mut frame = start;
    while frame < end {
        let detections = detector.detect(frame);
        tracker.step(frame, &detections.detections);
        frame += config.stride;
    }
    tracker
        .finish()
        .into_iter()
        .filter(|t| t.len() >= config.min_track_length)
        .collect()
}

/// Convert tracks into [`ObjectInstance`]s of the given class.
///
/// Each track becomes one instance whose visibility interval spans the track's
/// first to last observed frame and whose motion interpolates linearly between the
/// first and last observed boxes — the same simplification the sampling pipeline's
/// discriminator relies on.
pub fn tracks_to_instances(
    tracks: &[Track],
    class: &ObjectClass,
    first_instance_id: u64,
) -> Vec<ObjectInstance> {
    tracks
        .iter()
        .enumerate()
        .map(|(i, track)| {
            let (first_frame, first_box) = track.observations[0];
            let (last_frame, last_box) = *track.observations.last().expect("non-empty track");
            ObjectInstance::new(
                InstanceId(first_instance_id + i as u64),
                class.clone(),
                first_frame,
                last_frame,
                MotionModel::Linear {
                    start: first_box,
                    end: last_box,
                },
                1.0,
            )
        })
        .collect()
}

/// Scan a frame range and directly produce approximate ground-truth instances.
pub fn build_ground_truth<D: Detector>(
    detector: &D,
    start: FrameId,
    end: FrameId,
    config: GroundTruthBuildConfig,
    first_instance_id: u64,
) -> Vec<ObjectInstance> {
    let tracks = scan_tracks(detector, start, end, config);
    tracks_to_instances(&tracks, detector.class(), first_instance_id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use exsample_detect::{
        DetectorNoise, GroundTruth, ObjectInstance, PerfectDetector, SimulatedDetector,
    };
    use std::sync::Arc;

    fn truth() -> Arc<GroundTruth> {
        Arc::new(GroundTruth::from_instances(
            3_000,
            vec![
                ObjectInstance::simple(0, "car", 100, 400),
                ObjectInstance::simple(1, "car", 1_000, 1_200),
                // A different class that must not leak into "car" ground truth.
                ObjectInstance::simple(2, "bus", 1_500, 1_800),
            ],
        ))
    }

    #[test]
    fn perfect_detector_recovers_every_instance() {
        let detector = PerfectDetector::new(truth(), ObjectClass::from("car"));
        let instances =
            build_ground_truth(&detector, 0, 3_000, GroundTruthBuildConfig::default(), 0);
        assert_eq!(instances.len(), 2);
        assert_eq!(instances[0].first_frame(), 100);
        assert_eq!(instances[0].last_frame(), 400);
        assert_eq!(instances[1].first_frame(), 1_000);
        assert!(instances.iter().all(|i| i.class().name() == "car"));
    }

    #[test]
    fn strided_scan_still_recovers_long_instances() {
        let detector = PerfectDetector::new(truth(), ObjectClass::from("car"));
        let config = GroundTruthBuildConfig {
            stride: 30,
            ..GroundTruthBuildConfig::default()
        };
        let instances = build_ground_truth(&detector, 0, 3_000, config, 0);
        // Both car instances are longer than the stride, so both are recovered; the
        // interval end-points are only accurate to within one stride.
        assert_eq!(instances.len(), 2);
        assert!(instances[0].first_frame() >= 100 && instances[0].first_frame() < 130);
    }

    #[test]
    fn short_noise_tracks_are_filtered() {
        // A noisy detector with heavy false positives: the minimum track length
        // keeps spurious one-frame tracks out of the ground truth.
        let detector = SimulatedDetector::new(
            truth(),
            ObjectClass::from("car"),
            DetectorNoise {
                miss_rate: 0.0,
                false_positives_per_frame: 0.3,
                localization_sigma: 0.0,
                min_true_score: 0.5,
            },
            11,
        );
        let instances =
            build_ground_truth(&detector, 0, 3_000, GroundTruthBuildConfig::default(), 0);
        // The two real cars dominate; a few adjacent false positives may chain into
        // short tracks, but the count must stay close to the truth.
        assert!(
            (2..=6).contains(&instances.len()),
            "expected ~2 instances, got {}",
            instances.len()
        );
    }

    #[test]
    fn instance_ids_start_at_the_requested_offset() {
        let detector = PerfectDetector::new(truth(), ObjectClass::from("car"));
        let instances =
            build_ground_truth(&detector, 0, 3_000, GroundTruthBuildConfig::default(), 500);
        assert_eq!(instances[0].id(), InstanceId(500));
        assert_eq!(instances[1].id(), InstanceId(501));
    }

    #[test]
    fn empty_range_yields_nothing() {
        let detector = PerfectDetector::new(truth(), ObjectClass::from("car"));
        let instances =
            build_ground_truth(&detector, 100, 100, GroundTruthBuildConfig::default(), 0);
        assert!(instances.is_empty());
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_range_panics() {
        let detector = PerfectDetector::new(truth(), ObjectClass::from("car"));
        let _ = scan_tracks(&detector, 200, 100, GroundTruthBuildConfig::default());
    }
}
