//! The distinct-object discriminator.
//!
//! Algorithm 1 of the paper passes every frame's detections through a
//! discriminator which reports two sets:
//!
//! * `d0` — detections that match **no** previously found object (these are new
//!   distinct results), and
//! * `d1` — detections that match an object which had been seen **exactly once**
//!   before (these decrement the chunk's `N1` statistic, because that object is no
//!   longer "seen exactly once").
//!
//! The discriminator the paper describes runs a SORT-like tracker forwards and
//! backwards through the video from each newly found object to compute its position
//! in every frame where it is visible; future detections are discarded if they
//! match those positions.  [`TrackingDiscriminator`] reproduces that behaviour in
//! the simulated pipeline: accepted objects expose their per-frame positions (the
//! tracker's output is exact in simulation), and future detections are matched
//! against those positions by IoU.  [`OracleDiscriminator`] instead matches on
//! ground-truth instance ids, which isolates the sampling behaviour from matching
//! noise in the controlled simulation experiments (Figures 2–4).

use exsample_detect::{Detection, FrameDetections, GroundTruth, InstanceId};
use exsample_video::FrameId;
use std::collections::HashMap;
use std::sync::Arc;

/// The discriminator's verdict on one frame's detections.
#[derive(Debug, Clone, Default)]
pub struct MatchOutcome {
    /// Detections that matched no previously found object (`d0` in Algorithm 1).
    pub new: Vec<Detection>,
    /// Detections whose matched object had been seen exactly once before (`d1`).
    pub matched_once: Vec<Detection>,
    /// Detections whose matched object had already been seen two or more times.
    pub matched_more: Vec<Detection>,
}

impl MatchOutcome {
    /// `|d0|`: the number of new distinct objects found in this frame.
    pub fn d0(&self) -> usize {
        self.new.len()
    }

    /// `|d1|`: the number of detections matching an object previously seen exactly
    /// once.
    pub fn d1(&self) -> usize {
        self.matched_once.len()
    }

    /// The increment ExSample applies to the sampled chunk's `N1` statistic,
    /// `|d0| - |d1|` (which may be negative).
    pub fn n1_delta(&self) -> i64 {
        self.d0() as i64 - self.d1() as i64
    }
}

/// Decides whether detections correspond to new or previously seen objects.
pub trait Discriminator {
    /// Process the detections of one (sampled) frame and update internal state.
    fn observe(&mut self, detections: &FrameDetections) -> MatchOutcome;

    /// Total number of distinct objects found so far (including any objects created
    /// from false-positive detections).
    fn distinct_count(&self) -> usize;

    /// The ground-truth instances found so far.  Excludes objects created from
    /// false positives; this is the quantity recall is computed over.
    fn found_instances(&self) -> Vec<InstanceId>;
}

/// Mutable references forward to the referenced discriminator, so execution
/// engines that box their discriminators can also borrow one owned by the
/// caller (e.g. the single-query `run_query` wrapper).
impl<X: Discriminator + ?Sized> Discriminator for &mut X {
    fn observe(&mut self, detections: &FrameDetections) -> MatchOutcome {
        (**self).observe(detections)
    }

    fn distinct_count(&self) -> usize {
        (**self).distinct_count()
    }

    fn found_instances(&self) -> Vec<InstanceId> {
        (**self).found_instances()
    }
}

/// A discriminator that matches detections by ground-truth instance id.
///
/// False-positive detections (no ground-truth link) are ignored entirely.
#[derive(Debug, Clone, Default)]
pub struct OracleDiscriminator {
    sightings: HashMap<InstanceId, u32>,
}

impl OracleDiscriminator {
    /// Create an empty oracle discriminator.
    pub fn new() -> Self {
        OracleDiscriminator::default()
    }

    /// Number of instances seen exactly once so far — the global `N1` statistic of
    /// Section III-A, before it is split per chunk.
    pub fn seen_exactly_once(&self) -> usize {
        self.sightings.values().filter(|&&count| count == 1).count()
    }
}

impl Discriminator for OracleDiscriminator {
    fn observe(&mut self, detections: &FrameDetections) -> MatchOutcome {
        let mut outcome = MatchOutcome::default();
        for det in &detections.detections {
            let Some(id) = det.truth else { continue };
            let count = self.sightings.entry(id).or_insert(0);
            match *count {
                0 => outcome.new.push(det.clone()),
                1 => outcome.matched_once.push(det.clone()),
                _ => outcome.matched_more.push(det.clone()),
            }
            *count += 1;
        }
        outcome
    }

    fn distinct_count(&self) -> usize {
        self.sightings.len()
    }

    fn found_instances(&self) -> Vec<InstanceId> {
        let mut ids: Vec<InstanceId> = self.sightings.keys().copied().collect();
        ids.sort();
        ids
    }
}

/// A track created from a false-positive detection.
#[derive(Debug, Clone)]
struct FalsePositiveTrack {
    frame: FrameId,
    bbox: exsample_detect::BBox,
    sightings: u32,
}

/// The paper-faithful discriminator: IoU matching against stored track positions.
///
/// When a detection is accepted as a new object, the discriminator obtains the
/// object's position in every frame where it is visible (in the real system, by
/// running a SORT-like tracker forwards and backwards; in this simulation, directly
/// from ground truth, which is exactly what an ideal tracker would return).  Later
/// detections are matched against those positions by IoU and are *not* reported as
/// new results.
#[derive(Debug, Clone)]
pub struct TrackingDiscriminator {
    truth: Arc<GroundTruth>,
    /// Minimum IoU for a detection to match a stored track position.
    min_iou: f64,
    /// Sighting counts of accepted ground-truth-backed tracks.
    instance_sightings: HashMap<InstanceId, u32>,
    /// Tracks created from false positives (matched only near their frame).
    false_positive_tracks: Vec<FalsePositiveTrack>,
    /// Temporal window (frames) within which a false-positive track can be matched.
    fp_window: u64,
}

impl TrackingDiscriminator {
    /// Create a tracking discriminator with the given IoU threshold.
    pub fn new(truth: Arc<GroundTruth>, min_iou: f64) -> Self {
        assert!((0.0..=1.0).contains(&min_iou));
        TrackingDiscriminator {
            truth,
            min_iou,
            instance_sightings: HashMap::new(),
            false_positive_tracks: Vec::new(),
            fp_window: 30,
        }
    }

    /// Create a discriminator with the defaults used in the evaluation (IoU 0.5).
    pub fn with_defaults(truth: Arc<GroundTruth>) -> Self {
        TrackingDiscriminator::new(truth, 0.5)
    }

    /// Number of objects created from false-positive detections.
    pub fn false_positive_objects(&self) -> usize {
        self.false_positive_tracks.len()
    }

    /// Try to match a detection against accepted instance tracks at this frame.
    fn match_instance_track(&self, frame: FrameId, det: &Detection) -> Option<InstanceId> {
        let mut best: Option<(InstanceId, f64)> = None;
        for inst in self.truth.visible_at(frame) {
            if !self.instance_sightings.contains_key(&inst.id()) {
                continue;
            }
            let Some(track_box) = inst.bbox_at(frame) else {
                continue;
            };
            let iou = det.bbox.iou(&track_box);
            if iou >= self.min_iou && best.is_none_or(|(_, b)| iou > b) {
                best = Some((inst.id(), iou));
            }
        }
        best.map(|(id, _)| id)
    }

    /// Try to match a detection against false-positive tracks near this frame.
    fn match_fp_track(
        &mut self,
        frame: FrameId,
        det: &Detection,
    ) -> Option<&mut FalsePositiveTrack> {
        let min_iou = self.min_iou;
        let window = self.fp_window;
        self.false_positive_tracks
            .iter_mut()
            .find(|t| frame.abs_diff(t.frame) <= window && det.bbox.iou(&t.bbox) >= min_iou)
    }
}

impl Discriminator for TrackingDiscriminator {
    fn observe(&mut self, detections: &FrameDetections) -> MatchOutcome {
        let frame = detections.frame;
        let mut outcome = MatchOutcome::default();
        for det in &detections.detections {
            // 1) Match against accepted instance-backed tracks by position.
            if let Some(id) = self.match_instance_track(frame, det) {
                let count = self
                    .instance_sightings
                    .get_mut(&id)
                    .expect("matched track must be accepted");
                match *count {
                    1 => outcome.matched_once.push(det.clone()),
                    _ => outcome.matched_more.push(det.clone()),
                }
                *count += 1;
                continue;
            }
            // 2) Match against false-positive tracks.
            if let Some(track) = self.match_fp_track(frame, det) {
                match track.sightings {
                    1 => outcome.matched_once.push(det.clone()),
                    _ => outcome.matched_more.push(det.clone()),
                }
                track.sightings += 1;
                continue;
            }
            // 3) A new object.  Accept it and record its track.
            match det.truth {
                Some(id) => {
                    // Guard against two detections of the same not-yet-accepted
                    // instance arriving in a single frame (possible only with
                    // duplicate boxes); treat the second as a repeat sighting.
                    let count = self.instance_sightings.entry(id).or_insert(0);
                    if *count == 0 {
                        outcome.new.push(det.clone());
                    } else if *count == 1 {
                        outcome.matched_once.push(det.clone());
                    } else {
                        outcome.matched_more.push(det.clone());
                    }
                    *count += 1;
                }
                None => {
                    self.false_positive_tracks.push(FalsePositiveTrack {
                        frame,
                        bbox: det.bbox,
                        sightings: 1,
                    });
                    outcome.new.push(det.clone());
                }
            }
        }
        outcome
    }

    fn distinct_count(&self) -> usize {
        self.instance_sightings.len() + self.false_positive_tracks.len()
    }

    fn found_instances(&self) -> Vec<InstanceId> {
        let mut ids: Vec<InstanceId> = self.instance_sightings.keys().copied().collect();
        ids.sort();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exsample_detect::{BBox, Detector, ObjectClass, ObjectInstance, PerfectDetector};

    fn truth() -> Arc<GroundTruth> {
        Arc::new(GroundTruth::from_instances(
            10_000,
            vec![
                ObjectInstance::simple(0, "car", 0, 999),
                ObjectInstance::simple(1, "car", 2_000, 2_999),
            ],
        ))
    }

    fn detect_at(truth: &Arc<GroundTruth>, frame: FrameId) -> FrameDetections {
        PerfectDetector::new(Arc::clone(truth), ObjectClass::from("car")).detect(frame)
    }

    #[test]
    fn oracle_counts_first_second_and_later_sightings() {
        let truth = truth();
        let mut d = OracleDiscriminator::new();

        let o = d.observe(&detect_at(&truth, 100));
        assert_eq!((o.d0(), o.d1()), (1, 0));
        assert_eq!(o.n1_delta(), 1);

        let o = d.observe(&detect_at(&truth, 200));
        assert_eq!((o.d0(), o.d1()), (0, 1));
        assert_eq!(o.n1_delta(), -1);

        let o = d.observe(&detect_at(&truth, 300));
        assert_eq!((o.d0(), o.d1()), (0, 0));
        assert_eq!(o.matched_more.len(), 1);

        assert_eq!(d.distinct_count(), 1);
        assert_eq!(d.found_instances(), vec![InstanceId(0)]);
    }

    #[test]
    fn oracle_ignores_false_positives() {
        let mut d = OracleDiscriminator::new();
        let fp = FrameDetections::new(
            5,
            vec![Detection::new(
                BBox::new(0.1, 0.1, 0.1, 0.1),
                ObjectClass::from("car"),
                0.4,
            )],
        );
        let o = d.observe(&fp);
        assert_eq!(o.d0(), 0);
        assert_eq!(d.distinct_count(), 0);
    }

    #[test]
    fn tracking_discriminator_matches_repeat_sightings_by_position() {
        let truth = truth();
        let mut d = TrackingDiscriminator::with_defaults(Arc::clone(&truth));

        let o = d.observe(&detect_at(&truth, 100));
        assert_eq!(o.d0(), 1);
        // Same object 500 frames later: positions identical (static motion), so it
        // must match and count as the second sighting.
        let o = d.observe(&detect_at(&truth, 600));
        assert_eq!((o.d0(), o.d1()), (0, 1));
        // A different object in a different time range is new.
        let o = d.observe(&detect_at(&truth, 2_500));
        assert_eq!(o.d0(), 1);

        assert_eq!(d.distinct_count(), 2);
        assert_eq!(d.found_instances(), vec![InstanceId(0), InstanceId(1)]);
        assert_eq!(d.false_positive_objects(), 0);
    }

    #[test]
    fn tracking_discriminator_counts_false_positive_objects() {
        let truth = truth();
        let mut d = TrackingDiscriminator::with_defaults(Arc::clone(&truth));
        let fp_box = BBox::new(0.7, 0.7, 0.05, 0.05);
        let fp = FrameDetections::new(
            50,
            vec![Detection::new(fp_box, ObjectClass::from("car"), 0.4)],
        );
        let o = d.observe(&fp);
        assert_eq!(o.d0(), 1);
        assert_eq!(d.false_positive_objects(), 1);
        // The same spurious box a few frames later matches the stored FP track.
        let fp2 = FrameDetections::new(
            60,
            vec![Detection::new(fp_box, ObjectClass::from("car"), 0.4)],
        );
        let o = d.observe(&fp2);
        assert_eq!((o.d0(), o.d1()), (0, 1));
        // But far away in time it is treated as a new object again.
        let fp3 = FrameDetections::new(
            5_000,
            vec![Detection::new(fp_box, ObjectClass::from("car"), 0.4)],
        );
        let o = d.observe(&fp3);
        assert_eq!(o.d0(), 1);
        // Found ground-truth instances exclude false positives.
        assert!(d.found_instances().is_empty());
        assert_eq!(d.distinct_count(), 2);
    }

    #[test]
    fn tracking_discriminator_two_detections_same_frame_same_instance() {
        let truth = truth();
        let mut d = TrackingDiscriminator::with_defaults(Arc::clone(&truth));
        // Duplicate boxes for the same instance in one frame: the first is new, the
        // second is a repeat sighting, never two new objects.
        let dets = detect_at(&truth, 100);
        let doubled = FrameDetections::new(
            100,
            vec![dets.detections[0].clone(), dets.detections[0].clone()],
        );
        let o = d.observe(&doubled);
        assert_eq!(o.d0(), 1);
        assert_eq!(o.d1(), 1);
        assert_eq!(d.distinct_count(), 1);
    }

    #[test]
    fn n1_delta_can_go_negative() {
        let truth = truth();
        let mut d = OracleDiscriminator::new();
        d.observe(&detect_at(&truth, 100));
        let o = d.observe(&detect_at(&truth, 101));
        assert_eq!(o.n1_delta(), -1);
    }

    #[test]
    fn overlapping_instances_can_be_merged_by_position_matching() {
        // Two distinct instances share the same static box over overlapping
        // intervals.  After the first is accepted, a detection of the second at an
        // overlapping frame matches the first track by IoU: the discriminator
        // reports a repeat sighting, not a new object.  This mirrors the real
        // system's behaviour (and its potential for under-counting).
        let truth = Arc::new(GroundTruth::from_instances(
            1_000,
            vec![
                ObjectInstance::simple(0, "car", 0, 500),
                ObjectInstance::simple(1, "car", 400, 900),
            ],
        ));
        let mut d = TrackingDiscriminator::with_defaults(Arc::clone(&truth));
        let o = d.observe(&detect_at(&truth, 100));
        assert_eq!(o.d0(), 1);
        // Frame 450: both instances visible with identical boxes; both detections
        // match the accepted track for instance 0.
        let o = d.observe(&detect_at(&truth, 450));
        assert_eq!(o.d0(), 0);
        assert_eq!(d.distinct_count(), 1);
    }
}
