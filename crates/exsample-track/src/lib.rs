//! # exsample-track
//!
//! IoU matching, SORT-style multi-object tracking, and the **discriminator** that
//! turns raw detections into *distinct object* results.
//!
//! Distinct-object queries (Section II-B of the paper) require that each returned
//! result correspond to a different physical object: detecting the same traffic
//! light in two frames several seconds apart yields only one result.  The paper
//! resolves this with a discriminator that runs a SORT-like IoU tracker forwards
//! and backwards from each newly found object and discards future detections that
//! match previously observed positions.
//!
//! This crate provides:
//!
//! * [`matcher`] — greedy IoU matching between two sets of boxes, the primitive
//!   both the tracker and the discriminator are built on.
//! * [`tracker`] — a SORT-like tracker that links per-frame detections into tracks;
//!   used to build approximate ground truth by sequential scanning, exactly as the
//!   paper does for its evaluation datasets.
//! * [`discriminator`] — the [`discriminator::Discriminator`] trait plus the
//!   [`discriminator::TrackingDiscriminator`] (paper-faithful, IoU against stored
//!   track positions) and [`discriminator::OracleDiscriminator`] (matches on
//!   ground-truth instance ids; used to isolate sampling behaviour from matching
//!   noise in controlled simulations).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod discriminator;
pub mod ground_truth_builder;
pub mod matcher;
pub mod tracker;

pub use discriminator::{Discriminator, MatchOutcome, OracleDiscriminator, TrackingDiscriminator};
pub use ground_truth_builder::{build_ground_truth, GroundTruthBuildConfig};
pub use matcher::{greedy_iou_match, MatchPair};
pub use tracker::{IouTracker, Track, TrackId};
