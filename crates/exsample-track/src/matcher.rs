//! Greedy IoU matching between two sets of boxes.
//!
//! Both the SORT-like tracker and the discriminator need to associate detections
//! with existing objects.  The paper uses IoU (intersection-over-union) matching "a
//! simple baseline for multi-object tracking that leverages the output of an object
//! detector and matches detection boxes based on overlap across adjacent frames".
//! A greedy assignment by descending IoU is the standard SORT-style approximation
//! of the optimal (Hungarian) assignment and is what we implement here.

use exsample_detect::BBox;

/// One matched pair: indices into the left and right box lists plus their IoU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchPair {
    /// Index into the left (existing objects / previous frame) list.
    pub left: usize,
    /// Index into the right (new detections / current frame) list.
    pub right: usize,
    /// IoU of the matched pair.
    pub iou: f64,
}

/// Greedily match `left` boxes to `right` boxes by descending IoU.
///
/// Each left box and each right box participates in at most one pair, and only
/// pairs with IoU at least `min_iou` are produced.  The result is sorted by
/// descending IoU.
pub fn greedy_iou_match(left: &[BBox], right: &[BBox], min_iou: f64) -> Vec<MatchPair> {
    assert!(
        (0.0..=1.0).contains(&min_iou),
        "IoU threshold must be in [0, 1], got {min_iou}"
    );
    // Compute every candidate pair above the threshold.
    let mut candidates: Vec<MatchPair> = Vec::new();
    for (li, lb) in left.iter().enumerate() {
        for (ri, rb) in right.iter().enumerate() {
            let iou = lb.iou(rb);
            if iou >= min_iou && iou > 0.0 {
                candidates.push(MatchPair {
                    left: li,
                    right: ri,
                    iou,
                });
            }
        }
    }
    // Greedy selection by descending IoU.
    candidates.sort_by(|a, b| b.iou.partial_cmp(&a.iou).expect("IoU is never NaN"));
    let mut used_left = vec![false; left.len()];
    let mut used_right = vec![false; right.len()];
    let mut matches = Vec::new();
    for cand in candidates {
        if used_left[cand.left] || used_right[cand.right] {
            continue;
        }
        used_left[cand.left] = true;
        used_right[cand.right] = true;
        matches.push(cand);
    }
    matches
}

/// Indices of right-hand boxes that were not matched by `matches`.
pub fn unmatched_right(right_len: usize, matches: &[MatchPair]) -> Vec<usize> {
    let mut used = vec![false; right_len];
    for m in matches {
        used[m.right] = true;
    }
    (0..right_len).filter(|&i| !used[i]).collect()
}

/// Indices of left-hand boxes that were not matched by `matches`.
pub fn unmatched_left(left_len: usize, matches: &[MatchPair]) -> Vec<usize> {
    let mut used = vec![false; left_len];
    for m in matches {
        used[m.left] = true;
    }
    (0..left_len).filter(|&i| !used[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(x: f64, y: f64) -> BBox {
        BBox::new(x, y, 0.1, 0.1)
    }

    #[test]
    fn identical_boxes_match() {
        let left = vec![b(0.1, 0.1), b(0.5, 0.5)];
        let right = vec![b(0.5, 0.5), b(0.1, 0.1)];
        let m = greedy_iou_match(&left, &right, 0.5);
        assert_eq!(m.len(), 2);
        // Pairs are (0 -> 1) and (1 -> 0).
        assert!(m.iter().any(|p| p.left == 0 && p.right == 1));
        assert!(m.iter().any(|p| p.left == 1 && p.right == 0));
        assert!(m.iter().all(|p| (p.iou - 1.0).abs() < 1e-12));
    }

    #[test]
    fn below_threshold_pairs_are_dropped() {
        // Overlap of about IoU = 1/3.
        let left = vec![BBox::new(0.0, 0.0, 0.2, 0.2)];
        let right = vec![BBox::new(0.1, 0.0, 0.2, 0.2)];
        assert_eq!(greedy_iou_match(&left, &right, 0.5).len(), 0);
        assert_eq!(greedy_iou_match(&left, &right, 0.3).len(), 1);
    }

    #[test]
    fn each_box_matched_at_most_once() {
        // Two left boxes both overlap the single right box; only the better match
        // survives.
        let left = vec![
            BBox::new(0.0, 0.0, 0.2, 0.2),
            BBox::new(0.05, 0.0, 0.2, 0.2),
        ];
        let right = vec![BBox::new(0.04, 0.0, 0.2, 0.2)];
        let m = greedy_iou_match(&left, &right, 0.1);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].left, 1, "the closer left box should win");
    }

    #[test]
    fn greedy_prefers_higher_iou_globally() {
        // left0 overlaps right0 strongly and right1 weakly; left1 overlaps right0
        // weakly. Greedy should pair (left0, right0) and leave left1/right1 to pair
        // only if above threshold.
        let left = vec![
            BBox::new(0.0, 0.0, 0.2, 0.2),
            BBox::new(0.15, 0.0, 0.2, 0.2),
        ];
        let right = vec![
            BBox::new(0.01, 0.0, 0.2, 0.2),
            BBox::new(0.3, 0.0, 0.2, 0.2),
        ];
        let m = greedy_iou_match(&left, &right, 0.05);
        assert!(m.iter().any(|p| p.left == 0 && p.right == 0));
        // left1 vs right1: boxes at x=0.15 and x=0.3 with width 0.2 overlap 0.05 ->
        // IoU = 0.05/0.35 ≈ 0.14, above threshold, so it should also match.
        assert!(m.iter().any(|p| p.left == 1 && p.right == 1));
    }

    #[test]
    fn unmatched_helpers() {
        let left = vec![b(0.1, 0.1), b(0.9, 0.9)];
        let right = vec![b(0.1, 0.1), b(0.4, 0.4), b(0.6, 0.6)];
        let m = greedy_iou_match(&left, &right, 0.5);
        assert_eq!(m.len(), 1);
        assert_eq!(unmatched_right(right.len(), &m), vec![1, 2]);
        assert_eq!(unmatched_left(left.len(), &m), vec![1]);
    }

    #[test]
    fn empty_inputs() {
        assert!(greedy_iou_match(&[], &[], 0.5).is_empty());
        assert!(greedy_iou_match(&[b(0.1, 0.1)], &[], 0.5).is_empty());
        assert!(greedy_iou_match(&[], &[b(0.1, 0.1)], 0.5).is_empty());
        assert_eq!(unmatched_right(0, &[]), Vec::<usize>::new());
    }

    #[test]
    #[should_panic(expected = "IoU threshold")]
    fn invalid_threshold_panics() {
        let _ = greedy_iou_match(&[], &[], 1.5);
    }

    #[test]
    fn result_sorted_by_descending_iou() {
        let left = vec![BBox::new(0.0, 0.0, 0.2, 0.2), BBox::new(0.5, 0.5, 0.2, 0.2)];
        let right = vec![
            BBox::new(0.02, 0.0, 0.2, 0.2),
            BBox::new(0.58, 0.5, 0.2, 0.2),
        ];
        let m = greedy_iou_match(&left, &right, 0.1);
        assert_eq!(m.len(), 2);
        assert!(m[0].iou >= m[1].iou);
    }
}
