//! Typed errors for the simulation harness.
//!
//! The runner and sweep entry points historically `expect`ed their invariants
//! (a dataset with at least one class, a successfully configured engine, a
//! positive trial count).  Now that the engine reports typed
//! [`EngineError`]s, the harness propagates them — and its own configuration
//! mistakes — as [`SimError`]s instead of panicking.

use exsample_engine::EngineError;
use std::fmt;

/// A configuration or execution error from the simulation harness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The execution engine rejected the run's configuration.
    Engine(EngineError),
    /// A query was run over a dataset with no object classes and no explicit
    /// query class.
    NoClasses,
    /// A sweep was requested with zero trials.
    NoTrials,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Engine(inner) => inner.fmt(f),
            SimError::NoClasses => write!(
                f,
                "the dataset has no object classes and no query class was chosen"
            ),
            SimError::NoTrials => write!(f, "a sweep needs at least one trial"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Engine(inner) => Some(inner),
            _ => None,
        }
    }
}

impl From<EngineError> for SimError {
    fn from(inner: EngineError) -> Self {
        SimError::Engine(inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source_are_wired() {
        let err = SimError::from(EngineError::NoQueries);
        assert!(err.to_string().contains("no queries"));
        assert!(std::error::Error::source(&err).is_some());
        assert!(SimError::NoClasses
            .to_string()
            .contains("no object classes"));
        assert!(SimError::NoTrials
            .to_string()
            .contains("at least one trial"));
        assert!(std::error::Error::source(&SimError::NoTrials).is_none());
    }
}
