//! Typed errors for the simulation harness.
//!
//! The runner and sweep entry points historically `expect`ed their invariants
//! (a dataset with at least one class, a successfully configured engine, a
//! positive trial count).  Now that the engine reports typed
//! [`EngineError`]s, the harness propagates them — and its own configuration
//! mistakes — as [`SimError`]s instead of panicking.

use exsample_engine::EngineError;
use exsample_store::StoreError;
use std::fmt;

/// A configuration or execution error from the simulation harness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The execution engine rejected the run's configuration.
    Engine(EngineError),
    /// The durable belief store failed — opening or recovering a checkpoint
    /// directory, persisting a stage commit, or writing the final snapshot
    /// (see [`crate::QueryRunner::checkpoint`] and
    /// [`crate::QueryRunner::warm_start`]).  When a stage commit fails
    /// mid-run the runner re-chains the concrete [`StoreError`] here instead
    /// of surfacing the engine's stringly-typed `CheckpointFailed`.
    Store(StoreError),
    /// A query was run over a dataset with no object classes and no explicit
    /// query class.
    NoClasses,
    /// A sweep was requested with zero trials.
    NoTrials,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Engine(inner) => inner.fmt(f),
            SimError::Store(inner) => inner.fmt(f),
            SimError::NoClasses => write!(
                f,
                "the dataset has no object classes and no query class was chosen"
            ),
            SimError::NoTrials => write!(f, "a sweep needs at least one trial"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Engine(inner) => Some(inner),
            SimError::Store(inner) => Some(inner),
            _ => None,
        }
    }
}

impl From<EngineError> for SimError {
    fn from(inner: EngineError) -> Self {
        SimError::Engine(inner)
    }
}

impl From<StoreError> for SimError {
    fn from(inner: StoreError) -> Self {
        SimError::Store(inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source_are_wired() {
        let err = SimError::from(EngineError::NoQueries);
        assert!(err.to_string().contains("no queries"));
        assert!(std::error::Error::source(&err).is_some());
        assert!(SimError::NoClasses
            .to_string()
            .contains("no object classes"));
        assert!(SimError::NoTrials
            .to_string()
            .contains("at least one trial"));
        assert!(std::error::Error::source(&SimError::NoTrials).is_none());
        let store = SimError::from(StoreError::InvalidRecord {
            detail: "class id 9 was never interned".to_string(),
        });
        assert!(store.to_string().contains("class id 9"));
        assert!(std::error::Error::source(&store).is_some());
    }
}
