//! Recall-trajectory metrics and multi-trial aggregation.
//!
//! The evaluation reports (a) *savings ratios*: how many fewer frames (equivalently,
//! how much less time) ExSample needs than random sampling to reach a given number
//! of results or recall level (Figures 3 and 5), and (b) *trajectory bands*: the
//! median and 25–75 percentile envelope of instances-found-vs-frames-sampled curves
//! across repeated trials (the solid lines and shaded regions of Figures 3 and 4).

use crate::runner::{RunResult, TrajectoryPoint};
use exsample_rand::Summary;

/// Frames needed by a trajectory to reach `count` found instances, or `None`.
pub fn frames_to_count(trajectory: &[TrajectoryPoint], count: usize) -> Option<u64> {
    if count == 0 {
        return Some(0);
    }
    trajectory
        .iter()
        .find(|p| p.found >= count)
        .map(|p| p.frames)
}

/// The savings ratio of `method` over `baseline` at a result-count target:
/// `frames_baseline / frames_method`.
///
/// Returns `None` if either run never reached the target.  Ratios above 1 mean the
/// method needed fewer frames than the baseline (a 6x ratio is the paper's best
/// case; 0.75x its worst).
pub fn savings_ratio(method: &RunResult, baseline: &RunResult, count: usize) -> Option<f64> {
    let m = method.frames_to_count(count)?;
    let b = baseline.frames_to_count(count)?;
    if m == 0 {
        // Both reached the target "for free" (count == 0 handled by caller); treat
        // zero-cost method frames as a ratio of exactly the baseline cost.
        return Some((b as f64).max(1.0));
    }
    Some(b as f64 / m as f64)
}

/// The savings ratio at a recall level rather than an absolute count.
pub fn savings_ratio_at_recall(
    method: &RunResult,
    baseline: &RunResult,
    recall: f64,
) -> Option<f64> {
    let m = method.frames_to_recall(recall)?;
    let b = baseline.frames_to_recall(recall)?;
    if m == 0 {
        return Some((b as f64).max(1.0));
    }
    Some(b as f64 / m as f64)
}

/// The number of instances a trajectory had found after `frames` samples.
pub fn found_at(trajectory: &[TrajectoryPoint], frames: u64) -> usize {
    trajectory
        .iter()
        .take_while(|p| p.frames <= frames)
        .last()
        .map_or(0, |p| p.found)
}

/// Median and 25–75 percentile band of instances found at fixed frame checkpoints,
/// aggregated over many trials of the same configuration.
#[derive(Debug, Clone)]
pub struct TrajectoryBand {
    /// The frame checkpoints the band is evaluated at.
    pub checkpoints: Vec<u64>,
    /// Median instances found at each checkpoint.
    pub median: Vec<f64>,
    /// 25th percentile at each checkpoint.
    pub p25: Vec<f64>,
    /// 75th percentile at each checkpoint.
    pub p75: Vec<f64>,
}

impl TrajectoryBand {
    /// Aggregate the trajectories of several trials at the given checkpoints.
    ///
    /// # Panics
    /// Panics if `trials` is empty.
    pub fn from_trials(trials: &[RunResult], checkpoints: &[u64]) -> Self {
        assert!(!trials.is_empty(), "need at least one trial to aggregate");
        let mut median = Vec::with_capacity(checkpoints.len());
        let mut p25 = Vec::with_capacity(checkpoints.len());
        let mut p75 = Vec::with_capacity(checkpoints.len());
        for &frames in checkpoints {
            let mut summary = Summary::new();
            for trial in trials {
                summary.push(found_at(&trial.trajectory, frames) as f64);
            }
            median.push(summary.percentile(0.5));
            p25.push(summary.percentile(0.25));
            p75.push(summary.percentile(0.75));
        }
        TrajectoryBand {
            checkpoints: checkpoints.to_vec(),
            median,
            p25,
            p75,
        }
    }
}

/// Logarithmically spaced frame checkpoints from 1 to `max_frames`, as used on the
/// log-scale x-axes of Figures 3 and 4.
pub fn log_checkpoints(max_frames: u64, points: usize) -> Vec<u64> {
    assert!(points >= 2, "need at least two checkpoints");
    assert!(max_frames >= 1);
    let max = max_frames as f64;
    let mut out: Vec<u64> = (0..points)
        .map(|i| {
            let t = i as f64 / (points - 1) as f64;
            max.powf(t).round() as u64
        })
        .collect();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result_with_trajectory(points: &[(u64, usize)]) -> RunResult {
        RunResult {
            method: "test".to_string(),
            frames_processed: points.last().map_or(0, |p| p.0),
            upfront_scan_frames: 0,
            distinct_found: points.last().map_or(0, |p| p.1),
            true_found: points.last().map_or(0, |p| p.1),
            total_instances: 100,
            found_instances: Vec::new(),
            trajectory: points
                .iter()
                .map(|&(frames, found)| TrajectoryPoint { frames, found })
                .collect(),
            scan_secs: 0.0,
            sample_secs: 0.0,
            detect_retries: 0,
            failed_frames: 0,
            dropped_frames: 0,
            selection: None,
            cache: None,
            store: None,
        }
    }

    #[test]
    fn frames_to_count_finds_first_crossing() {
        let t = result_with_trajectory(&[(5, 1), (20, 2), (100, 3)]);
        assert_eq!(frames_to_count(&t.trajectory, 0), Some(0));
        assert_eq!(frames_to_count(&t.trajectory, 1), Some(5));
        assert_eq!(frames_to_count(&t.trajectory, 3), Some(100));
        assert_eq!(frames_to_count(&t.trajectory, 4), None);
    }

    #[test]
    fn savings_ratio_compares_methods() {
        let fast = result_with_trajectory(&[(10, 1), (50, 10)]);
        let slow = result_with_trajectory(&[(100, 1), (400, 10)]);
        assert_eq!(savings_ratio(&fast, &slow, 10), Some(8.0));
        assert_eq!(savings_ratio(&slow, &fast, 10), Some(0.125));
        assert_eq!(savings_ratio(&fast, &slow, 11), None);
    }

    #[test]
    fn savings_ratio_at_recall_uses_total_instances() {
        // total_instances = 100, so recall 0.1 needs 10 found.
        let fast = result_with_trajectory(&[(10, 5), (50, 10)]);
        let slow = result_with_trajectory(&[(100, 5), (500, 10)]);
        assert_eq!(savings_ratio_at_recall(&fast, &slow, 0.1), Some(10.0));
        assert_eq!(savings_ratio_at_recall(&fast, &slow, 0.5), None);
    }

    #[test]
    fn found_at_interpolates_step_function() {
        let t = result_with_trajectory(&[(5, 1), (20, 2)]);
        assert_eq!(found_at(&t.trajectory, 4), 0);
        assert_eq!(found_at(&t.trajectory, 5), 1);
        assert_eq!(found_at(&t.trajectory, 19), 1);
        assert_eq!(found_at(&t.trajectory, 1_000), 2);
    }

    #[test]
    fn trajectory_band_aggregates_percentiles() {
        let trials = vec![
            result_with_trajectory(&[(10, 1), (100, 10)]),
            result_with_trajectory(&[(10, 3), (100, 20)]),
            result_with_trajectory(&[(10, 5), (100, 30)]),
        ];
        let band = TrajectoryBand::from_trials(&trials, &[10, 100]);
        assert_eq!(band.median, vec![3.0, 20.0]);
        assert_eq!(band.p25, vec![2.0, 15.0]);
        assert_eq!(band.p75, vec![4.0, 25.0]);
        assert_eq!(band.checkpoints, vec![10, 100]);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn empty_trials_panic() {
        let _ = TrajectoryBand::from_trials(&[], &[10]);
    }

    #[test]
    fn log_checkpoints_are_increasing_and_span_range() {
        let cps = log_checkpoints(10_000, 9);
        assert_eq!(*cps.first().unwrap(), 1);
        assert_eq!(*cps.last().unwrap(), 10_000);
        assert!(cps.windows(2).all(|w| w[0] < w[1]));
    }
}
