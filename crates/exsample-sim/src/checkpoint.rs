//! Durable checkpointing for the query runner.
//!
//! [`CheckpointSink`] bridges the engine's stage-commit hook
//! ([`exsample_engine::StageSink`]) to a crash-safe
//! [`exsample_store::BeliefStore`]: every committed stage's belief deltas and
//! newly found results are appended to the store's log and committed as one
//! atomic stage, so a killed run can recover the exact posterior of its last
//! committed stage and warm-start from it (see
//! [`crate::QueryRunner::checkpoint`] / [`crate::QueryRunner::warm_start`]).
//!
//! The engine's sink seam speaks `Result<(), String>` (the engine cannot
//! depend on the store crate); the sink parks the concrete [`StoreError`] in
//! a shared cell so the runner can re-chain the typed error as
//! [`crate::SimError::Store`] instead of surfacing a stringly-typed
//! `CheckpointFailed`.

use exsample_engine::{StageObservation, StageSink};
use exsample_store::{BeliefStore, StoreError};
use exsample_video::Chunking;
use std::cell::RefCell;
use std::rc::Rc;

/// The store, shared between the engine's sink and the runner (the runner
/// takes the final checkpoint and reads the health counters after the run).
pub(crate) type SharedStore = Rc<RefCell<BeliefStore>>;

/// Where the sink parks a concrete [`StoreError`] for the runner to re-chain.
pub(crate) type StoreErrorCell = Rc<RefCell<Option<StoreError>>>;

/// A [`StageSink`] that persists each committed stage into a [`BeliefStore`].
pub(crate) struct CheckpointSink<'a> {
    pub(crate) store: SharedStore,
    pub(crate) error: StoreErrorCell,
    /// The store's interned id for the run's query class.
    pub(crate) class: u32,
    /// Maps observed frames back to their chunk — the key the belief store
    /// (and the warm-started sampler) is indexed by.
    pub(crate) chunking: &'a Chunking,
}

impl StageSink for CheckpointSink<'_> {
    fn stage_committed(
        &mut self,
        stage: u64,
        observations: &[StageObservation],
    ) -> Result<(), String> {
        let mut store = self.store.borrow_mut();
        let result = (|| -> Result<(), StoreError> {
            for obs in observations {
                let chunk = self.chunking.chunk_of_frame(obs.frame).0;
                store.append_delta(self.class, chunk, obs.n1_delta, 1, stage)?;
                for id in &obs.new_instances {
                    store.append_result(self.class, obs.frame, id.0, stage)?;
                }
            }
            // Stages with no observations still commit a marker, so the
            // recovery cursor tracks the run stage for stage.
            store.commit_stage(stage)
        })();
        result.map_err(|error| {
            let message = error.to_string();
            *self.error.borrow_mut() = Some(error);
            message
        })
    }
}
