//! # exsample-sim
//!
//! The experiment harness of the ExSample reproduction: it runs distinct-object
//! queries end-to-end (sampling method → simulated decode → simulated detector →
//! discriminator), accounts for virtual GPU/decode time the way the paper does,
//! and aggregates multi-trial sweeps into the statistics the evaluation reports
//! (medians, 25–75 % bands, savings ratios, geometric means).
//!
//! * [`clock`] — virtual time accounting on top of the decode/detector cost model
//!   (scan at ~100 fps, sampled processing at ~20 fps) plus Table-I-style duration
//!   formatting (`"1m37s"`, `"2h58m"`).
//! * [`runner`] — [`runner::QueryRunner`]: configure a query (dataset, class, stop
//!   condition, detector noise, discriminator) and run any
//!   [`exsample_baselines::SamplingMethod`].  Execution happens on a
//!   single-query `exsample-engine` `QueryEngine` (batch 1), with the virtual
//!   clock charged from the engine's per-stage accounting hook; `shards(n)`
//!   partitions the DETECT phase across shard workers and `parallel(n)` runs
//!   those workers on the engine's persistent per-run worker pool, both
//!   bitwise-identical to the serial unsharded run (`parallel(0)` is the
//!   engine's typed `InvalidExecution` error).
//! * [`checkpoint`] (private) — the bridge from the engine's stage-commit
//!   hook to the crash-safe `exsample-store` belief store:
//!   `QueryRunner::checkpoint(path)` persists every committed stage's belief
//!   deltas and results, `QueryRunner::warm_start(path)` seeds a fresh
//!   ExSample run from a recovered store's posterior.
//! * [`metrics`] — recall trajectories, frames-to-recall, savings ratios, and
//!   aggregation of trajectories across trials.
//! * [`sweep`] — run many trials (optionally in parallel) and collect their
//!   results.
//! * [`table`] — plain-text/markdown table rendering for the experiment binaries.

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod checkpoint;
pub mod clock;
pub mod error;
pub mod metrics;
pub mod runner;
pub mod sweep;
pub mod table;

pub use clock::{format_duration, VirtualClock};
pub use error::SimError;
pub use metrics::{frames_to_count, savings_ratio, TrajectoryBand};
pub use runner::{MethodKind, QueryRunner, RunResult, StopCondition, TrajectoryPoint};
pub use sweep::{run_trials, TrialSet};
pub use table::Table;
