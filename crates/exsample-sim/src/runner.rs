//! End-to-end query execution.
//!
//! [`QueryRunner`] configures one distinct-object query over a [`Dataset`] and runs
//! it with any sampling method, producing a [`RunResult`] with the full recall
//! trajectory and virtual time accounting.  This is the harness every experiment
//! binary and integration test is built on.
//!
//! Execution is delegated to `exsample-engine`: the runner translates its stop
//! condition into engine limits, wraps the method in a
//! [`exsample_engine::MethodPolicy`], and runs a single-query engine at batch
//! size 1 — the configuration that consumes the RNG stream exactly as the
//! historical hand-written pick→detect→record loop did.  The virtual clock is
//! charged from the engine's per-stage cost-accounting hook.  With
//! [`QueryRunner::shards`] the engine's DETECT phase is partitioned across
//! shard workers (contiguous-range chunk assignment), and with
//! [`QueryRunner::parallel`] those workers' detector invocations run on the
//! engine's persistent worker pool (spawned once per run, woken per stage);
//! results are bitwise-identical to the unsharded serial run either way —
//! sharding and parallelism only change where the detector work executes.
//!
//! Configuration and execution errors surface as typed [`SimError`]s instead
//! of panics.

use crate::checkpoint::{CheckpointSink, SharedStore, StoreErrorCell};
use crate::clock::VirtualClock;
use crate::error::SimError;
use exsample_baselines::{
    ProxyBaseline, ProxyConfig, RandomPlusSampler, RandomSampler, SamplingMethod, SequentialScan,
};
use exsample_core::{ExSample, ExSampleConfig};
use exsample_data::Dataset;
use exsample_detect::{
    Detector, DetectorNoise, FaultInjectingDetector, FaultPlan, InstanceId, ObjectClass,
    PerfectDetector, SimulatedDetector,
};
use exsample_engine::{
    BatchAggregation, CacheActivity, ExSamplePolicy, ExecutionMode, FailureMode, MethodPolicy,
    QueryEngine, QuerySpec, RetryPolicy, SamplingPolicy, SelectionTelemetry, ShardRouter,
};
use exsample_rand::SeedSequence;
use exsample_store::{BeliefStore, StoreHealth};
use exsample_track::{Discriminator, OracleDiscriminator, TrackingDiscriminator};
use exsample_video::DecodeCostModel;
use std::cell::RefCell;
use std::path::PathBuf;
use std::rc::Rc;
use std::sync::Arc;

/// When to stop a query run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StopCondition {
    /// Stop after this many distinct results (the paper's limit queries, e.g.
    /// "find 20 traffic lights").
    DistinctResults(usize),
    /// Stop after finding this fraction of all ground-truth instances of the query
    /// class (the recall levels 0.1 / 0.5 / 0.9 of the evaluation).
    Recall(f64),
    /// Stop after processing this many frames through the detector.
    FrameBudget(u64),
    /// Run until the sampling method exhausts the repository.
    Exhaustive,
}

/// Which discriminator the runner uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiscriminatorKind {
    /// Match detections by ground-truth instance id (controlled simulations).
    Oracle,
    /// The paper-faithful IoU-against-track-positions discriminator.
    Tracking,
}

/// Convenience selector for the built-in sampling methods.
#[derive(Debug, Clone, PartialEq)]
pub enum MethodKind {
    /// ExSample with the given configuration.
    ExSample(ExSampleConfig),
    /// Uniform random sampling without replacement.
    Random,
    /// `random+` hierarchical sampling.
    RandomPlus,
    /// Sequential scan with the given stride.
    Sequential {
        /// Visit one frame out of every `stride`.
        stride: u64,
    },
    /// BlazeIt-style proxy ordering with the given configuration.
    Proxy(ProxyConfig),
}

pub use exsample_engine::TrajectoryPoint;

/// The result of one query run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Name of the sampling method ("exsample", "random", …).
    pub method: String,
    /// Frames processed through the object detector.
    pub frames_processed: u64,
    /// Frames the method had to scan before producing its first pick (proxy only).
    pub upfront_scan_frames: u64,
    /// Distinct objects reported by the discriminator (may include objects created
    /// from false-positive detections).
    pub distinct_found: usize,
    /// Distinct ground-truth instances found.
    pub true_found: usize,
    /// Total ground-truth instances of the query class in the dataset.
    pub total_instances: usize,
    /// The ground-truth instances found.
    pub found_instances: Vec<InstanceId>,
    /// Recall trajectory: one point per newly found ground-truth instance.
    pub trajectory: Vec<TrajectoryPoint>,
    /// Virtual seconds spent scanning (upfront) at the cost model's scan rate.
    pub scan_secs: f64,
    /// Virtual seconds spent on sampled processing (decode + detector),
    /// including any deterministic retry backoff charged as frame-equivalent
    /// cost.
    pub sample_secs: f64,
    /// Detect attempts retried after transient failures (degraded runs only).
    pub detect_retries: u64,
    /// Picked frames whose detection failed terminally (degraded runs only).
    pub failed_frames: u64,
    /// Picked frames the query never observed because the failure mode
    /// dropped them (degraded runs only).
    pub dropped_frames: u64,
    /// Chunk-selection telemetry (ExSample runs only): how many picks went
    /// through the belief-class fold versus per-chunk draws, and how many
    /// Gamma draws the deduplication saved.
    pub selection: Option<SelectionTelemetry>,
    /// Detections-cache telemetry (`Some` only when [`QueryRunner::cache`]
    /// enabled the cache): hits, misses, evictions and admission rejects
    /// accumulated over the run.
    pub cache: Option<CacheActivity>,
    /// Durable-store health counters (`Some` only when
    /// [`QueryRunner::checkpoint`] enabled checkpointing): records replayed
    /// and torn bytes discarded during recovery, snapshot compactions, and
    /// storage retries over the run.
    pub store: Option<StoreHealth>,
}

impl RunResult {
    /// Recall achieved: found ground-truth instances over total instances.
    pub fn recall(&self) -> f64 {
        if self.total_instances == 0 {
            0.0
        } else {
            self.true_found as f64 / self.total_instances as f64
        }
    }

    /// Frames processed when the `count`-th ground-truth instance was found, or
    /// `None` if the run never found that many.
    pub fn frames_to_count(&self, count: usize) -> Option<u64> {
        if count == 0 {
            return Some(0);
        }
        self.trajectory
            .iter()
            .find(|p| p.found >= count)
            .map(|p| p.frames)
    }

    /// Frames processed to reach a recall level, or `None` if never reached.
    pub fn frames_to_recall(&self, recall: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&recall));
        let needed = (recall * self.total_instances as f64).ceil() as usize;
        self.frames_to_count(needed)
    }

    /// Virtual seconds to reach a recall level, including any upfront scan, under
    /// the given cost model.  `None` if the recall level was never reached.
    pub fn time_to_recall(&self, recall: f64, cost: &DecodeCostModel) -> Option<f64> {
        let frames = self.frames_to_recall(recall)?;
        Some(
            cost.proxy_scoring_secs(self.upfront_scan_frames)
                + cost.sampled_processing_secs(frames),
        )
    }

    /// Total virtual seconds of the whole run (scan + sampled processing).
    pub fn total_secs(&self) -> f64 {
        self.scan_secs + self.sample_secs
    }
}

/// Builder/executor for one query run.
#[derive(Debug, Clone)]
pub struct QueryRunner<'a> {
    dataset: &'a Dataset,
    /// The query class; resolved to the dataset's first class at run time if
    /// unset ([`SimError::NoClasses`] if the dataset has none).
    class: Option<ObjectClass>,
    stop: StopCondition,
    seed: u64,
    frame_cap: Option<u64>,
    detector_noise: Option<DetectorNoise>,
    discriminator: DiscriminatorKind,
    cost: DecodeCostModel,
    shards: u32,
    /// `None` = serial execution (never requested); `Some(n)` is validated by
    /// the engine at run time (`Some(0)` is the typed
    /// `EngineError::InvalidExecution`).
    parallel: Option<usize>,
    retry: RetryPolicy,
    failure: FailureMode,
    fault: Option<FaultPlan>,
    /// Overlap each stage's PICK with the previous stage's DETECT (see
    /// `QueryEngine::overlap`; off by default).
    overlap: bool,
    /// Cross-shard batch aggregation for the DETECT phase (see
    /// `QueryEngine::aggregation`; off by default).
    aggregation: Option<BatchAggregation>,
    /// Capacity of the engine's striped detections cache (0 = off, the
    /// default).
    cache: usize,
    /// Directory of the durable belief store every committed stage is
    /// persisted to (`None` = no checkpointing, the default).
    checkpoint: Option<PathBuf>,
    /// Directory of a recovered belief store to seed an ExSample run's
    /// posterior from (`None` = cold start, the default).
    warm_start: Option<PathBuf>,
}

impl<'a> QueryRunner<'a> {
    /// Create a runner for `dataset`, querying its first class, stopping when the
    /// repository is exhausted, with a perfect detector and the oracle
    /// discriminator.
    pub fn new(dataset: &'a Dataset) -> Self {
        QueryRunner {
            dataset,
            class: None,
            stop: StopCondition::Exhaustive,
            seed: 0,
            frame_cap: None,
            detector_noise: None,
            discriminator: DiscriminatorKind::Oracle,
            cost: DecodeCostModel::paper(),
            shards: 1,
            parallel: None,
            retry: RetryPolicy::none(),
            failure: FailureMode::default(),
            fault: None,
            overlap: false,
            aggregation: None,
            cache: 0,
            checkpoint: None,
            warm_start: None,
        }
    }

    /// Persist every committed stage's belief deltas and newly found results
    /// to a crash-safe [`BeliefStore`] in `path` (created/recovered on run
    /// start; a torn tail from a killed run is truncated and the surviving
    /// log replayed).  The store is compacted into a snapshot when the run
    /// completes; its health counters land in [`RunResult::store`].
    ///
    /// Checkpointing is a pure observer: outcomes, picks and the virtual
    /// clock are bitwise-identical to the uncheckpointed run.  A storage
    /// failure mid-run aborts the run with the concrete
    /// [`SimError::Store`] error.
    pub fn checkpoint(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint = Some(path.into());
        self
    }

    /// Seed an ExSample run's per-chunk posterior from the belief store in
    /// `path` (recovered exactly as [`QueryRunner::checkpoint`] would) before
    /// sampling starts, instead of starting from the prior.
    ///
    /// Only the belief is seeded — the frame pool is untouched, so the warm
    /// run may re-pick frames a previous run already saw; what it skips is
    /// the exploration those earlier samples paid for.  Ignored for methods
    /// other than [`MethodKind::ExSample`] (the baselines keep no per-chunk
    /// posterior).  A store with no record of the query class warm-starts to
    /// the prior (a cold start).
    pub fn warm_start(mut self, path: impl Into<PathBuf>) -> Self {
        self.warm_start = Some(path.into());
        self
    }

    /// Query a specific object class.
    pub fn class(mut self, class: impl Into<ObjectClass>) -> Self {
        self.class = Some(class.into());
        self
    }

    /// Partition the engine's DETECT phase across this many shards
    /// (contiguous-range chunk assignment).  Results are bitwise-identical to
    /// the unsharded run for any shard count.  A value of 0 is treated as 1
    /// (unsharded).
    pub fn shards(mut self, shards: u32) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Run the shard workers' detector invocations on up to this many
    /// persistent worker-pool threads per stage (thread counts beyond the
    /// shard count are clamped by the engine).  Results are bitwise-identical
    /// to serial execution for any thread count.  A value of 1 means serial
    /// execution (the default when this method is never called); a value of
    /// 0 asks for a worker pool with no threads and surfaces the engine's
    /// typed `EngineError::InvalidExecution` (wrapped in
    /// [`SimError::Engine`]) when the run starts.
    pub fn parallel(mut self, threads: usize) -> Self {
        self.parallel = Some(threads);
        self
    }

    /// Overlap each stage's PICK with the previous stage's DETECT (the
    /// engine's stage-pipelining knob; off by default).  Overlapped runs are
    /// fully deterministic and bitwise-identical across shard/thread/dispatch
    /// configurations, but schedule each stage from one-stage-stale state, so
    /// they are *not* pick-for-pick identical to non-overlapped runs — a stop
    /// condition may be noticed one stage later.
    pub fn overlap(mut self, overlap: bool) -> Self {
        self.overlap = overlap;
        self
    }

    /// Gather every shard's detector demand into cross-shard batches per
    /// stage (fewer, larger physical invocations; `None` — the default —
    /// keeps per-shard batches).  Never changes query outcomes or the virtual
    /// clock, only the physical invocation shape.
    pub fn aggregation(mut self, aggregation: Option<BatchAggregation>) -> Self {
        self.aggregation = aggregation;
        self
    }

    /// Enable the engine's lock-striped detections cache with this capacity
    /// (entries; 0 — the default — leaves the cache off).  Cached results
    /// are shared across stages; accounting is bitwise-deterministic across
    /// shard/thread/dispatch configurations and the run's telemetry lands in
    /// [`RunResult::cache`].
    pub fn cache(mut self, capacity: usize) -> Self {
        self.cache = capacity;
        self
    }

    /// Retry frames whose detect attempt failed transiently, per `retry`.
    ///
    /// Off by default ([`RetryPolicy::none`]); retry backoff is charged to
    /// the virtual clock as frame-equivalent sampled cost, so degraded runs
    /// stay bitwise-reproducible (no wall-clock sleeping).
    pub fn retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// What the engine does when a frame's detect attempts are exhausted
    /// (fail fast by default; see [`FailureMode`]).
    pub fn failure_mode(mut self, failure: FailureMode) -> Self {
        self.failure = failure;
        self
    }

    /// Wrap the run's detector in a deterministic fault injector driven by
    /// `plan` (see [`FaultPlan`]) — the harness for experimenting with
    /// degraded runs.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Set the stop condition.
    pub fn stop(mut self, stop: StopCondition) -> Self {
        self.stop = stop;
        self
    }

    /// Set the RNG seed for the run (sampling decisions and detector noise).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Add a hard cap on detector invocations regardless of the stop condition.
    pub fn frame_cap(mut self, cap: u64) -> Self {
        self.frame_cap = Some(cap);
        self
    }

    /// Use a noisy simulated detector instead of the perfect one.
    pub fn detector_noise(mut self, noise: DetectorNoise) -> Self {
        self.detector_noise = Some(noise);
        self
    }

    /// Choose the discriminator implementation.
    pub fn discriminator(mut self, kind: DiscriminatorKind) -> Self {
        self.discriminator = kind;
        self
    }

    /// Use a custom cost model for time accounting.
    pub fn cost_model(mut self, cost: DecodeCostModel) -> Self {
        self.cost = cost;
        self
    }

    /// The class this run queries: the explicitly chosen one, or the
    /// dataset's first class.
    ///
    /// # Errors
    /// Returns [`SimError::NoClasses`] if neither exists.
    fn query_class(&self) -> Result<ObjectClass, SimError> {
        match &self.class {
            Some(class) => Ok(class.clone()),
            None => self
                .dataset
                .classes()
                .into_iter()
                .next()
                .ok_or(SimError::NoClasses),
        }
    }

    /// Run with a pre-built ExSample sampler (constructed over
    /// `dataset.chunk_lengths()`).  With [`QueryRunner::warm_start`] set, the
    /// sampler's posterior is seeded from the recovered store first.
    ///
    /// # Errors
    /// Returns [`SimError::Engine`] if the sampler's chunk count does not
    /// match the dataset's chunking, and [`SimError::Store`] if the
    /// warm-start store cannot be recovered.
    pub fn run_exsample(self, mut sampler: ExSample) -> Result<RunResult, SimError> {
        if let Some(path) = &self.warm_start {
            let class = self.query_class()?;
            let (store, _) = BeliefStore::open_dir(path)?;
            // A store that never saw this class seeds nothing: the warm
            // start degenerates to a cold one instead of erroring, so a
            // first run and a resumed run share one code path.
            if let Some(class_id) = store.state().class_id(class.name()) {
                for (chunk, cell) in store.state().beliefs_for(class_id) {
                    if (chunk as usize) < sampler.chunk_count() {
                        sampler.apply_prior(chunk as usize, cell.n1, cell.samples);
                    }
                }
            }
        }
        let policy = ExSamplePolicy::from_sampler(sampler, self.dataset.chunking())?;
        self.run_policy("exsample".to_string(), 0, Box::new(policy))
    }

    /// Run one of the built-in methods.
    ///
    /// # Errors
    /// Returns a [`SimError`] if the run is misconfigured (no query class,
    /// engine configuration rejected).
    pub fn run(self, kind: MethodKind) -> Result<RunResult, SimError> {
        let total = self.dataset.total_frames();
        match kind {
            MethodKind::ExSample(config) => {
                if self.warm_start.is_some() {
                    // The warm-start seam is the sampler itself; route
                    // through the pre-built-sampler path to seed it.
                    let sampler = ExSample::new(config, &self.dataset.chunk_lengths());
                    return self.run_exsample(sampler);
                }
                let policy = ExSamplePolicy::new(config, self.dataset.chunking());
                self.run_policy("exsample".to_string(), 0, Box::new(policy))
            }
            MethodKind::Random => self.run_method(&mut RandomSampler::new(total)),
            MethodKind::RandomPlus => self.run_method(&mut RandomPlusSampler::new(total)),
            MethodKind::Sequential { stride } => {
                self.run_method(&mut SequentialScan::with_stride(total, stride))
            }
            MethodKind::Proxy(config) => {
                let class = self.query_class()?;
                let mut method = ProxyBaseline::new(self.dataset.ground_truth(), &class, config);
                self.run_method(&mut method)
            }
        }
    }

    /// Run an arbitrary sampling method.
    ///
    /// The run is delegated to a single-query [`QueryEngine`] at batch size 1,
    /// which reproduces the historical per-frame loop pick for pick under the
    /// same derived seed.
    ///
    /// # Errors
    /// Returns a [`SimError`] if the run is misconfigured.
    pub fn run_method(self, method: &mut dyn SamplingMethod) -> Result<RunResult, SimError> {
        let name = method.name().to_string();
        let upfront_scan_frames = method.upfront_scan_frames();
        self.run_policy(
            name,
            upfront_scan_frames,
            Box::new(MethodPolicy::new(method)),
        )
    }

    /// The shared execution core: run one sampling policy through a
    /// single-query engine.
    fn run_policy(
        self,
        name: String,
        upfront_scan_frames: u64,
        policy: Box<dyn SamplingPolicy + '_>,
    ) -> Result<RunResult, SimError> {
        let seeds = SeedSequence::new(self.seed).derive("query-runner");
        let class = self.query_class()?;

        let truth = Arc::clone(self.dataset.ground_truth());
        let total_instances = truth.count_of_class(&class);

        // Detector.
        let detector: Box<dyn Detector> = match self.detector_noise {
            None => Box::new(PerfectDetector::new(Arc::clone(&truth), class.clone())),
            Some(noise) => Box::new(SimulatedDetector::new(
                Arc::clone(&truth),
                class.clone(),
                noise,
                seeds.derive("detector").seed(),
            )),
        };
        // Optional deterministic fault injection wraps whichever detector the
        // run uses; the plan's seed keeps degraded runs reproducible.
        let detector: Box<dyn Detector> = match self.fault {
            None => detector,
            Some(plan) => Box::new(FaultInjectingDetector::new(detector, plan)),
        };
        // Discriminator.
        let discriminator: Box<dyn Discriminator> = match self.discriminator {
            DiscriminatorKind::Oracle => Box::new(OracleDiscriminator::new()),
            DiscriminatorKind::Tracking => {
                Box::new(TrackingDiscriminator::with_defaults(Arc::clone(&truth)))
            }
        };

        let mut clock = VirtualClock::new(self.cost);
        clock.charge_scan(upfront_scan_frames);

        // Translate the stop condition into engine limits, on top of the
        // always-on frame cap.
        let mut spec = QuerySpec::new(name.clone(), policy, detector.as_ref())
            .discriminator(discriminator)
            .seed(seeds.derive("sampling").seed())
            .batch(1);
        let mut frame_budget = self.frame_cap;
        match self.stop {
            StopCondition::DistinctResults(limit) => spec = spec.result_limit(limit),
            StopCondition::Recall(recall) => {
                // A class with no instances can never reach a recall level;
                // such queries run until another limit (or exhaustion) stops
                // them, as the paper's evaluation assumes.
                if total_instances > 0 {
                    let target = (recall * total_instances as f64).ceil() as usize;
                    spec = spec.true_limit(target);
                }
            }
            StopCondition::FrameBudget(budget) => {
                frame_budget = Some(frame_budget.map_or(budget, |cap| cap.min(budget)));
            }
            StopCondition::Exhaustive => {}
        }
        if let Some(budget) = frame_budget {
            spec = spec.frame_budget(budget);
        }

        let mut engine = QueryEngine::new()
            .retry_policy(self.retry)
            .failure_mode(self.failure)
            .overlap(self.overlap)
            .aggregation(self.aggregation);
        if self.shards > 1 {
            engine = engine.sharded(ShardRouter::contiguous(
                self.dataset.chunking(),
                self.shards,
            ));
        }
        if self.cache > 0 {
            engine = engine.cache_capacity(self.cache);
        }
        // Durable checkpointing: open (and, after a kill, recover) the
        // belief store, then hook it into the engine's serial stage-commit
        // seam.  The store is shared with this function so the final
        // snapshot and health counters outlive the engine.
        let durable: Option<(SharedStore, StoreErrorCell)> = match &self.checkpoint {
            None => None,
            Some(path) => {
                let (mut store, _recovery) = BeliefStore::open_dir(path)?;
                let class_id = store.intern_class(class.name());
                let store: SharedStore = Rc::new(RefCell::new(store));
                let error: StoreErrorCell = Rc::new(RefCell::new(None));
                engine = engine.stage_sink(Box::new(CheckpointSink {
                    store: Rc::clone(&store),
                    error: Rc::clone(&error),
                    class: class_id,
                    chunking: self.dataset.chunking(),
                }));
                Some((store, error))
            }
        };
        match self.parallel {
            // 1 is serial execution under another name; skip the mode change
            // so the engine stays on its historical default.
            None | Some(1) => {}
            // Everything else — including the invalid 0, which the engine
            // rejects with the typed InvalidExecution error — goes through
            // the engine's own validation.
            Some(threads) => engine = engine.execution(ExecutionMode::Parallel(threads))?,
        }
        engine.push(spec)?;
        // Retry backoff is charged as frame-equivalent sampled cost so the
        // virtual clock stays deterministic (no wall-clock sleeping).
        let report = match engine
            .run_with(|stage| clock.charge_sampled(stage.detector_frames + stage.backoff_cost))
        {
            Ok(report) => report,
            Err(error) => {
                // The engine's sink seam is stringly typed; if the sink
                // parked a concrete store error behind the CheckpointFailed
                // it raised, re-chain that instead.
                if let Some((_, cell)) = &durable {
                    if let Some(store_error) = cell.borrow_mut().take() {
                        return Err(SimError::Store(store_error));
                    }
                }
                return Err(error.into());
            }
        };
        let detect_retries = report.detect_retries;
        let failed_frames = report.failed_frames;
        let cache = (self.cache > 0).then_some(report.cache);
        let outcome = report
            .outcomes
            .into_iter()
            .next()
            .ok_or(SimError::Engine(exsample_engine::EngineError::NoQueries))?;

        // Final checkpoint: compact the committed state into a snapshot so
        // the next run (warm start or resume) recovers from the snapshot
        // instead of replaying the whole log.
        let store = match &durable {
            None => None,
            Some((store, _)) => {
                let mut store = store.borrow_mut();
                store.checkpoint()?;
                Some(store.health())
            }
        };

        Ok(RunResult {
            method: name,
            frames_processed: outcome.frames_processed,
            upfront_scan_frames,
            distinct_found: outcome.distinct_found,
            true_found: outcome.true_found,
            total_instances,
            found_instances: outcome.found_instances,
            trajectory: outcome.trajectory,
            scan_secs: clock.scan_secs(),
            sample_secs: clock.sample_secs(),
            detect_retries,
            failed_frames,
            dropped_frames: outcome.dropped_frames,
            selection: outcome.selection,
            cache,
            store,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exsample_data::{GridWorkload, SkewLevel};

    fn skewed_dataset() -> Dataset {
        GridWorkload::builder()
            .frames(120_000)
            .instances(400)
            .chunks(24)
            .mean_duration(120.0)
            .skew(SkewLevel::ThirtySecond)
            .seed(3)
            .build()
            .unwrap()
            .generate()
    }

    #[test]
    fn distinct_results_stop_condition() {
        let dataset = skewed_dataset();
        let result = QueryRunner::new(&dataset)
            .stop(StopCondition::DistinctResults(25))
            .seed(1)
            .run(MethodKind::ExSample(ExSampleConfig::default()))
            .expect("query run succeeded");
        assert!(result.distinct_found >= 25);
        assert!(result.true_found >= 25);
        assert_eq!(result.total_instances, 400);
        assert_eq!(result.method, "exsample");
        assert!(result.frames_processed > 0);
        assert_eq!(result.upfront_scan_frames, 0);
        assert_eq!(result.scan_secs, 0.0);
    }

    #[test]
    fn recall_stop_condition_and_trajectory_consistency() {
        let dataset = skewed_dataset();
        let result = QueryRunner::new(&dataset)
            .stop(StopCondition::Recall(0.5))
            .seed(2)
            .run(MethodKind::Random)
            .expect("query run succeeded");
        assert!(result.recall() >= 0.5);
        // Trajectory is monotone in both coordinates and ends at the found count.
        assert!(result
            .trajectory
            .windows(2)
            .all(|w| w[0].frames <= w[1].frames && w[0].found < w[1].found));
        assert_eq!(result.trajectory.last().unwrap().found, result.true_found);
        // frames_to_recall is consistent with the trajectory.
        let frames = result.frames_to_recall(0.5).unwrap();
        assert!(frames <= result.frames_processed);
        assert_eq!(result.frames_to_count(0), Some(0));
    }

    #[test]
    fn frame_budget_is_respected() {
        let dataset = skewed_dataset();
        let result = QueryRunner::new(&dataset)
            .stop(StopCondition::FrameBudget(200))
            .seed(3)
            .run(MethodKind::RandomPlus)
            .expect("query run succeeded");
        assert_eq!(result.frames_processed, 200);
        assert_eq!(result.method, "random+");
    }

    #[test]
    fn exsample_beats_random_on_skewed_data() {
        let dataset = skewed_dataset();
        let budget = 4_000u64;
        let ex = QueryRunner::new(&dataset)
            .stop(StopCondition::FrameBudget(budget))
            .seed(5)
            .run(MethodKind::ExSample(ExSampleConfig::default()))
            .expect("query run succeeded");
        let rnd = QueryRunner::new(&dataset)
            .stop(StopCondition::FrameBudget(budget))
            .seed(5)
            .run(MethodKind::Random)
            .expect("query run succeeded");
        assert!(
            ex.true_found as f64 >= rnd.true_found as f64 * 1.2,
            "exsample {} vs random {}",
            ex.true_found,
            rnd.true_found
        );
    }

    #[test]
    fn proxy_pays_upfront_scan() {
        let dataset = skewed_dataset();
        let result = QueryRunner::new(&dataset)
            .stop(StopCondition::DistinctResults(10))
            .seed(7)
            .run(MethodKind::Proxy(ProxyConfig::default()))
            .expect("query run succeeded");
        assert_eq!(result.upfront_scan_frames, dataset.total_frames());
        assert!(result.scan_secs > 0.0);
        // Time to any recall level includes the scan.
        let time = result
            .time_to_recall(10.0 / 400.0, &DecodeCostModel::paper())
            .unwrap();
        assert!(time >= result.scan_secs);
    }

    #[test]
    fn run_exsample_accepts_prebuilt_sampler() {
        let dataset = skewed_dataset();
        let sampler = ExSample::new(ExSampleConfig::default(), &dataset.chunk_lengths());
        let result = QueryRunner::new(&dataset)
            .stop(StopCondition::DistinctResults(15))
            .seed(11)
            .run_exsample(sampler)
            .expect("query run succeeded");
        assert!(result.distinct_found >= 15);
    }

    #[test]
    fn tracking_discriminator_and_noisy_detector_still_find_objects() {
        let dataset = skewed_dataset();
        let result = QueryRunner::new(&dataset)
            .stop(StopCondition::FrameBudget(1_500))
            .discriminator(DiscriminatorKind::Tracking)
            .detector_noise(DetectorNoise::default())
            .seed(13)
            .run(MethodKind::ExSample(ExSampleConfig::default()))
            .expect("query run succeeded");
        assert!(result.true_found > 0);
        // The tracking discriminator may create a handful of false-positive
        // objects; distinct_found can therefore exceed true_found but not wildly.
        assert!(result.distinct_found >= result.true_found);
    }

    #[test]
    fn sequential_scan_runs_in_order() {
        let dataset = skewed_dataset();
        let result = QueryRunner::new(&dataset)
            .stop(StopCondition::FrameBudget(100))
            .seed(17)
            .run(MethodKind::Sequential { stride: 30 })
            .expect("query run succeeded");
        assert_eq!(result.method, "sequential");
        assert_eq!(result.frames_processed, 100);
    }

    #[test]
    fn sharded_runner_results_are_bitwise_identical() {
        let dataset = skewed_dataset();
        let run = |shards: u32| {
            QueryRunner::new(&dataset)
                .stop(StopCondition::FrameBudget(600))
                .seed(19)
                .shards(shards)
                .run(MethodKind::ExSample(ExSampleConfig::default()))
                .expect("query run succeeded")
        };
        let unsharded = run(1);
        for shards in [2u32, 3, 7] {
            let sharded = run(shards);
            assert_eq!(sharded.frames_processed, unsharded.frames_processed);
            assert_eq!(sharded.found_instances, unsharded.found_instances);
            assert_eq!(sharded.trajectory, unsharded.trajectory);
            assert_eq!(sharded.sample_secs, unsharded.sample_secs);
        }
    }

    #[test]
    fn parallel_runner_results_are_bitwise_identical() {
        let dataset = skewed_dataset();
        let run = |shards: u32, parallel: Option<usize>| {
            let mut runner = QueryRunner::new(&dataset)
                .stop(StopCondition::FrameBudget(600))
                .seed(23)
                .shards(shards);
            if let Some(threads) = parallel {
                runner = runner.parallel(threads);
            }
            runner
                .run(MethodKind::ExSample(ExSampleConfig::default()))
                .expect("query run succeeded")
        };
        let serial = run(1, None);
        for (shards, parallel) in [(2u32, 1usize), (2, 2), (3, 2), (3, 4), (7, 4), (2, 64)] {
            let threaded = run(shards, Some(parallel));
            assert_eq!(threaded.frames_processed, serial.frames_processed);
            assert_eq!(threaded.found_instances, serial.found_instances);
            assert_eq!(threaded.trajectory, serial.trajectory);
            assert_eq!(threaded.sample_secs, serial.sample_secs);
        }
    }

    #[test]
    fn aggregated_runner_results_are_bitwise_identical() {
        // Cross-shard aggregation only reshapes physical detector batches;
        // outcomes and the virtual clock must not move for any flush limit,
        // shard count or thread count.
        let dataset = skewed_dataset();
        let run = |shards: u32, parallel: Option<usize>, aggregation: Option<BatchAggregation>| {
            let mut runner = QueryRunner::new(&dataset)
                .stop(StopCondition::FrameBudget(600))
                .seed(19)
                .shards(shards)
                .aggregation(aggregation);
            if let Some(threads) = parallel {
                runner = runner.parallel(threads);
            }
            runner
                .run(MethodKind::ExSample(ExSampleConfig::default()))
                .expect("query run succeeded")
        };
        let baseline = run(1, None, None);
        for (shards, parallel, aggregation) in [
            (1u32, None, Some(BatchAggregation::unbounded())),
            (3, None, Some(BatchAggregation::unbounded())),
            (3, Some(2), Some(BatchAggregation::max_batch(16))),
            (7, Some(4), Some(BatchAggregation::unbounded())),
            (7, None, Some(BatchAggregation::max_batch(1))),
        ] {
            let aggregated = run(shards, parallel, aggregation);
            assert_eq!(aggregated.frames_processed, baseline.frames_processed);
            assert_eq!(aggregated.found_instances, baseline.found_instances);
            assert_eq!(aggregated.trajectory, baseline.trajectory);
            assert_eq!(aggregated.sample_secs, baseline.sample_secs);
        }
    }

    #[test]
    fn overlapped_runner_is_deterministic_across_configs() {
        // Overlapped runs schedule from one-stage-stale state, so they are a
        // *different* (still valid) run than non-overlapped ones — but every
        // overlapped configuration must agree bitwise with the overlapped
        // serial reference, with and without aggregation.
        let dataset = skewed_dataset();
        let run = |shards: u32, parallel: Option<usize>, aggregation: Option<BatchAggregation>| {
            let mut runner = QueryRunner::new(&dataset)
                .stop(StopCondition::FrameBudget(600))
                .seed(23)
                .shards(shards)
                .overlap(true)
                .aggregation(aggregation);
            if let Some(threads) = parallel {
                runner = runner.parallel(threads);
            }
            runner
                .run(MethodKind::ExSample(ExSampleConfig::default()))
                .expect("query run succeeded")
        };
        let reference = run(1, None, None);
        // Overlapped scheduling decides each stage's stop condition one stage
        // late (the documented staleness), so a FrameBudget(600) run at batch
        // 1 lands on exactly 601 processed frames in every configuration.
        assert_eq!(reference.frames_processed, 601);
        for (shards, parallel) in [(3u32, None), (3, Some(2)), (7, Some(4)), (2, Some(64))] {
            for aggregation in [None, Some(BatchAggregation::unbounded())] {
                let overlapped = run(shards, parallel, aggregation);
                assert_eq!(overlapped.frames_processed, reference.frames_processed);
                assert_eq!(overlapped.found_instances, reference.found_instances);
                assert_eq!(overlapped.trajectory, reference.trajectory);
                assert_eq!(overlapped.sample_secs, reference.sample_secs);
            }
        }
    }

    #[test]
    fn cached_runner_matches_uncached_outcomes_and_reports_telemetry() {
        let dataset = skewed_dataset();
        let run = |cache: usize, shards: u32, parallel: Option<usize>| {
            let mut runner = QueryRunner::new(&dataset)
                .stop(StopCondition::FrameBudget(600))
                .seed(19)
                .shards(shards)
                .cache(cache);
            if let Some(threads) = parallel {
                runner = runner.parallel(threads);
            }
            runner
                .run(MethodKind::ExSample(ExSampleConfig::default()))
                .expect("query run succeeded")
        };
        let uncached = run(0, 1, None);
        assert!(uncached.cache.is_none(), "cache off reports no telemetry");
        let cached = run(4_096, 1, None);
        // The sampling methods pick without replacement, so a single run
        // over a cold cache misses every frame and hits none — but the
        // outcomes must be untouched and the telemetry fully accounted.
        assert_eq!(cached.found_instances, uncached.found_instances);
        assert_eq!(cached.trajectory, uncached.trajectory);
        assert_eq!(cached.sample_secs, uncached.sample_secs);
        let telemetry = cached.cache.expect("cache enabled");
        assert_eq!(telemetry.misses, cached.frames_processed);
        assert_eq!(telemetry.hits, 0);
        // Cache accounting is part of the determinism contract: identical
        // across shard and thread counts.
        for (shards, parallel) in [(3u32, None), (3, Some(2)), (7, Some(4))] {
            let other = run(4_096, shards, parallel);
            assert_eq!(other.found_instances, cached.found_instances);
            assert_eq!(other.trajectory, cached.trajectory);
            assert_eq!(other.cache, cached.cache);
        }
    }

    #[test]
    fn parallel_zero_is_a_typed_invalid_execution_error() {
        let dataset = skewed_dataset();
        let err = QueryRunner::new(&dataset)
            .stop(StopCondition::FrameBudget(50))
            .parallel(0)
            .run(MethodKind::Random)
            .unwrap_err();
        match err {
            SimError::Engine(exsample_engine::EngineError::InvalidExecution { threads }) => {
                assert_eq!(threads, 0);
            }
            other => panic!("expected InvalidExecution, got {other:?}"),
        }
        // The message tells the caller how to ask for serial execution.
        assert!(err.to_string().contains("at least one worker thread"));
    }

    #[test]
    fn degraded_runs_report_faults_and_stay_deterministic() {
        let dataset = skewed_dataset();
        let plan = FaultPlan::new(41).transient_rate(0.08).permanent_rate(0.02);
        let run = |shards: u32, parallel: Option<usize>| {
            let mut runner = QueryRunner::new(&dataset)
                .stop(StopCondition::FrameBudget(600))
                .seed(29)
                .shards(shards)
                .retry_policy(RetryPolicy::new(3).backoff_cost(3))
                .failure_mode(FailureMode::DropFrames)
                .fault_plan(plan);
            if let Some(threads) = parallel {
                runner = runner.parallel(threads);
            }
            runner
                .run(MethodKind::ExSample(ExSampleConfig::default()))
                .expect("degraded run succeeded")
        };
        let baseline = run(1, None);
        // The fault rates are high enough that the run is non-vacuous: some
        // frames retried, some dropped, and backoff showed up on the clock.
        assert!(baseline.detect_retries > 0, "expected retries");
        assert!(baseline.dropped_frames > 0, "expected dropped frames");
        // One query, so engine-wide failures equal the query's dropped tally.
        assert_eq!(baseline.failed_frames, baseline.dropped_frames);
        assert!(baseline.true_found > 0, "degraded run still finds objects");
        for (shards, parallel) in [(3u32, None), (3, Some(2)), (7, Some(4))] {
            let other = run(shards, parallel);
            assert_eq!(other.frames_processed, baseline.frames_processed);
            assert_eq!(other.found_instances, baseline.found_instances);
            assert_eq!(other.trajectory, baseline.trajectory);
            assert_eq!(other.sample_secs, baseline.sample_secs);
            assert_eq!(other.detect_retries, baseline.detect_retries);
            assert_eq!(other.failed_frames, baseline.failed_frames);
            assert_eq!(other.dropped_frames, baseline.dropped_frames);
        }
    }

    #[test]
    fn fault_free_plan_with_retries_matches_the_plain_run() {
        let dataset = skewed_dataset();
        let plain = QueryRunner::new(&dataset)
            .stop(StopCondition::FrameBudget(400))
            .seed(37)
            .run(MethodKind::ExSample(ExSampleConfig::default()))
            .expect("query run succeeded");
        let guarded = QueryRunner::new(&dataset)
            .stop(StopCondition::FrameBudget(400))
            .seed(37)
            .retry_policy(RetryPolicy::new(3).backoff_cost(5))
            .failure_mode(FailureMode::DropFrames)
            .fault_plan(FaultPlan::new(99))
            .run(MethodKind::ExSample(ExSampleConfig::default()))
            .expect("query run succeeded");
        assert_eq!(guarded.found_instances, plain.found_instances);
        assert_eq!(guarded.trajectory, plain.trajectory);
        assert_eq!(guarded.sample_secs, plain.sample_secs);
        assert_eq!(guarded.detect_retries, 0);
        assert_eq!(guarded.failed_frames, 0);
        assert_eq!(guarded.dropped_frames, 0);
    }

    #[test]
    fn fail_fast_fault_surfaces_a_chained_engine_error() {
        let dataset = skewed_dataset();
        let err = QueryRunner::new(&dataset)
            .stop(StopCondition::FrameBudget(400))
            .seed(31)
            .fault_plan(FaultPlan::new(43).permanent_rate(0.05))
            .run(MethodKind::Random)
            .unwrap_err();
        match &err {
            SimError::Engine(exsample_engine::EngineError::DetectorFailed { source, .. }) => {
                assert!(matches!(
                    source,
                    exsample_detect::DetectError::Permanent { .. }
                ));
            }
            other => panic!("expected DetectorFailed, got {other:?}"),
        }
        // The chain is walkable from the sim error down to the detector fault.
        let mut depth = 0;
        let mut cursor: &dyn std::error::Error = &err;
        while let Some(next) = cursor.source() {
            depth += 1;
            cursor = next;
        }
        assert!(depth >= 2, "expected sim -> engine -> detect chain");
    }

    #[test]
    fn recall_is_zero_for_class_with_no_instances() {
        let dataset = skewed_dataset();
        let result = QueryRunner::new(&dataset)
            .class("unicorn")
            .stop(StopCondition::FrameBudget(50))
            .run(MethodKind::Random)
            .expect("query run succeeded");
        assert_eq!(result.total_instances, 0);
        assert_eq!(result.recall(), 0.0);
        assert_eq!(result.true_found, 0);
    }
}
