//! Virtual time accounting.
//!
//! The paper's time numbers are derived from two measured throughputs (Section
//! V-B): scanning/scoring at ~100 fps (io + decode bound) and sampled processing at
//! ~20 fps (object-detector bound).  [`VirtualClock`] charges those costs as a run
//! progresses so that "frames processed" can be reported as wall-clock/GPU time the
//! way Table I and Figure 5 do.

use exsample_video::DecodeCostModel;

/// Accumulates virtual seconds spent scanning and processing sampled frames.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VirtualClock {
    cost: DecodeCostModel,
    scan_secs: f64,
    sample_secs: f64,
}

impl VirtualClock {
    /// A clock using the paper's measured throughputs.
    pub fn paper() -> Self {
        VirtualClock::new(DecodeCostModel::paper())
    }

    /// A clock over a custom cost model.
    pub fn new(cost: DecodeCostModel) -> Self {
        VirtualClock {
            cost,
            scan_secs: 0.0,
            sample_secs: 0.0,
        }
    }

    /// The underlying cost model.
    pub fn cost_model(&self) -> DecodeCostModel {
        self.cost
    }

    /// Charge a sequential scan / proxy-scoring pass over `frames` frames.
    pub fn charge_scan(&mut self, frames: u64) {
        self.scan_secs += self.cost.scan_secs(frames);
    }

    /// Charge the full sampled-processing cost (random-access decode + detector)
    /// for `frames` frames.
    pub fn charge_sampled(&mut self, frames: u64) {
        self.sample_secs += self.cost.sampled_processing_secs(frames);
    }

    /// Seconds spent scanning so far.
    pub fn scan_secs(&self) -> f64 {
        self.scan_secs
    }

    /// Seconds spent on sampled processing so far.
    pub fn sample_secs(&self) -> f64 {
        self.sample_secs
    }

    /// Total virtual seconds.
    pub fn total_secs(&self) -> f64 {
        self.scan_secs + self.sample_secs
    }
}

/// Format a duration in seconds the way the paper's Table I does: `"18s"`,
/// `"1m37s"`, `"2h58m"`, `"9h50m"`.
pub fn format_duration(secs: f64) -> String {
    if !secs.is_finite() || secs < 0.0 {
        return "-".to_string();
    }
    let total = secs.round() as u64;
    let hours = total / 3600;
    let minutes = (total % 3600) / 60;
    let seconds = total % 60;
    if hours > 0 {
        format!("{hours}h{minutes}m")
    } else if minutes > 0 {
        format!("{minutes}m{seconds}s")
    } else {
        format!("{seconds}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_match_cost_model() {
        let mut clock = VirtualClock::paper();
        clock.charge_scan(1_000);
        clock.charge_sampled(100);
        assert!((clock.scan_secs() - 10.0).abs() < 1e-9);
        assert!((clock.sample_secs() - 5.0).abs() < 1e-9);
        assert!((clock.total_secs() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn scan_of_a_twenty_hour_dataset_takes_hours() {
        // 20 hours of 30 fps video = 2.16M frames; at 100 fps the scan is six hours,
        // the same order as Table I's 9h50m for amsterdam (which also includes
        // per-frame scoring overheads we fold into the single scan rate).
        let mut clock = VirtualClock::paper();
        clock.charge_scan(2_160_000);
        assert!(clock.scan_secs() / 3600.0 > 5.0);
    }

    #[test]
    fn duration_formatting_matches_paper_style() {
        assert_eq!(format_duration(18.0), "18s");
        assert_eq!(format_duration(97.0), "1m37s");
        assert_eq!(format_duration(54.0 * 60.0), "54m0s");
        assert_eq!(format_duration(2.0 * 3600.0 + 58.0 * 60.0), "2h58m");
        assert_eq!(format_duration(9.0 * 3600.0 + 50.0 * 60.0), "9h50m");
        assert_eq!(format_duration(0.4), "0s");
    }

    #[test]
    fn non_finite_durations_render_as_dash() {
        assert_eq!(format_duration(f64::NAN), "-");
        assert_eq!(format_duration(f64::INFINITY), "-");
        assert_eq!(format_duration(-5.0), "-");
    }
}
