//! Multi-trial sweeps.
//!
//! The paper repeats every simulated configuration many times (21 trials per
//! Figure 3 cell, 10 000 runs for the Figure 2 validation) and reports medians and
//! percentile bands.  [`run_trials`] executes a configurable number of independent
//! trials — each with a seed derived from the trial index so results are exactly
//! reproducible — optionally spreading them over threads with a rayon-style
//! order-preserving parallel map.
//!
//! Determinism guarantee: each trial's result is a pure function of its trial
//! index (callers derive the trial RNG seed from it), and the parallel map
//! assigns results back to their input slots, so [`run_trials`] returns bitwise
//! identical `TrialSet`s for any thread count, including the sequential path.
//!
//! Trial closures return `Result` (the runner's entry points are fallible),
//! and a zero-trial sweep is a typed [`SimError::NoTrials`] — the sweep layer
//! propagates errors instead of panicking.

use crate::error::SimError;
use crate::runner::RunResult;
use exsample_rand::{geometric_mean, Summary};
use rayon::prelude::*;

/// A collection of per-trial results for one experimental configuration.
#[derive(Debug, Clone)]
pub struct TrialSet {
    /// Results in trial order.
    pub results: Vec<RunResult>,
}

impl TrialSet {
    /// Number of trials.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// Median frames needed to reach `count` found instances across trials
    /// (trials that never reached the target are excluded).
    pub fn median_frames_to_count(&self, count: usize) -> Option<f64> {
        let mut summary = Summary::new();
        for r in &self.results {
            if let Some(frames) = r.frames_to_count(count) {
                summary.push(frames as f64);
            }
        }
        if summary.is_empty() {
            None
        } else {
            Some(summary.median())
        }
    }

    /// Median frames needed to reach a recall level across trials.
    pub fn median_frames_to_recall(&self, recall: f64) -> Option<f64> {
        let mut summary = Summary::new();
        for r in &self.results {
            if let Some(frames) = r.frames_to_recall(recall) {
                summary.push(frames as f64);
            }
        }
        if summary.is_empty() {
            None
        } else {
            Some(summary.median())
        }
    }

    /// Geometric mean of per-trial recall values.
    pub fn geometric_mean_recall(&self) -> f64 {
        geometric_mean(
            &self
                .results
                .iter()
                .map(RunResult::recall)
                .collect::<Vec<_>>(),
        )
    }
}

/// Run `trials` independent trials of a query configuration.
///
/// `run` receives the trial index and must be deterministic given that index (the
/// usual pattern is to derive the runner's seed from it).  When `parallel` is true
/// the trials are distributed over up to `available_parallelism()` threads via an
/// order-preserving parallel map; results are bitwise identical to the sequential
/// path for any thread count.
///
/// # Errors
/// Returns [`SimError::NoTrials`] for a zero-trial sweep, or the first (in
/// trial order) error any trial produced.
pub fn run_trials<F>(trials: usize, parallel: bool, run: F) -> Result<TrialSet, SimError>
where
    F: Fn(u64) -> Result<RunResult, SimError> + Sync,
{
    if trials == 0 {
        return Err(SimError::NoTrials);
    }
    let results: Vec<Result<RunResult, SimError>> = if !parallel || trials == 1 {
        (0..trials as u64).map(run).collect()
    } else {
        (0..trials as u64).into_par_iter().map(run).collect()
    };
    Ok(TrialSet {
        results: results.into_iter().collect::<Result<Vec<_>, _>>()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{MethodKind, QueryRunner, StopCondition};
    use exsample_data::{Dataset, GridWorkload, SkewLevel};

    fn dataset() -> Dataset {
        GridWorkload::builder()
            .frames(30_000)
            .instances(100)
            .chunks(8)
            .mean_duration(80.0)
            .skew(SkewLevel::Quarter)
            .seed(1)
            .build()
            .unwrap()
            .generate()
    }

    fn run_one(dataset: &Dataset, trial: u64) -> Result<RunResult, SimError> {
        QueryRunner::new(dataset)
            .stop(StopCondition::FrameBudget(300))
            .seed(trial)
            .run(MethodKind::Random)
    }

    #[test]
    fn sequential_and_parallel_give_identical_results() {
        let dataset = dataset();
        let seq = run_trials(6, false, |t| run_one(&dataset, t)).unwrap();
        let par = run_trials(6, true, |t| run_one(&dataset, t)).unwrap();
        assert_eq!(seq.len(), 6);
        assert_eq!(par.len(), 6);
        for (a, b) in seq.results.iter().zip(&par.results) {
            assert_eq!(a.true_found, b.true_found);
            assert_eq!(a.frames_processed, b.frames_processed);
        }
    }

    #[test]
    fn different_trials_use_different_seeds() {
        let dataset = dataset();
        let set = run_trials(4, false, |t| run_one(&dataset, t)).unwrap();
        let founds: Vec<usize> = set.results.iter().map(|r| r.true_found).collect();
        // At least two trials should differ (they use different seeds).
        assert!(founds.windows(2).any(|w| w[0] != w[1]), "founds {founds:?}");
    }

    #[test]
    fn median_frames_to_count_aggregates() {
        let dataset = dataset();
        let set = run_trials(5, false, |t| run_one(&dataset, t)).unwrap();
        let median = set.median_frames_to_count(1);
        assert!(median.is_some());
        assert!(median.unwrap() >= 1.0);
        // An unreachable target yields None.
        assert_eq!(set.median_frames_to_count(10_000), None);
        assert!(set.geometric_mean_recall() > 0.0);
    }

    #[test]
    fn zero_trials_is_a_typed_error() {
        let err = run_trials(0, false, |_| unreachable!()).unwrap_err();
        assert_eq!(err, SimError::NoTrials);
    }

    #[test]
    fn a_failing_trial_propagates_its_error() {
        let dataset = dataset();
        let err = run_trials(3, false, |t| {
            if t == 1 {
                Err(SimError::NoClasses)
            } else {
                run_one(&dataset, t)
            }
        })
        .unwrap_err();
        assert_eq!(err, SimError::NoClasses);
    }
}
