//! Plain-text table rendering for the experiment binaries.
//!
//! The experiment binaries regenerate the paper's tables and figures as text:
//! aligned columns for terminals, with an optional markdown mode for inclusion in
//! `EXPERIMENTS.md`.  Keeping this tiny renderer local avoids a formatting
//! dependency and keeps the output stable across releases.

/// A simple column-aligned table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the row length does not match the header.
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row has {} cells but the table has {} columns",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Column widths (maximum of header and cell widths).
    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        widths
    }

    /// Render as space-aligned plain text.
    pub fn to_plain(&self) -> String {
        let widths = self.widths();
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        out.push_str(&render_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("| {} |\n", self.header.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.header.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    /// Render as comma-separated values (cells containing commas are quoted).
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a ratio the way the paper labels its savings ("6.1x", "0.79x").
pub fn format_ratio(ratio: f64) -> String {
    if !ratio.is_finite() {
        return "-".to_string();
    }
    if ratio >= 10.0 {
        format!("{ratio:.0}x")
    } else {
        format!("{ratio:.2}x")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let mut t = Table::new(vec!["dataset", "category", "savings"]);
        t.push_row(vec!["dashcam", "bicycle", "3.70x"]);
        t.push_row(vec!["amsterdam", "boat", "0.75x"]);
        t
    }

    #[test]
    fn plain_rendering_aligns_columns() {
        let text = table().to_plain();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("dataset"));
        assert!(lines[2].starts_with("dashcam"));
        // The category column starts at the same offset in every row.
        let offset = lines[0].find("category").unwrap();
        assert_eq!(lines[2].find("bicycle").unwrap(), offset);
        assert_eq!(lines[3].find("boat").unwrap(), offset);
    }

    #[test]
    fn markdown_rendering() {
        let md = table().to_markdown();
        assert!(md.starts_with("| dataset | category | savings |"));
        assert!(md.contains("|---|---|---|"));
        assert!(md.contains("| amsterdam | boat | 0.75x |"));
    }

    #[test]
    fn csv_rendering_escapes_commas() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push_row(vec!["hello, world", "plain"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"hello, world\",plain"));
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(format_ratio(6.1), "6.10x");
        assert_eq!(format_ratio(0.79), "0.79x");
        assert_eq!(format_ratio(84.0), "84x");
        assert_eq!(format_ratio(f64::NAN), "-");
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push_row(vec!["only one"]);
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = Table::new(vec!["x"]);
        assert!(t.is_empty());
        assert_eq!(t.to_plain().lines().count(), 2);
    }
}
