//! Recall equivalence of the belief-class deduplicated selection.
//!
//! `SelectionStrategy::ClassMax` replaces M per-chunk Gamma draws with one
//! exact max-of-k draw per belief class — a distributionally equivalent
//! transformation (pinned distribution-level by the chi-square tests in
//! `exsample-core`).  This end-to-end check runs full queries over a skewed
//! workload with enough chunks to engage the class fold (M = 128 >
//! `SMALL_M_CHUNKS`) and asserts the achieved recall matches the per-chunk
//! strategy within sampling noise, while the dedup telemetry confirms the
//! class path actually ran.

use exsample_core::{ExSampleConfig, SelectionStrategy};
use exsample_data::{GridWorkload, SkewLevel};
use exsample_sim::{run_trials, MethodKind, QueryRunner, StopCondition, TrialSet};

const TRIALS: usize = 12;
const BUDGET: u64 = 6_000;

fn skewed_dataset() -> exsample_data::Dataset {
    GridWorkload::builder()
        .frames(500_000)
        .instances(1_000)
        .chunks(128)
        .mean_duration(200.0)
        .skew(SkewLevel::ThirtySecond)
        .seed(41)
        .build()
        .expect("valid workload")
        .generate()
}

fn sweep(dataset: &exsample_data::Dataset, selection: SelectionStrategy) -> TrialSet {
    let config = ExSampleConfig::default().with_selection(selection);
    run_trials(TRIALS, true, |trial| {
        QueryRunner::new(dataset)
            .stop(StopCondition::FrameBudget(BUDGET))
            .seed(1_000 + trial)
            .run(MethodKind::ExSample(config))
    })
    .expect("sweep succeeded")
}

fn mean_and_variance(values: &[f64]) -> (f64, f64) {
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let variance = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, variance)
}

#[test]
fn class_max_recall_matches_per_chunk_within_noise() {
    let dataset = skewed_dataset();
    let per_chunk = sweep(&dataset, SelectionStrategy::PerChunk);
    let class_max = sweep(&dataset, SelectionStrategy::ClassMax);

    let recalls = |set: &TrialSet| -> Vec<f64> { set.results.iter().map(|r| r.recall()).collect() };
    let (mean_pc, var_pc) = mean_and_variance(&recalls(&per_chunk));
    let (mean_cm, var_cm) = mean_and_variance(&recalls(&class_max));

    // Both strategies must actually find things for the comparison to mean
    // anything on this workload.
    assert!(mean_pc > 0.1, "per-chunk recall degenerate: {mean_pc}");
    assert!(mean_cm > 0.1, "class-max recall degenerate: {mean_cm}");

    // Two-sample z-statistic on the mean recall: distributional equivalence
    // means the gap is pure sampling noise, so it must sit within a few
    // standard errors (4 keeps the fixed-seed test far from flakiness while
    // still catching any systematic bias).
    let std_error = (var_pc / TRIALS as f64 + var_cm / TRIALS as f64).sqrt();
    let gap = (mean_pc - mean_cm).abs();
    assert!(
        gap <= 4.0 * std_error.max(1e-6),
        "recall gap {gap:.4} exceeds noise: per-chunk {mean_pc:.4}, class-max {mean_cm:.4}, \
         std error {std_error:.4}"
    );
}

#[test]
fn telemetry_attributes_picks_to_the_strategy_that_ran() {
    let dataset = skewed_dataset();

    // Per-chunk runs must never report class-fold picks.
    for result in &sweep(&dataset, SelectionStrategy::PerChunk).results {
        let telemetry = result.selection.expect("ExSample runs carry telemetry");
        assert_eq!(telemetry.class_max_picks, 0);
        assert!(telemetry.per_chunk_picks > 0);
        assert_eq!(telemetry.draws_saved, 0);
    }

    // Class-max runs over 128 chunks start in one all-prior class, so the
    // fold engages from the first pick and saves M - C draws per pick.
    for result in &sweep(&dataset, SelectionStrategy::ClassMax).results {
        let telemetry = result.selection.expect("ExSample runs carry telemetry");
        assert!(
            telemetry.class_max_picks > 0,
            "class fold never engaged: {telemetry:?}"
        );
        assert!(telemetry.draws_saved > 0, "no draws saved: {telemetry:?}");
        assert!(telemetry.class_count > 0);
    }

    // Non-ExSample methods carry no selection telemetry.
    let random = QueryRunner::new(&dataset)
        .stop(StopCondition::FrameBudget(500))
        .seed(7)
        .run(MethodKind::Random)
        .expect("query run succeeded");
    assert!(random.selection.is_none());
}
