//! End-to-end durability: checkpointing is a pure observer, a torn
//! checkpoint recovers, and a warm-started run beats a cold one.
//!
//! These tests run against the real filesystem backend (`FsStorage` under a
//! scratch directory) — the same code path the experiment binaries'
//! `--checkpoint`/`--warm-start` flags exercise.

use exsample_core::ExSampleConfig;
use exsample_data::{Dataset, GridWorkload, SkewLevel};
use exsample_sim::{MethodKind, QueryRunner, StopCondition};
use exsample_store::BeliefStore;
use std::fs::OpenOptions;
use std::path::PathBuf;

fn skewed_dataset() -> Dataset {
    GridWorkload::builder()
        .frames(120_000)
        .instances(400)
        .chunks(24)
        .mean_duration(120.0)
        .skew(SkewLevel::ThirtySecond)
        .seed(3)
        .build()
        .unwrap()
        .generate()
}

/// A scratch store directory, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let path =
            std::env::temp_dir().join(format!("exsample-durability-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        Scratch(path)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn checkpointing_is_a_pure_observer_and_persists_the_posterior() {
    let dataset = skewed_dataset();
    let scratch = Scratch::new("observer");
    let budget = 800u64;

    let plain = QueryRunner::new(&dataset)
        .stop(StopCondition::FrameBudget(budget))
        .seed(5)
        .run(MethodKind::ExSample(ExSampleConfig::default()))
        .expect("plain run succeeded");
    assert!(plain.store.is_none(), "no checkpoint, no store health");

    let checkpointed = QueryRunner::new(&dataset)
        .stop(StopCondition::FrameBudget(budget))
        .seed(5)
        .checkpoint(&scratch.0)
        .run(MethodKind::ExSample(ExSampleConfig::default()))
        .expect("checkpointed run succeeded");

    // Pure observer: outcomes and the virtual clock are untouched.
    assert_eq!(checkpointed.frames_processed, plain.frames_processed);
    assert_eq!(checkpointed.found_instances, plain.found_instances);
    assert_eq!(checkpointed.trajectory, plain.trajectory);
    assert_eq!(checkpointed.sample_secs, plain.sample_secs);

    // The run compacted at least its final checkpoint and was never degraded.
    let health = checkpointed.store.expect("checkpoint reports health");
    assert!(health.snapshot_compactions >= 1);
    assert_eq!(health.io_retries, 0);
    assert_eq!(health.torn_tail_bytes, 0);

    // The persisted posterior is the run's: one sample per processed frame,
    // one result per found instance, a commit per stage (batch 1 = one
    // observation per stage, minus the stop-condition's final empty stage).
    let (store, report) = BeliefStore::open_dir(&scratch.0).expect("store reopens");
    assert!(report.snapshot_loaded, "final checkpoint wrote a snapshot");
    assert_eq!(
        store.state().classes().len(),
        1,
        "exactly the query class was interned"
    );
    let class = 0u32;
    let samples: u64 = store
        .state()
        .beliefs_for(class)
        .map(|(_, cell)| cell.samples)
        .sum();
    assert_eq!(samples, plain.frames_processed);
    assert_eq!(store.state().result_count(class), plain.true_found);
}

#[test]
fn a_torn_checkpoint_recovers_and_the_run_resumes() {
    let dataset = skewed_dataset();
    let scratch = Scratch::new("torn");

    let first = QueryRunner::new(&dataset)
        .stop(StopCondition::FrameBudget(400))
        .seed(7)
        .checkpoint(&scratch.0)
        .run(MethodKind::ExSample(ExSampleConfig::default()))
        .expect("first run succeeded");
    assert!(first.store.is_some());

    // A completed run's final checkpoint compacts everything into the
    // snapshot, so to stage a kill mid-run, commit a few more stages by
    // hand (each commit is one log append) and then chop the tail off the
    // live log — tearing exactly the last commit's frame.
    const MANUAL_STAGES: u64 = 10;
    {
        let (mut store, _) = BeliefStore::open_dir(&scratch.0).expect("store reopens");
        for stage in 1_000..1_000 + MANUAL_STAGES {
            store.append_delta(0, 0, 1, 1, stage).expect("delta stages");
            store.commit_stage(stage).expect("stage commits");
        }
    }
    let log = scratch.0.join("log");
    let len = std::fs::metadata(&log).expect("log exists").len();
    OpenOptions::new()
        .write(true)
        .open(&log)
        .expect("log opens")
        .set_len(len - 7)
        .expect("log truncates");

    // The next checkpointed run must recover — truncating the torn frame,
    // keeping every committed stage — and run to completion on top of the
    // survivors.  Its health counters carry the recovery evidence.
    let resumed = QueryRunner::new(&dataset)
        .stop(StopCondition::FrameBudget(100))
        .seed(13)
        .checkpoint(&scratch.0)
        .run(MethodKind::ExSample(ExSampleConfig::default()))
        .expect("recovery run succeeded");
    let health = resumed.store.expect("checkpoint reports health");
    assert!(
        health.torn_tail_bytes > 0,
        "the torn tail was silently accepted"
    );
    assert!(health.records_replayed > 0, "the surviving log replayed");
    assert_eq!(resumed.frames_processed, 100);

    // The accumulated posterior holds everything that was ever committed:
    // the first run, the surviving manual commits (the torn one was the
    // only loss), and the resumed run.
    let (store, _) = BeliefStore::open_dir(&scratch.0).expect("store reopens");
    let samples: u64 = store
        .state()
        .beliefs_for(0)
        .map(|(_, cell)| cell.samples)
        .sum();
    assert_eq!(
        samples,
        first.frames_processed + (MANUAL_STAGES - 1) + resumed.frames_processed,
        "recovered posterior lost committed history"
    );
}

#[test]
fn warm_start_reaches_equal_recall_with_strictly_fewer_frames() {
    // A sparser workload than the other tests: few, short-lived instances
    // concentrated by the skew generator, so reaching the recall target
    // genuinely requires learning *where* to sample — the thing a warm
    // start carries over.
    let dataset = GridWorkload::builder()
        .frames(120_000)
        .instances(150)
        .chunks(24)
        .mean_duration(60.0)
        .skew(SkewLevel::ThirtySecond)
        .seed(3)
        .build()
        .unwrap()
        .generate();
    let scratch = Scratch::new("warm");
    let recall = StopCondition::Recall(0.8);

    // Exploration run: a budgeted pass that learns the generator's skew and
    // persists the posterior.  The budget is deliberately moderate — long
    // enough for the per-chunk beliefs to separate, short enough that `N1`
    // (objects seen exactly once) still tracks instance density rather than
    // decaying toward "this chunk is exhausted".
    QueryRunner::new(&dataset)
        .stop(StopCondition::FrameBudget(2_000))
        .seed(19)
        .checkpoint(&scratch.0)
        .run(MethodKind::ExSample(ExSampleConfig::default()))
        .expect("exploration run succeeded");

    // Cold run: pays its own exploration.
    let cold = QueryRunner::new(&dataset)
        .stop(recall)
        .seed(17)
        .run(MethodKind::ExSample(ExSampleConfig::default()))
        .expect("cold run succeeded");
    assert!(cold.recall() >= 0.8);

    // Warm run: same query, same seed, same recall target, posterior seeded
    // from the exploration run's store.  It skips the exploration the cold
    // run pays for, so it must issue strictly fewer detector frames.
    let warm = QueryRunner::new(&dataset)
        .stop(recall)
        .seed(17)
        .warm_start(&scratch.0)
        .run(MethodKind::ExSample(ExSampleConfig::default()))
        .expect("warm run succeeded");
    assert!(warm.recall() >= 0.8);
    assert!(
        warm.frames_processed < cold.frames_processed,
        "warm start did not help: warm {} vs cold {} frames",
        warm.frames_processed,
        cold.frames_processed
    );
}
