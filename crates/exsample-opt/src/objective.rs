//! The Eq. IV.1 objective: expected distinct instances found under a fixed
//! chunk-weight allocation.

/// Per-instance, per-chunk conditional hit probabilities.
///
/// Entry `(i, j)` is the probability of seeing instance `i` when sampling one frame
/// uniformly from chunk `j` — i.e. the number of the instance's visible frames that
/// fall inside chunk `j`, divided by the chunk's length.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceChunkProbabilities {
    chunks: usize,
    /// Row-major `instances x chunks` matrix.
    rows: Vec<Vec<f64>>,
}

impl InstanceChunkProbabilities {
    /// Create a matrix from per-instance rows.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths or contain values outside `[0, 1]`.
    pub fn new(rows: Vec<Vec<f64>>, chunks: usize) -> Self {
        assert!(chunks > 0, "need at least one chunk");
        for row in &rows {
            assert_eq!(
                row.len(),
                chunks,
                "every instance needs one probability per chunk"
            );
            assert!(
                row.iter().all(|p| (0.0..=1.0).contains(p)),
                "probabilities must lie in [0, 1]"
            );
        }
        InstanceChunkProbabilities { chunks, rows }
    }

    /// Build the matrix from instance frame intervals and chunk boundaries.
    ///
    /// `instances` are `(first_frame, last_frame)` inclusive intervals; `chunks` are
    /// `(start, end)` half-open global frame ranges covering the repository.
    pub fn from_intervals(instances: &[(u64, u64)], chunks: &[(u64, u64)]) -> Self {
        assert!(!chunks.is_empty());
        let rows = instances
            .iter()
            .map(|&(first, last)| {
                assert!(last >= first, "instance interval is inverted");
                chunks
                    .iter()
                    .map(|&(start, end)| {
                        assert!(end > start, "chunk range is empty");
                        let overlap_start = first.max(start);
                        let overlap_end = (last + 1).min(end);
                        let overlap = overlap_end.saturating_sub(overlap_start);
                        overlap as f64 / (end - start) as f64
                    })
                    .collect()
            })
            .collect();
        InstanceChunkProbabilities::new(rows, chunks.len())
    }

    /// Number of instances.
    pub fn instances(&self) -> usize {
        self.rows.len()
    }

    /// Number of chunks.
    pub fn chunks(&self) -> usize {
        self.chunks
    }

    /// The row for instance `i`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.rows[i]
    }

    /// The probability of seeing instance `i` in one sample drawn with chunk
    /// weights `w`: the dot product `p_i · w`.
    pub fn hit_probability(&self, i: usize, weights: &[f64]) -> f64 {
        self.rows[i]
            .iter()
            .zip(weights)
            .map(|(p, w)| p * w)
            .sum::<f64>()
            .clamp(0.0, 1.0)
    }
}

/// The Eq. IV.1 objective: expected number of distinct instances found after `n`
/// samples allocated with weights `w`.
pub fn expected_found(probs: &InstanceChunkProbabilities, weights: &[f64], n: u64) -> f64 {
    assert_eq!(
        weights.len(),
        probs.chunks(),
        "weight vector has wrong length"
    );
    (0..probs.instances())
        .map(|i| {
            let hit = probs.hit_probability(i, weights);
            1.0 - (1.0 - hit).powi(n as i32)
        })
        .sum()
}

/// Gradient of [`expected_found`] with respect to the weights:
/// `∂/∂w_j = Σ_i n · p_ij · (1 − p_i·w)^{n−1}`.
pub fn gradient(probs: &InstanceChunkProbabilities, weights: &[f64], n: u64) -> Vec<f64> {
    assert_eq!(weights.len(), probs.chunks());
    let mut grad = vec![0.0; probs.chunks()];
    for i in 0..probs.instances() {
        let hit = probs.hit_probability(i, weights);
        let factor = n as f64 * (1.0 - hit).powi((n.saturating_sub(1)) as i32);
        for (g, &p) in grad.iter_mut().zip(probs.row(i)) {
            *g += factor * p;
        }
    }
    grad
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_chunk_probs() -> InstanceChunkProbabilities {
        // Three instances: two only in chunk 0, one only in chunk 1.
        InstanceChunkProbabilities::new(vec![vec![0.01, 0.0], vec![0.02, 0.0], vec![0.0, 0.05]], 2)
    }

    #[test]
    fn from_intervals_computes_conditional_probabilities() {
        // Chunks of 100 frames each; instance spans frames 50..=149 (50 frames in
        // each chunk).
        let probs =
            InstanceChunkProbabilities::from_intervals(&[(50, 149)], &[(0, 100), (100, 200)]);
        assert_eq!(probs.instances(), 1);
        assert!((probs.row(0)[0] - 0.5).abs() < 1e-12);
        assert!((probs.row(0)[1] - 0.5).abs() < 1e-12);
        // An instance entirely inside chunk 1.
        let probs =
            InstanceChunkProbabilities::from_intervals(&[(120, 139)], &[(0, 100), (100, 200)]);
        assert_eq!(probs.row(0)[0], 0.0);
        assert!((probs.row(0)[1] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn expected_found_monotone_in_samples() {
        let probs = two_chunk_probs();
        let w = vec![0.5, 0.5];
        assert!(expected_found(&probs, &w, 100) < expected_found(&probs, &w, 1_000));
        assert!(expected_found(&probs, &w, 0) == 0.0);
        // Saturates at the instance count.
        assert!(expected_found(&probs, &w, 10_000_000) <= 3.0 + 1e-9);
    }

    #[test]
    fn better_weights_find_more() {
        let probs = two_chunk_probs();
        // Chunk 0 has two (rarer) instances, chunk 1 one more common instance; a
        // lopsided allocation toward chunk 1 wastes samples once its instance is
        // found.
        let balanced = expected_found(&probs, &[0.6, 0.4], 200);
        let lopsided = expected_found(&probs, &[0.0, 1.0], 200);
        assert!(balanced > lopsided);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let probs = two_chunk_probs();
        let w = vec![0.3, 0.7];
        let n = 50;
        let grad = gradient(&probs, &w, n);
        let eps = 1e-6;
        for j in 0..2 {
            let mut w_hi = w.clone();
            w_hi[j] += eps;
            let mut w_lo = w.clone();
            w_lo[j] -= eps;
            let fd =
                (expected_found(&probs, &w_hi, n) - expected_found(&probs, &w_lo, n)) / (2.0 * eps);
            assert!(
                (grad[j] - fd).abs() < 1e-4,
                "gradient component {j}: analytic {} vs fd {fd}",
                grad[j]
            );
        }
    }

    #[test]
    fn hit_probability_is_dot_product() {
        let probs = two_chunk_probs();
        assert!((probs.hit_probability(0, &[1.0, 0.0]) - 0.01).abs() < 1e-12);
        assert!((probs.hit_probability(2, &[0.5, 0.5]) - 0.025).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "one probability per chunk")]
    fn ragged_rows_panic() {
        let _ = InstanceChunkProbabilities::new(vec![vec![0.1, 0.2], vec![0.3]], 2);
    }

    #[test]
    #[should_panic(expected = "must lie in")]
    fn out_of_range_probability_panics() {
        let _ = InstanceChunkProbabilities::new(vec![vec![1.5, 0.0]], 2);
    }
}
