//! Projected gradient ascent for the Eq. IV.1 allocation problem.

use crate::objective::{expected_found, gradient, InstanceChunkProbabilities};
use crate::simplex::project_to_simplex;

/// Options controlling the projected-gradient solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverOptions {
    /// Maximum number of gradient iterations.
    pub max_iterations: usize,
    /// Stop when the objective improves by less than this (absolute) amount.
    pub tolerance: f64,
    /// Initial step size (adapted multiplicatively during the run).
    pub initial_step: f64,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            max_iterations: 500,
            tolerance: 1e-9,
            initial_step: 1.0,
        }
    }
}

/// The result of solving Eq. IV.1 for a fixed sample budget `n`.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimalAllocation {
    /// The optimal chunk weights (a point on the probability simplex).
    pub weights: Vec<f64>,
    /// The expected number of distinct instances found with those weights.
    pub expected_found: f64,
    /// Number of iterations the solver used.
    pub iterations: usize,
}

/// Solve Eq. IV.1: find chunk weights maximising the expected number of distinct
/// instances found after `n` samples.
///
/// The objective is concave on the simplex (each term `1 − (1 − p·w)^n` is concave
/// in `w`), so projected gradient ascent with a backtracking step converges to the
/// global optimum.
///
/// # Panics
/// Panics if the probability matrix has no chunks or `n == 0`.
pub fn optimal_weights(
    probs: &InstanceChunkProbabilities,
    n: u64,
    options: SolverOptions,
) -> OptimalAllocation {
    assert!(n > 0, "the sample budget must be positive");
    let chunks = probs.chunks();
    // Start from the uniform allocation (what random sampling uses).
    let mut weights = vec![1.0 / chunks as f64; chunks];
    let mut value = expected_found(probs, &weights, n);
    let mut step = options.initial_step;
    let mut iterations = 0;

    for _ in 0..options.max_iterations {
        iterations += 1;
        let grad = gradient(probs, &weights, n);
        // Normalise the gradient so the step size is scale-free across problems.
        let norm = grad.iter().map(|g| g * g).sum::<f64>().sqrt();
        if norm == 0.0 {
            break;
        }
        // Backtracking line search on the projected step.
        let mut improved = false;
        while step > 1e-12 {
            let candidate: Vec<f64> = weights
                .iter()
                .zip(&grad)
                .map(|(w, g)| w + step * g / norm)
                .collect();
            let candidate = project_to_simplex(&candidate);
            let candidate_value = expected_found(probs, &candidate, n);
            if candidate_value > value {
                // Accept and gently expand the step for the next iteration.
                weights = candidate;
                let gain = candidate_value - value;
                value = candidate_value;
                step *= 1.5;
                improved = true;
                if gain < options.tolerance {
                    return OptimalAllocation {
                        weights,
                        expected_found: value,
                        iterations,
                    };
                }
                break;
            }
            step *= 0.5;
        }
        if !improved {
            break;
        }
    }

    OptimalAllocation {
        weights,
        expected_found: value,
        iterations,
    }
}

/// Evaluate the optimal-allocation curve at several sample budgets, re-solving for
/// each (the dashed lines of Figures 3 and 4 are produced this way, because the
/// optimal weights depend on `n`).
pub fn optimal_curve(
    probs: &InstanceChunkProbabilities,
    budgets: &[u64],
    options: SolverOptions,
) -> Vec<(u64, f64)> {
    budgets
        .iter()
        .map(|&n| (n, optimal_weights(probs, n, options).expected_found))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two chunks; all instances in chunk 0.
    fn one_sided() -> InstanceChunkProbabilities {
        InstanceChunkProbabilities::new(vec![vec![0.01, 0.0]; 50], 2)
    }

    /// Uniform spread: every instance equally likely in every chunk.
    fn uniform_spread() -> InstanceChunkProbabilities {
        InstanceChunkProbabilities::new(vec![vec![0.01, 0.01, 0.01, 0.01]; 40], 4)
    }

    #[test]
    fn all_mass_goes_to_the_only_productive_chunk() {
        let alloc = optimal_weights(&one_sided(), 200, SolverOptions::default());
        assert!(alloc.weights[0] > 0.99, "weights {:?}", alloc.weights);
        assert!((alloc.weights.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // And it beats the uniform allocation.
        let uniform_value = expected_found(&one_sided(), &[0.5, 0.5], 200);
        assert!(alloc.expected_found > uniform_value);
    }

    #[test]
    fn uniform_data_keeps_uniform_weights() {
        let alloc = optimal_weights(&uniform_spread(), 300, SolverOptions::default());
        for &w in &alloc.weights {
            assert!((w - 0.25).abs() < 0.02, "weights {:?}", alloc.weights);
        }
    }

    #[test]
    fn skewed_data_beats_uniform_allocation_substantially() {
        // 90% of instances in chunk 0, 10% in chunk 1, durations equal.
        let mut rows = vec![vec![0.02, 0.0]; 90];
        rows.extend(vec![vec![0.0, 0.02]; 10]);
        let probs = InstanceChunkProbabilities::new(rows, 2);
        let n = 150;
        let optimal = optimal_weights(&probs, n, SolverOptions::default());
        let uniform = expected_found(&probs, &[0.5, 0.5], n);
        assert!(
            optimal.expected_found > uniform * 1.08,
            "optimal {} vs uniform {uniform}",
            optimal.expected_found
        );
        // Most weight on the chunk with most instances.
        assert!(optimal.weights[0] > 0.6, "weights {:?}", optimal.weights);
    }

    #[test]
    fn optimal_weights_depend_on_budget() {
        // With a tiny budget the solver should chase the dense chunk; with a huge
        // budget the dense chunk saturates and the rare chunk earns weight.
        let mut rows = vec![vec![0.05, 0.0]; 20];
        rows.extend(vec![vec![0.0, 0.001]; 20]);
        let probs = InstanceChunkProbabilities::new(rows, 2);
        let small = optimal_weights(&probs, 20, SolverOptions::default());
        let large = optimal_weights(&probs, 20_000, SolverOptions::default());
        assert!(
            large.weights[1] > small.weights[1],
            "rare chunk weight should grow with the budget: {:?} -> {:?}",
            small.weights,
            large.weights
        );
    }

    #[test]
    fn curve_is_monotone_in_budget() {
        let probs = uniform_spread();
        let curve = optimal_curve(&probs, &[10, 100, 1_000], SolverOptions::default());
        assert_eq!(curve.len(), 3);
        assert!(curve[0].1 < curve[1].1 && curve[1].1 < curve[2].1);
    }

    #[test]
    fn solver_never_leaves_the_simplex() {
        let alloc = optimal_weights(&one_sided(), 1_000, SolverOptions::default());
        assert!(alloc.weights.iter().all(|&w| w >= 0.0));
        assert!((alloc.weights.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(alloc.iterations >= 1);
    }

    #[test]
    #[should_panic(expected = "sample budget")]
    fn zero_budget_panics() {
        let _ = optimal_weights(&one_sided(), 0, SolverOptions::default());
    }
}
