//! Euclidean projection onto the probability simplex.
//!
//! Projected gradient ascent needs, after every gradient step, the closest point
//! (in Euclidean distance) on the set `{ w : w ≥ 0, Σ w = 1 }`.  The classic
//! O(M log M) algorithm (sort, find the threshold, shift and clip) is implemented
//! here.

/// Project `v` onto the probability simplex.
///
/// Returns the unique `w` with `w_j ≥ 0` and `Σ w_j = 1` minimising `‖w − v‖₂`.
///
/// # Panics
/// Panics if `v` is empty or contains non-finite values.
pub fn project_to_simplex(v: &[f64]) -> Vec<f64> {
    assert!(!v.is_empty(), "cannot project an empty vector");
    assert!(v.iter().all(|x| x.is_finite()), "vector must be finite");

    // Sort in descending order.
    let mut sorted = v.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite values"));

    // Find rho = max { k : sorted[k] + (1 - prefix_sum(k+1)) / (k+1) > 0 }.
    let mut prefix = 0.0;
    let mut theta = 0.0;
    let mut found = false;
    for (k, &value) in sorted.iter().enumerate() {
        prefix += value;
        let candidate = (prefix - 1.0) / (k + 1) as f64;
        if value - candidate > 0.0 {
            theta = candidate;
            found = true;
        }
    }
    debug_assert!(found, "simplex projection always has a valid threshold");
    let _ = found;

    v.iter().map(|&x| (x - theta).max(0.0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_on_simplex(w: &[f64]) {
        assert!(w.iter().all(|&x| x >= -1e-12));
        assert!(
            (w.iter().sum::<f64>() - 1.0).abs() < 1e-9,
            "sum {}",
            w.iter().sum::<f64>()
        );
    }

    #[test]
    fn point_already_on_simplex_is_unchanged() {
        let v = vec![0.2, 0.3, 0.5];
        let w = project_to_simplex(&v);
        for (a, b) in v.iter().zip(&w) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn uniform_projection_of_equal_values() {
        let w = project_to_simplex(&[5.0, 5.0, 5.0, 5.0]);
        assert_on_simplex(&w);
        for &x in &w {
            assert!((x - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn negative_entries_are_clipped() {
        let w = project_to_simplex(&[-1.0, 0.5, 2.0]);
        assert_on_simplex(&w);
        assert_eq!(w[0], 0.0);
        assert!(w[2] > w[1]);
    }

    #[test]
    fn dominant_entry_gets_all_mass() {
        let w = project_to_simplex(&[100.0, 0.0, 0.0]);
        assert_on_simplex(&w);
        assert!((w[0] - 1.0).abs() < 1e-12);
        assert_eq!(&w[1..], &[0.0, 0.0]);
    }

    #[test]
    fn single_element() {
        assert_eq!(project_to_simplex(&[42.0]), vec![1.0]);
        assert_eq!(project_to_simplex(&[-3.0]), vec![1.0]);
    }

    #[test]
    fn projection_is_idempotent() {
        let first = project_to_simplex(&[0.4, -0.3, 0.9, 0.05]);
        let second = project_to_simplex(&first);
        for (a, b) in first.iter().zip(&second) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn projection_minimises_distance_against_candidates() {
        // Compare against a brute-force grid search on a 2-simplex.
        let v = [0.7, 0.1, -0.2];
        let w = project_to_simplex(&v);
        assert_on_simplex(&w);
        let dist = |a: &[f64]| -> f64 { a.iter().zip(&v).map(|(x, y)| (x - y) * (x - y)).sum() };
        let best = dist(&w);
        let steps = 100;
        for i in 0..=steps {
            for j in 0..=(steps - i) {
                let candidate = [
                    i as f64 / steps as f64,
                    j as f64 / steps as f64,
                    (steps - i - j) as f64 / steps as f64,
                ];
                assert!(dist(&candidate) >= best - 1e-9);
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_vector_panics() {
        let _ = project_to_simplex(&[]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_panics() {
        let _ = project_to_simplex(&[0.1, f64::NAN]);
    }
}
