//! # exsample-opt
//!
//! The optimal static chunk-weight benchmark of Section IV-A (Eq. IV.1).
//!
//! ExSample implicitly assigns each chunk a sampling weight `w_j = n_j / n`.  The
//! paper compares that adaptive allocation against the best *fixed* allocation
//! chosen with perfect knowledge of where instances live: maximise the expected
//! number of distinct instances found after `n` samples,
//!
//! ```text
//! maximise  Σ_i 1 − (1 − p_i · w)^n     subject to  w ≥ 0,  Σ_j w_j = 1
//! ```
//!
//! where `p_i` is instance *i*'s vector of per-chunk conditional hit probabilities.
//! The paper solves this with CVXPY; the objective is smooth and concave over the
//! probability simplex, so this crate solves it from scratch with projected
//! gradient ascent (including an exact Euclidean projection onto the simplex).
//! The resulting curves are the dashed "optimal" lines of Figures 3 and 4.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod objective;
pub mod simplex;
pub mod solver;

pub use objective::{expected_found, gradient, InstanceChunkProbabilities};
pub use simplex::project_to_simplex;
pub use solver::{optimal_weights, OptimalAllocation, SolverOptions};
