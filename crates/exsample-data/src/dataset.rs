//! The `Dataset` bundle consumed by query runners and experiments.

use exsample_detect::{GroundTruth, ObjectClass};
use exsample_video::{Chunking, VideoRepository};
use std::sync::Arc;

/// A fully materialised search workload: a simulated video repository, its chunk
/// partition, and the ground-truth object instances that live in it.
#[derive(Debug, Clone)]
pub struct Dataset {
    name: String,
    repository: VideoRepository,
    chunking: Chunking,
    ground_truth: Arc<GroundTruth>,
}

impl Dataset {
    /// Assemble a dataset.
    ///
    /// # Panics
    /// Panics if the ground truth's frame count disagrees with the repository.
    pub fn new(
        name: impl Into<String>,
        repository: VideoRepository,
        chunking: Chunking,
        ground_truth: Arc<GroundTruth>,
    ) -> Self {
        assert_eq!(
            repository.total_frames(),
            ground_truth.total_frames(),
            "ground truth and repository disagree on the total frame count"
        );
        Dataset {
            name: name.into(),
            repository,
            chunking,
            ground_truth,
        }
    }

    /// Human-readable dataset name (e.g. `"dashcam"` or `"fig3/skew32/d700"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The simulated video repository.
    pub fn repository(&self) -> &VideoRepository {
        &self.repository
    }

    /// The chunk partition used by ExSample on this dataset.
    pub fn chunking(&self) -> &Chunking {
        &self.chunking
    }

    /// The ground-truth instance set.
    pub fn ground_truth(&self) -> &Arc<GroundTruth> {
        &self.ground_truth
    }

    /// Total number of frames.
    pub fn total_frames(&self) -> u64 {
        self.repository.total_frames()
    }

    /// The lengths of every chunk, as needed to construct an ExSample sampler.
    pub fn chunk_lengths(&self) -> Vec<u64> {
        self.chunking.chunk_lengths()
    }

    /// The classes present in the ground truth.
    pub fn classes(&self) -> Vec<ObjectClass> {
        self.ground_truth.classes()
    }

    /// Number of ground-truth instances of `class`.
    pub fn instance_count(&self, class: &ObjectClass) -> usize {
        self.ground_truth.count_of_class(class)
    }

    /// Per-chunk instance counts for `class`: how many instances of the class have
    /// at least one visible frame in each chunk.  This is the histogram Figure 6
    /// plots and the input to the skew metric.
    pub fn instances_per_chunk(&self, class: &ObjectClass) -> Vec<usize> {
        self.chunking
            .chunks()
            .iter()
            .map(|chunk| {
                self.ground_truth
                    .count_in_range(class, chunk.start(), chunk.end())
            })
            .collect()
    }

    /// The per-instance hit probabilities `p_i` for `class` over the whole
    /// repository.
    pub fn hit_probabilities(&self, class: &ObjectClass) -> Vec<f64> {
        self.ground_truth.hit_probabilities(class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exsample_detect::ObjectInstance;
    use exsample_video::ChunkingPolicy;

    fn dataset() -> Dataset {
        let repo = VideoRepository::single_clip(1_000);
        let chunking = Chunking::new(&repo, ChunkingPolicy::FixedCount { chunks: 4 });
        let truth = Arc::new(GroundTruth::from_instances(
            1_000,
            vec![
                ObjectInstance::simple(0, "car", 0, 99),
                ObjectInstance::simple(1, "car", 600, 899),
                ObjectInstance::simple(2, "bus", 240, 260),
            ],
        ));
        Dataset::new("test", repo, chunking, truth)
    }

    #[test]
    fn accessors() {
        let d = dataset();
        assert_eq!(d.name(), "test");
        assert_eq!(d.total_frames(), 1_000);
        assert_eq!(d.chunk_lengths(), vec![250, 250, 250, 250]);
        assert_eq!(d.classes().len(), 2);
        assert_eq!(d.instance_count(&ObjectClass::from("car")), 2);
    }

    #[test]
    fn instances_per_chunk_counts_overlaps() {
        let d = dataset();
        let car = ObjectClass::from("car");
        // Instance 0 in chunk 0; instance 1 spans chunks 2 and 3.
        assert_eq!(d.instances_per_chunk(&car), vec![1, 0, 1, 1]);
        // The bus instance (frames 240-260) straddles the chunk 0 / chunk 1 border.
        let bus = ObjectClass::from("bus");
        assert_eq!(d.instances_per_chunk(&bus), vec![1, 1, 0, 0]);
    }

    #[test]
    fn hit_probabilities_match_durations() {
        let d = dataset();
        let probs = d.hit_probabilities(&ObjectClass::from("car"));
        assert_eq!(probs.len(), 2);
        assert!((probs[0] - 0.1).abs() < 1e-12);
        assert!((probs[1] - 0.3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "disagree on the total frame count")]
    fn mismatched_truth_panics() {
        let repo = VideoRepository::single_clip(1_000);
        let chunking = Chunking::new(&repo, ChunkingPolicy::PerClip);
        let truth = Arc::new(GroundTruth::new(500));
        let _ = Dataset::new("bad", repo, chunking, truth);
    }
}
