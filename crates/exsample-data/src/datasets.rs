//! Statistical analogs of the paper's six evaluation datasets.
//!
//! The paper evaluates on real video from dashcams (dashcam, BDD-1k, BDD MOT) and
//! fixed street cameras (amsterdam, archie, night-street).  That video, the
//! fine-tuned Faster-RCNN detectors, and the GPU cluster used to pre-compute ground
//! truth are not available here, so — per the reproduction's substitution policy —
//! each dataset is replaced by a **statistical analog** that matches the properties
//! ExSample's behaviour actually depends on:
//!
//! * total duration / frame count and chunking granularity (Section V-A);
//! * the number of distinct instances per object class (Figure 6 where reported,
//!   plausible magnitudes otherwise);
//! * the distribution of instance durations (long-lived objects in static cameras,
//!   short-lived in moving cameras) — LogNormal, as in the paper's simulations;
//! * the skew of instances across chunks, expressed with the paper's `S` metric
//!   (Figure 6) and realised with a hot-chunk placement profile.
//!
//! The calibration constants below are encoded in [`DatasetSpec`] values and are
//! deliberately easy to audit and adjust.

use crate::dataset::Dataset;
use crate::skewgen;
use exsample_detect::{BBox, GroundTruth, InstanceId, MotionModel, ObjectClass, ObjectInstance};
use exsample_rand::{LogNormal, Sampler, SeedSequence};
use exsample_video::{Chunking, ChunkingPolicy, ClipId, VideoClip, VideoRepository};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Per-class calibration of a dataset analog.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassSpec {
    /// The object class.
    pub class: &'static str,
    /// Number of distinct instances of this class in the dataset.
    pub instances: usize,
    /// Mean visibility duration in frames.
    pub mean_duration: f64,
    /// Log-space standard deviation of the duration LogNormal.
    pub duration_sigma: f64,
    /// Target skew metric `S` of the class across chunks (>= 1).
    pub skew: f64,
}

/// How the analog's clips are laid out.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClipLayout {
    /// A small number of long recordings (dashcam drives, static cameras), chunked
    /// into fixed-duration chunks.
    LongRecordings {
        /// Number of recordings.
        clips: u32,
        /// Chunk duration in seconds (the paper uses 20 minutes).
        chunk_seconds: f64,
    },
    /// Many short clips, one chunk per clip (the BDD datasets).
    ShortClips {
        /// Number of clips.
        clips: u32,
    },
}

/// Full specification of a dataset analog.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Dataset name as used in the paper.
    pub name: &'static str,
    /// Total number of frames (before scaling).
    pub total_frames: u64,
    /// Clip / chunk layout.
    pub layout: ClipLayout,
    /// Per-class calibration.
    pub classes: Vec<ClassSpec>,
}

impl DatasetSpec {
    /// The classes queried on this dataset.
    pub fn class_names(&self) -> Vec<&'static str> {
        self.classes.iter().map(|c| c.class).collect()
    }

    /// Look up a class spec by name.
    pub fn class(&self, name: &str) -> Option<&ClassSpec> {
        self.classes.iter().find(|c| c.class == name)
    }
}

/// 10 hours of dashcam video over several drives (Section V-A), ~1.1 M frames,
/// 20-minute chunks.
pub fn dashcam() -> DatasetSpec {
    DatasetSpec {
        name: "dashcam",
        total_frames: 1_080_000,
        layout: ClipLayout::LongRecordings {
            clips: 10,
            chunk_seconds: 1200.0,
        },
        classes: vec![
            class("bicycle", 249, 150.0, 1.0, 14.0),
            class("bus", 120, 220.0, 1.0, 6.0),
            class("fire hydrant", 300, 60.0, 0.8, 4.0),
            class("person", 1_500, 120.0, 1.0, 5.0),
            class("stop sign", 400, 90.0, 0.8, 6.0),
            class("traffic light", 900, 180.0, 1.0, 4.0),
            class("truck", 400, 250.0, 1.0, 3.0),
        ],
    }
}

/// 1000 random ~40-second clips from the Berkeley Deep Drive dataset, one chunk per
/// clip.
pub fn bdd1k() -> DatasetSpec {
    DatasetSpec {
        name: "BDD 1k",
        total_frames: 1_200_000,
        layout: ClipLayout::ShortClips { clips: 1_000 },
        classes: vec![
            class("bike", 300, 120.0, 0.9, 10.0),
            class("bus", 350, 150.0, 0.9, 8.0),
            class("motor", 509, 100.0, 0.9, 19.0),
            class("person", 4_000, 200.0, 1.0, 4.0),
            class("rider", 400, 120.0, 0.9, 10.0),
            class("traffic light", 3_000, 150.0, 1.0, 3.0),
            class("traffic sign", 5_000, 120.0, 1.0, 2.5),
            class("truck", 1_200, 200.0, 1.0, 4.0),
        ],
    }
}

/// 1600 short (~200 frame) BDD multi-object-tracking clips with labelled instance
/// ids, one chunk per clip.
pub fn bdd_mot() -> DatasetSpec {
    DatasetSpec {
        name: "BDD MOT",
        total_frames: 320_000,
        layout: ClipLayout::ShortClips { clips: 1_600 },
        classes: vec![
            class("bicycle", 250, 80.0, 0.8, 12.0),
            class("bus", 300, 100.0, 0.8, 8.0),
            class("car", 8_000, 120.0, 0.9, 1.5),
            class("motorcycle", 180, 70.0, 0.8, 15.0),
            class("pedestrian", 3_000, 100.0, 0.9, 3.0),
            class("rider", 350, 80.0, 0.8, 10.0),
            class("trailer", 100, 90.0, 0.8, 18.0),
            class("train", 40, 60.0, 0.8, 25.0),
            class("truck", 900, 110.0, 0.9, 5.0),
        ],
    }
}

/// 20 hours from a fixed camera over an Amsterdam canal, 20-minute chunks.
pub fn amsterdam() -> DatasetSpec {
    DatasetSpec {
        name: "amsterdam",
        total_frames: 2_160_000,
        layout: ClipLayout::LongRecordings {
            clips: 1,
            chunk_seconds: 1200.0,
        },
        classes: vec![
            class("bicycle", 3_000, 300.0, 1.0, 2.0),
            class("boat", 588, 3_000.0, 1.0, 1.6),
            class("car", 4_000, 500.0, 1.0, 1.5),
            class("dog", 250, 200.0, 0.9, 3.0),
            class("motorcycle", 200, 250.0, 0.9, 4.0),
            class("person", 8_000, 400.0, 1.0, 2.0),
            class("truck", 800, 350.0, 1.0, 2.5),
        ],
    }
}

/// 20 hours from a fixed camera over an urban intersection ("archie"), 20-minute
/// chunks.
pub fn archie() -> DatasetSpec {
    DatasetSpec {
        name: "archie",
        total_frames: 2_160_000,
        layout: ClipLayout::LongRecordings {
            clips: 1,
            chunk_seconds: 1200.0,
        },
        classes: vec![
            class("bicycle", 1_500, 250.0, 1.0, 2.5),
            class("bus", 600, 300.0, 1.0, 3.0),
            class("car", 33_546, 400.0, 1.0, 1.1),
            class("motorcycle", 250, 200.0, 0.9, 4.0),
            class("person", 10_000, 300.0, 1.0, 2.0),
            class("truck", 700, 300.0, 1.0, 2.5),
        ],
    }
}

/// 20 hours from a fixed night-time street camera (aka town-square), 20-minute
/// chunks.
pub fn night_street() -> DatasetSpec {
    DatasetSpec {
        name: "night street",
        total_frames: 2_160_000,
        layout: ClipLayout::LongRecordings {
            clips: 1,
            chunk_seconds: 1200.0,
        },
        classes: vec![
            class("bus", 500, 400.0, 1.0, 3.0),
            class("car", 15_000, 500.0, 1.0, 1.3),
            class("dog", 150, 250.0, 0.9, 5.0),
            class("motorcycle", 80, 300.0, 0.9, 6.0),
            class("person", 2_078, 600.0, 1.0, 4.5),
            class("truck", 600, 400.0, 1.0, 3.0),
        ],
    }
}

/// All six dataset analogs in the order the paper lists them.
pub fn all_datasets() -> Vec<DatasetSpec> {
    vec![
        bdd1k(),
        bdd_mot(),
        amsterdam(),
        archie(),
        dashcam(),
        night_street(),
    ]
}

fn class(
    name: &'static str,
    instances: usize,
    mean_duration: f64,
    duration_sigma: f64,
    skew: f64,
) -> ClassSpec {
    ClassSpec {
        class: name,
        instances,
        mean_duration,
        duration_sigma,
        skew,
    }
}

/// Generator turning a [`DatasetSpec`] into a concrete [`Dataset`].
#[derive(Debug, Clone)]
pub struct DatasetAnalog {
    spec: DatasetSpec,
    scale: f64,
    seed: u64,
}

impl DatasetAnalog {
    /// Create a generator for `spec` at full scale.
    pub fn new(spec: DatasetSpec, seed: u64) -> Self {
        DatasetAnalog {
            spec,
            scale: 1.0,
            seed,
        }
    }

    /// Scale the dataset down (or up): total frames, clip counts and instance
    /// counts are all multiplied by `scale`, which keeps every per-instance hit
    /// probability (and therefore the relative behaviour of the samplers) intact
    /// while making experiments and tests proportionally cheaper.
    pub fn with_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 4.0, "scale must be in (0, 4]");
        self.scale = scale;
        self
    }

    /// The underlying spec.
    pub fn spec(&self) -> &DatasetSpec {
        &self.spec
    }

    /// Materialise the dataset analog.
    pub fn generate(&self) -> Dataset {
        let seeds = SeedSequence::new(self.seed)
            .derive("dataset-analog")
            .derive(self.spec.name);
        let mut rng = StdRng::seed_from_u64(seeds.seed());

        let (repo, chunking) = self.build_repository();
        let total_frames = repo.total_frames();
        let chunks = chunking.chunks().to_vec();

        let mut truth = GroundTruth::new(total_frames);
        let mut next_instance = 0u64;
        for class_spec in &self.spec.classes {
            let instance_count =
                ((class_spec.instances as f64 * self.scale).round() as usize).max(1);
            let weights = skewgen::hot_chunk_weights(chunks.len(), class_spec.skew.max(1.0));
            // Shuffle which chunks are "hot" per class so different classes peak in
            // different parts of the dataset, as they do in real data.
            let mut order: Vec<usize> = (0..chunks.len()).collect();
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            let duration_dist =
                LogNormal::with_mean(class_spec.mean_duration, class_spec.duration_sigma)
                    .expect("spec durations are positive");
            let object_class = ObjectClass::from(class_spec.class);

            for _ in 0..instance_count {
                let weight_idx = skewgen::sample_weighted(&weights, &mut rng);
                let chunk = &chunks[order[weight_idx]];
                let duration = duration_dist
                    .sample(&mut rng)
                    .round()
                    .clamp(1.0, chunk.len() as f64) as u64;
                let slack = chunk.len() - duration;
                let first = chunk.start()
                    + if slack == 0 {
                        0
                    } else {
                        rng.gen_range(0..=slack)
                    };
                let last = first + duration - 1;
                let bbox = BBox::from_center(
                    0.1 + rng.gen::<f64>() * 0.8,
                    0.1 + rng.gen::<f64>() * 0.8,
                    0.03 + rng.gen::<f64>() * 0.12,
                    0.03 + rng.gen::<f64>() * 0.12,
                );
                truth.push(ObjectInstance::new(
                    InstanceId(next_instance),
                    object_class.clone(),
                    first,
                    last,
                    MotionModel::Static { bbox },
                    1.0,
                ));
                next_instance += 1;
            }
        }

        Dataset::new(self.spec.name, repo, chunking, Arc::new(truth))
    }

    fn build_repository(&self) -> (VideoRepository, Chunking) {
        let total_frames = ((self.spec.total_frames as f64 * self.scale).round() as u64).max(1);
        match self.spec.layout {
            ClipLayout::LongRecordings {
                clips,
                chunk_seconds,
            } => {
                let clips = clips.max(1);
                let frames_per_clip = (total_frames / u64::from(clips)).max(1);
                let video_clips: Vec<VideoClip> = (0..clips)
                    .map(|i| {
                        VideoClip::with_defaults(
                            ClipId(i),
                            format!("{}-{i}", self.spec.name),
                            frames_per_clip,
                        )
                    })
                    .collect();
                let repo = VideoRepository::from_clips(video_clips);
                // Scale the chunk duration together with the dataset so the chunk
                // *count* (and therefore the achievable skew structure, which is
                // what ExSample exploits) is preserved at reduced scales.
                let chunking = Chunking::new(
                    &repo,
                    ChunkingPolicy::FixedDuration {
                        seconds: (chunk_seconds * self.scale).max(1.0),
                    },
                );
                (repo, chunking)
            }
            ClipLayout::ShortClips { clips } => {
                // Clip count is part of the dataset's identity (BDD = 1000 chunks),
                // so scaling shrinks the clips rather than removing them unless the
                // scale is so small that clips would drop below ~30 frames.
                let mut clip_count = clips.max(1);
                let mut frames_per_clip = (total_frames / u64::from(clip_count)).max(1);
                if frames_per_clip < 30 {
                    clip_count = ((total_frames / 30).max(1)).min(u64::from(clips)) as u32;
                    frames_per_clip = (total_frames / u64::from(clip_count)).max(1);
                }
                let video_clips: Vec<VideoClip> = (0..clip_count)
                    .map(|i| {
                        VideoClip::with_defaults(
                            ClipId(i),
                            format!("{}-clip{i}", self.spec.name),
                            frames_per_clip,
                        )
                    })
                    .collect();
                let repo = VideoRepository::from_clips(video_clips);
                let chunking = Chunking::new(&repo, ChunkingPolicy::PerClip);
                (repo, chunking)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exsample_video::DEFAULT_FPS;

    #[test]
    fn catalog_covers_six_datasets_and_42_plus_queries() {
        let specs = all_datasets();
        assert_eq!(specs.len(), 6);
        let total_queries: usize = specs.iter().map(|s| s.classes.len()).sum();
        assert!(total_queries >= 42, "total queries {total_queries}");
        // Names match the paper.
        let names: Vec<&str> = specs.iter().map(|s| s.name).collect();
        assert!(names.contains(&"dashcam"));
        assert!(names.contains(&"BDD 1k"));
        assert!(names.contains(&"night street"));
    }

    #[test]
    fn figure6_calibration_points_are_present() {
        assert_eq!(dashcam().class("bicycle").unwrap().instances, 249);
        assert_eq!(bdd1k().class("motor").unwrap().instances, 509);
        assert_eq!(night_street().class("person").unwrap().instances, 2_078);
        assert_eq!(archie().class("car").unwrap().instances, 33_546);
        assert_eq!(amsterdam().class("boat").unwrap().instances, 588);
        assert!((archie().class("car").unwrap().skew - 1.1).abs() < 1e-9);
        assert!((dashcam().class("bicycle").unwrap().skew - 14.0).abs() < 1e-9);
    }

    #[test]
    fn bdd_layout_gives_one_chunk_per_clip() {
        let dataset = DatasetAnalog::new(bdd1k(), 1).with_scale(0.05).generate();
        // The clip count (and hence chunk count) is preserved under mild scaling.
        assert_eq!(dataset.chunking().len(), 1_000);
        assert_eq!(dataset.repository().clip_count(), 1_000);
    }

    #[test]
    fn long_recording_layout_preserves_chunk_count_under_scaling() {
        // At full scale amsterdam is 20 hours in 20-minute chunks = 60 chunks; the
        // chunk duration scales with the dataset so the chunk count (and with it
        // the skew structure) is identical at reduced scale.
        let full = DatasetAnalog::new(amsterdam(), 1).generate();
        let small = DatasetAnalog::new(amsterdam(), 1)
            .with_scale(0.1)
            .generate();
        assert_eq!(full.chunking().len(), 60);
        assert_eq!(small.chunking().len(), 60);
        let full_chunk_frames = (1200.0 * DEFAULT_FPS) as u64;
        assert!(full
            .chunking()
            .chunks()
            .iter()
            .all(|c| c.len() <= full_chunk_frames));
    }

    #[test]
    fn scaling_preserves_instance_density() {
        let full = DatasetAnalog::new(dashcam(), 3).with_scale(0.2).generate();
        let small = DatasetAnalog::new(dashcam(), 3).with_scale(0.1).generate();
        let class = ObjectClass::from("traffic light");
        let full_density = full.instance_count(&class) as f64 / full.total_frames() as f64;
        let small_density = small.instance_count(&class) as f64 / small.total_frames() as f64;
        assert!((full_density - small_density).abs() / full_density < 0.1);
    }

    #[test]
    fn skewed_classes_realise_higher_skew_than_uniform_classes() {
        let dataset = DatasetAnalog::new(dashcam(), 7).with_scale(0.25).generate();
        let bicycle = dataset.instances_per_chunk(&ObjectClass::from("bicycle"));
        let truck = dataset.instances_per_chunk(&ObjectClass::from("truck"));
        let s_bicycle = skewgen::skew_metric(&bicycle);
        let s_truck = skewgen::skew_metric(&truck);
        assert!(
            s_bicycle > s_truck,
            "bicycle (target 14) should be more skewed than truck (target 3): {s_bicycle} vs {s_truck}"
        );
        assert!(s_bicycle > 3.0, "bicycle skew {s_bicycle}");
    }

    #[test]
    fn instance_counts_scale_with_scale_factor() {
        let dataset = DatasetAnalog::new(bdd_mot(), 5).with_scale(0.1).generate();
        let cars = dataset.instance_count(&ObjectClass::from("car"));
        assert!((cars as f64 - 800.0).abs() < 1.0, "cars {cars}");
        // Everything fits inside the repository.
        for inst in dataset.ground_truth().instances() {
            assert!(inst.last_frame() < dataset.total_frames());
        }
    }

    #[test]
    fn same_seed_is_reproducible() {
        let a = DatasetAnalog::new(night_street(), 11)
            .with_scale(0.05)
            .generate();
        let b = DatasetAnalog::new(night_street(), 11)
            .with_scale(0.05)
            .generate();
        assert_eq!(a.ground_truth().len(), b.ground_truth().len());
        assert_eq!(
            a.ground_truth().instances()[100],
            b.ground_truth().instances()[100]
        );
    }

    #[test]
    #[should_panic(expected = "scale must be")]
    fn zero_scale_panics() {
        let _ = DatasetAnalog::new(dashcam(), 1).with_scale(0.0);
    }
}
