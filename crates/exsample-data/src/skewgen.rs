//! Placement helpers that create (and measure) instance skew across chunks.
//!
//! Section IV-B identifies *instance skew* — how unevenly instances are spread over
//! the dataset — as the key data property governing ExSample's gains.  Figure 6
//! summarises each query's skew with a single number `S`, defined from the minimum
//! set of chunks that covers half the instances.  This module provides:
//!
//! * the skew metric `S` itself ([`skew_metric`]);
//! * Gaussian temporal placement used by the Figure 3 grid ([`normal_center`]);
//! * a "hot chunk" weight profile that produces a target skew `S`
//!   ([`hot_chunk_weights`]), used when synthesising the real-dataset analogs.

use exsample_rand::{Normal, Sampler};
use rand::Rng;

/// The paper's skew metric `S`.
///
/// Let `k` be the smallest number of chunks whose instance counts sum to at least
/// half of all instances (the blue bars of Figure 6), and `M` the number of chunks.
/// Then `S = 0.5 · M / k`: a perfectly uniform spread needs half the chunks
/// (`k = M/2`, `S = 1`), while a query whose instances are concentrated in a few
/// chunks gets a large `S` (e.g. dashcam/bicycle has `S ≈ 14`).
///
/// Returns 0 for an empty histogram or one with no instances.
pub fn skew_metric(instances_per_chunk: &[usize]) -> f64 {
    let total: usize = instances_per_chunk.iter().sum();
    if total == 0 || instances_per_chunk.is_empty() {
        return 0.0;
    }
    let mut counts: Vec<usize> = instances_per_chunk.to_vec();
    counts.sort_unstable_by(|a, b| b.cmp(a));
    let half = total.div_ceil(2);
    let mut covered = 0usize;
    let mut k = 0usize;
    for c in counts {
        covered += c;
        k += 1;
        if covered >= half {
            break;
        }
    }
    0.5 * instances_per_chunk.len() as f64 / k as f64
}

/// Draw an instance's centre frame from a Normal centred in the dataset whose
/// spread is chosen so that ~95 % of instances fall within the central
/// `concentration` fraction of the frame axis (the Figure 3 construction).
///
/// `concentration = 1.0` (or anything ≥ 1) means no skew and falls back to a
/// uniform draw.  The result is clamped to `[0, total_frames)`.
pub fn normal_center<R: Rng + ?Sized>(total_frames: u64, concentration: f64, rng: &mut R) -> u64 {
    assert!(total_frames > 0);
    assert!(concentration > 0.0, "concentration must be positive");
    if concentration >= 1.0 {
        return rng.gen_range(0..total_frames);
    }
    let mid = total_frames as f64 / 2.0;
    // 95% of a Normal lies within ±1.96 sigma; we want that to span the central
    // `concentration` fraction of the dataset.
    let sigma = concentration * total_frames as f64 / (2.0 * 1.96);
    let normal = Normal::new(mid, sigma).expect("sigma positive");
    let drawn = normal.sample(rng);
    drawn.clamp(0.0, (total_frames - 1) as f64) as u64
}

/// Chunk-selection weights that realise a target skew `S` with a simple
/// "hot fraction" profile: half of the instances land uniformly in the hottest
/// `M / (2S)` chunks, the other half uniformly across the remaining chunks.
///
/// With that split the minimum chunk set covering half the mass is exactly the hot
/// set, so the expected [`skew_metric`] equals the target (up to rounding of the
/// hot-chunk count).  `S = 1` degenerates to uniform weights.
pub fn hot_chunk_weights(num_chunks: usize, target_skew: f64) -> Vec<f64> {
    assert!(num_chunks > 0);
    assert!(target_skew >= 1.0, "skew below 1 is not meaningful");
    let hot_chunks = ((num_chunks as f64 / (2.0 * target_skew)).round() as usize)
        .clamp(1, num_chunks / 2 + num_chunks % 2);
    if hot_chunks >= num_chunks {
        return vec![1.0 / num_chunks as f64; num_chunks];
    }
    let hot_weight = 0.5 / hot_chunks as f64;
    let cold_weight = 0.5 / (num_chunks - hot_chunks) as f64;
    let mut weights = vec![cold_weight; num_chunks];
    for w in weights.iter_mut().take(hot_chunks) {
        *w = hot_weight;
    }
    // Normalise exactly (guards against rounding drift).
    let sum: f64 = weights.iter().sum();
    for w in &mut weights {
        *w /= sum;
    }
    weights
}

/// Sample an index according to a (normalised) weight vector.
pub fn sample_weighted<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> usize {
    assert!(!weights.is_empty());
    let total: f64 = weights.iter().sum();
    let mut target = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        target -= w;
        if target <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn skew_metric_uniform_is_one() {
        let counts = vec![10usize; 64];
        assert!((skew_metric(&counts) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn skew_metric_concentrated() {
        // All instances in one of 64 chunks: k = 1, S = 32.
        let mut counts = vec![0usize; 64];
        counts[10] = 100;
        assert!((skew_metric(&counts) - 32.0).abs() < 1e-12);
        // Half the instances in one chunk, half spread out: k = 1 still covers half.
        let mut counts = vec![1usize; 64];
        counts[0] = 64;
        assert!(skew_metric(&counts) > 10.0);
    }

    #[test]
    fn skew_metric_empty_inputs() {
        assert_eq!(skew_metric(&[]), 0.0);
        assert_eq!(skew_metric(&[0, 0, 0]), 0.0);
    }

    #[test]
    fn normal_center_concentrates_mass() {
        let mut rng = StdRng::seed_from_u64(301);
        let total = 1_000_000u64;
        let concentration = 1.0 / 32.0;
        let mut inside = 0;
        let trials = 5_000;
        for _ in 0..trials {
            let c = normal_center(total, concentration, &mut rng);
            let lo = total / 2 - total / 64;
            let hi = total / 2 + total / 64;
            if c >= lo && c < hi {
                inside += 1;
            }
        }
        let frac = inside as f64 / trials as f64;
        assert!(
            (frac - 0.95).abs() < 0.03,
            "fraction inside central band: {frac}"
        );
    }

    #[test]
    fn normal_center_uniform_when_no_skew() {
        let mut rng = StdRng::seed_from_u64(302);
        let total = 100_000u64;
        let mut first_half = 0;
        for _ in 0..10_000 {
            if normal_center(total, 1.0, &mut rng) < total / 2 {
                first_half += 1;
            }
        }
        assert!((first_half as f64 / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn hot_chunk_weights_sum_to_one_and_realise_skew() {
        let mut rng = StdRng::seed_from_u64(303);
        for &target in &[1.0, 2.0, 4.0, 14.0, 25.0] {
            let weights = hot_chunk_weights(128, target);
            assert!((weights.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            // Generate instance counts from the weights and measure realised skew.
            let mut counts = vec![0usize; 128];
            for _ in 0..20_000 {
                counts[sample_weighted(&weights, &mut rng)] += 1;
            }
            let realised = skew_metric(&counts);
            if target == 1.0 {
                assert!(realised < 1.3, "target 1, realised {realised}");
            } else {
                assert!(
                    realised > target * 0.5 && realised < target * 1.6,
                    "target {target}, realised {realised}"
                );
            }
        }
    }

    #[test]
    fn sample_weighted_respects_weights() {
        let mut rng = StdRng::seed_from_u64(304);
        let weights = vec![0.1, 0.7, 0.2];
        let mut counts = [0u32; 3];
        for _ in 0..10_000 {
            counts[sample_weighted(&weights, &mut rng)] += 1;
        }
        assert!((f64::from(counts[1]) / 10_000.0 - 0.7).abs() < 0.03);
        assert!((f64::from(counts[0]) / 10_000.0 - 0.1).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "skew below 1")]
    fn sub_one_skew_panics() {
        let _ = hot_chunk_weights(10, 0.5);
    }
}
