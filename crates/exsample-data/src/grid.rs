//! The Figure 3 / Figure 4 simulation workload.
//!
//! Section IV-B fixes 2000 instances in a 16-million-frame repository, places their
//! centres according to a Normal distribution whose spread controls the *instance
//! skew* (none, or 95 % of instances in the central 1/4, 1/32, 1/256 of frames),
//! draws their durations from a LogNormal with a target mean (14, 100, 700 or 4900
//! frames), and splits the repository into 128 chunks (Figure 4 varies this from
//! 1 to 1024).  [`GridWorkload`] reproduces that construction and materialises it
//! as a [`Dataset`].

use crate::dataset::Dataset;
use crate::skewgen;
use exsample_detect::{BBox, GroundTruth, InstanceId, MotionModel, ObjectClass, ObjectInstance};
use exsample_rand::{LogNormal, Sampler, SeedSequence};
use exsample_video::{Chunking, ChunkingPolicy, VideoRepository};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// The instance-skew settings of Figure 3's columns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SkewLevel {
    /// No skew: instance centres are uniform over the frame axis.
    None,
    /// 95 % of instances in the central 1/4 of the dataset.
    Quarter,
    /// 95 % of instances in the central 1/32 of the dataset.
    ThirtySecond,
    /// 95 % of instances in the central 1/256 of the dataset.
    TwoFiftySixth,
    /// 95 % of instances in the central `1/fraction_inverse` of the dataset.
    Custom {
        /// The denominator of the concentration fraction (e.g. 32 means the central
        /// 1/32 of frames).
        fraction_inverse: f64,
    },
}

impl SkewLevel {
    /// The concentration fraction (`1.0` means no skew).
    pub fn concentration(&self) -> f64 {
        match self {
            SkewLevel::None => 1.0,
            SkewLevel::Quarter => 1.0 / 4.0,
            SkewLevel::ThirtySecond => 1.0 / 32.0,
            SkewLevel::TwoFiftySixth => 1.0 / 256.0,
            SkewLevel::Custom { fraction_inverse } => 1.0 / fraction_inverse,
        }
    }

    /// A short label used in dataset names and experiment tables.
    pub fn label(&self) -> String {
        match self {
            SkewLevel::None => "none".to_string(),
            SkewLevel::Quarter => "1/4".to_string(),
            SkewLevel::ThirtySecond => "1/32".to_string(),
            SkewLevel::TwoFiftySixth => "1/256".to_string(),
            SkewLevel::Custom { fraction_inverse } => format!("1/{fraction_inverse}"),
        }
    }

    /// The four levels of Figure 3's columns, in order of increasing skew.
    pub fn figure3_columns() -> [SkewLevel; 4] {
        [
            SkewLevel::None,
            SkewLevel::Quarter,
            SkewLevel::ThirtySecond,
            SkewLevel::TwoFiftySixth,
        ]
    }
}

/// Errors returned by [`GridWorkloadBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GridWorkloadError {
    /// The repository must contain at least one frame.
    NoFrames,
    /// The workload must contain at least one instance.
    NoInstances,
    /// At least one chunk is required.
    NoChunks,
    /// The mean duration must be at least one frame and shorter than the dataset.
    BadDuration,
}

impl std::fmt::Display for GridWorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GridWorkloadError::NoFrames => write!(f, "workload needs at least one frame"),
            GridWorkloadError::NoInstances => write!(f, "workload needs at least one instance"),
            GridWorkloadError::NoChunks => write!(f, "workload needs at least one chunk"),
            GridWorkloadError::BadDuration => write!(
                f,
                "mean duration must be >= 1 frame and smaller than the dataset"
            ),
        }
    }
}

impl std::error::Error for GridWorkloadError {}

/// Builder for [`GridWorkload`].
#[derive(Debug, Clone)]
pub struct GridWorkloadBuilder {
    frames: u64,
    instances: usize,
    chunks: u32,
    mean_duration: f64,
    duration_sigma: f64,
    skew: SkewLevel,
    seed: u64,
}

impl Default for GridWorkloadBuilder {
    /// The paper's Figure 3 defaults: 16 M frames, 2000 instances, 128 chunks, mean
    /// duration 700 frames, log-space sigma 1.0, skew 1/32.
    fn default() -> Self {
        GridWorkloadBuilder {
            frames: 16_000_000,
            instances: 2_000,
            chunks: 128,
            mean_duration: 700.0,
            duration_sigma: 1.0,
            skew: SkewLevel::ThirtySecond,
            seed: 0,
        }
    }
}

impl GridWorkloadBuilder {
    /// Total number of frames in the repository.
    pub fn frames(mut self, frames: u64) -> Self {
        self.frames = frames;
        self
    }

    /// Number of object instances.
    pub fn instances(mut self, instances: usize) -> Self {
        self.instances = instances;
        self
    }

    /// Number of chunks the repository is split into.
    pub fn chunks(mut self, chunks: u32) -> Self {
        self.chunks = chunks;
        self
    }

    /// Target mean instance duration in frames.
    pub fn mean_duration(mut self, mean: f64) -> Self {
        self.mean_duration = mean;
        self
    }

    /// Log-space standard deviation of the duration LogNormal.
    pub fn duration_sigma(mut self, sigma: f64) -> Self {
        self.duration_sigma = sigma;
        self
    }

    /// Instance-skew level.
    pub fn skew(mut self, skew: SkewLevel) -> Self {
        self.skew = skew;
        self
    }

    /// Seed controlling instance placement and durations.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validate the configuration.
    pub fn build(self) -> Result<GridWorkload, GridWorkloadError> {
        if self.frames == 0 {
            return Err(GridWorkloadError::NoFrames);
        }
        if self.instances == 0 {
            return Err(GridWorkloadError::NoInstances);
        }
        if self.chunks == 0 {
            return Err(GridWorkloadError::NoChunks);
        }
        if self.mean_duration < 1.0 || self.mean_duration >= self.frames as f64 {
            return Err(GridWorkloadError::BadDuration);
        }
        Ok(GridWorkload { spec: self })
    }
}

/// A validated Figure 3-style workload specification.
#[derive(Debug, Clone)]
pub struct GridWorkload {
    spec: GridWorkloadBuilder,
}

impl GridWorkload {
    /// Start building a workload (defaults match the paper's Figure 3 setup).
    pub fn builder() -> GridWorkloadBuilder {
        GridWorkloadBuilder::default()
    }

    /// The class every generated instance belongs to.
    pub fn class() -> ObjectClass {
        ObjectClass::from("object")
    }

    /// Total frames.
    pub fn frames(&self) -> u64 {
        self.spec.frames
    }

    /// Number of instances.
    pub fn instances(&self) -> usize {
        self.spec.instances
    }

    /// Number of chunks.
    pub fn chunks(&self) -> u32 {
        self.spec.chunks
    }

    /// Skew level.
    pub fn skew(&self) -> SkewLevel {
        self.spec.skew
    }

    /// Target mean duration.
    pub fn mean_duration(&self) -> f64 {
        self.spec.mean_duration
    }

    /// Materialise the workload as a [`Dataset`].
    pub fn generate(&self) -> Dataset {
        let spec = &self.spec;
        let seeds = SeedSequence::new(spec.seed).derive("grid-workload");
        let mut rng = StdRng::seed_from_u64(seeds.seed());

        let repo = VideoRepository::single_clip(spec.frames);
        let chunking = Chunking::new(
            &repo,
            ChunkingPolicy::FixedCount {
                chunks: spec.chunks,
            },
        );

        let duration_dist = LogNormal::with_mean(spec.mean_duration, spec.duration_sigma)
            .expect("builder validated the mean duration");
        let concentration = spec.skew.concentration();
        let class = Self::class();

        let mut truth = GroundTruth::new(spec.frames);
        for i in 0..spec.instances {
            let duration = duration_dist
                .sample(&mut rng)
                .round()
                .clamp(1.0, (spec.frames / 2) as f64) as u64;
            let center = skewgen::normal_center(spec.frames, concentration, &mut rng);
            let half = duration / 2;
            let first = center.saturating_sub(half);
            let last = (first + duration - 1).min(spec.frames - 1);
            // Random static box so that the tracking discriminator can distinguish
            // co-occurring instances by position.
            let bbox = BBox::from_center(
                0.1 + rng.gen::<f64>() * 0.8,
                0.1 + rng.gen::<f64>() * 0.8,
                0.05 + rng.gen::<f64>() * 0.1,
                0.05 + rng.gen::<f64>() * 0.1,
            );
            truth.push(ObjectInstance::new(
                InstanceId(i as u64),
                class.clone(),
                first,
                last,
                MotionModel::Static { bbox },
                1.0,
            ));
        }

        let name = format!(
            "grid/skew-{}/dur-{}/chunks-{}",
            spec.skew.label(),
            spec.mean_duration,
            spec.chunks
        );
        Dataset::new(name, repo, chunking, Arc::new(truth))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> GridWorkloadBuilder {
        GridWorkload::builder()
            .frames(100_000)
            .instances(300)
            .chunks(16)
            .mean_duration(100.0)
            .seed(5)
    }

    #[test]
    fn defaults_match_paper() {
        let b = GridWorkloadBuilder::default();
        assert_eq!(b.frames, 16_000_000);
        assert_eq!(b.instances, 2_000);
        assert_eq!(b.chunks, 128);
        assert_eq!(b.mean_duration, 700.0);
    }

    #[test]
    fn generated_dataset_has_requested_shape() {
        let dataset = small().build().unwrap().generate();
        assert_eq!(dataset.total_frames(), 100_000);
        assert_eq!(dataset.chunk_lengths().len(), 16);
        assert_eq!(dataset.instance_count(&GridWorkload::class()), 300);
        // All instances stay within the repository.
        for inst in dataset.ground_truth().instances() {
            assert!(inst.last_frame() < 100_000);
        }
    }

    #[test]
    fn durations_average_near_target() {
        let dataset = small().instances(2_000).build().unwrap().generate();
        let durations: Vec<f64> = dataset
            .ground_truth()
            .instances()
            .iter()
            .map(|i| i.duration() as f64)
            .collect();
        let mean = durations.iter().sum::<f64>() / durations.len() as f64;
        assert!((mean - 100.0).abs() / 100.0 < 0.15, "mean duration {mean}");
        // LogNormal durations are skewed: max far above the mean.
        let max = durations.iter().copied().fold(0.0, f64::max);
        assert!(max > 3.0 * mean);
    }

    #[test]
    fn skew_levels_concentrate_instances() {
        let class = GridWorkload::class();
        let uniform = small().skew(SkewLevel::None).build().unwrap().generate();
        let skewed = small()
            .skew(SkewLevel::ThirtySecond)
            .build()
            .unwrap()
            .generate();
        let s_uniform = skewgen::skew_metric(&uniform.instances_per_chunk(&class).to_vec());
        let s_skewed = skewgen::skew_metric(&skewed.instances_per_chunk(&class).to_vec());
        assert!(s_uniform < 1.7, "uniform skew {s_uniform}");
        assert!(s_skewed > 4.0, "skewed skew {s_skewed}");
        assert!(s_skewed > s_uniform);
    }

    #[test]
    fn same_seed_reproduces_dataset() {
        let a = small().build().unwrap().generate();
        let b = small().build().unwrap().generate();
        assert_eq!(a.ground_truth().instances(), b.ground_truth().instances());
        let c = small().seed(6).build().unwrap().generate();
        assert_ne!(a.ground_truth().instances(), c.ground_truth().instances());
    }

    #[test]
    fn builder_validation() {
        assert_eq!(
            GridWorkload::builder().frames(0).build().unwrap_err(),
            GridWorkloadError::NoFrames
        );
        assert_eq!(
            GridWorkload::builder().instances(0).build().unwrap_err(),
            GridWorkloadError::NoInstances
        );
        assert_eq!(
            GridWorkload::builder().chunks(0).build().unwrap_err(),
            GridWorkloadError::NoChunks
        );
        assert_eq!(
            GridWorkload::builder()
                .mean_duration(0.5)
                .build()
                .unwrap_err(),
            GridWorkloadError::BadDuration
        );
        assert_eq!(
            small().frames(50).mean_duration(100.0).build().unwrap_err(),
            GridWorkloadError::BadDuration
        );
    }

    #[test]
    fn skew_level_labels_and_concentrations() {
        assert_eq!(SkewLevel::None.concentration(), 1.0);
        assert_eq!(SkewLevel::Quarter.concentration(), 0.25);
        assert_eq!(SkewLevel::TwoFiftySixth.label(), "1/256");
        assert_eq!(
            SkewLevel::Custom {
                fraction_inverse: 8.0
            }
            .concentration(),
            0.125
        );
        assert_eq!(SkewLevel::figure3_columns().len(), 4);
    }
}
