//! # exsample-data
//!
//! Synthetic workloads and statistical dataset analogs for the ExSample
//! reproduction.
//!
//! The paper evaluates ExSample in two regimes:
//!
//! 1. **Controlled simulations** (Section III-D, Section IV, Figures 2–4) in which
//!    object instances are described purely by their per-frame hit probabilities or
//!    by (placement, duration) distributions over a synthetic frame axis.  These are
//!    reproduced exactly by [`independent::IndependentWorkload`] (Figure 2) and
//!    [`grid::GridWorkload`] (Figures 3 and 4).
//!
//! 2. **Real video datasets** (Section V, Table I, Figures 5–6): dashcam, BDD-1k,
//!    BDD MOT, amsterdam, archie and night-street.  The raw video is not available
//!    (and running Faster-RCNN over thousands of hours is outside the scope of a
//!    reproduction); what ExSample's behaviour depends on is the *statistical
//!    structure* of each dataset — how many instances of each class there are, how
//!    long they stay visible, and how skewed their placement across chunks is.
//!    [`datasets`] builds statistical analogs with those properties, calibrated to
//!    the numbers the paper reports (dataset sizes and chunk counts from Section
//!    V-A, instance counts and skew values from Figure 6, query lists from
//!    Table I).
//!
//! Both regimes produce a [`dataset::Dataset`]: a simulated video repository, its
//! chunking, and a ground-truth instance set — everything the query runner in
//! `exsample-sim` needs to execute searches.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod dataset;
pub mod datasets;
pub mod grid;
pub mod independent;
pub mod skewgen;

pub use dataset::Dataset;
pub use datasets::{DatasetAnalog, DatasetSpec};
pub use grid::{GridWorkload, GridWorkloadBuilder, SkewLevel};
pub use independent::IndependentWorkload;
