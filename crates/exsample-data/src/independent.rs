//! The independent-occurrence workload of the Figure 2 validation experiment.
//!
//! Section III-D validates the estimator with a purely probabilistic model: there
//! are `N` instances, instance `i` appears in any sampled frame independently with
//! probability `p_i`, and the `p_i` are drawn from a LogNormal to create realistic
//! skew (the paper's run has 1000 instances with `min p = 3e-6`, `max p = 0.15`,
//! `µ_p = 3e-3`, `σ_p = 8e-3` over a 1-million-frame, ~10 hour dataset).  This
//! module reproduces that model: it generates the `p_i` and simulates frame samples
//! as independent coin tosses.

use exsample_rand::{LogNormal, Sampler};
use rand::Rng;

/// A workload in which instances appear independently per sampled frame.
#[derive(Debug, Clone)]
pub struct IndependentWorkload {
    probabilities: Vec<f64>,
}

impl IndependentWorkload {
    /// Create a workload from explicit per-instance probabilities.
    ///
    /// # Panics
    /// Panics if any probability is outside `[0, 1]`.
    pub fn from_probabilities(probabilities: Vec<f64>) -> Self {
        assert!(
            probabilities.iter().all(|p| (0.0..=1.0).contains(p)),
            "all hit probabilities must lie in [0, 1]"
        );
        IndependentWorkload { probabilities }
    }

    /// Generate `instances` probabilities from a LogNormal in probability space,
    /// reproducing the paper's skewed `p_i` (Section III-D).
    ///
    /// `median_p` is the median hit probability and `sigma` the log-space standard
    /// deviation; the paper's configuration corresponds roughly to
    /// `median_p = 6e-4`, `sigma = 1.75` over 1000 instances (giving a mean near
    /// `3e-3` and a standard deviation near `8e-3`).  Probabilities are capped at
    /// 0.5 so no instance is found in essentially every frame.
    pub fn generate<R: Rng + ?Sized>(
        instances: usize,
        median_p: f64,
        sigma: f64,
        rng: &mut R,
    ) -> Self {
        assert!(instances > 0, "need at least one instance");
        assert!(
            median_p > 0.0 && median_p < 1.0,
            "median probability must be in (0, 1)"
        );
        let dist = LogNormal::new(median_p.ln(), sigma).expect("validated parameters");
        let probabilities = (0..instances).map(|_| dist.sample(rng).min(0.5)).collect();
        IndependentWorkload { probabilities }
    }

    /// Generate the paper's Figure 2 configuration: 1000 instances whose `p_i` span
    /// roughly `3e-6` to `0.15` with mean `~3e-3`.
    pub fn paper_figure2<R: Rng + ?Sized>(rng: &mut R) -> Self {
        IndependentWorkload::generate(1_000, 6e-4, 1.75, rng)
    }

    /// The per-instance hit probabilities.
    pub fn probabilities(&self) -> &[f64] {
        &self.probabilities
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.probabilities.len()
    }

    /// Whether the workload has no instances.
    pub fn is_empty(&self) -> bool {
        self.probabilities.is_empty()
    }

    /// Mean of the `p_i` (the paper's `µ_p`).
    pub fn mean_p(&self) -> f64 {
        if self.probabilities.is_empty() {
            return 0.0;
        }
        self.probabilities.iter().sum::<f64>() / self.probabilities.len() as f64
    }

    /// Standard deviation of the `p_i` (the paper's `σ_p`).
    pub fn sigma_p(&self) -> f64 {
        if self.probabilities.len() < 2 {
            return 0.0;
        }
        let mean = self.mean_p();
        let var = self
            .probabilities
            .iter()
            .map(|p| (p - mean) * (p - mean))
            .sum::<f64>()
            / self.probabilities.len() as f64;
        var.sqrt()
    }

    /// Largest hit probability (the paper's `max p_i`).
    pub fn max_p(&self) -> f64 {
        self.probabilities.iter().copied().fold(0.0, f64::max)
    }

    /// Simulate sampling one frame: each instance appears independently with its
    /// own probability.  Returns the indices of the instances visible in the frame.
    pub fn sample_frame<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<usize> {
        self.probabilities
            .iter()
            .enumerate()
            .filter(|(_, &p)| rng.gen::<f64>() < p)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn explicit_probabilities_round_trip() {
        let w = IndependentWorkload::from_probabilities(vec![0.1, 0.01, 0.5]);
        assert_eq!(w.len(), 3);
        assert!((w.max_p() - 0.5).abs() < 1e-12);
        assert!((w.mean_p() - 0.61 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must lie in [0, 1]")]
    fn invalid_probability_panics() {
        let _ = IndependentWorkload::from_probabilities(vec![0.1, 1.5]);
    }

    #[test]
    fn generated_workload_is_skewed_like_the_paper() {
        let mut rng = StdRng::seed_from_u64(201);
        let w = IndependentWorkload::paper_figure2(&mut rng);
        assert_eq!(w.len(), 1_000);
        // Orders of magnitude as described in Section III-D: mean of a few 1e-3,
        // sigma within an order of magnitude of 8e-3, max well above the mean.
        assert!(
            w.mean_p() > 5e-4 && w.mean_p() < 2e-2,
            "mean_p {}",
            w.mean_p()
        );
        assert!(
            w.sigma_p() > 1e-3 && w.sigma_p() < 5e-2,
            "sigma_p {}",
            w.sigma_p()
        );
        assert!(
            w.max_p() > 10.0 * w.mean_p(),
            "max_p {} mean_p {}",
            w.max_p(),
            w.mean_p()
        );
        assert!(w.probabilities().iter().all(|&p| p > 0.0 && p <= 0.5));
    }

    #[test]
    fn sample_frame_hits_instances_at_their_rate() {
        let w = IndependentWorkload::from_probabilities(vec![0.5, 0.01]);
        let mut rng = StdRng::seed_from_u64(202);
        let trials = 20_000;
        let mut hits = [0u32; 2];
        for _ in 0..trials {
            for idx in w.sample_frame(&mut rng) {
                hits[idx] += 1;
            }
        }
        let rate0 = f64::from(hits[0]) / trials as f64;
        let rate1 = f64::from(hits[1]) / trials as f64;
        assert!((rate0 - 0.5).abs() < 0.02, "rate0 {rate0}");
        assert!((rate1 - 0.01).abs() < 0.005, "rate1 {rate1}");
    }

    #[test]
    fn zero_probability_instance_never_appears() {
        let w = IndependentWorkload::from_probabilities(vec![0.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(203);
        for _ in 0..100 {
            let visible = w.sample_frame(&mut rng);
            assert_eq!(visible, vec![1]);
        }
    }
}
