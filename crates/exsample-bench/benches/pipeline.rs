//! Criterion benchmarks of the end-to-end simulated pipeline.
//!
//! These measure one full query-runner step (detector + discriminator + statistics
//! update) and a short end-to-end query for ExSample vs. random sampling on a
//! skewed workload, documenting the simulation throughput that the experiment
//! binaries rely on.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use exsample_core::ExSampleConfig;
use exsample_data::{GridWorkload, SkewLevel};
use exsample_detect::{Detector, PerfectDetector};
use exsample_sim::{MethodKind, QueryRunner, StopCondition};
use exsample_track::{Discriminator, OracleDiscriminator};
use std::sync::Arc;

fn dataset() -> exsample_data::Dataset {
    GridWorkload::builder()
        .frames(500_000)
        .instances(800)
        .chunks(64)
        .mean_duration(300.0)
        .skew(SkewLevel::ThirtySecond)
        .seed(99)
        .build()
        .expect("valid workload")
        .generate()
}

fn bench_detector_and_discriminator(c: &mut Criterion) {
    let dataset = dataset();
    let truth = Arc::clone(dataset.ground_truth());
    let detector = PerfectDetector::new(Arc::clone(&truth), GridWorkload::class());
    c.bench_function("simulated_detector_detect", |b| {
        let mut frame = 0u64;
        b.iter(|| {
            frame = (frame + 9_973) % dataset.total_frames();
            black_box(detector.detect(frame))
        });
    });
    c.bench_function("oracle_discriminator_observe", |b| {
        let mut discriminator = OracleDiscriminator::new();
        let detections = detector.detect(250_000);
        b.iter(|| black_box(discriminator.observe(&detections)));
    });
}

fn bench_short_queries(c: &mut Criterion) {
    let dataset = dataset();
    let mut group = c.benchmark_group("query_500_frames");
    group.sample_size(20);
    group.bench_function("exsample", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(
                QueryRunner::new(&dataset)
                    .stop(StopCondition::FrameBudget(500))
                    .seed(seed)
                    .run(MethodKind::ExSample(ExSampleConfig::default()))
                    .expect("query run succeeded"),
            )
        });
    });
    group.bench_function("random", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(
                QueryRunner::new(&dataset)
                    .stop(StopCondition::FrameBudget(500))
                    .seed(seed)
                    .run(MethodKind::Random)
                    .expect("query run succeeded"),
            )
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_detector_and_discriminator,
    bench_short_queries
);
criterion_main!(benches);
