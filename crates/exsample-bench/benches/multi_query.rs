//! Multi-query engine throughput: 1, 8 and 64 concurrent queries over one
//! shared repository, with cross-query frame coalescing on and off.
//!
//! Each iteration executes a full `QueryEngine` run: every query is an
//! ExSample policy with its own RNG stream and frame budget, all targeting the
//! same detector over the same repository.  The coalesced/uncoalesced pair
//! measures what sharing detector work across queries buys; the detector here
//! is the cheap simulated one, so the wall-clock gap *understates* the real
//! saving (each shared frame avoids a full decode + GPU inference in
//! production) — which is why the bench also reports the invocation counts
//! that determine the real-world bill.
//!
//! `BENCH_QUICK=1` (the CI smoke configuration) shrinks the per-query budget.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use exsample_core::ExSampleConfig;
use exsample_data::{Dataset, GridWorkload, SkewLevel};
use exsample_detect::PerfectDetector;
use exsample_engine::{EngineReport, ExSamplePolicy, QueryEngine, QuerySpec};
use std::sync::Arc;

const QUERY_COUNTS: [usize; 3] = [1, 8, 64];

fn budget() -> u64 {
    if std::env::var("BENCH_QUICK").is_ok_and(|v| v == "1") {
        150
    } else {
        600
    }
}

fn dataset() -> Dataset {
    GridWorkload::builder()
        .frames(200_000)
        .instances(400)
        .chunks(32)
        .mean_duration(150.0)
        .skew(SkewLevel::ThirtySecond)
        .seed(31)
        .build()
        .expect("valid workload")
        .generate()
}

fn run_engine(
    dataset: &Dataset,
    detector: &PerfectDetector,
    queries: usize,
    coalesce: bool,
    budget: u64,
) -> EngineReport {
    let mut engine = QueryEngine::new().coalesce(coalesce);
    for q in 0..queries {
        let policy = ExSamplePolicy::new(ExSampleConfig::default(), dataset.chunking());
        engine
            .push(
                QuerySpec::new(format!("q{q}"), Box::new(policy), detector)
                    .seed(1000 + q as u64)
                    .batch(16)
                    .frame_budget(budget),
            )
            .expect("valid query spec");
    }
    engine.run().expect("queries registered")
}

fn bench_multi_query(c: &mut Criterion) {
    let dataset = dataset();
    let detector = PerfectDetector::new(Arc::clone(dataset.ground_truth()), GridWorkload::class());
    let budget = budget();
    let mut group = c.benchmark_group("multi_query");
    group.sample_size(10);
    for &queries in &QUERY_COUNTS {
        for (label, coalesce) in [("coalesced", true), ("uncoalesced", false)] {
            group.bench_with_input(BenchmarkId::new(label, queries), &queries, |b, &queries| {
                b.iter(|| black_box(run_engine(&dataset, &detector, queries, coalesce, budget)));
            });
        }
    }
    group.finish();

    // The acceptance-relevant numbers: batched detector invocations actually
    // issued vs. what the queries demanded, per concurrency level.
    println!("\n# multi-query detector invocation counts (per-query budget {budget} frames)");
    println!("# queries | demanded | detected (coalesced) | detected (uncoalesced) | shared");
    for &queries in &QUERY_COUNTS {
        let coalesced = run_engine(&dataset, &detector, queries, true, budget);
        let uncoalesced = run_engine(&dataset, &detector, queries, false, budget);
        assert_eq!(coalesced.demanded_frames, uncoalesced.demanded_frames);
        println!(
            "# {:>7} | {:>8} | {:>20} | {:>22} | {:>6}",
            queries,
            coalesced.demanded_frames,
            coalesced.detector_frames,
            uncoalesced.detector_frames,
            coalesced.coalesced_savings()
        );
    }
}

criterion_group!(benches, bench_multi_query);
criterion_main!(benches);
