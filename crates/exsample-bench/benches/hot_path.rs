//! Hot-path benchmarks for the chunk-selection overhaul.
//!
//! Measures picks/sec of the optimised sampler (`exsample_core::ExSample` with
//! the belief cache, incremental eligibility and one-pass batched Thompson
//! draws) against a faithful replica of the pre-refactor implementation at
//! M ∈ {60, 1 000, 10 000} chunks, plus the `class_max` axis (belief-class
//! deduplicated draws vs per-chunk draws vs the seed replica at
//! M ∈ {1k, 10k, 100k} under all-prior and skewed-posterior regimes) and the
//! parallel-vs-sequential sweep throughput of `exsample_sim::run_trials`.
//!
//! The `reference` module reproduces the seed implementation line-for-line:
//! eligibility mask allocated per pick, the single pick routed through a
//! batch-select vector, one belief distribution constructed per chunk per
//! draw, and the polar-method standard normal plus `powf` boost inside the
//! Gamma sampler.  Run with `BENCH_JSON=BENCH_hot_path.json` to refresh the
//! committed baseline.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use exsample_core::{ExSample, ExSampleConfig, SelectionStrategy};
use exsample_data::{GridWorkload, SkewLevel};
use exsample_sim::{run_trials, MethodKind, QueryRunner, StopCondition};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Faithful replica of the pre-refactor (seed) selection hot path, kept as the
/// benchmark baseline.  Copied from the seed implementation; do not "optimise".
mod reference {
    use exsample_core::config::WithinChunkSampling;
    use exsample_core::{ChunkStatsSet, ExSampleConfig};
    use exsample_rand::{Sampler, StandardNormal};
    use exsample_video::{FrameSampler, RandomPlusSampler, UniformSampler};
    use rand::Rng;

    /// The seed's within-chunk sampler enum, mirrored so the per-pick
    /// eligibility scan walks the same enum-sized elements the seed walked.
    enum WithinSampler {
        Uniform(UniformSampler),
        RandomPlus(RandomPlusSampler),
    }

    impl WithinSampler {
        fn new(strategy: WithinChunkSampling, len: u64) -> Self {
            match strategy {
                WithinChunkSampling::Uniform => WithinSampler::Uniform(UniformSampler::new(len)),
                WithinChunkSampling::RandomPlus => {
                    WithinSampler::RandomPlus(RandomPlusSampler::new(len))
                }
            }
        }

        fn next_frame<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<u64> {
            match self {
                WithinSampler::Uniform(s) => s.next_frame(rng),
                WithinSampler::RandomPlus(s) => s.next_frame(rng),
            }
        }

        fn remaining(&self) -> u64 {
            match self {
                WithinSampler::Uniform(s) => s.remaining(),
                WithinSampler::RandomPlus(s) => s.remaining(),
            }
        }
    }

    fn uniform_open01<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        loop {
            let u: f64 = rng.gen();
            if u > 0.0 {
                return u;
            }
        }
    }

    /// The seed's Marsaglia–Tsang body: polar-method normal, constants
    /// recomputed per call.
    fn marsaglia_tsang<R: Rng + ?Sized>(rng: &mut R, shape: f64) -> f64 {
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = StandardNormal.sample(rng);
            let v = 1.0 + c * x;
            if v <= 0.0 {
                continue;
            }
            let v3 = v * v * v;
            let u = uniform_open01(rng);
            if u < 1.0 - 0.0331 * x.powi(4) {
                return d * v3;
            }
            if u.ln() < 0.5 * x * x + d * (1.0 - v3 + v3.ln()) {
                return d * v3;
            }
        }
    }

    /// The seed's Gamma sampler: `powf` boost for shape < 1.
    fn gamma_sample<R: Rng + ?Sized>(rng: &mut R, shape: f64, rate: f64) -> f64 {
        let raw = if shape < 1.0 {
            let x = marsaglia_tsang(rng, shape + 1.0);
            let u = uniform_open01(rng);
            x * u.powf(1.0 / shape)
        } else {
            marsaglia_tsang(rng, shape)
        };
        raw / rate
    }

    fn thompson_pick<R: Rng + ?Sized>(
        config: &ExSampleConfig,
        stats: &ChunkStatsSet,
        eligible: &[bool],
        rng: &mut R,
    ) -> usize {
        let mut best: Option<(usize, f64)> = None;
        for (j, chunk) in stats.all().iter().enumerate() {
            if !eligible[j] {
                continue;
            }
            // One belief construction per chunk per draw, as in the seed.
            let belief = chunk.belief(config);
            let draw = gamma_sample(rng, belief.shape(), belief.rate());
            if best.is_none_or(|(_, b)| draw > b) {
                best = Some((j, draw));
            }
        }
        best.expect("at least one eligible chunk").0
    }

    fn select_batch<R: Rng + ?Sized>(
        config: &ExSampleConfig,
        stats: &ChunkStatsSet,
        eligible: &[bool],
        batch: usize,
        rng: &mut R,
    ) -> Vec<usize> {
        if !eligible.iter().any(|&e| e) || batch == 0 {
            return Vec::new();
        }
        (0..batch)
            .map(|_| thompson_pick(config, stats, eligible, rng))
            .collect()
    }

    /// Replica of the pre-refactor `ExSample`: per-pick eligibility allocation,
    /// single picks routed through `select_batch`.
    pub struct SeedSampler {
        config: ExSampleConfig,
        stats: ChunkStatsSet,
        samplers: Vec<WithinSampler>,
    }

    impl SeedSampler {
        pub fn new(config: ExSampleConfig, chunk_lengths: &[u64]) -> Self {
            SeedSampler {
                config,
                stats: ChunkStatsSet::new(chunk_lengths.len()),
                samplers: chunk_lengths
                    .iter()
                    .map(|&l| WithinSampler::new(config.within_chunk, l))
                    .collect(),
            }
        }

        fn eligibility(&self) -> Vec<bool> {
            self.samplers.iter().map(|s| s.remaining() > 0).collect()
        }

        pub fn next_frame<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<(usize, u64)> {
            let eligible = self.eligibility();
            let chunk = select_batch(&self.config, &self.stats, &eligible, 1, rng)
                .into_iter()
                .next()?;
            let offset = self.samplers[chunk]
                .next_frame(rng)
                .expect("eligible chunk");
            Some((chunk, offset))
        }

        pub fn next_batch<R: Rng + ?Sized>(
            &mut self,
            rng: &mut R,
            batch: usize,
        ) -> Vec<(usize, u64)> {
            let mut picks = Vec::with_capacity(batch);
            while picks.len() < batch {
                let eligible = self.eligibility();
                let want = batch - picks.len();
                let chunks = select_batch(&self.config, &self.stats, &eligible, want, rng);
                if chunks.is_empty() {
                    break;
                }
                let mut made_progress = false;
                for chunk in chunks {
                    if let Some(offset) = self.samplers[chunk].next_frame(rng) {
                        picks.push((chunk, offset));
                        made_progress = true;
                        if picks.len() == batch {
                            break;
                        }
                    }
                }
                if !made_progress {
                    break;
                }
            }
            picks
        }

        pub fn record(&mut self, chunk: usize, n1_delta: i64) {
            self.stats.record(chunk, n1_delta);
        }
    }
}

const CHUNK_COUNTS: [usize; 3] = [60, 1_000, 10_000];
const BATCH: usize = 64;

/// Mixed-history seeding shared by every arm: every third chunk has produced
/// one object (shape 1.1, plain branch), the rest none (shape 0.1, boost
/// branch) — the composition a sparse search settles into.
fn seed_history(record: &mut dyn FnMut(usize, i64), chunks: usize) {
    for j in 0..chunks {
        record(j, i64::from(j % 3 == 0));
    }
}

fn optimized_sampler(chunks: usize) -> ExSample {
    // Paper-default configuration (Thompson + random+ within chunks).
    let mut sampler = ExSample::new(ExSampleConfig::default(), &vec![1_000_000u64; chunks]);
    seed_history(&mut |j, d| sampler.record(j, d), chunks);
    sampler
}

fn reference_sampler(chunks: usize) -> reference::SeedSampler {
    let mut sampler =
        reference::SeedSampler::new(ExSampleConfig::default(), &vec![1_000_000u64; chunks]);
    seed_history(&mut |j, d| sampler.record(j, d), chunks);
    sampler
}

fn bench_single_pick(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_pick");
    for &chunks in &CHUNK_COUNTS {
        group.bench_with_input(
            BenchmarkId::new("optimized", chunks),
            &chunks,
            |b, &chunks| {
                let mut sampler = optimized_sampler(chunks);
                let mut rng = StdRng::seed_from_u64(11);
                b.iter(|| {
                    let pick = sampler.next_frame(&mut rng).expect("frames remain");
                    sampler.record(pick.chunk, 0);
                    black_box(pick)
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("reference", chunks),
            &chunks,
            |b, &chunks| {
                let mut sampler = reference_sampler(chunks);
                let mut rng = StdRng::seed_from_u64(11);
                b.iter(|| {
                    let pick = sampler.next_frame(&mut rng).expect("frames remain");
                    sampler.record(pick.0, 0);
                    black_box(pick)
                });
            },
        );
    }
    group.finish();
}

fn bench_batched_pick(c: &mut Criterion) {
    // One iteration = one batch of BATCH picks; divide by BATCH for per-pick cost.
    let mut group = c.benchmark_group("batched_pick_64");
    for &chunks in &CHUNK_COUNTS {
        group.bench_with_input(
            BenchmarkId::new("optimized", chunks),
            &chunks,
            |b, &chunks| {
                let mut sampler = optimized_sampler(chunks);
                let mut rng = StdRng::seed_from_u64(13);
                let mut picks = Vec::with_capacity(BATCH);
                b.iter(|| {
                    sampler.next_batch_into(&mut rng, BATCH, &mut picks);
                    for p in &picks {
                        sampler.record(p.chunk, 0);
                    }
                    black_box(picks.len())
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("reference", chunks),
            &chunks,
            |b, &chunks| {
                let mut sampler = reference_sampler(chunks);
                let mut rng = StdRng::seed_from_u64(13);
                b.iter(|| {
                    let picks = sampler.next_batch(&mut rng, BATCH);
                    for p in &picks {
                        sampler.record(p.0, 0);
                    }
                    black_box(picks.len())
                });
            },
        );
    }
    group.finish();
}

/// Belief-state regimes for the `class_max` axis.  The posterior is pinned
/// (no recording inside the measurement loop) so each arm measures one fixed
/// class structure instead of drifting through many.
#[derive(Clone, Copy)]
enum Regime {
    /// Fresh statistics: every chunk still holds the prior, one single class —
    /// the best case for deduplication (one max-of-M draw plus an O(M) scan).
    AllPrior,
    /// A skewed posterior: every chunk visited once, a third with a hit, plus
    /// a 16-chunk hot head with 1–8 extra hits each — about ten belief
    /// classes, the composition a converged skewed search settles into.
    Skewed,
}

impl Regime {
    fn label(self) -> &'static str {
        match self {
            Regime::AllPrior => "all_prior",
            Regime::Skewed => "skewed",
        }
    }

    fn seed(self, record: &mut dyn FnMut(usize, i64), chunks: usize) {
        match self {
            Regime::AllPrior => {}
            Regime::Skewed => {
                seed_history(record, chunks);
                for (i, j) in (0..chunks).step_by(chunks / 16).take(16).enumerate() {
                    for _ in 0..=(i % 8) {
                        record(j, 1);
                    }
                }
            }
        }
    }
}

const CLASS_MAX_CHUNK_COUNTS: [usize; 3] = [1_000, 10_000, 100_000];

fn regime_sampler(chunks: usize, regime: Regime, selection: SelectionStrategy) -> ExSample {
    let config = ExSampleConfig::default().with_selection(selection);
    let mut sampler = ExSample::new(config, &vec![1_000_000u64; chunks]);
    regime.seed(&mut |j, d| sampler.record(j, d), chunks);
    sampler
}

fn regime_reference(chunks: usize, regime: Regime) -> reference::SeedSampler {
    let mut sampler =
        reference::SeedSampler::new(ExSampleConfig::default(), &vec![1_000_000u64; chunks]);
    regime.seed(&mut |j, d| sampler.record(j, d), chunks);
    sampler
}

/// The `class_max` axis: single-pick cost of the belief-class deduplicated
/// fold vs the per-chunk fold vs the seed replica, at M ∈ {1k, 10k, 100k}
/// under the all-prior and skewed-posterior regimes.  Unlike `single_pick`,
/// nothing is recorded inside the loop, so the class structure (and therefore
/// the measured regime) stays fixed.
fn bench_class_max(c: &mut Criterion) {
    let mut group = c.benchmark_group("class_max");
    for &chunks in &CLASS_MAX_CHUNK_COUNTS {
        for regime in [Regime::AllPrior, Regime::Skewed] {
            group.bench_with_input(
                BenchmarkId::new(&format!("class_max_{}", regime.label()), chunks),
                &chunks,
                |b, &chunks| {
                    let mut sampler = regime_sampler(chunks, regime, SelectionStrategy::ClassMax);
                    let mut rng = StdRng::seed_from_u64(17);
                    b.iter(|| black_box(sampler.next_frame(&mut rng).expect("frames remain")));
                },
            );
            group.bench_with_input(
                BenchmarkId::new(&format!("per_chunk_{}", regime.label()), chunks),
                &chunks,
                |b, &chunks| {
                    let mut sampler = regime_sampler(chunks, regime, SelectionStrategy::PerChunk);
                    let mut rng = StdRng::seed_from_u64(17);
                    b.iter(|| black_box(sampler.next_frame(&mut rng).expect("frames remain")));
                },
            );
            group.bench_with_input(
                BenchmarkId::new(&format!("reference_{}", regime.label()), chunks),
                &chunks,
                |b, &chunks| {
                    let mut sampler = regime_reference(chunks, regime);
                    let mut rng = StdRng::seed_from_u64(17);
                    b.iter(|| black_box(sampler.next_frame(&mut rng).expect("frames remain")));
                },
            );
        }
    }
    group.finish();
}

fn bench_sweep_throughput(c: &mut Criterion) {
    let dataset = GridWorkload::builder()
        .frames(60_000)
        .instances(120)
        .chunks(16)
        .mean_duration(90.0)
        .skew(SkewLevel::Quarter)
        .seed(21)
        .build()
        .expect("valid workload")
        .generate();
    let run_one = |trial: u64| {
        QueryRunner::new(&dataset)
            .stop(StopCondition::FrameBudget(400))
            .seed(trial)
            .run(MethodKind::ExSample(ExSampleConfig::default()))
    };
    let mut group = c.benchmark_group("sweep_16_trials");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| {
            black_box(
                run_trials(16, false, run_one)
                    .expect("sweep succeeded")
                    .len(),
            )
        })
    });
    group.bench_function("parallel", |b| {
        b.iter(|| {
            black_box(
                run_trials(16, true, run_one)
                    .expect("sweep succeeded")
                    .len(),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_single_pick,
    bench_batched_pick,
    bench_class_max,
    bench_sweep_throughput
);
criterion_main!(benches);
