//! Sharded engine throughput: 1, 2 and 8 shards × 1 and 8 concurrent
//! queries over one repository, a parallel-execution axis (serial vs 2 and 4
//! worker threads at 2 and 8 shards) measured under **both dispatch
//! runtimes** — the persistent per-run worker pool (`parallel_detect`, the
//! engine default) and the legacy per-stage scoped spawn
//! (`parallel_detect_scoped`) — a batching axis (`batched_detect`) comparing
//! per-shard batching against cross-shard aggregation on a cost-model
//! instrumented detector — plus the report-merge overhead measured
//! separately.
//!
//! Each iteration executes a full sharded `QueryEngine` run (contiguous-range
//! chunk assignment).  Outcomes are bitwise-identical across shard counts,
//! execution modes, thread counts and dispatch runtimes — the determinism
//! suite enforces that — so what this benchmark tracks is pure execution
//! overhead: routing picks to shard workers, running one `detect_batch` per
//! (detector group, shard) instead of per group, dispatching DETECT threads
//! (a channel wake per stage for the pool, a thread spawn+join per stage for
//! the scoped runtime), and the merge layer folding per-shard tallies back
//! into a global report.  The printed table reports the physical-vs-logical
//! invocation counts that dominate the real-world cost of sharding.
//!
//! The parallel axes measure *overhead*, not speedup, on a 1-vCPU container:
//! the simulated detector is microseconds-cheap, so any thread dispatch can
//! only cost time there.  The pooled-vs-scoped delta is exactly the
//! per-stage dispatch cost the persistent runtime eliminates.  On real
//! hardware with a real (milliseconds) detector the same axes are where the
//! speedup shows up; treat the committed baseline's parallel rows as a
//! dispatch overhead bound.
//!
//! The `cache_contention` axis covers the lock-striped detections cache: a
//! scripted warm-heavy probe/commit trace compares the striped cache head to
//! head against the legacy serial LRU (`DetectionCache`, the reference
//! implementation) on one thread.  On a 1-vCPU container striping itself
//! can only pay off under real concurrency, so the acceptance bar is that
//! the striped protocol costs at most ~5% over the serial reference — in
//! the committed baseline it is in fact *faster*, because recency replay is
//! transaction-local (a touch never takes a stripe lock) and the internal
//! maps use a deterministic mix64 hasher instead of SipHash.  Full
//! warm-heavy 8-query engine runs at 1/2/4 worker threads pin the
//! engine-level overhead of the parallel probe / serial-arbitration
//! protocol, with count-invariance asserted across every row.
//!
//! `BENCH_QUICK=1` (the CI smoke configuration) shrinks the per-query budget.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use exsample_core::ExSampleConfig;
use exsample_data::{Dataset, GridWorkload, SkewLevel};
use exsample_detect::{
    BatchCostModel, BatchingDetector, Detector, FaultInjectingDetector, FaultPlan, FrameDetections,
    GroundTruth, PerfectDetector,
};
use exsample_engine::{
    BatchAggregation, CacheConfig, DetectionCache, Dispatch, ExSamplePolicy, FailureMode,
    QuerySpec, RetryPolicy, ShardedReport, StripedDetectionCache,
};
use std::sync::Arc;

const SHARD_COUNTS: [u32; 3] = [1, 2, 8];
const QUERY_COUNTS: [usize; 2] = [1, 8];
/// The parallel axis: worker threads (0 = serial) × shard counts.
const THREAD_COUNTS: [usize; 3] = [0, 2, 4];
/// The scoped-dispatch comparison rows (serial is dispatch-independent).
const SCOPED_THREAD_COUNTS: [usize; 2] = [2, 4];
const PARALLEL_SHARD_COUNTS: [u32; 2] = [2, 8];

fn budget() -> u64 {
    if std::env::var("BENCH_QUICK").is_ok_and(|v| v == "1") {
        150
    } else {
        600
    }
}

fn dataset() -> Dataset {
    GridWorkload::builder()
        .frames(200_000)
        .instances(400)
        .chunks(32)
        .mean_duration(150.0)
        .skew(SkewLevel::ThirtySecond)
        .seed(47)
        .build()
        .expect("valid workload")
        .generate()
}

fn run_engine(
    dataset: &Dataset,
    detector: &PerfectDetector,
    shards: u32,
    parallel: usize,
    dispatch: Dispatch,
    queries: usize,
    budget: u64,
) -> ShardedReport {
    let mut engine = exsample_bench::sharded_engine(dataset.chunking(), shards, parallel)
        .expect("the bench thread counts are valid execution modes")
        .dispatch(dispatch);
    for q in 0..queries {
        let policy = ExSamplePolicy::new(ExSampleConfig::default(), dataset.chunking());
        engine
            .push(
                QuerySpec::new(format!("q{q}"), Box::new(policy), detector)
                    .seed(2000 + q as u64)
                    .batch(16)
                    .frame_budget(budget),
            )
            .expect("valid query spec");
    }
    let _ = engine.run().expect("queries registered");
    engine.report_sharded()
}

/// A full engine run with the fault-tolerance machinery fully armed — the
/// detector wrapped in a zero-rate fault injector, retries and drop-frame
/// degradation enabled — but nothing ever failing.  The `faulty_detect` axis
/// compares this against the plain `sharded_run` rows: the failure path must
/// cost nothing (be within noise) when nothing fails.
fn run_engine_guarded(
    dataset: &Dataset,
    truth: &Arc<GroundTruth>,
    shards: u32,
    queries: usize,
    budget: u64,
) -> ShardedReport {
    // Fresh wrapper per run: its per-frame attempt counters are run-local.
    let detector = FaultInjectingDetector::new(
        Box::new(PerfectDetector::new(
            Arc::clone(truth),
            GridWorkload::class(),
        )) as Box<dyn Detector>,
        FaultPlan::new(4_747),
    );
    let mut engine = exsample_bench::sharded_engine(dataset.chunking(), shards, 0)
        .expect("serial execution is always a valid mode")
        .dispatch(Dispatch::Pooled)
        .retry_policy(RetryPolicy::new(3).backoff_cost(1))
        .failure_mode(FailureMode::DropFrames);
    for q in 0..queries {
        let policy = ExSamplePolicy::new(ExSampleConfig::default(), dataset.chunking());
        engine
            .push(
                QuerySpec::new(format!("q{q}"), Box::new(policy), &detector)
                    .seed(2000 + q as u64)
                    .batch(16)
                    .frame_budget(budget),
            )
            .expect("valid query spec");
    }
    let _ = engine.run().expect("queries registered");
    engine.report_sharded()
}

/// A full engine run against a cost-model instrumented detector
/// ([`BatchingDetector`]), per-shard batching or cross-shard aggregation
/// selected by `aggregation`.  Returns the merged report plus the physical
/// (calls, frames, modelled cost) the detector actually charged — the
/// numbers the `batched_detect` axis compares, since on a 1-vCPU container
/// the batching win is a dispatch-cost win, not a wall-clock one.
fn run_engine_batched(
    dataset: &Dataset,
    truth: &Arc<GroundTruth>,
    shards: u32,
    aggregation: Option<BatchAggregation>,
    queries: usize,
    budget: u64,
) -> (ShardedReport, u64, u64, u64) {
    // Fresh wrapper per run: its counters are run-local tallies.
    let detector = BatchingDetector::new(
        PerfectDetector::new(Arc::clone(truth), GridWorkload::class()),
        BatchCostModel::gpu_default(),
    );
    let mut engine = exsample_bench::sharded_engine(dataset.chunking(), shards, 0)
        .expect("serial execution is always a valid mode")
        .dispatch(Dispatch::Pooled)
        .aggregation(aggregation);
    for q in 0..queries {
        let policy = ExSamplePolicy::new(ExSampleConfig::default(), dataset.chunking());
        engine
            .push(
                QuerySpec::new(format!("q{q}"), Box::new(policy), &detector)
                    .seed(2000 + q as u64)
                    .batch(16)
                    .frame_budget(budget),
            )
            .expect("valid query spec");
    }
    let _ = engine.run().expect("queries registered");
    (
        engine.report_sharded(),
        detector.physical_calls(),
        detector.physical_frames(),
        detector.modelled_cost(),
    )
}

/// Cache-trace shape shared by both LRU implementations: one cold pass that
/// fills `capacity` entries, then `CACHE_TRACE_PASSES - 1` warm passes that
/// hit every one of them — the hit-dominated long-running-service shape where
/// probe cost, not eviction cost, dominates.
const CACHE_TRACE_CAPACITY: usize = 1_024;
const CACHE_TRACE_PASSES: usize = 8;

/// The scripted trace against the legacy serial LRU (the pre-striping
/// reference implementation): `get` misses fill, `get` hits refresh recency
/// inline.  Hits clone the returned handle out, as an engine lane keeping
/// the detections would — the same handle cost the striped probe pays.
fn legacy_cache_trace() -> u64 {
    let mut cache = DetectionCache::new(CACHE_TRACE_CAPACITY);
    let mut hits = 0u64;
    for _ in 0..CACHE_TRACE_PASSES {
        for frame in 0..CACHE_TRACE_CAPACITY as u64 {
            if black_box(cache.get(0, frame).cloned()).is_some() {
                hits += 1;
            } else {
                cache.insert(0, frame, Arc::new(FrameDetections::empty(frame)));
            }
        }
    }
    hits
}

/// The same trace through the striped cache's probe/commit protocol: parallel
/// probes first (here on one thread — the 1-vCPU overhead measurement), then
/// one arbitration transaction per pass replaying touches and inserts, just
/// as the engine's commit boundary does.
fn striped_cache_trace(stripes: usize) -> u64 {
    let cache = StripedDetectionCache::new(CacheConfig::new(CACHE_TRACE_CAPACITY).stripes(stripes));
    let mut hits = 0u64;
    let mut hit_frames = Vec::with_capacity(CACHE_TRACE_CAPACITY);
    let mut miss_frames = Vec::with_capacity(CACHE_TRACE_CAPACITY);
    for _ in 0..CACHE_TRACE_PASSES {
        hit_frames.clear();
        miss_frames.clear();
        for frame in 0..CACHE_TRACE_CAPACITY as u64 {
            if black_box(cache.probe(0, frame)).is_some() {
                hit_frames.push(frame);
            } else {
                miss_frames.push(frame);
            }
        }
        hits += hit_frames.len() as u64;
        let mut txn = cache.begin();
        for &frame in &hit_frames {
            txn.touch(0, frame);
        }
        for &frame in &miss_frames {
            txn.insert(0, frame, Arc::new(FrameDetections::empty(frame)));
        }
    }
    hits
}

/// A small, dense workload for the cache axis: 8 queries over few enough
/// frames that they keep re-demanding each other's picks across stages —
/// the warm-heavy shape where the cache actually earns its keep.
fn warm_dataset() -> Dataset {
    GridWorkload::builder()
        .frames(4_000)
        .instances(40)
        .chunks(32)
        .mean_duration(50.0)
        .skew(SkewLevel::ThirtySecond)
        .seed(53)
        .build()
        .expect("valid workload")
        .generate()
}

/// A warm-heavy 8-query engine run with the striped cache (capacity sized to
/// hold the whole working set, so every cross-query revisit is a hit), or
/// uncached when `cache` is 0.
fn run_engine_warm(
    dataset: &Dataset,
    detector: &PerfectDetector,
    parallel: usize,
    cache: usize,
    budget: u64,
) -> ShardedReport {
    let mut engine = exsample_bench::sharded_engine(dataset.chunking(), 2, parallel)
        .expect("the bench thread counts are valid execution modes")
        .dispatch(Dispatch::Pooled);
    if cache > 0 {
        engine = engine.cache_capacity(cache);
    }
    for q in 0..8usize {
        let policy = ExSamplePolicy::new(ExSampleConfig::default(), dataset.chunking());
        engine
            .push(
                QuerySpec::new(format!("q{q}"), Box::new(policy), detector)
                    .seed(2000 + q as u64)
                    .batch(16)
                    .frame_budget(budget),
            )
            .expect("valid query spec");
    }
    let _ = engine.run().expect("queries registered");
    engine.report_sharded()
}

/// Per-query outcome equality (labels, demand, finds, stop reasons) — what
/// "the cache never changes results" means at the bench level.
fn assert_same_outcomes(context: &str, a: &ShardedReport, b: &ShardedReport) {
    assert_eq!(
        a.report.outcomes.len(),
        b.report.outcomes.len(),
        "{context}: query count"
    );
    for (qa, qb) in a.report.outcomes.iter().zip(&b.report.outcomes) {
        assert_eq!(qa.label, qb.label, "{context}: query order");
        assert_eq!(
            qa.frames_processed, qb.frames_processed,
            "{context}: {} frames",
            qa.label
        );
        assert_eq!(
            qa.found_instances, qb.found_instances,
            "{context}: {} instances",
            qa.label
        );
        assert_eq!(
            qa.stop_reason, qb.stop_reason,
            "{context}: {} stop reason",
            qa.label
        );
    }
}

fn bench_sharded(c: &mut Criterion) {
    let dataset = dataset();
    let detector = PerfectDetector::new(Arc::clone(dataset.ground_truth()), GridWorkload::class());
    let budget = budget();

    let mut group = c.benchmark_group("sharded_run");
    group.sample_size(10);
    for &queries in &QUERY_COUNTS {
        for &shards in &SHARD_COUNTS {
            group.bench_with_input(
                BenchmarkId::new(&format!("{queries}q"), shards),
                &shards,
                |b, &shards| {
                    b.iter(|| {
                        black_box(run_engine(
                            &dataset,
                            &detector,
                            shards,
                            0,
                            Dispatch::Pooled,
                            queries,
                            budget,
                        ))
                    });
                },
            );
        }
    }
    group.finish();

    // The fault-tolerance overhead axis: the same runs with the failure path
    // armed end to end (zero-rate fault injector, retries + drop-frame mode
    // on) but never exercised.  Compare against the matching `sharded_run`
    // rows — the delta is the standing cost of fault tolerance when nothing
    // fails, which must stay within noise.
    let truth = Arc::clone(dataset.ground_truth());
    let mut faulty_group = c.benchmark_group("faulty_detect");
    faulty_group.sample_size(10);
    for &shards in &SHARD_COUNTS {
        faulty_group.bench_with_input(BenchmarkId::new("8q", shards), &shards, |b, &shards| {
            b.iter(|| black_box(run_engine_guarded(&dataset, &truth, shards, 8, budget)));
        });
    }
    faulty_group.finish();

    // The parallel axis: serial vs 2/4 pooled worker threads at 2/8 shards,
    // 8 concurrent queries.  Same work, different thread placement — the
    // determinism suite guarantees identical outputs, so the delta is pure
    // execution-mode overhead (or, with an expensive detector, speedup).
    // These rows use the engine's default persistent worker pool: thread
    // dispatch costs a channel wake per stage, not a spawn.
    let mut parallel_group = c.benchmark_group("parallel_detect");
    parallel_group.sample_size(10);
    for &shards in &PARALLEL_SHARD_COUNTS {
        for &threads in &THREAD_COUNTS {
            parallel_group.bench_with_input(
                BenchmarkId::new(&format!("{shards}s_8q"), threads),
                &threads,
                |b, &threads| {
                    b.iter(|| {
                        black_box(run_engine(
                            &dataset,
                            &detector,
                            shards,
                            threads,
                            Dispatch::Pooled,
                            8,
                            budget,
                        ))
                    });
                },
            );
        }
    }
    parallel_group.finish();

    // The same parallel rows under the legacy per-stage scoped spawn+join —
    // the dispatch overhead baseline the persistent runtime replaces.  The
    // pooled-vs-scoped delta at a given (shards, threads) point is the
    // per-run cost of per-stage thread spawning.
    let mut scoped_group = c.benchmark_group("parallel_detect_scoped");
    scoped_group.sample_size(10);
    for &shards in &PARALLEL_SHARD_COUNTS {
        for &threads in &SCOPED_THREAD_COUNTS {
            scoped_group.bench_with_input(
                BenchmarkId::new(&format!("{shards}s_8q"), threads),
                &threads,
                |b, &threads| {
                    b.iter(|| {
                        black_box(run_engine(
                            &dataset,
                            &detector,
                            shards,
                            threads,
                            Dispatch::Scoped,
                            8,
                            budget,
                        ))
                    });
                },
            );
        }
    }
    scoped_group.finish();

    // The batching axis: the same 8-query run against a cost-model
    // instrumented detector, per-shard batching (one physical call per
    // detector group per shard) vs cross-shard aggregation (one per group).
    // Detection outcomes are bitwise-identical — the determinism suite pins
    // that — so the delta is the aggregator's own bookkeeping; the modelled
    // dispatch-cost win is printed (and asserted) below.
    let mut batched_group = c.benchmark_group("batched_detect");
    batched_group.sample_size(10);
    for &shards in &PARALLEL_SHARD_COUNTS {
        for (label, aggregation) in [
            ("per_shard", None),
            ("aggregated", Some(BatchAggregation::unbounded())),
        ] {
            batched_group.bench_with_input(
                BenchmarkId::new(&format!("{shards}s_8q"), label),
                &aggregation,
                |b, &aggregation| {
                    b.iter(|| {
                        black_box(run_engine_batched(
                            &dataset,
                            &truth,
                            shards,
                            aggregation,
                            8,
                            budget,
                        ))
                    });
                },
            );
        }
    }
    batched_group.finish();

    // The cache-contention axis.  Trace rows: the same warm-heavy scripted
    // probe/commit sequence against the legacy serial LRU and the striped
    // cache on one thread — on this 1-vCPU container the striped protocol
    // (per-stripe locks + one arbitration transaction per pass) must stay
    // within noise (±5%) of the serial reference.  Engine rows: full 8-query
    // warm-heavy runs, striped cache at 1/2/4 worker threads plus the
    // uncached serial baseline, measuring the end-to-end cost of probing in
    // dispatched lanes and committing serially.
    let warm = warm_dataset();
    let warm_detector =
        PerfectDetector::new(Arc::clone(warm.ground_truth()), GridWorkload::class());
    let mut cache_group = c.benchmark_group("cache_contention");
    cache_group.sample_size(10);
    cache_group.bench_with_input(BenchmarkId::new("trace", "legacy_serial"), &(), |b, _| {
        b.iter(|| black_box(legacy_cache_trace()));
    });
    cache_group.bench_with_input(BenchmarkId::new("trace", "striped"), &(), |b, _| {
        b.iter(|| black_box(striped_cache_trace(8)));
    });
    cache_group.bench_with_input(BenchmarkId::new("engine_8q", "uncached"), &(), |b, _| {
        b.iter(|| black_box(run_engine_warm(&warm, &warm_detector, 0, 0, budget)));
    });
    for &threads in &THREAD_COUNTS {
        cache_group.bench_with_input(
            BenchmarkId::new("engine_8q_striped", threads.max(1)),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    black_box(run_engine_warm(
                        &warm,
                        &warm_detector,
                        threads,
                        4_096,
                        budget,
                    ))
                });
            },
        );
    }
    cache_group.finish();

    // Merge overhead, separately: building the merged report on an
    // already-completed engine.  This measures report_sharded() end to end —
    // global report construction (per-query clones and sorts) plus the
    // merge_reports fold and cross-checks — which is the cost a caller
    // actually pays per merged report; the fold alone is a fraction of it.
    let mut merge_group = c.benchmark_group("report_sharded");
    merge_group.sample_size(10);
    for &shards in &SHARD_COUNTS {
        let mut engine = exsample_bench::sharded_engine(dataset.chunking(), shards, 0)
            .expect("serial execution is always a valid mode")
            .dispatch(Dispatch::Pooled);
        for q in 0..8usize {
            let policy = ExSamplePolicy::new(ExSampleConfig::default(), dataset.chunking());
            engine
                .push(
                    QuerySpec::new(format!("q{q}"), Box::new(policy), &detector)
                        .seed(3000 + q as u64)
                        .batch(16)
                        .frame_budget(budget),
                )
                .expect("valid query spec");
        }
        let _ = engine.run().expect("queries registered");
        merge_group.bench_with_input(BenchmarkId::new("8q", shards), &shards, |b, _| {
            b.iter(|| black_box(engine.report_sharded()));
        });
    }
    merge_group.finish();

    // The acceptance-relevant numbers: sharding never changes outcomes or the
    // logical invocation count, only the physical per-shard bill — and
    // parallel execution changes nothing at all, under either dispatch
    // runtime.
    println!("\n# sharded engine invocation counts (per-query budget {budget} frames)");
    println!("# queries | shards | threads | detector frames | logical calls | physical calls | overhead");
    for &queries in &QUERY_COUNTS {
        let baseline = run_engine(&dataset, &detector, 1, 0, Dispatch::Pooled, queries, budget);
        for &shards in &SHARD_COUNTS {
            let serial = run_engine(
                &dataset,
                &detector,
                shards,
                0,
                Dispatch::Pooled,
                queries,
                budget,
            );
            assert_eq!(
                serial.report.detector_frames,
                baseline.report.detector_frames
            );
            assert_eq!(serial.report.detector_calls, baseline.report.detector_calls);
            for &threads in &THREAD_COUNTS {
                let merged = run_engine(
                    &dataset,
                    &detector,
                    shards,
                    threads,
                    Dispatch::Pooled,
                    queries,
                    budget,
                );
                // Parallel runs are bitwise-identical to the serial sharded
                // run, down to the physical per-shard invocation counts —
                // and the scoped dispatch runtime to the pooled one.
                assert_eq!(merged.report.detector_frames, serial.report.detector_frames);
                assert_eq!(merged.report.detector_calls, serial.report.detector_calls);
                assert_eq!(
                    merged.physical_detector_calls,
                    serial.physical_detector_calls
                );
                if threads > 0 {
                    let scoped = run_engine(
                        &dataset,
                        &detector,
                        shards,
                        threads,
                        Dispatch::Scoped,
                        queries,
                        budget,
                    );
                    assert_eq!(scoped.shards, merged.shards);
                    assert_eq!(
                        scoped.physical_detector_calls,
                        merged.physical_detector_calls
                    );
                }
                println!(
                    "# {:>7} | {:>6} | {:>7} | {:>15} | {:>13} | {:>14} | {:>8}",
                    queries,
                    shards,
                    threads.max(1),
                    merged.report.detector_frames,
                    merged.report.detector_calls,
                    merged.physical_detector_calls,
                    merged.shard_overhead_calls()
                );
            }
        }
    }

    // The batching acceptance numbers: at any multi-shard layout, cross-shard
    // aggregation strictly reduces physical calls (one per logical group
    // instead of one per group × shard touched) over the same frames, so the
    // affine `per_call + per_frame × n` model bills it strictly cheaper.
    println!(
        "\n# batched_detect modelled cost (GPU-shaped model: per_call 32, per_frame 1; 8 queries)"
    );
    println!("# shards | strategy   | physical calls | physical frames | modelled cost");
    for &shards in &SHARD_COUNTS {
        let (per_shard, ps_calls, ps_frames, ps_cost) =
            run_engine_batched(&dataset, &truth, shards, None, 8, budget);
        let (aggregated, ag_calls, ag_frames, ag_cost) = run_engine_batched(
            &dataset,
            &truth,
            shards,
            Some(BatchAggregation::unbounded()),
            8,
            budget,
        );
        // Aggregation is purely physical: identical logical work either way.
        assert_eq!(
            aggregated.report.detector_frames,
            per_shard.report.detector_frames
        );
        assert_eq!(
            aggregated.report.detector_calls,
            per_shard.report.detector_calls
        );
        assert_eq!(ag_frames, ps_frames);
        assert_eq!(ag_calls, aggregated.physical_detector_calls);
        assert_eq!(ps_calls, per_shard.physical_detector_calls);
        assert!(ag_calls <= ps_calls);
        assert!(ag_cost <= ps_cost);
        if shards > 1 {
            assert!(
                ag_cost < ps_cost,
                "{shards} shards: aggregated modelled cost {ag_cost} must beat per-shard {ps_cost}"
            );
        }
        for (label, calls, frames, cost) in [
            ("per_shard", ps_calls, ps_frames, ps_cost),
            ("aggregated", ag_calls, ag_frames, ag_cost),
        ] {
            println!(
                "# {:>6} | {:<10} | {:>14} | {:>15} | {:>13}",
                shards, label, calls, frames, cost
            );
        }
    }

    // Fault machinery is bitwise-invisible when nothing fails: the guarded
    // run matches the plain run frame for frame, with zero fault counters.
    for &shards in &SHARD_COUNTS {
        let plain = run_engine(&dataset, &detector, shards, 0, Dispatch::Pooled, 8, budget);
        let guarded = run_engine_guarded(&dataset, &truth, shards, 8, budget);
        assert_eq!(guarded.report.detector_frames, plain.report.detector_frames);
        assert_eq!(guarded.report.detector_calls, plain.report.detector_calls);
        assert_eq!(
            guarded.physical_detector_calls,
            plain.physical_detector_calls
        );
        assert_eq!(guarded.report.detect_retries, 0);
        assert_eq!(guarded.report.failed_frames, 0);
    }

    // Cache count-invariance: the scripted traces agree hit-for-hit across
    // implementations and stripe counts, striped engine runs are
    // bitwise-identical across worker-thread counts (merged report, per-shard
    // tallies and cache accounting alike), and the cache changes only the
    // detector bill — never any query's outcome.
    let expected_hits = ((CACHE_TRACE_PASSES - 1) * CACHE_TRACE_CAPACITY) as u64;
    assert_eq!(legacy_cache_trace(), expected_hits);
    for stripes in [1usize, 8, 64] {
        assert_eq!(
            striped_cache_trace(stripes),
            expected_hits,
            "{stripes} stripes: trace hit count"
        );
    }
    let uncached = run_engine_warm(&warm, &warm_detector, 0, 0, budget);
    let cached_serial = run_engine_warm(&warm, &warm_detector, 0, 4_096, budget);
    assert!(cached_serial.report.cache.hits > 0, "warm runs must hit");
    assert!(
        cached_serial.report.cache.misses > 0,
        "cold fills must miss"
    );
    assert_same_outcomes("cached vs uncached", &cached_serial, &uncached);
    assert!(
        cached_serial.report.detector_frames < uncached.report.detector_frames,
        "cache hits must shrink the detector bill"
    );
    for threads in [2usize, 4] {
        let parallel = run_engine_warm(&warm, &warm_detector, threads, 4_096, budget);
        assert_same_outcomes(
            &format!("striped cache, {threads} threads"),
            &parallel,
            &cached_serial,
        );
        assert_eq!(
            parallel.report.cache, cached_serial.report.cache,
            "{threads} threads: cache accounting"
        );
        assert_eq!(
            parallel.shards, cached_serial.shards,
            "{threads} threads: shard tallies"
        );
        assert_eq!(
            parallel.report.detector_frames,
            cached_serial.report.detector_frames
        );
        assert_eq!(
            parallel.physical_detector_calls,
            cached_serial.physical_detector_calls
        );
    }
    println!("\n# cache_contention telemetry (8 warm queries, striped capacity 4096)");
    println!(
        "# cached: hits {} | misses {} | evictions {} | detector frames {} (uncached {})",
        cached_serial.report.cache.hits,
        cached_serial.report.cache.misses,
        cached_serial.report.cache.evictions,
        cached_serial.report.detector_frames,
        uncached.report.detector_frames,
    );
}

criterion_group!(benches, bench_sharded);
criterion_main!(benches);
