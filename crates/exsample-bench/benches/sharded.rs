//! Sharded engine throughput: 1, 2 and 8 shards × 1 and 8 concurrent
//! queries over one repository, plus the report-merge overhead measured
//! separately.
//!
//! Each iteration executes a full sharded `QueryEngine` run (contiguous-range
//! chunk assignment).  Outcomes are bitwise-identical across shard counts —
//! the determinism suite enforces that — so what this benchmark tracks is
//! pure execution overhead: routing picks to shard workers, running one
//! `detect_batch` per (detector group, shard) instead of per group, and the
//! merge layer folding per-shard tallies back into a global report.  The
//! printed table reports the physical-vs-logical invocation counts that
//! dominate the real-world cost of sharding.
//!
//! `BENCH_QUICK=1` (the CI smoke configuration) shrinks the per-query budget.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use exsample_core::ExSampleConfig;
use exsample_data::{Dataset, GridWorkload, SkewLevel};
use exsample_detect::PerfectDetector;
use exsample_engine::{ExSamplePolicy, QuerySpec, ShardedReport};
use std::sync::Arc;

const SHARD_COUNTS: [u32; 3] = [1, 2, 8];
const QUERY_COUNTS: [usize; 2] = [1, 8];

fn budget() -> u64 {
    if std::env::var("BENCH_QUICK").is_ok_and(|v| v == "1") {
        150
    } else {
        600
    }
}

fn dataset() -> Dataset {
    GridWorkload::builder()
        .frames(200_000)
        .instances(400)
        .chunks(32)
        .mean_duration(150.0)
        .skew(SkewLevel::ThirtySecond)
        .seed(47)
        .build()
        .expect("valid workload")
        .generate()
}

fn run_engine(
    dataset: &Dataset,
    detector: &PerfectDetector,
    shards: u32,
    queries: usize,
    budget: u64,
) -> ShardedReport {
    let mut engine = exsample_bench::sharded_engine(dataset.chunking(), shards);
    for q in 0..queries {
        let policy = ExSamplePolicy::new(ExSampleConfig::default(), dataset.chunking());
        engine
            .push(
                QuerySpec::new(format!("q{q}"), Box::new(policy), detector)
                    .seed(2000 + q as u64)
                    .batch(16)
                    .frame_budget(budget),
            )
            .expect("valid query spec");
    }
    let _ = engine.run().expect("queries registered");
    engine.report_sharded()
}

fn bench_sharded(c: &mut Criterion) {
    let dataset = dataset();
    let detector = PerfectDetector::new(Arc::clone(dataset.ground_truth()), GridWorkload::class());
    let budget = budget();

    let mut group = c.benchmark_group("sharded_run");
    group.sample_size(10);
    for &queries in &QUERY_COUNTS {
        for &shards in &SHARD_COUNTS {
            group.bench_with_input(
                BenchmarkId::new(&format!("{queries}q"), shards),
                &shards,
                |b, &shards| {
                    b.iter(|| black_box(run_engine(&dataset, &detector, shards, queries, budget)));
                },
            );
        }
    }
    group.finish();

    // Merge overhead, separately: building the merged report on an
    // already-completed engine.  This measures report_sharded() end to end —
    // global report construction (per-query clones and sorts) plus the
    // merge_reports fold and cross-checks — which is the cost a caller
    // actually pays per merged report; the fold alone is a fraction of it.
    let mut merge_group = c.benchmark_group("report_sharded");
    merge_group.sample_size(10);
    for &shards in &SHARD_COUNTS {
        let mut engine = exsample_bench::sharded_engine(dataset.chunking(), shards);
        for q in 0..8usize {
            let policy = ExSamplePolicy::new(ExSampleConfig::default(), dataset.chunking());
            engine
                .push(
                    QuerySpec::new(format!("q{q}"), Box::new(policy), &detector)
                        .seed(3000 + q as u64)
                        .batch(16)
                        .frame_budget(budget),
                )
                .expect("valid query spec");
        }
        let _ = engine.run().expect("queries registered");
        merge_group.bench_with_input(BenchmarkId::new("8q", shards), &shards, |b, _| {
            b.iter(|| black_box(engine.report_sharded()));
        });
    }
    merge_group.finish();

    // The acceptance-relevant numbers: sharding never changes outcomes or the
    // logical invocation count, only the physical per-shard bill.
    println!("\n# sharded engine invocation counts (per-query budget {budget} frames)");
    println!("# queries | shards | detector frames | logical calls | physical calls | overhead");
    for &queries in &QUERY_COUNTS {
        let baseline = run_engine(&dataset, &detector, 1, queries, budget);
        for &shards in &SHARD_COUNTS {
            let merged = run_engine(&dataset, &detector, shards, queries, budget);
            assert_eq!(
                merged.report.detector_frames,
                baseline.report.detector_frames
            );
            assert_eq!(merged.report.detector_calls, baseline.report.detector_calls);
            println!(
                "# {:>7} | {:>6} | {:>15} | {:>13} | {:>14} | {:>8}",
                queries,
                shards,
                merged.report.detector_frames,
                merged.report.detector_calls,
                merged.physical_detector_calls,
                merged.shard_overhead_calls()
            );
        }
    }
}

criterion_group!(benches, bench_sharded);
criterion_main!(benches);
