//! Criterion micro-benchmarks of the sampling inner loop.
//!
//! ExSample's per-frame overhead (drawing one Gamma sample per chunk and picking a
//! frame without replacement) must stay negligible next to the object detector's
//! ~50 ms per frame; these benchmarks verify that the decision step costs
//! microseconds even with 1024 chunks.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use exsample_core::{ExSample, ExSampleConfig};
use exsample_rand::{Gamma, Sampler};
use exsample_video::{FrameSampler, RandomPlusSampler, UniformSampler};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_gamma_sampling(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let prior_only = Gamma::new(0.1, 1.0).unwrap();
    let informed = Gamma::new(37.1, 1_201.0).unwrap();
    c.bench_function("gamma_sample_prior_only", |b| {
        b.iter(|| black_box(prior_only.sample(&mut rng)))
    });
    c.bench_function("gamma_sample_informed", |b| {
        b.iter(|| black_box(informed.sample(&mut rng)))
    });
}

fn bench_chunk_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("exsample_next_frame");
    for &chunks in &[16usize, 128, 1024] {
        group.bench_with_input(
            BenchmarkId::from_parameter(chunks),
            &chunks,
            |b, &chunks| {
                let lengths = vec![100_000u64; chunks];
                let mut sampler = ExSample::new(ExSampleConfig::default(), &lengths);
                let mut rng = StdRng::seed_from_u64(2);
                // Give the sampler some history so the beliefs are non-trivial.
                for j in 0..chunks {
                    sampler.record(j, i64::from(j % 3 == 0));
                }
                b.iter(|| {
                    let pick = sampler.next_frame(&mut rng).expect("frames remain");
                    sampler.record(pick.chunk, 0);
                    black_box(pick)
                });
            },
        );
    }
    group.finish();
}

fn bench_within_chunk_samplers(c: &mut Criterion) {
    let mut group = c.benchmark_group("within_chunk_sampler");
    group.bench_function("uniform_without_replacement", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sampler = UniformSampler::new(10_000_000);
        b.iter(|| black_box(sampler.next_frame(&mut rng)));
    });
    group.bench_function("random_plus", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        let mut sampler = RandomPlusSampler::new(10_000_000);
        b.iter(|| black_box(sampler.next_frame(&mut rng)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_gamma_sampling,
    bench_chunk_selection,
    bench_within_chunk_samplers
);
criterion_main!(benches);
