//! # exsample-bench
//!
//! Shared infrastructure for the experiment binaries that regenerate the paper's
//! tables and figures (see `src/bin/`) and for the Criterion micro-benchmarks
//! (see `benches/`).
//!
//! Every experiment binary accepts the same small set of command-line flags:
//!
//! * `--full` — run at the paper's full scale (16 M-frame simulations, full-size
//!   dataset analogs, 21 trials).  The default is a reduced configuration that
//!   reproduces the *shape* of each result in seconds rather than hours.
//! * `--trials N` — override the number of trials.
//! * `--scale X` — override the dataset scale factor (dataset-analog experiments).
//! * `--seed N` — root seed (default 7).
//! * `--shards N` — shard the engine's DETECT phase across N workers
//!   (contiguous-range chunk assignment; results are bitwise-identical to the
//!   unsharded run, only the per-shard cost breakdown changes).
//! * `--parallel N` — run the shard workers' detector invocations on up to N
//!   worker-pool threads per stage (no flag = serial; `--parallel 0` is
//!   rejected with the engine's typed `InvalidExecution` message; thread
//!   counts beyond the shard count are clamped by the engine; results are
//!   bitwise-identical to serial execution).
//! * `--overlap` — run each stage's PICK concurrently with the previous
//!   stage's DETECT (stop decisions lag one stage, by design; a given
//!   overlapped configuration is still bitwise-deterministic).
//! * `--aggregate` — aggregate every shard's per-stage detector demand into
//!   one cross-shard batch per detector (results stay bitwise-identical;
//!   only the physical batch shape changes).
//! * `--max-batch N` — cap aggregated batches at N frames (implies
//!   `--aggregate`).
//! * `--cache N` — enable the engine's lock-striped detections cache with
//!   capacity N entries (no flag = off; `--cache 0` is rejected — leave the
//!   flag off instead).  Cache accounting is bitwise-deterministic across
//!   `--shards`/`--parallel`/`--overlap`/`--aggregate`, and the run summary
//!   gains a cache telemetry line.
//! * `--selection per-chunk|class-max` — chunk-selection strategy for every
//!   ExSample run (`per-chunk` = the default one-Gamma-draw-per-chunk
//!   Thompson fold; `class-max` = belief-class deduplicated draws, one exact
//!   max-of-k Gamma draw per distinct `(N1, n)` class — distributionally
//!   equivalent, and reports dedup savings next to recall).
//! * `--retries N` — allow N retries per frame whose detect attempt failed
//!   (0 = off, the default; backoff is charged as deterministic stage cost).
//! * `--fault-rate X` — wrap every detector in a seeded deterministic fault
//!   injector with transient-fault probability X per (frame, attempt); the
//!   run degrades by dropping frames that exhaust their attempts (tallied in
//!   the report) instead of aborting.  Same seed + same rate ⇒ bitwise-identical
//!   degraded results, regardless of `--shards`/`--parallel`.
//! * `--checkpoint PATH` — persist every ExSample run's per-chunk posterior
//!   and query results to the durable belief store at PATH (crash-safe log +
//!   snapshot; a torn tail from a kill is recovered and reported on the next
//!   open).  Checkpointing is a pure observer: outcomes and the virtual
//!   clock are bitwise-identical to an uncheckpointed run.  Runner-driven
//!   bins only, and single-writer — combine with `--trials 1`.
//! * `--warm-start PATH` — seed every ExSample run's posterior from the
//!   belief store at PATH before sampling starts, instead of the uniform
//!   prior (runner-driven bins only).
//! * `--csv` — emit CSV instead of aligned text tables.
//!
//! The binaries print the regenerated table/figure data to stdout; `EXPERIMENTS.md`
//! records one captured run of each alongside the paper's reported numbers.

#![warn(missing_docs)]
#![deny(unsafe_code)]

/// Command-line options shared by every experiment binary.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentOptions {
    /// Run at the paper's full scale.
    pub full: bool,
    /// Number of trials (None = the experiment's default for the chosen scale).
    pub trials: Option<usize>,
    /// Dataset scale factor (None = the experiment's default).
    pub scale: Option<f64>,
    /// Root seed.
    pub seed: u64,
    /// Shard count for the engine's DETECT phase (1 = unsharded).
    pub shards: u32,
    /// Worker threads for the DETECT phase.  The default (no `--parallel`
    /// flag) is serial execution; `--parallel 0` is rejected at parse time
    /// with the engine's typed `InvalidExecution` message, and `--parallel 1`
    /// is serial execution under another name.
    pub parallel: usize,
    /// Overlap each stage's PICK with the previous stage's DETECT.
    pub overlap: bool,
    /// Aggregate per-shard detector demand into cross-shard batches.
    pub aggregate: bool,
    /// Cap aggregated batches at this many frames (implies `aggregate`).
    pub max_batch: Option<usize>,
    /// Capacity of the engine's striped detections cache (0 = off, the
    /// default).
    pub cache: usize,
    /// Chunk-selection strategy for ExSample runs (`--selection`).
    pub selection: exsample_core::SelectionStrategy,
    /// Retries allowed per frame whose detect attempt failed (0 = off).
    pub retries: u32,
    /// Transient-fault probability per (frame, attempt) for the deterministic
    /// fault injector (0.0 = no injection, the default).
    pub fault_rate: f64,
    /// Durable belief-store directory every ExSample run checkpoints into
    /// (None = no checkpointing, the default).
    pub checkpoint: Option<std::path::PathBuf>,
    /// Belief-store directory ExSample runs warm-start their posterior from
    /// (None = cold start, the default).
    pub warm_start: Option<std::path::PathBuf>,
    /// Emit CSV instead of plain tables.
    pub csv: bool,
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        ExperimentOptions {
            full: false,
            trials: None,
            scale: None,
            seed: 7,
            shards: 1,
            parallel: 0,
            overlap: false,
            aggregate: false,
            max_batch: None,
            cache: 0,
            selection: exsample_core::SelectionStrategy::PerChunk,
            retries: 0,
            fault_rate: 0.0,
            checkpoint: None,
            warm_start: None,
            csv: false,
        }
    }
}

impl ExperimentOptions {
    /// Parse options from an argument iterator (typically `std::env::args().skip(1)`).
    ///
    /// Unknown flags produce an error string listing the supported flags.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut options = ExperimentOptions::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--full" => options.full = true,
                "--csv" => options.csv = true,
                "--trials" => {
                    let value = iter.next().ok_or("--trials requires a value")?;
                    options.trials = Some(
                        value
                            .parse()
                            .map_err(|_| format!("bad --trials value: {value}"))?,
                    );
                }
                "--scale" => {
                    let value = iter.next().ok_or("--scale requires a value")?;
                    options.scale = Some(
                        value
                            .parse()
                            .map_err(|_| format!("bad --scale value: {value}"))?,
                    );
                }
                "--seed" => {
                    let value = iter.next().ok_or("--seed requires a value")?;
                    options.seed = value
                        .parse()
                        .map_err(|_| format!("bad --seed value: {value}"))?;
                }
                "--shards" => {
                    let value = iter.next().ok_or("--shards requires a value")?;
                    let shards: u32 = value
                        .parse()
                        .map_err(|_| format!("bad --shards value: {value}"))?;
                    if shards == 0 {
                        return Err("--shards must be at least 1".to_string());
                    }
                    options.shards = shards;
                }
                "--parallel" => {
                    let value = iter.next().ok_or("--parallel requires a value")?;
                    let parallel: usize = value
                        .parse()
                        .map_err(|_| format!("bad --parallel value: {value}"))?;
                    if parallel == 0 {
                        // Surface the engine's typed error text instead of
                        // silently treating 0 as serial (or letting the
                        // engine reject it deep inside a run).
                        return Err(format!(
                            "--parallel 0: {}",
                            exsample_engine::EngineError::InvalidExecution { threads: 0 }
                        ));
                    }
                    options.parallel = parallel;
                }
                "--overlap" => options.overlap = true,
                "--aggregate" => options.aggregate = true,
                "--max-batch" => {
                    let value = iter.next().ok_or("--max-batch requires a value")?;
                    let max_batch: usize = value
                        .parse()
                        .map_err(|_| format!("bad --max-batch value: {value}"))?;
                    if max_batch == 0 {
                        return Err("--max-batch must be at least 1".to_string());
                    }
                    options.max_batch = Some(max_batch);
                    options.aggregate = true;
                }
                "--cache" => {
                    let value = iter.next().ok_or("--cache requires a value")?;
                    let cache: usize = value
                        .parse()
                        .map_err(|_| format!("bad --cache value: {value}"))?;
                    if cache == 0 {
                        return Err("--cache must be at least 1 (omit the flag to run uncached)"
                            .to_string());
                    }
                    options.cache = cache;
                }
                "--selection" => {
                    let value = iter.next().ok_or("--selection requires a value")?;
                    options.selection = match value.as_str() {
                        "per-chunk" => exsample_core::SelectionStrategy::PerChunk,
                        "class-max" => exsample_core::SelectionStrategy::ClassMax,
                        other => {
                            return Err(format!(
                                "bad --selection value `{other}` (expected per-chunk or class-max)"
                            ))
                        }
                    };
                }
                "--retries" => {
                    let value = iter.next().ok_or("--retries requires a value")?;
                    options.retries = value
                        .parse()
                        .map_err(|_| format!("bad --retries value: {value}"))?;
                }
                "--fault-rate" => {
                    let value = iter.next().ok_or("--fault-rate requires a value")?;
                    let rate: f64 = value
                        .parse()
                        .map_err(|_| format!("bad --fault-rate value: {value}"))?;
                    if !(0.0..=1.0).contains(&rate) {
                        return Err(format!(
                            "--fault-rate must be a probability in [0, 1], got {value}"
                        ));
                    }
                    options.fault_rate = rate;
                }
                "--checkpoint" => {
                    let value = iter
                        .next()
                        .ok_or("--checkpoint requires a directory path")?;
                    if value.is_empty() {
                        return Err("--checkpoint requires a non-empty path".to_string());
                    }
                    options.checkpoint = Some(std::path::PathBuf::from(value));
                }
                "--warm-start" => {
                    let value = iter
                        .next()
                        .ok_or("--warm-start requires a directory path")?;
                    if value.is_empty() {
                        return Err("--warm-start requires a non-empty path".to_string());
                    }
                    options.warm_start = Some(std::path::PathBuf::from(value));
                }
                "--help" | "-h" => {
                    return Err("supported flags: --full --trials N --scale X --seed N \
                         --shards N --parallel N --overlap --aggregate --max-batch N \
                         --cache N --selection per-chunk|class-max --retries N \
                         --fault-rate X --checkpoint PATH --warm-start PATH --csv"
                        .to_string())
                }
                other => return Err(format!("unknown flag `{other}` (try --help)")),
            }
        }
        Ok(options)
    }

    /// Parse from the process arguments, printing the error and exiting on failure.
    pub fn from_env() -> Self {
        match ExperimentOptions::parse(std::env::args().skip(1)) {
            Ok(options) => options,
            Err(message) => {
                eprintln!("{message}");
                std::process::exit(2);
            }
        }
    }

    /// The number of trials to run, given the experiment's defaults for the reduced
    /// and full configurations.
    pub fn trials_or(&self, reduced: usize, full: usize) -> usize {
        self.trials
            .unwrap_or(if self.full { full } else { reduced })
    }

    /// The dataset scale to use, given the experiment's defaults.
    pub fn scale_or(&self, reduced: f64) -> f64 {
        self.scale.unwrap_or(if self.full { 1.0 } else { reduced })
    }

    /// The worker-thread count the engine will actually use for these
    /// options: `--parallel` values of 0/1 mean serial execution, and the
    /// engine clamps the thread count to one thread per shard — what the
    /// experiment banners must report as provenance.
    pub fn effective_threads(&self) -> usize {
        if self.parallel > 1 {
            exsample_engine::ExecutionMode::Parallel(self.parallel)
                .effective_threads(self.shards as usize)
        } else {
            1
        }
    }

    /// The batch-aggregation policy implied by `--aggregate`/`--max-batch`
    /// (None when neither flag was given): unbounded aggregation, or capped
    /// at the `--max-batch` limit.
    pub fn aggregation(&self) -> Option<exsample_engine::BatchAggregation> {
        if !self.aggregate {
            return None;
        }
        Some(match self.max_batch {
            None => exsample_engine::BatchAggregation::unbounded(),
            Some(limit) => exsample_engine::BatchAggregation::max_batch(limit),
        })
    }

    /// The baseline ExSample configuration implied by the options: the
    /// paper-faithful defaults with the `--selection` strategy applied.
    /// Experiment bins start from this (chaining further `with_*` setters as
    /// needed) so `--selection class-max` reaches every ExSample run.
    pub fn exsample_config(&self) -> exsample_core::ExSampleConfig {
        exsample_core::ExSampleConfig::default().with_selection(self.selection)
    }

    /// The retry policy implied by `--retries`: `--retries N` grants each
    /// failing frame N retries on top of its first attempt (so the engine's
    /// attempt budget is N+1), each charged one unit of exponential backoff
    /// as deterministic stage cost.  `--retries 0` (the default) is
    /// [`exsample_engine::RetryPolicy::none`].
    pub fn retry_policy(&self) -> exsample_engine::RetryPolicy {
        if self.retries == 0 {
            exsample_engine::RetryPolicy::none()
        } else {
            exsample_engine::RetryPolicy::new(self.retries + 1).backoff_cost(1)
        }
    }

    /// The failure mode implied by the options: fault-injecting runs degrade
    /// by dropping frames that exhaust their attempts (so a `--fault-rate`
    /// experiment completes with tallied losses), fault-free runs keep the
    /// engine's fail-fast default.
    pub fn failure_mode(&self) -> exsample_engine::FailureMode {
        if self.fault_rate > 0.0 {
            exsample_engine::FailureMode::DropFrames
        } else {
            exsample_engine::FailureMode::FailFast
        }
    }

    /// The deterministic fault plan implied by `--fault-rate` (None when the
    /// rate is zero).  The plan is seeded from `--seed`, so a degraded run is
    /// reproducible end to end.
    pub fn fault_plan(&self) -> Option<exsample_detect::FaultPlan> {
        (self.fault_rate > 0.0).then(|| {
            let seed = exsample_rand::SeedSequence::new(self.seed)
                .derive("fault-plan")
                .seed();
            exsample_detect::FaultPlan::new(seed).transient_rate(self.fault_rate)
        })
    }

    /// Apply the options' engine-shape, failure-model and durability knobs
    /// (`--shards`, `--parallel`, `--overlap`, `--aggregate`/`--max-batch`,
    /// `--cache`, `--retries`, `--fault-rate`, `--checkpoint`,
    /// `--warm-start`) to a simulation [`exsample_sim::QueryRunner`] — the
    /// single place the runner-driven experiment bins pick them up.
    pub fn apply_to_runner<'d>(
        &self,
        runner: exsample_sim::QueryRunner<'d>,
    ) -> exsample_sim::QueryRunner<'d> {
        let mut runner = runner
            .shards(self.shards)
            .overlap(self.overlap)
            .aggregation(self.aggregation())
            .cache(self.cache)
            .retry_policy(self.retry_policy())
            .failure_mode(self.failure_mode());
        if self.parallel > 1 {
            runner = runner.parallel(self.parallel);
        }
        if let Some(plan) = self.fault_plan() {
            runner = runner.fault_plan(plan);
        }
        if let Some(path) = &self.checkpoint {
            runner = runner.checkpoint(path.clone());
        }
        if let Some(path) = &self.warm_start {
            runner = runner.warm_start(path.clone());
        }
        runner
    }

    /// Wrap a detector in the options' fault injector, or return it unchanged
    /// when `--fault-rate` is zero.  Experiment bins route every detector
    /// they build through this before registering queries.
    pub fn faulty_detector(
        &self,
        detector: Box<dyn exsample_detect::Detector>,
    ) -> Box<dyn exsample_detect::Detector> {
        match self.fault_plan() {
            None => detector,
            Some(plan) => Box::new(exsample_detect::FaultInjectingDetector::new(detector, plan)),
        }
    }
}

/// Print `error` and its full `source()` chain as one line on stderr and exit
/// nonzero — the experiment bins' replacement for `expect` on fallible runs,
/// so a failing detector produces a typed one-liner instead of a panic
/// backtrace.
pub fn exit_with_error_chain(error: &dyn std::error::Error) -> ! {
    eprintln!("error: {}", format_error_chain(error));
    std::process::exit(1);
}

/// Render `error` and its `source()` chain as a single `: `-separated line.
pub fn format_error_chain(error: &dyn std::error::Error) -> String {
    let mut message = error.to_string();
    let mut cursor = error.source();
    while let Some(next) = cursor {
        message.push_str(": ");
        message.push_str(&next.to_string());
        cursor = next.source();
    }
    message
}

/// Unwrap `result`, exiting with the error's full chain on failure.
pub fn ok_or_exit<T, E: std::error::Error>(result: Result<T, E>) -> T {
    match result {
        Ok(value) => value,
        Err(error) => exit_with_error_chain(&error),
    }
}

/// A fresh engine sharded across `shards` workers over `chunking`
/// (contiguous-range chunk assignment), or an ordinary unsharded engine for
/// `shards <= 1`, with the workers' detector invocations run on up to
/// `parallel` worker threads per stage (0 or 1 = serial execution; parallel
/// runs use the engine's default persistent per-run worker pool — pass the
/// engine through [`exsample_engine::QueryEngine::dispatch`] to select the
/// legacy per-stage scoped spawn instead, as the `sharded` bench's dispatch
/// axis does).  Query outcomes are bitwise-identical in every configuration;
/// sharding, parallelism and dispatch only change where the detector work
/// executes and how costs break down.
///
/// Returns the engine's typed [`exsample_engine::EngineError`] when the
/// thread count is not a valid execution mode, so callers route it through
/// the chained-error exit path ([`ok_or_exit`]) instead of panicking.
pub fn sharded_engine<'a>(
    chunking: &exsample_video::Chunking,
    shards: u32,
    parallel: usize,
) -> Result<exsample_engine::QueryEngine<'a>, exsample_engine::EngineError> {
    let mut engine = exsample_engine::QueryEngine::new();
    if shards > 1 {
        engine = engine.sharded(exsample_engine::ShardRouter::contiguous(chunking, shards));
    }
    if parallel > 1 {
        engine = engine.execution(exsample_engine::ExecutionMode::Parallel(parallel))?;
    }
    Ok(engine)
}

/// [`sharded_engine`] with the options' overlap/aggregation knobs, retry
/// policy and failure mode applied — the engine constructor the experiment
/// bins use, so `--overlap`, `--aggregate`, `--retries` and `--fault-rate`
/// reach every engine-driven experiment the same way.
pub fn experiment_engine<'a>(
    chunking: &exsample_video::Chunking,
    options: &ExperimentOptions,
) -> Result<exsample_engine::QueryEngine<'a>, exsample_engine::EngineError> {
    let mut engine = sharded_engine(chunking, options.shards, options.parallel)?
        .overlap(options.overlap)
        .aggregation(options.aggregation())
        .retry_policy(options.retry_policy())
        .failure_mode(options.failure_mode());
    if options.cache > 0 {
        engine = engine.cache_capacity(options.cache);
    }
    Ok(engine)
}

/// Print a table in the format selected by the options.
pub fn print_table(options: &ExperimentOptions, table: &exsample_sim::Table) {
    if options.csv {
        print!("{}", table.to_csv());
    } else {
        print!("{}", table.to_plain());
    }
}

/// Print an experiment banner with its figure/table reference.
pub fn banner(reference: &str, description: &str, options: &ExperimentOptions) {
    println!("# {reference}: {description}");
    println!(
        "# mode: {}  seed: {}",
        if options.full {
            "full (paper scale)"
        } else {
            "reduced (default)"
        },
        options.seed
    );
    if options.selection == exsample_core::SelectionStrategy::ClassMax {
        println!(
            "# selection: class-max (belief-class deduplicated Thompson draws; \
             distributionally equivalent to per-chunk, dedup savings reported per run)"
        );
    }
    if options.fault_rate > 0.0 {
        println!(
            "# fault injection: transient rate {} per (frame, attempt), retries {} \
             (seeded from --seed; frames that exhaust their attempts are dropped and tallied)",
            options.fault_rate, options.retries
        );
    }
    if options.cache > 0 {
        println!(
            "# cache: lock-striped detections LRU, capacity {} entries \
             (accounting is bitwise-deterministic across shards/threads/dispatch)",
            options.cache
        );
    }
    println!();
}

/// Merge the selection telemetry of every run in `results` into one summary
/// (None when no run carried telemetry, e.g. non-ExSample methods).
pub fn merged_selection_telemetry<'a, I>(results: I) -> Option<exsample_engine::SelectionTelemetry>
where
    I: IntoIterator<Item = &'a exsample_sim::RunResult>,
{
    let mut merged: Option<exsample_engine::SelectionTelemetry> = None;
    for result in results {
        if let Some(telemetry) = &result.selection {
            merged.get_or_insert_with(Default::default).merge(telemetry);
        }
    }
    merged
}

/// Print a one-line `#`-comment summary of the dedup telemetry carried by
/// `results` (class-max vs per-chunk pick counts, Gamma draws saved, and the
/// peak belief-class count), or nothing when no run carried telemetry.
/// Experiment bins call this after their tables so `--selection class-max`
/// runs report dedup savings next to recall.
pub fn print_selection_summary<'a, I>(label: &str, results: I)
where
    I: IntoIterator<Item = &'a exsample_sim::RunResult>,
{
    print_selection_telemetry(label, merged_selection_telemetry(results).as_ref());
}

/// Print the already-merged telemetry line of [`print_selection_summary`]
/// (bins whose runs go out of scope per table cell accumulate telemetry with
/// [`exsample_engine::SelectionTelemetry::merge`] and print it here).
pub fn print_selection_telemetry(
    label: &str,
    telemetry: Option<&exsample_engine::SelectionTelemetry>,
) {
    if let Some(telemetry) = telemetry {
        println!(
            "# selection[{label}]: class-max picks {}, per-chunk picks {}, \
             gamma draws saved {}, peak classes {}",
            telemetry.class_max_picks,
            telemetry.per_chunk_picks,
            telemetry.draws_saved,
            telemetry.class_count
        );
    }
}

/// Merge the cache telemetry of every run in `results` into one summary
/// (None when no run carried telemetry, i.e. the cache was off).
pub fn merged_cache_telemetry<'a, I>(results: I) -> Option<exsample_engine::CacheActivity>
where
    I: IntoIterator<Item = &'a exsample_sim::RunResult>,
{
    let mut merged: Option<exsample_engine::CacheActivity> = None;
    for result in results {
        if let Some(activity) = result.cache {
            merged.get_or_insert_with(Default::default).absorb(activity);
        }
    }
    merged
}

/// Print a one-line `#`-comment summary of the cache telemetry carried by
/// `results` (hits/misses/evictions/admission rejects summed over the runs),
/// or nothing when the cache was off.  Experiment bins call this after their
/// tables so `--cache N` runs report warm-hit savings next to recall.
pub fn print_cache_summary<'a, I>(label: &str, results: I)
where
    I: IntoIterator<Item = &'a exsample_sim::RunResult>,
{
    print_cache_telemetry(label, merged_cache_telemetry(results).as_ref());
}

/// Print the already-merged telemetry line of [`print_cache_summary`] (bins
/// whose runs go out of scope per table cell accumulate telemetry with
/// [`exsample_engine::CacheActivity::absorb`] and print it here).
pub fn print_cache_telemetry(label: &str, cache: Option<&exsample_engine::CacheActivity>) {
    if let Some(cache) = cache {
        println!(
            "# cache[{label}]: hits {}, misses {}, evictions {}, admission rejects {}",
            cache.hits, cache.misses, cache.evictions, cache.admission_rejects
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<ExperimentOptions, String> {
        ExperimentOptions::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn default_options() {
        let options = parse(&[]).unwrap();
        assert!(!options.full);
        assert_eq!(options.seed, 7);
        assert_eq!(options.trials_or(5, 21), 5);
        assert_eq!(options.scale_or(0.25), 0.25);
    }

    #[test]
    fn full_flag_switches_defaults() {
        let options = parse(&["--full"]).unwrap();
        assert!(options.full);
        assert_eq!(options.trials_or(5, 21), 21);
        assert_eq!(options.scale_or(0.25), 1.0);
    }

    #[test]
    fn explicit_values_override_defaults() {
        let options = parse(&["--trials", "9", "--scale", "0.5", "--seed", "3", "--csv"]).unwrap();
        assert_eq!(options.trials_or(5, 21), 9);
        assert_eq!(options.scale_or(0.25), 0.5);
        assert_eq!(options.seed, 3);
        assert!(options.csv);
    }

    #[test]
    fn bad_flags_are_rejected() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--trials"]).is_err());
        assert!(parse(&["--trials", "abc"]).is_err());
        assert!(parse(&["--help"]).is_err());
    }

    #[test]
    fn shards_flag_parses_and_rejects_zero() {
        assert_eq!(parse(&[]).unwrap().shards, 1);
        assert_eq!(parse(&["--shards", "8"]).unwrap().shards, 8);
        assert!(parse(&["--shards", "0"]).is_err());
        assert!(parse(&["--shards"]).is_err());
    }

    #[test]
    fn parallel_flag_parses_and_rejects_zero() {
        assert_eq!(parse(&[]).unwrap().parallel, 0);
        assert_eq!(parse(&["--parallel", "4"]).unwrap().parallel, 4);
        assert_eq!(parse(&["--parallel", "1"]).unwrap().parallel, 1);
        // `--parallel 0` surfaces the engine's typed InvalidExecution text
        // instead of silently running serial.
        let err = parse(&["--parallel", "0"]).unwrap_err();
        assert!(err.contains("--parallel 0"), "message: {err}");
        assert!(err.contains("at least one worker thread"), "message: {err}");
        assert!(parse(&["--parallel"]).is_err());
        assert!(parse(&["--parallel", "abc"]).is_err());
    }

    #[test]
    fn effective_threads_reports_the_clamped_count() {
        assert_eq!(parse(&[]).unwrap().effective_threads(), 1);
        assert_eq!(parse(&["--parallel", "1"]).unwrap().effective_threads(), 1);
        // Clamped to one thread per shard (shards defaults to 1).
        assert_eq!(parse(&["--parallel", "8"]).unwrap().effective_threads(), 1);
        assert_eq!(
            parse(&["--parallel", "8", "--shards", "4"])
                .unwrap()
                .effective_threads(),
            4
        );
        assert_eq!(
            parse(&["--parallel", "2", "--shards", "4"])
                .unwrap()
                .effective_threads(),
            2
        );
    }

    #[test]
    fn overlap_and_aggregation_flags_parse_and_imply() {
        let defaults = parse(&[]).unwrap();
        assert!(!defaults.overlap);
        assert!(!defaults.aggregate);
        assert_eq!(defaults.aggregation(), None);

        assert!(parse(&["--overlap"]).unwrap().overlap);
        assert_eq!(
            parse(&["--aggregate"]).unwrap().aggregation(),
            Some(exsample_engine::BatchAggregation::unbounded())
        );
        // --max-batch implies --aggregate.
        let capped = parse(&["--max-batch", "64"]).unwrap();
        assert!(capped.aggregate);
        assert_eq!(
            capped.aggregation(),
            Some(exsample_engine::BatchAggregation::max_batch(64))
        );
        assert!(parse(&["--max-batch", "0"]).is_err());
        assert!(parse(&["--max-batch"]).is_err());
        assert!(parse(&["--max-batch", "abc"]).is_err());
    }

    #[test]
    fn selection_flag_parses_and_reaches_the_config() {
        use exsample_core::SelectionStrategy;
        let defaults = parse(&[]).unwrap();
        assert_eq!(defaults.selection, SelectionStrategy::PerChunk);
        assert_eq!(
            defaults.exsample_config().selection,
            SelectionStrategy::PerChunk
        );
        // Knob-off must stay the paper-faithful default configuration.
        assert_eq!(
            defaults.exsample_config(),
            exsample_core::ExSampleConfig::default()
        );

        let class_max = parse(&["--selection", "class-max"]).unwrap();
        assert_eq!(class_max.selection, SelectionStrategy::ClassMax);
        assert_eq!(
            class_max.exsample_config().selection,
            SelectionStrategy::ClassMax
        );
        assert_eq!(
            parse(&["--selection", "per-chunk"]).unwrap().selection,
            SelectionStrategy::PerChunk
        );

        assert!(parse(&["--selection"]).is_err());
        let err = parse(&["--selection", "bogus"]).unwrap_err();
        assert!(err.contains("per-chunk or class-max"), "message: {err}");
    }

    #[test]
    fn merged_selection_telemetry_skips_runs_without_telemetry() {
        let result = |selection| exsample_sim::RunResult {
            method: "exsample".to_string(),
            frames_processed: 10,
            upfront_scan_frames: 0,
            distinct_found: 1,
            true_found: 1,
            total_instances: 2,
            found_instances: Vec::new(),
            trajectory: Vec::new(),
            scan_secs: 0.0,
            sample_secs: 0.0,
            detect_retries: 0,
            failed_frames: 0,
            dropped_frames: 0,
            selection,
            cache: None,
            store: None,
        };
        assert!(merged_selection_telemetry([&result(None)]).is_none());
        let telemetry = exsample_engine::SelectionTelemetry {
            class_max_picks: 5,
            per_chunk_picks: 2,
            draws_saved: 100,
            class_count: 3,
        };
        let merged = merged_selection_telemetry([
            &result(Some(telemetry)),
            &result(None),
            &result(Some(telemetry)),
        ])
        .unwrap();
        assert_eq!(merged.class_max_picks, 10);
        assert_eq!(merged.per_chunk_picks, 4);
        assert_eq!(merged.draws_saved, 200);
        assert_eq!(merged.class_count, 3);
    }

    #[test]
    fn cache_flag_parses_and_rejects_zero() {
        assert_eq!(parse(&[]).unwrap().cache, 0);
        assert_eq!(parse(&["--cache", "4096"]).unwrap().cache, 4096);
        let err = parse(&["--cache", "0"]).unwrap_err();
        assert!(err.contains("omit the flag"), "message: {err}");
        assert!(parse(&["--cache"]).is_err());
        assert!(parse(&["--cache", "abc"]).is_err());
    }

    #[test]
    fn merged_cache_telemetry_skips_runs_without_telemetry() {
        let result = |cache| exsample_sim::RunResult {
            method: "exsample".to_string(),
            frames_processed: 10,
            upfront_scan_frames: 0,
            distinct_found: 1,
            true_found: 1,
            total_instances: 2,
            found_instances: Vec::new(),
            trajectory: Vec::new(),
            scan_secs: 0.0,
            sample_secs: 0.0,
            detect_retries: 0,
            failed_frames: 0,
            dropped_frames: 0,
            selection: None,
            cache,
            store: None,
        };
        assert!(merged_cache_telemetry([&result(None)]).is_none());
        let activity = exsample_engine::CacheActivity {
            hits: 8,
            misses: 2,
            evictions: 1,
            admission_rejects: 0,
        };
        let merged = merged_cache_telemetry([
            &result(Some(activity)),
            &result(None),
            &result(Some(activity)),
        ])
        .unwrap();
        assert_eq!(merged.hits, 16);
        assert_eq!(merged.misses, 4);
        assert_eq!(merged.evictions, 2);
        assert_eq!(merged.admission_rejects, 0);
    }

    #[test]
    fn retries_and_fault_rate_flags_parse_and_validate() {
        let defaults = parse(&[]).unwrap();
        assert_eq!(defaults.retries, 0);
        assert_eq!(defaults.fault_rate, 0.0);
        assert_eq!(
            defaults.retry_policy(),
            exsample_engine::RetryPolicy::none()
        );
        assert_eq!(
            defaults.failure_mode(),
            exsample_engine::FailureMode::FailFast
        );
        assert!(defaults.fault_plan().is_none());

        let faulty = parse(&["--retries", "2", "--fault-rate", "0.1"]).unwrap();
        assert_eq!(faulty.retries, 2);
        assert_eq!(faulty.fault_rate, 0.1);
        // --retries N means N retries on top of the first attempt.
        assert_eq!(faulty.retry_policy().max_attempts(), 3);
        assert_eq!(
            faulty.failure_mode(),
            exsample_engine::FailureMode::DropFrames
        );
        assert!(faulty.fault_plan().is_some());
        // The plan is a pure function of the seed: same seed, same plan.
        assert_eq!(faulty.fault_plan(), faulty.fault_plan());
        let reseeded = parse(&["--fault-rate", "0.1", "--seed", "9"]).unwrap();
        assert_ne!(reseeded.fault_plan(), faulty.fault_plan());

        assert!(parse(&["--retries"]).is_err());
        assert!(parse(&["--retries", "abc"]).is_err());
        assert!(parse(&["--fault-rate"]).is_err());
        assert!(parse(&["--fault-rate", "1.5"]).is_err());
        assert!(parse(&["--fault-rate", "-0.1"]).is_err());
    }

    #[test]
    fn checkpoint_and_warm_start_flags_parse_and_validate() {
        let defaults = parse(&[]).unwrap();
        assert_eq!(defaults.checkpoint, None);
        assert_eq!(defaults.warm_start, None);

        let durable = parse(&["--checkpoint", "/tmp/store", "--warm-start", "/tmp/prior"]).unwrap();
        assert_eq!(
            durable.checkpoint.as_deref(),
            Some(std::path::Path::new("/tmp/store"))
        );
        assert_eq!(
            durable.warm_start.as_deref(),
            Some(std::path::Path::new("/tmp/prior"))
        );

        assert!(parse(&["--checkpoint"]).is_err());
        assert!(parse(&["--checkpoint", ""]).is_err());
        assert!(parse(&["--warm-start"]).is_err());
        assert!(parse(&["--warm-start", ""]).is_err());
        // The new flags appear in the --help listing.
        let help = parse(&["--help"]).unwrap_err();
        assert!(help.contains("--checkpoint PATH"), "help: {help}");
        assert!(help.contains("--warm-start PATH"), "help: {help}");
    }

    #[test]
    fn faulty_detector_wraps_only_under_a_nonzero_rate() {
        let truth = std::sync::Arc::new(exsample_detect::GroundTruth::default());
        let detector = |options: &ExperimentOptions| {
            options.faulty_detector(Box::new(exsample_detect::PerfectDetector::new(
                std::sync::Arc::clone(&truth),
                exsample_detect::ObjectClass::from("car"),
            )))
        };
        // With a zero rate the detector passes through untouched; with a
        // nonzero rate it still reports the same class through the wrapper.
        let plain = detector(&parse(&[]).unwrap());
        let wrapped = detector(&parse(&["--fault-rate", "0.2"]).unwrap());
        assert_eq!(plain.class().to_string(), "car");
        assert_eq!(wrapped.class().to_string(), "car");
    }

    #[test]
    fn format_error_chain_walks_every_source() {
        let source = exsample_detect::DetectError::Permanent {
            frame: 7,
            message: "backend rejected the frame".to_string(),
        };
        let error = exsample_engine::EngineError::DetectorFailed {
            class: "car".to_string(),
            frame: 7,
            attempts: 2,
            source,
        };
        let line = format_error_chain(&error);
        assert!(line.contains("car"), "chain: {line}");
        assert!(line.contains("backend rejected the frame"), "chain: {line}");
        assert!(!line.contains('\n'), "chain must be one line: {line}");
    }

    #[test]
    fn sharded_engine_builds_for_any_shard_and_thread_count() {
        let repo = exsample_video::VideoRepository::single_clip(1_000);
        let chunking = exsample_video::Chunking::new(
            &repo,
            exsample_video::ChunkingPolicy::FixedCount { chunks: 8 },
        );
        assert_eq!(sharded_engine(&chunking, 1, 0).unwrap().shard_count(), 1);
        assert_eq!(sharded_engine(&chunking, 4, 0).unwrap().shard_count(), 4);
        let parallel = sharded_engine(&chunking, 4, 2).unwrap();
        assert_eq!(parallel.shard_count(), 4);
        assert_eq!(
            parallel.execution_mode(),
            exsample_engine::ExecutionMode::Parallel(2)
        );
        // 0/1 threads mean serial execution.
        assert_eq!(
            sharded_engine(&chunking, 4, 1).unwrap().execution_mode(),
            exsample_engine::ExecutionMode::Serial
        );
    }
}
