//! Figure 5: time-savings ratio of ExSample over random sampling for every query,
//! at recall levels 0.1, 0.5 and 0.9.
//!
//! Both methods process sampled frames at the same rate (the detector dominates),
//! so the time-savings ratio equals the ratio of frames processed to reach the
//! recall level.  The paper reports a maximum of ~6x, a worst case of ~0.75x
//! (amsterdam/boat), and a geometric mean of 1.9x across all queries and recall
//! levels.

use exsample_bench::{
    banner, merged_selection_telemetry, ok_or_exit, print_selection_telemetry, print_table,
    ExperimentOptions,
};
use exsample_data::datasets::{all_datasets, DatasetAnalog};
use exsample_engine::SelectionTelemetry;
use exsample_rand::{geometric_mean, SeedSequence, Summary};
use exsample_sim::{run_trials, MethodKind, QueryRunner, StopCondition, Table};

fn main() {
    let options = ExperimentOptions::from_env();
    banner(
        "Figure 5",
        "savings ratio (ExSample vs random) per query at recall .1/.5/.9",
        &options,
    );

    let scale = options.scale_or(0.2);
    let trials = options.trials_or(3, 7);
    let recalls = [0.1, 0.5, 0.9];
    let seeds = SeedSequence::new(options.seed).derive("fig5");

    println!("# dataset scale: {scale}, trials per query: {trials}\n");

    let mut table = Table::new(vec![
        "dataset",
        "category",
        "savings@.1",
        "savings@.5",
        "savings@.9",
    ]);
    let mut all_ratios: Vec<f64> = Vec::new();
    let mut per_recall_ratios: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    let mut dedup: Option<SelectionTelemetry> = None;

    for spec in all_datasets() {
        let dataset = DatasetAnalog::new(spec.clone(), seeds.derive(spec.name).seed())
            .with_scale(scale)
            .generate();
        for class_spec in &spec.classes {
            let class = class_spec.class;
            let query_seed = seeds.derive(spec.name).derive(class);
            // Run both methods to 90% recall (with a cap at the dataset size) and
            // read every recall level off the trajectories.
            let cap = dataset.total_frames();
            let exsample = ok_or_exit(run_trials(trials, true, |trial| {
                options
                    .apply_to_runner(QueryRunner::new(&dataset))
                    .class(class)
                    .stop(StopCondition::Recall(0.9))
                    .frame_cap(cap)
                    .seed(query_seed.derive("exsample").index(trial).seed())
                    .run(MethodKind::ExSample(options.exsample_config()))
            }));
            if let Some(cell) = merged_selection_telemetry(&exsample.results) {
                dedup.get_or_insert_with(Default::default).merge(&cell);
            }
            let random = ok_or_exit(run_trials(trials, true, |trial| {
                options
                    .apply_to_runner(QueryRunner::new(&dataset))
                    .class(class)
                    .stop(StopCondition::Recall(0.9))
                    .frame_cap(cap)
                    .seed(query_seed.derive("random").index(trial).seed())
                    .run(MethodKind::Random)
            }));

            let mut row = vec![spec.name.to_string(), class.to_string()];
            for (i, &recall) in recalls.iter().enumerate() {
                let ratio = match (
                    exsample.median_frames_to_recall(recall),
                    random.median_frames_to_recall(recall),
                ) {
                    (Some(e), Some(r)) if e > 0.0 => Some(r / e),
                    _ => None,
                };
                match ratio {
                    Some(ratio) => {
                        all_ratios.push(ratio);
                        per_recall_ratios[i].push(ratio);
                        row.push(format!("{ratio:.2}x"));
                    }
                    None => row.push("-".to_string()),
                }
            }
            table.push_row(row);
        }
    }

    print_table(&options, &table);
    print_selection_telemetry("exsample", dedup.as_ref());
    println!();
    let mut summary = Summary::from_values(all_ratios.clone());
    println!(
        "# geometric mean of savings across all queries and recall levels: {:.2}x (paper: 1.9x)",
        geometric_mean(&all_ratios)
    );
    println!(
        "# best {:.2}x, worst {:.2}x, 10th percentile {:.2}x, 90th percentile {:.2}x (paper: max ~6x, min ~0.75x, p10 1.2x, p90 3.7x)",
        summary.max(),
        summary.min(),
        summary.percentile(0.1),
        summary.percentile(0.9)
    );
    for (i, &recall) in recalls.iter().enumerate() {
        println!(
            "# geometric mean at recall {recall}: {:.2}x",
            geometric_mean(&per_recall_ratios[i])
        );
    }
}
