//! Figure 3: simulated savings of ExSample over random sampling, as a function of
//! instance skew (columns) and mean instance duration (rows).
//!
//! For each (skew, duration) cell the paper runs ExSample and random sampling 21
//! times over a 16-million-frame, 2000-instance workload split into 128 chunks, and
//! labels the median savings (random frames / ExSample frames) needed to reach 10,
//! 100 and 1000 distinct results.  The headline shape: savings grow with skew
//! (left→right) and are negligible when there is no skew or when results are so
//! rare that finding the first few dominates.
//!
//! The default (reduced) configuration shrinks the frame count and trial count so
//! the whole grid runs in seconds while preserving that shape; `--full` restores
//! the paper-scale workload.

use exsample_bench::{
    banner, merged_cache_telemetry, merged_selection_telemetry, ok_or_exit, print_cache_telemetry,
    print_selection_telemetry, print_table, ExperimentOptions,
};
use exsample_data::{GridWorkload, SkewLevel};
use exsample_engine::{CacheActivity, SelectionTelemetry};
use exsample_rand::SeedSequence;
use exsample_sim::{run_trials, MethodKind, QueryRunner, StopCondition, Table};

fn main() {
    let options = ExperimentOptions::from_env();
    banner(
        "Figure 3",
        "savings grid: instance skew x mean duration, ExSample vs random",
        &options,
    );

    let (frames, instances, chunks, budget) = if options.full {
        (16_000_000u64, 2_000usize, 128u32, 120_000u64)
    } else {
        (2_000_000, 2_000, 128, 25_000)
    };
    let trials = options.trials_or(5, 21);
    let durations: &[f64] = &[14.0, 100.0, 700.0, 4_900.0];
    let skews = SkewLevel::figure3_columns();
    let targets: &[usize] = &[10, 100, 1_000];

    println!(
        "# workload: {frames} frames, {instances} instances, {chunks} chunks, budget {budget} frames/run, {trials} trials\n"
    );

    let seeds = SeedSequence::new(options.seed).derive("fig3");
    let mut dedup: Option<SelectionTelemetry> = None;
    let mut cache_total: Option<CacheActivity> = None;
    let mut table = Table::new(vec![
        "mean duration",
        "skew",
        "savings@10",
        "savings@100",
        "savings@1000",
        "exsample found (median)",
        "random found (median)",
    ]);

    for &duration in durations {
        for skew in skews {
            let workload = GridWorkload::builder()
                .frames(frames)
                .instances(instances)
                .chunks(chunks)
                .mean_duration(duration)
                .skew(skew)
                .seed(seeds.derive("workload").index(duration as u64).seed())
                .build()
                .expect("valid workload");
            let dataset = workload.generate();

            let cell_seed = seeds
                .derive("cell")
                .index(duration as u64)
                .derive(&skew.label());
            let exsample = ok_or_exit(run_trials(trials, true, |trial| {
                options
                    .apply_to_runner(QueryRunner::new(&dataset))
                    .stop(StopCondition::FrameBudget(budget))
                    .seed(cell_seed.derive("exsample").index(trial).seed())
                    .run(MethodKind::ExSample(options.exsample_config()))
            }));
            if let Some(cell) = merged_selection_telemetry(&exsample.results) {
                dedup.get_or_insert_with(Default::default).merge(&cell);
            }
            let random = ok_or_exit(run_trials(trials, true, |trial| {
                options
                    .apply_to_runner(QueryRunner::new(&dataset))
                    .stop(StopCondition::FrameBudget(budget))
                    .seed(cell_seed.derive("random").index(trial).seed())
                    .run(MethodKind::Random)
            }));
            for set in [&exsample, &random] {
                if let Some(cell) = merged_cache_telemetry(&set.results) {
                    cache_total
                        .get_or_insert_with(Default::default)
                        .absorb(cell);
                }
            }

            let savings: Vec<String> = targets
                .iter()
                .map(|&target| {
                    match (
                        exsample.median_frames_to_count(target),
                        random.median_frames_to_count(target),
                    ) {
                        (Some(e), Some(r)) if e > 0.0 => format!("{:.2}x", r / e),
                        _ => "-".to_string(),
                    }
                })
                .collect();
            let median_found = |set: &exsample_sim::TrialSet| -> f64 {
                let mut s = exsample_rand::Summary::from_values(
                    set.results.iter().map(|r| r.true_found as f64).collect(),
                );
                s.median()
            };
            table.push_row(vec![
                format!("{duration}"),
                skew.label(),
                savings[0].clone(),
                savings[1].clone(),
                savings[2].clone(),
                format!("{:.0}", median_found(&exsample)),
                format!("{:.0}", median_found(&random)),
            ]);
        }
    }

    print_table(&options, &table);
    print_selection_telemetry("exsample", dedup.as_ref());
    print_cache_telemetry("all runs", cache_total.as_ref());
    println!();
    println!("# Expected shape (paper Figure 3): savings near 1x in the 'none' skew column,");
    println!("# growing to large multiples in the 1/256 column; savings also grow with mean");
    println!("# duration because abundant long-lived results let ExSample's statistics");
    println!("# converge quickly. '-' means the target was not reached within the budget by");
    println!("# one of the methods (typically random sampling in the highly skewed cells).");
}
