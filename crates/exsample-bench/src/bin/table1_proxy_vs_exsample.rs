//! Table I: time for the scanning component of a proxy-based approach vs. the time
//! ExSample needs to reach 10 %, 50 % and 90 % of all instances, for every query on
//! every dataset.
//!
//! The paper's argument is architectural: a proxy model must decode and score every
//! frame before it can rank anything (measured at ~100 fps), while ExSample starts
//! sampling immediately and is bounded by the detector (~20 fps on sampled frames).
//! Across all 40+ queries the proxy's scan alone already exceeds the time ExSample
//! needs to reach 90 % recall.
//!
//! All of a dataset's queries execute as concurrent queries of one
//! `exsample-engine` engine over the shared repository — the multiplexed shape
//! a production deployment would use — with per-query recall targets expressed
//! as engine `true_limit`s and each query reading its own recall trajectory
//! out of the engine report.
//!
//! The default configuration runs the dataset analogs at a reduced scale (both the
//! scan time and ExSample's sampling time shrink proportionally, so the comparison
//! is preserved); `--full` uses the full-size analogs.

use exsample_bench::{banner, experiment_engine, ok_or_exit, print_table, ExperimentOptions};
use exsample_data::datasets::{all_datasets, DatasetAnalog};
use exsample_detect::{Detector, ObjectClass, PerfectDetector};
use exsample_engine::{ExSamplePolicy, QuerySpec};
use exsample_rand::SeedSequence;
use exsample_sim::{format_duration, metrics, Table};
use exsample_video::DecodeCostModel;
use std::sync::Arc;

fn main() {
    let options = ExperimentOptions::from_env();
    banner(
        "Table I",
        "proxy scan time vs. ExSample time to 10/50/90% of instances",
        &options,
    );

    let scale = options.scale_or(0.2);
    let cost = DecodeCostModel::paper();
    let seeds = SeedSequence::new(options.seed).derive("table1");

    println!(
        "# dataset scale: {scale} (times scale linearly with dataset size; the scan-vs-sample comparison is scale-invariant)"
    );
    println!(
        "# engine shards: {}, worker threads: {} (outcomes are invariant to both; they only move detector work)\n",
        options.shards,
        options.effective_threads(),
    );

    let mut table = Table::new(vec![
        "dataset",
        "proxy (scan)",
        "category",
        "instances",
        "10%",
        "50%",
        "90%",
        "exsample beats scan @90%",
    ]);

    let mut queries = 0usize;
    let mut wins = 0usize;

    for spec in all_datasets() {
        let dataset = DatasetAnalog::new(spec.clone(), seeds.derive(spec.name).seed())
            .with_scale(scale)
            .generate();
        let scan_secs = cost.proxy_scoring_secs(dataset.total_frames());
        let truth = dataset.ground_truth();

        // One engine for the whole dataset: every class query runs
        // concurrently over the shared repository.
        let detectors: Vec<Box<dyn Detector>> = spec
            .classes
            .iter()
            .map(|c| {
                options.faulty_detector(Box::new(PerfectDetector::new(
                    Arc::clone(truth),
                    ObjectClass::from(c.class),
                )))
            })
            .collect();
        let totals: Vec<usize> = spec
            .classes
            .iter()
            .map(|c| truth.count_of_class(&ObjectClass::from(c.class)))
            .collect();
        let mut engine = ok_or_exit(experiment_engine(dataset.chunking(), &options));
        for ((class_spec, detector), &total) in spec.classes.iter().zip(&detectors).zip(&totals) {
            let class = class_spec.class;
            let target = (0.9 * total as f64).ceil() as usize;
            let mut query = QuerySpec::new(
                class,
                Box::new(ExSamplePolicy::new(
                    options.exsample_config(),
                    dataset.chunking(),
                )),
                detector.as_ref(),
            )
            .seed(seeds.derive(spec.name).derive(class).seed())
            .batch(8)
            .frame_budget(dataset.total_frames());
            if total > 0 {
                query = query.true_limit(target);
            }
            engine.push(query).expect("valid query spec");
        }
        let report = ok_or_exit(engine.run());

        for (outcome, &total) in report.outcomes.iter().zip(&totals) {
            // The run to 90% recall yields the whole trajectory, from which the
            // lower recall levels are read off.
            let time_at = |recall: f64| -> String {
                let target = (recall * total as f64).ceil() as usize;
                metrics::frames_to_count(&outcome.trajectory, target)
                    .map(|frames| format_duration(cost.sampled_processing_secs(frames)))
                    .unwrap_or_else(|| "-".to_string())
            };
            let target90 = (0.9 * total as f64).ceil() as usize;
            let beats = metrics::frames_to_count(&outcome.trajectory, target90)
                .map(|frames| cost.sampled_processing_secs(frames) < scan_secs);
            queries += 1;
            if beats == Some(true) {
                wins += 1;
            }
            table.push_row(vec![
                spec.name.to_string(),
                format_duration(scan_secs),
                outcome.label.clone(),
                format!("{total}"),
                time_at(0.1),
                time_at(0.5),
                time_at(0.9),
                match beats {
                    Some(true) => "yes".to_string(),
                    Some(false) => "no".to_string(),
                    None => "-".to_string(),
                },
            ]);
        }
    }

    print_table(&options, &table);
    println!();
    println!("# {wins}/{queries} queries reach 90% of instances with ExSample before a proxy");
    println!("# model would even finish scanning/scoring the dataset (the paper reports this");
    println!("# holds for all of its queries; lower recalls are reached orders of magnitude");
    println!("# sooner).");
}
