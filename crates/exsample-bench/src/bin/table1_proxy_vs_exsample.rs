//! Table I: time for the scanning component of a proxy-based approach vs. the time
//! ExSample needs to reach 10 %, 50 % and 90 % of all instances, for every query on
//! every dataset.
//!
//! The paper's argument is architectural: a proxy model must decode and score every
//! frame before it can rank anything (measured at ~100 fps), while ExSample starts
//! sampling immediately and is bounded by the detector (~20 fps on sampled frames).
//! Across all 40+ queries the proxy's scan alone already exceeds the time ExSample
//! needs to reach 90 % recall.
//!
//! The default configuration runs the dataset analogs at a reduced scale (both the
//! scan time and ExSample's sampling time shrink proportionally, so the comparison
//! is preserved); `--full` uses the full-size analogs.

use exsample_bench::{banner, print_table, ExperimentOptions};
use exsample_core::ExSampleConfig;
use exsample_data::datasets::{all_datasets, DatasetAnalog};
use exsample_rand::SeedSequence;
use exsample_sim::{format_duration, MethodKind, QueryRunner, StopCondition, Table};
use exsample_video::DecodeCostModel;

fn main() {
    let options = ExperimentOptions::from_env();
    banner(
        "Table I",
        "proxy scan time vs. ExSample time to 10/50/90% of instances",
        &options,
    );

    let scale = options.scale_or(0.2);
    let cost = DecodeCostModel::paper();
    let seeds = SeedSequence::new(options.seed).derive("table1");

    println!(
        "# dataset scale: {scale} (times scale linearly with dataset size; the scan-vs-sample comparison is scale-invariant)\n"
    );

    let mut table = Table::new(vec![
        "dataset",
        "proxy (scan)",
        "category",
        "instances",
        "10%",
        "50%",
        "90%",
        "exsample beats scan @90%",
    ]);

    let mut queries = 0usize;
    let mut wins = 0usize;

    for spec in all_datasets() {
        let dataset = DatasetAnalog::new(spec.clone(), seeds.derive(spec.name).seed())
            .with_scale(scale)
            .generate();
        let scan_secs = cost.proxy_scoring_secs(dataset.total_frames());

        for class_spec in &spec.classes {
            let class = class_spec.class;
            let seed = seeds.derive(spec.name).derive(class).seed();
            // A single run to 90% recall yields the whole trajectory, from which the
            // lower recall levels are read off.
            let result = QueryRunner::new(&dataset)
                .class(class)
                .stop(StopCondition::Recall(0.9))
                .frame_cap(dataset.total_frames())
                .seed(seed)
                .run(MethodKind::ExSample(ExSampleConfig::default()));

            let time_at = |recall: f64| -> String {
                result
                    .frames_to_recall(recall)
                    .map(|frames| format_duration(cost.sampled_processing_secs(frames)))
                    .unwrap_or_else(|| "-".to_string())
            };
            let beats = result
                .frames_to_recall(0.9)
                .map(|frames| cost.sampled_processing_secs(frames) < scan_secs);
            queries += 1;
            if beats == Some(true) {
                wins += 1;
            }
            table.push_row(vec![
                spec.name.to_string(),
                format_duration(scan_secs),
                class.to_string(),
                format!("{}", result.total_instances),
                time_at(0.1),
                time_at(0.5),
                time_at(0.9),
                match beats {
                    Some(true) => "yes".to_string(),
                    Some(false) => "no".to_string(),
                    None => "-".to_string(),
                },
            ]);
        }
    }

    print_table(&options, &table);
    println!();
    println!("# {wins}/{queries} queries reach 90% of instances with ExSample before a proxy");
    println!("# model would even finish scanning/scoring the dataset (the paper reports this");
    println!("# holds for all of its queries; lower recalls are reached orders of magnitude");
    println!("# sooner).");
}
