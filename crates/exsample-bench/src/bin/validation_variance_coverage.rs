//! Section III-D variance-bound check: how often does the confidence interval
//! implied by Eq. III.3 actually contain the true expected reward?
//!
//! The paper tests the variance estimate on the BDD MOT dataset and finds that the
//! 95 % bound derived from Eq. III.3 contains the actual expected reward about 80 %
//! of the time — a slight under-estimate attributed to co-occurrence of instances
//! (the independence assumption behind Eq. III.3 does not perfectly hold).  This
//! binary repeats the check on the BDD MOT analog: co-occurrence arises naturally
//! because instances cluster within short clips.

use exsample_bench::{banner, print_table, ExperimentOptions};
use exsample_core::estimator;
use exsample_data::datasets::{bdd_mot, DatasetAnalog};
use exsample_detect::{Detector, ObjectClass, PerfectDetector};
use exsample_rand::SeedSequence;
use exsample_sim::Table;
use exsample_track::{Discriminator, OracleDiscriminator};
use exsample_video::{FrameSampler, UniformSampler};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;
use std::sync::Arc;

fn main() {
    let options = ExperimentOptions::from_env();
    banner(
        "Section III-D check",
        "coverage of the Eq. III.3 variance bound on the BDD MOT analog",
        &options,
    );
    let scale = options.scale_or(0.25);
    let trials = options.trials_or(20, 60);
    let samples_per_trial: u64 = if options.full { 20_000 } else { 6_000 };
    let seeds = SeedSequence::new(options.seed).derive("variance-coverage");

    let dataset = DatasetAnalog::new(bdd_mot(), seeds.derive("dataset").seed())
        .with_scale(scale)
        .generate();
    let total_frames = dataset.total_frames();

    println!("# scale {scale}, {trials} trials, {samples_per_trial} samples per trial\n");

    let mut table = Table::new(vec!["class", "checks", "covered", "coverage"]);
    let mut overall_checks = 0usize;
    let mut overall_covered = 0usize;

    for class_spec in &bdd_mot().classes {
        let class = ObjectClass::from(class_spec.class);
        let probabilities = dataset.hit_probabilities(&class);
        if probabilities.is_empty() {
            continue;
        }
        let truth = Arc::clone(dataset.ground_truth());
        let detector = PerfectDetector::new(Arc::clone(&truth), class.clone());
        let mut checks = 0usize;
        let mut covered = 0usize;

        for trial in 0..trials {
            let mut rng =
                StdRng::seed_from_u64(seeds.derive(class_spec.class).index(trial as u64).seed());
            let mut sampler = UniformSampler::new(total_frames);
            let mut discriminator = OracleDiscriminator::new();
            let mut found: HashSet<u64> = HashSet::new();
            let mut n = 0u64;
            // Check the interval at logarithmically spaced sample counts.
            let checkpoints: Vec<u64> = (1..)
                .map(|k| 100u64 * (1 << k))
                .take_while(|&c| c <= samples_per_trial)
                .collect();
            let mut next = 0usize;
            while n < samples_per_trial {
                let Some(frame) = sampler.next_frame(&mut rng) else {
                    break;
                };
                let outcome = discriminator.observe(&detector.detect(frame));
                for det in &outcome.new {
                    if let Some(id) = det.truth {
                        found.insert(id.0);
                    }
                }
                n += 1;
                if next < checkpoints.len() && n == checkpoints[next] {
                    next += 1;
                    // Observed N1 and the estimator's 95% interval from Eq. III.3:
                    // mean = N1/n, variance bound = mean / n.
                    let seen_once = discriminator.seen_exactly_once();
                    let estimate = seen_once as f64 / n as f64;
                    let std = estimator::variance_bound(estimate, n).sqrt();
                    let (lo, hi) = (estimate - 1.96 * std, estimate + 1.96 * std);
                    // True expected reward: sum of p_i over unseen instances,
                    // normalised per frame.
                    let truth_r: f64 = dataset
                        .ground_truth()
                        .of_class(&class)
                        .filter(|inst| !found.contains(&inst.id().0))
                        .map(|inst| inst.hit_probability(total_frames))
                        .sum();
                    checks += 1;
                    if truth_r >= lo && truth_r <= hi {
                        covered += 1;
                    }
                }
            }
        }
        overall_checks += checks;
        overall_covered += covered;
        table.push_row(vec![
            class_spec.class.to_string(),
            format!("{checks}"),
            format!("{covered}"),
            format!("{:.0}%", 100.0 * covered as f64 / checks.max(1) as f64),
        ]);
    }

    print_table(&options, &table);
    println!();
    println!(
        "# overall coverage: {:.0}% (paper reports ~80% on BDD MOT, i.e. the bound is a slight underestimate because instances co-occur)",
        100.0 * overall_covered as f64 / overall_checks.max(1) as f64
    );
}
