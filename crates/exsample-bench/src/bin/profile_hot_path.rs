//! Component-level timing of the chunk-selection hot path.
//!
//! A developer tool, not an experiment binary: prints ns/op for each primitive
//! the Thompson selection loop is built from, then the end-to-end per-chunk
//! cost of a cached pick at 10 000 chunks.  Useful when tuning the hot path —
//! compare against `benches/hot_path.rs` for the sanctioned baseline numbers.

use exsample_core::{ChunkStatsSet, ExSampleConfig, SelectionStrategy};
use exsample_rand::gamma::{gamma_draw, mt_constants, mt_draw_unit};
use exsample_rand::quantile::{gamma_max_of_k, gamma_quantile};
use exsample_rand::ziggurat::{fast_exponential, fast_standard_normal};
use exsample_rand::Sampler;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::hint::black_box;
use std::time::Instant;

fn time<F: FnMut() -> f64>(name: &str, n: usize, mut f: F) {
    let start = Instant::now();
    let mut acc = 0.0;
    for _ in 0..n {
        acc += f();
    }
    black_box(acc);
    let ns = start.elapsed().as_secs_f64() * 1e9 / n as f64;
    println!("{name:<40} {ns:>8.2} ns/op");
}

fn main() {
    let mut rng = StdRng::seed_from_u64(1);
    time("next_u64", 10_000_000, || rng.next_u64() as f64);
    time("gen::<f64>", 10_000_000, || rng.gen::<f64>());
    time("fast_standard_normal (ziggurat)", 10_000_000, || {
        fast_standard_normal(&mut rng)
    });
    time("fast_exponential (ziggurat)", 10_000_000, || {
        fast_exponential(&mut rng)
    });
    time("StandardNormal (polar)", 10_000_000, || {
        exsample_rand::StandardNormal.sample(&mut rng)
    });
    let (d_plain, c_plain, _) = mt_constants(1.1);
    let (d_boost, c_boost, b_boost) = mt_constants(0.1);
    time("mt_draw_unit (shape 1.1)", 10_000_000, || {
        mt_draw_unit(&mut rng, d_plain, c_plain)
    });
    time("gamma_draw plain (shape 1.1)", 10_000_000, || {
        gamma_draw(&mut rng, d_plain, c_plain, 0.0, 2.0)
    });
    time("gamma_draw boost (shape 0.1)", 10_000_000, || {
        gamma_draw(&mut rng, d_boost, c_boost, b_boost, 2.0)
    });
    time("gamma_quantile (shape 1.1)", 1_000_000, || {
        gamma_quantile(1.1, rng.gen::<f64>())
    });
    time("gamma_max_of_k (shape 1.1, k = 10k)", 1_000_000, || {
        gamma_max_of_k(&mut rng, 1.1, 2.0, 10_000)
    });
    time("exp()", 10_000_000, || (-rng.gen::<f64>()).exp());
    time("powf (seed boost path)", 10_000_000, || {
        rng.gen::<f64>().powf(9.99)
    });

    // End-to-end cached pick at 10k chunks, mixed history.
    let mut stats = ChunkStatsSet::new(10_000);
    for j in 0..10_000 {
        stats.record(j, i64::from(j % 3 == 0));
    }
    let eligible = vec![true; 10_000];
    let config = ExSampleConfig::default();
    let picks = 2_000;
    let start = Instant::now();
    let mut acc = 0usize;
    for _ in 0..picks {
        acc += exsample_core::policy::select_chunk(&config, &stats, &eligible, &mut rng).unwrap();
    }
    black_box(acc);
    let per_pick = start.elapsed().as_secs_f64() * 1e9 / picks as f64;
    println!(
        "select_chunk cached, M = 10k        {per_pick:>10.0} ns/pick   ({:.2} ns/chunk)",
        per_pick / 10_000.0
    );

    // The same pick through the belief-class fold: the j % 3 history collapses
    // 10k chunks into 2 classes, so each pick costs 2 max-of-k quantile draws
    // plus the O(M) winner scan instead of 10k Gamma draws.
    let config = ExSampleConfig::default().with_selection(SelectionStrategy::ClassMax);
    assert!(exsample_core::policy::class_max_applicable(&config, &stats));
    let start = Instant::now();
    let mut acc = 0usize;
    for _ in 0..picks {
        acc += exsample_core::policy::select_chunk(&config, &stats, &eligible, &mut rng).unwrap();
    }
    black_box(acc);
    let per_pick = start.elapsed().as_secs_f64() * 1e9 / picks as f64;
    println!(
        "select_chunk class-max, M = 10k     {per_pick:>10.0} ns/pick   ({:.2} ns/chunk, {} classes)",
        per_pick / 10_000.0,
        stats.class_count()
    );
}
