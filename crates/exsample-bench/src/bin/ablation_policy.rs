//! Section III-C ablation: chunk-selection policies.
//!
//! The paper chooses Thompson sampling over the Gamma beliefs and reports that
//! Bayes-UCB gives indistinguishable results, while a greedy point-estimate rule
//! risks locking onto an early lucky chunk.  This ablation compares the four
//! policies implemented in `exsample-core::policy` on the same skewed workload.
//!
//! Each trial runs all four policies as *concurrent queries of one
//! `exsample-engine` engine* over the shared repository: they share every
//! detector invocation their picks have in common (the engine reports the
//! coalescing savings), while each query's private RNG stream keeps its
//! outcome identical to a standalone run.

use exsample_bench::{banner, experiment_engine, ok_or_exit, print_table, ExperimentOptions};
use exsample_core::ChunkSelectionPolicy;
use exsample_data::{GridWorkload, SkewLevel};
use exsample_detect::PerfectDetector;
use exsample_engine::{ExSamplePolicy, QuerySpec, TrajectoryPoint};
use exsample_rand::{SeedSequence, Summary};
use exsample_sim::{metrics, Table};
use rayon::prelude::*;
use std::sync::Arc;

fn main() {
    let options = ExperimentOptions::from_env();
    banner(
        "Ablation (Section III-C)",
        "chunk-selection policy: Thompson vs Bayes-UCB vs greedy vs uniform",
        &options,
    );
    let trials = options.trials_or(7, 21);
    let budget: u64 = if options.full { 30_000 } else { 10_000 };
    let seeds = SeedSequence::new(options.seed).derive("ablation-policy");

    let dataset = GridWorkload::builder()
        .frames(2_000_000)
        .instances(2_000)
        .chunks(64)
        .mean_duration(700.0)
        .skew(SkewLevel::ThirtySecond)
        .seed(seeds.derive("workload").seed())
        .build()
        .expect("valid workload")
        .generate();
    let truth = Arc::clone(dataset.ground_truth());

    println!("# workload: 2M frames, 2000 instances, 64 chunks, skew 1/32, budget {budget}, {trials} trials");
    println!(
        "# all four policies run as concurrent queries of one engine per trial ({} shard{}, {} worker thread{})\n",
        options.shards,
        if options.shards == 1 { "" } else { "s" },
        options.effective_threads(),
        if options.effective_threads() == 1 { "" } else { "s" },
    );

    let policies = [
        ("thompson", ChunkSelectionPolicy::ThompsonSampling),
        ("bayes-ucb", ChunkSelectionPolicy::BayesUcb),
        ("greedy", ChunkSelectionPolicy::GreedyMean),
        ("uniform", ChunkSelectionPolicy::UniformChunk),
    ];

    // Trials are independent (per-trial derived seeds, one fresh engine each)
    // and run through an order-preserving parallel map; within a trial the
    // four policies share one engine's stages and detector coalescing.
    let trial_runs: Vec<(Vec<Vec<TrajectoryPoint>>, u64, u64)> = (0..trials as u64)
        .into_par_iter()
        .map(|trial| {
            // Fresh per-trial detector: the fault injector's attempt counters
            // are run-local state, so trials must not share one.
            let detector = options.faulty_detector(Box::new(PerfectDetector::new(
                Arc::clone(&truth),
                GridWorkload::class(),
            )));
            let mut engine = ok_or_exit(experiment_engine(dataset.chunking(), &options));
            for (label, policy) in policies {
                let config = options.exsample_config().with_policy(policy);
                engine
                    .push(
                        QuerySpec::new(
                            label,
                            Box::new(ExSamplePolicy::new(config, dataset.chunking())),
                            detector.as_ref(),
                        )
                        .seed(seeds.derive(label).index(trial).seed())
                        .batch(16)
                        .frame_budget(budget),
                    )
                    .expect("valid query spec");
            }
            let report = ok_or_exit(engine.run());
            (
                report.outcomes.into_iter().map(|o| o.trajectory).collect(),
                report.demanded_frames,
                report.detector_frames,
            )
        })
        .collect();

    // trajectories[p][t] = trajectory of policy p in trial t.
    let mut trajectories: Vec<Vec<Vec<TrajectoryPoint>>> = vec![Vec::new(); policies.len()];
    let mut demanded = 0u64;
    let mut detected = 0u64;
    for (trial_trajectories, trial_demanded, trial_detected) in trial_runs {
        demanded += trial_demanded;
        detected += trial_detected;
        for (p, trajectory) in trial_trajectories.into_iter().enumerate() {
            trajectories[p].push(trajectory);
        }
    }

    let mut table = Table::new(vec![
        "policy",
        "found @ n/4 (median)",
        "found @ n (median)",
        "found @ n (p25)",
        "found @ n (p75)",
    ]);

    for ((label, _), trial_trajectories) in policies.iter().zip(&trajectories) {
        let values_at = |frames: u64| -> Summary {
            Summary::from_values(
                trial_trajectories
                    .iter()
                    .map(|t| metrics::found_at(t, frames) as f64)
                    .collect(),
            )
        };
        let mut quarter = values_at(budget / 4);
        let mut full = values_at(budget);
        table.push_row(vec![
            label.to_string(),
            format!("{:.0}", quarter.median()),
            format!("{:.0}", full.median()),
            format!("{:.0}", full.percentile(0.25)),
            format!("{:.0}", full.percentile(0.75)),
        ]);
    }

    print_table(&options, &table);
    println!();
    println!(
        "# engine coalescing: {detected} frames detected for {demanded} demanded ({} shared)",
        demanded - detected
    );
    println!("# Expected shape: Thompson sampling and Bayes-UCB are statistically");
    println!("# indistinguishable (as the paper reports); greedy is competitive in the");
    println!("# median but has a wider spread (it can lock onto an early lucky chunk);");
    println!("# the uniform policy trails all adaptive policies.");
}
