//! Section III-C ablation: chunk-selection policies.
//!
//! The paper chooses Thompson sampling over the Gamma beliefs and reports that
//! Bayes-UCB gives indistinguishable results, while a greedy point-estimate rule
//! risks locking onto an early lucky chunk.  This ablation compares the four
//! policies implemented in `exsample-core::policy` on the same skewed workload.

use exsample_bench::{banner, print_table, ExperimentOptions};
use exsample_core::{ChunkSelectionPolicy, ExSampleConfig};
use exsample_data::{GridWorkload, SkewLevel};
use exsample_rand::{SeedSequence, Summary};
use exsample_sim::{metrics, run_trials, MethodKind, QueryRunner, StopCondition, Table};

fn main() {
    let options = ExperimentOptions::from_env();
    banner(
        "Ablation (Section III-C)",
        "chunk-selection policy: Thompson vs Bayes-UCB vs greedy vs uniform",
        &options,
    );
    let trials = options.trials_or(7, 21);
    let budget: u64 = if options.full { 30_000 } else { 10_000 };
    let seeds = SeedSequence::new(options.seed).derive("ablation-policy");

    let dataset = GridWorkload::builder()
        .frames(2_000_000)
        .instances(2_000)
        .chunks(64)
        .mean_duration(700.0)
        .skew(SkewLevel::ThirtySecond)
        .seed(seeds.derive("workload").seed())
        .build()
        .expect("valid workload")
        .generate();

    println!("# workload: 2M frames, 2000 instances, 64 chunks, skew 1/32, budget {budget}, {trials} trials\n");

    let policies = [
        ("thompson", ChunkSelectionPolicy::ThompsonSampling),
        ("bayes-ucb", ChunkSelectionPolicy::BayesUcb),
        ("greedy", ChunkSelectionPolicy::GreedyMean),
        ("uniform", ChunkSelectionPolicy::UniformChunk),
    ];

    let mut table = Table::new(vec![
        "policy",
        "found @ n/4 (median)",
        "found @ n (median)",
        "found @ n (p25)",
        "found @ n (p75)",
    ]);

    for (label, policy) in policies {
        let config = ExSampleConfig::default().with_policy(policy);
        let set = run_trials(trials, true, |trial| {
            QueryRunner::new(&dataset)
                .stop(StopCondition::FrameBudget(budget))
                .seed(seeds.derive(label).index(trial).seed())
                .run(MethodKind::ExSample(config))
        });
        let values_at = |frames: u64| -> Summary {
            Summary::from_values(
                set.results
                    .iter()
                    .map(|r| metrics::found_at(&r.trajectory, frames) as f64)
                    .collect(),
            )
        };
        let mut quarter = values_at(budget / 4);
        let mut full = values_at(budget);
        table.push_row(vec![
            label.to_string(),
            format!("{:.0}", quarter.median()),
            format!("{:.0}", full.median()),
            format!("{:.0}", full.percentile(0.25)),
            format!("{:.0}", full.percentile(0.75)),
        ]);
    }

    print_table(&options, &table);
    println!();
    println!("# Expected shape: Thompson sampling and Bayes-UCB are statistically");
    println!("# indistinguishable (as the paper reports); greedy is competitive in the");
    println!("# median but has a wider spread (it can lock onto an early lucky chunk);");
    println!("# the uniform policy trails all adaptive policies.");
}
