//! Figure 4: the effect of the number of chunks on ExSample's performance.
//!
//! The paper fixes the Figure 3 workload at skew 1/32 and mean duration 700 frames
//! and varies the chunk count from 1 to 1024.  One chunk makes ExSample equivalent
//! to random sampling; more chunks let it exploit finer-grained skew, but too many
//! chunks (1024) cost so many exploratory samples that performance drops again —
//! the benefit is non-monotonic.  The dashed reference is the optimal static
//! allocation of Eq. IV.1, computed here with the `exsample-opt` solver.

use exsample_bench::{
    banner, merged_selection_telemetry, ok_or_exit, print_selection_telemetry, print_table,
    ExperimentOptions,
};
use exsample_data::{GridWorkload, SkewLevel};
use exsample_engine::SelectionTelemetry;
use exsample_opt::{optimal_weights, InstanceChunkProbabilities, SolverOptions};
use exsample_rand::{SeedSequence, Summary};
use exsample_sim::{metrics, run_trials, MethodKind, QueryRunner, StopCondition, Table};

fn main() {
    let options = ExperimentOptions::from_env();
    banner(
        "Figure 4",
        "instances found vs. chunk count (1 chunk == random sampling)",
        &options,
    );

    let (frames, instances, budget) = if options.full {
        (16_000_000u64, 2_000usize, 30_000u64)
    } else {
        (2_000_000, 2_000, 20_000)
    };
    let trials = options.trials_or(5, 21);
    let chunk_counts: &[u32] = &[1, 2, 16, 128, 1024];
    let checkpoints: Vec<u64> = vec![budget / 8, budget / 4, budget / 2, budget];

    println!("# workload: {frames} frames, {instances} instances, skew 1/32, mean duration 700, budget {budget}, {trials} trials\n");

    let seeds = SeedSequence::new(options.seed).derive("fig4");
    let mut dedup: Option<SelectionTelemetry> = None;
    let mut table = Table::new(vec![
        "chunks",
        "found @ n/8",
        "found @ n/4",
        "found @ n/2",
        "found @ n",
        "optimal @ n",
    ]);

    for &chunks in chunk_counts {
        let workload = GridWorkload::builder()
            .frames(frames)
            .instances(instances)
            .chunks(chunks)
            .mean_duration(700.0)
            .skew(SkewLevel::ThirtySecond)
            .seed(seeds.derive("workload").seed())
            .build()
            .expect("valid workload");
        let dataset = workload.generate();

        let set = ok_or_exit(run_trials(trials, true, |trial| {
            options
                .apply_to_runner(QueryRunner::new(&dataset))
                .stop(StopCondition::FrameBudget(budget))
                .seed(
                    seeds
                        .derive("run")
                        .index(u64::from(chunks))
                        .index(trial)
                        .seed(),
                )
                .run(MethodKind::ExSample(options.exsample_config()))
        }));
        if let Some(cell) = merged_selection_telemetry(&set.results) {
            dedup.get_or_insert_with(Default::default).merge(&cell);
        }

        // Median instances found at each checkpoint across trials.
        let mut row = vec![format!("{chunks}")];
        for &checkpoint in &checkpoints {
            let mut summary = Summary::from_values(
                set.results
                    .iter()
                    .map(|r| metrics::found_at(&r.trajectory, checkpoint) as f64)
                    .collect(),
            );
            row.push(format!("{:.0}", summary.median()));
        }

        // The Eq. IV.1 optimal static allocation for the full budget.
        let intervals: Vec<(u64, u64)> = dataset
            .ground_truth()
            .instances()
            .iter()
            .map(|i| (i.first_frame(), i.last_frame()))
            .collect();
        let chunk_ranges: Vec<(u64, u64)> = dataset
            .chunking()
            .chunks()
            .iter()
            .map(|c| (c.start(), c.end()))
            .collect();
        let probs = InstanceChunkProbabilities::from_intervals(&intervals, &chunk_ranges);
        let optimal = optimal_weights(&probs, budget, SolverOptions::default());
        row.push(format!("{:.0}", optimal.expected_found));

        table.push_row(row);
    }

    print_table(&options, &table);
    print_selection_telemetry("exsample", dedup.as_ref());
    println!();
    println!("# Expected shape (paper Figure 4): 1 chunk behaves like random sampling; a");
    println!("# moderate number of chunks (16-128) finds the most instances; 1024 chunks");
    println!("# drops back because each chunk must be sampled before its statistics mean");
    println!("# anything. The optimal column grows with chunk count because perfect prior");
    println!("# knowledge exploits ever finer skew, which ExSample cannot match at 1024.");
}
