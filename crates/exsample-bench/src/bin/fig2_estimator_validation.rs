//! Figure 2: empirical validation of the R̂ estimator and its Gamma belief.
//!
//! The paper draws 1000 skewed per-instance probabilities `p_i`, simulates random
//! frame sampling (each instance appears independently with probability `p_i` per
//! frame), and shows that the Gamma belief `Γ(N1 + 0.1, n + 1)` of Eq. III.4
//! matches the empirical distribution of the true next-frame reward `R(n+1)` once a
//! moderate number of samples has been taken, while being (intentionally) wider
//! early on.
//!
//! This binary reproduces that comparison quantitatively.  For a set of sample-count
//! checkpoints `n` it records, across many independent trials, the observed `N1`
//! and the true `R(n+1)` (computable in simulation because the `p_i` are known),
//! then compares the empirical quantiles of `R(n+1)` with the quantiles of the
//! Gamma belief built from the *median* observed `N1` at that checkpoint.

use exsample_bench::{banner, print_table, ExperimentOptions};
use exsample_core::estimator;
use exsample_data::IndependentWorkload;
use exsample_rand::{Gamma, SeedSequence, Summary};
use exsample_sim::Table;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let options = ExperimentOptions::from_env();
    banner(
        "Figure 2",
        "estimator validation: Gamma belief vs. empirical R(n+1)",
        &options,
    );

    // Reduced mode keeps the run to a few seconds; full mode approaches the paper's
    // configuration (1000 instances, checkpoints up to 180k samples, many trials).
    let trials = options.trials_or(60, 400);
    let checkpoints: &[u64] = if options.full {
        &[100, 1_000, 14_000, 60_000, 180_000]
    } else {
        &[100, 1_000, 5_000, 20_000]
    };
    let max_n = *checkpoints.last().unwrap();

    let seeds = SeedSequence::new(options.seed).derive("fig2");
    let mut workload_rng = SmallRng::seed_from_u64(seeds.derive("workload").seed());
    let workload = IndependentWorkload::paper_figure2(&mut workload_rng);
    let probabilities = workload.probabilities().to_vec();

    println!(
        "# workload: {} instances, mean p = {:.2e}, sigma p = {:.2e}, max p = {:.2e}",
        workload.len(),
        workload.mean_p(),
        workload.sigma_p(),
        workload.max_p()
    );
    println!("# trials: {trials}\n");

    // Per checkpoint, collect across trials: observed N1, true R(n+1), and the point
    // estimate N1/n.
    let mut n1_by_checkpoint: Vec<Vec<f64>> = vec![Vec::new(); checkpoints.len()];
    let mut r_by_checkpoint: Vec<Vec<f64>> = vec![Vec::new(); checkpoints.len()];

    for trial in 0..trials {
        let mut rng = SmallRng::seed_from_u64(seeds.derive("trial").index(trial as u64).seed());
        let mut seen_counts = vec![0u32; probabilities.len()];
        let mut next_checkpoint = 0usize;
        for n in 1..=max_n {
            for idx in workload.sample_frame(&mut rng) {
                seen_counts[idx] += 1;
            }
            if next_checkpoint < checkpoints.len() && n == checkpoints[next_checkpoint] {
                let n1 = seen_counts.iter().filter(|&&c| c == 1).count() as f64;
                let seen: Vec<bool> = seen_counts.iter().map(|&c| c > 0).collect();
                let r = estimator::realized_r_next(&probabilities, &seen);
                n1_by_checkpoint[next_checkpoint].push(n1);
                r_by_checkpoint[next_checkpoint].push(r);
                next_checkpoint += 1;
            }
        }
    }

    let mut table = Table::new(vec![
        "n",
        "median N1",
        "point est N1/n",
        "true R median",
        "true R p25",
        "true R p75",
        "belief mean",
        "belief p25",
        "belief p75",
        "R within belief 5-95%",
    ]);

    for (i, &n) in checkpoints.iter().enumerate() {
        let mut n1_summary = Summary::from_values(n1_by_checkpoint[i].clone());
        let mut r_summary = Summary::from_values(r_by_checkpoint[i].clone());
        let median_n1 = n1_summary.median().round();
        let belief = Gamma::belief(median_n1, n as f64, 0.1, 1.0).expect("valid belief");
        let lo = belief.quantile(0.05);
        let hi = belief.quantile(0.95);
        let coverage = r_by_checkpoint[i]
            .iter()
            .filter(|&&r| r >= lo && r <= hi)
            .count() as f64
            / r_by_checkpoint[i].len() as f64;
        table.push_row(vec![
            format!("{n}"),
            format!("{median_n1:.0}"),
            format!("{:.3e}", median_n1 / n as f64),
            format!("{:.3e}", r_summary.median()),
            format!("{:.3e}", r_summary.percentile(0.25)),
            format!("{:.3e}", r_summary.percentile(0.75)),
            format!("{:.3e}", belief.mean()),
            format!("{:.3e}", belief.quantile(0.25)),
            format!("{:.3e}", belief.quantile(0.75)),
            format!("{:.0}%", coverage * 100.0),
        ]);
    }

    print_table(&options, &table);
    println!();
    println!("# Reading the table: at small n the belief is much wider than the empirical");
    println!("# distribution of R(n+1) (high coverage, conservative); at moderate and large n");
    println!("# the belief mean tracks the true R median within a small factor, matching the");
    println!("# paper's Figure 2.");
}
