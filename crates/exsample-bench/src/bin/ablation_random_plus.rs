//! Section III-F ablation: the `random+` within-chunk sampler.
//!
//! `random+` avoids sampling temporally close to previous samples.  The paper uses
//! it both as a stand-alone baseline and inside ExSample's chunks.  This ablation
//! compares four configurations on the same skewed workload: plain random,
//! stand-alone random+, ExSample with uniform within-chunk sampling, and ExSample
//! with random+ within chunks (the paper's default).

use exsample_bench::{banner, ok_or_exit, print_table, ExperimentOptions};
use exsample_core::WithinChunkSampling;
use exsample_data::{GridWorkload, SkewLevel};
use exsample_rand::{SeedSequence, Summary};
use exsample_sim::{metrics, run_trials, MethodKind, QueryRunner, StopCondition, Table};

fn main() {
    let options = ExperimentOptions::from_env();
    banner(
        "Ablation (Section III-F)",
        "random+ within-chunk sampling vs. uniform",
        &options,
    );
    let trials = options.trials_or(7, 21);
    let budget: u64 = if options.full { 30_000 } else { 12_000 };
    let seeds = SeedSequence::new(options.seed).derive("ablation-random-plus");

    let dataset = GridWorkload::builder()
        .frames(2_000_000)
        .instances(2_000)
        .chunks(64)
        .mean_duration(700.0)
        .skew(SkewLevel::ThirtySecond)
        .seed(seeds.derive("workload").seed())
        .build()
        .expect("valid workload")
        .generate();

    println!("# workload: 2M frames, 2000 instances, 64 chunks, skew 1/32, budget {budget}, {trials} trials\n");

    let configurations: Vec<(&str, MethodKind)> = vec![
        ("random", MethodKind::Random),
        ("random+", MethodKind::RandomPlus),
        (
            "exsample (uniform in chunk)",
            MethodKind::ExSample(
                options
                    .exsample_config()
                    .with_within_chunk(WithinChunkSampling::Uniform),
            ),
        ),
        (
            "exsample (random+ in chunk)",
            MethodKind::ExSample(
                options
                    .exsample_config()
                    .with_within_chunk(WithinChunkSampling::RandomPlus),
            ),
        ),
    ];

    let checkpoints = [budget / 10, budget / 2, budget];
    let mut table = Table::new(vec![
        "method",
        "found @ n/10",
        "found @ n/2",
        "found @ n",
        "frames to 100 results (median)",
    ]);

    for (label, kind) in configurations {
        let set = ok_or_exit(run_trials(trials, true, |trial| {
            options
                .apply_to_runner(QueryRunner::new(&dataset))
                .stop(StopCondition::FrameBudget(budget))
                .seed(seeds.derive(label).index(trial).seed())
                .run(kind.clone())
        }));
        let median_at = |frames: u64| -> f64 {
            let mut s = Summary::from_values(
                set.results
                    .iter()
                    .map(|r| metrics::found_at(&r.trajectory, frames) as f64)
                    .collect(),
            );
            s.median()
        };
        table.push_row(vec![
            label.to_string(),
            format!("{:.0}", median_at(checkpoints[0])),
            format!("{:.0}", median_at(checkpoints[1])),
            format!("{:.0}", median_at(checkpoints[2])),
            set.median_frames_to_count(100)
                .map(|f| format!("{f:.0}"))
                .unwrap_or_else(|| "-".to_string()),
        ]);
    }

    print_table(&options, &table);
    println!();
    println!("# Expected shape: random+ modestly improves on random early in the run (it");
    println!("# avoids wasting samples on temporally adjacent frames showing the same");
    println!("# objects); both ExSample variants dominate the non-adaptive baselines, with");
    println!("# random+ within chunks giving a small additional edge.");
}
