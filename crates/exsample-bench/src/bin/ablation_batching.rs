//! Section III-F ablation: batched Thompson sampling.
//!
//! On GPUs, detector throughput is higher when frames are processed in batches, so
//! ExSample draws `B` Thompson samples per chunk-selection step and processes the
//! resulting frames together before updating its statistics.  The statistics update
//! is commutative, so batching should cost almost nothing in sample efficiency
//! while unlocking the batched detector's higher throughput.  This ablation
//! measures instances found as a function of frames processed for several batch
//! sizes, plus the wall-clock implication under a batched cost model.
//!
//! Each run is one single-query `exsample-engine` execution whose per-stage
//! batch size is the ablation variable — the hand-written pick→detect→record
//! loop this binary used to carry is exactly what the engine now provides.

use exsample_bench::{banner, experiment_engine, ok_or_exit, print_table, ExperimentOptions};
use exsample_data::{GridWorkload, SkewLevel};
use exsample_detect::PerfectDetector;
use exsample_engine::{ExSamplePolicy, QuerySpec};
use exsample_rand::{SeedSequence, Summary};
use exsample_sim::Table;
use exsample_video::DecodeCostModel;
use std::sync::Arc;

fn main() {
    let options = ExperimentOptions::from_env();
    banner(
        "Ablation (Section III-F)",
        "batched sampling: instances found vs. batch size",
        &options,
    );
    let trials = options.trials_or(5, 15);
    let budget: u64 = if options.full { 30_000 } else { 12_000 };
    let batch_sizes: &[usize] = &[1, 8, 32, 64];
    let seeds = SeedSequence::new(options.seed).derive("ablation-batching");

    let dataset = GridWorkload::builder()
        .frames(2_000_000)
        .instances(2_000)
        .chunks(128)
        .mean_duration(700.0)
        .skew(SkewLevel::ThirtySecond)
        .seed(seeds.derive("workload").seed())
        .build()
        .expect("valid workload")
        .generate();
    let class = GridWorkload::class();
    let truth = Arc::clone(dataset.ground_truth());
    let cost = DecodeCostModel::paper();

    println!(
        "# workload: 2M frames, 2000 instances, 128 chunks, skew 1/32, budget {budget} frames, {trials} trials, {} engine shard{}, {} worker thread{}\n",
        options.shards,
        if options.shards == 1 { "" } else { "s" },
        options.effective_threads(),
        if options.effective_threads() == 1 { "" } else { "s" },
    );

    let mut table = Table::new(vec![
        "batch size",
        "median found",
        "p25",
        "p75",
        "virtual time (batched GPU)",
    ]);

    for &batch in batch_sizes {
        let mut founds = Summary::new();
        for trial in 0..trials {
            let seed = seeds
                .derive("trial")
                .index(batch as u64)
                .index(trial as u64)
                .seed();
            let detector = options.faulty_detector(Box::new(PerfectDetector::new(
                Arc::clone(&truth),
                class.clone(),
            )));
            let policy = ExSamplePolicy::new(options.exsample_config(), dataset.chunking());
            let mut engine = ok_or_exit(experiment_engine(dataset.chunking(), &options));
            engine
                .push(
                    QuerySpec::new("batching", Box::new(policy), detector.as_ref())
                        .seed(seed)
                        .batch(batch)
                        .frame_budget(budget),
                )
                .expect("batch size is non-zero");
            let report = ok_or_exit(engine.run());
            founds.push(report.outcomes[0].distinct_found as f64);
        }
        // Batched inference speedup model: throughput improves with batch size and
        // saturates around 2x (a typical detector batching profile).
        let speedup = 1.0 + (batch as f64).log2().max(0.0) * 0.18;
        let secs = cost.batched_processing_secs(budget, batch.max(1), speedup.min(2.0));
        table.push_row(vec![
            format!("{batch}"),
            format!("{:.0}", founds.median()),
            format!("{:.0}", founds.percentile(0.25)),
            format!("{:.0}", founds.percentile(0.75)),
            exsample_sim::format_duration(secs),
        ]);
    }

    print_table(&options, &table);
    println!();
    println!("# Expected shape: the median instances found per frame processed is nearly");
    println!("# independent of the batch size (the statistics updates are additive and the");
    println!("# Thompson draws are exchangeable within a batch), while the virtual GPU time");
    println!("# for the same budget drops as batching improves detector throughput.");
}
