//! Figure 6: per-chunk instance histograms and the skew metric `S` for
//! representative queries.
//!
//! The paper explains its Figure 5 extremes with the chunk-level structure of five
//! queries: dashcam/bicycle (very skewed, S≈14, large savings), BDD-1k/motor
//! (skewed but diluted over 1000 chunks, S≈19), night-street/person (moderate skew,
//! S≈4.5), archie/car (nearly uniform, S≈1.1) and amsterdam/boat (nearly uniform,
//! S≈1.6, the worst case).  This binary prints each analog's chunk histogram
//! summary, the realised skew metric, and the instance count, next to the values
//! the paper reports.

use exsample_bench::{banner, print_table, ExperimentOptions};
use exsample_data::datasets::{amsterdam, archie, bdd1k, dashcam, night_street, DatasetAnalog};
use exsample_data::skewgen::skew_metric;
use exsample_detect::ObjectClass;
use exsample_rand::SeedSequence;
use exsample_sim::Table;

fn main() {
    let options = ExperimentOptions::from_env();
    banner(
        "Figure 6",
        "chunk-level instance skew for representative queries",
        &options,
    );
    let scale = options.scale_or(0.25);
    let seeds = SeedSequence::new(options.seed).derive("fig6");

    // (spec, class, paper N, paper S, paper savings note)
    let cases = [
        (dashcam(), "bicycle", 249usize, 14.0, "savings ~7x"),
        (bdd1k(), "motor", 509, 19.0, "savings ~2x"),
        (night_street(), "person", 2_078, 4.5, "savings ~3x"),
        (archie(), "car", 33_546, 1.1, "savings ~1x"),
        (amsterdam(), "boat", 588, 1.6, "savings ~0.9x"),
    ];

    println!("# dataset scale: {scale}\n");

    let mut table = Table::new(vec![
        "query",
        "chunks",
        "instances (analog)",
        "paper N",
        "skew S (analog)",
        "paper S",
        "top-5 chunk share",
        "paper note",
    ]);

    for (spec, class_name, paper_n, paper_s, note) in cases {
        let dataset = DatasetAnalog::new(spec.clone(), seeds.derive(spec.name).seed())
            .with_scale(scale)
            .generate();
        let class = ObjectClass::from(class_name);
        let histogram = dataset.instances_per_chunk(&class);
        let total: usize = histogram.iter().sum();
        let mut sorted = histogram.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top5: usize = sorted.iter().take(5).sum();
        let s = skew_metric(&histogram);

        table.push_row(vec![
            format!("{}/{}", spec.name, class_name),
            format!("{}", histogram.len()),
            format!("{}", dataset.instance_count(&class)),
            format!("{paper_n}"),
            format!("{s:.1}"),
            format!("{paper_s}"),
            format!("{:.0}%", 100.0 * top5 as f64 / total.max(1) as f64),
            note.to_string(),
        ]);
    }

    print_table(&options, &table);
    println!();
    println!("# The analog instance counts scale with --scale; the skew metric S is scale-");
    println!("# free and should sit near the paper's reported values, explaining which");
    println!("# queries benefit most from adaptive sampling.");
}
