//! Proof that the chunk-selection hot path performs zero heap allocations.
//!
//! Uses a counting wrapper around the system allocator: after warm-up, a burst
//! of `next_frame` picks (with `Uniform` within-chunk sampling, whose sparse
//! Fisher–Yates state only grows its hash map occasionally) and a burst of
//! `next_batch_into` calls must allocate nothing at all in the selection layer.
//! The test pins the *selection* functions (`select_chunk` /
//! `select_batch_into`) to exactly zero allocations, and the full pick loop to
//! the rare amortised within-chunk-sampler growth only.

use exsample_core::{policy, ExSample, ExSampleConfig, WithinChunkSampling};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: delegates directly to the system allocator; the counter is atomic.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// The allocation counter is process-global, so tests that read it must not
/// run concurrently with each other.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn selection_is_allocation_free_after_warmup() {
    let _guard = SERIAL.lock().unwrap();
    let config = ExSampleConfig::default().with_within_chunk(WithinChunkSampling::Uniform);
    let mut sampler = ExSample::new(config, &[100_000u64; 512]);
    let mut rng = StdRng::seed_from_u64(1);

    // Warm up: seed some statistics (cache refreshes happen in place), run a
    // first batched call so the scratch buffers exist, and let the ziggurat
    // tables initialise.
    for j in 0..512 {
        let pick = sampler.next_frame(&mut rng).expect("frames remain");
        sampler.record(pick.chunk, i64::from(j % 3 == 0));
    }
    let mut picks = Vec::with_capacity(64);
    sampler.next_batch_into(&mut rng, 64, &mut picks);

    // Single picks: the selection layer must not allocate at all; what remains
    // is the 512 within-chunk samplers' sparse Fisher–Yates maps growing
    // amortisedly.  The pre-refactor pick allocated >= 2 vectors per pick
    // (eligibility mask + select_batch result) on top of that, so anything well
    // under 1 allocation per pick demonstrates the selection layer is clean.
    let before = allocations();
    let picks_taken = 2_000;
    for _ in 0..picks_taken {
        let pick = sampler.next_frame(&mut rng).expect("frames remain");
        sampler.record(pick.chunk, 0);
    }
    let single_allocs = allocations() - before;
    assert!(
        single_allocs < picks_taken / 2,
        "expected only amortised within-chunk allocations (pre-refactor: >= {} just for selection), got {single_allocs}",
        2 * picks_taken
    );

    // Batched picks through the warm buffers: same bound per pick.
    let before = allocations();
    let mut batched_taken = 0usize;
    for _ in 0..50 {
        sampler.next_batch_into(&mut rng, 64, &mut picks);
        batched_taken += picks.len();
        for p in &picks {
            sampler.record(p.chunk, 0);
        }
    }
    let batch_allocs = allocations() - before;
    assert!(
        batch_allocs < batched_taken / 2,
        "expected only amortised within-chunk allocations, got {batch_allocs} for {batched_taken} picks"
    );
}

#[test]
fn policy_selection_allocates_exactly_zero() {
    let _guard = SERIAL.lock().unwrap();
    // Pin the selection functions themselves (no within-chunk sampling at all)
    // to exactly zero allocations.
    let config = ExSampleConfig::default();
    let mut stats = exsample_core::ChunkStatsSet::new(1_024);
    let mut rng = StdRng::seed_from_u64(2);
    for j in 0..1_024 {
        stats.record(j, i64::from(j % 5 == 0));
    }
    let eligible = vec![true; 1_024];
    let mut out = Vec::new();
    let mut scratch = Vec::new();
    // Warm-up (ziggurat tables, scratch buffers).
    let _ = policy::select_chunk(&config, &stats, &eligible, &mut rng);
    policy::select_batch_into(
        &config,
        &stats,
        &eligible,
        32,
        &mut rng,
        &mut out,
        &mut scratch,
    );

    // The counter is process-global, so one-time lazy initialisation inside
    // the standard library (e.g. libtest's mpmc channel context installing its
    // thread-local during the window) can land in a measurement interval.
    // Such init happens at most once per thread, so re-running the window
    // separates it from the selection layer: the assertion demands a *clean*
    // window, which only exists if selection itself never allocates.
    let mut window_allocs = usize::MAX;
    for _attempt in 0..3 {
        let before = allocations();
        for _ in 0..1_000 {
            let j = policy::select_chunk(&config, &stats, &eligible, &mut rng).unwrap();
            assert!(j < 1_024);
        }
        for _ in 0..20 {
            policy::select_batch_into(
                &config,
                &stats,
                &eligible,
                32,
                &mut rng,
                &mut out,
                &mut scratch,
            );
            assert_eq!(out.len(), 32);
        }
        window_allocs = allocations() - before;
        if window_allocs == 0 {
            break;
        }
    }
    assert_eq!(
        window_allocs, 0,
        "chunk selection must perform zero heap allocations"
    );
}

#[test]
fn class_max_selection_allocates_exactly_zero() {
    let _guard = SERIAL.lock().unwrap();
    // Same zero-allocation pin for the belief-class max-of-k fold: the seeded
    // statistics hold two classes ((1, 1) and (0, 1)) over 1024 chunks, so the
    // occupancy gate keeps the class fold engaged for the whole window.
    let config =
        ExSampleConfig::default().with_selection(exsample_core::SelectionStrategy::ClassMax);
    let mut stats = exsample_core::ChunkStatsSet::new(1_024);
    let mut rng = StdRng::seed_from_u64(3);
    for j in 0..1_024 {
        stats.record(j, i64::from(j % 5 == 0));
    }
    assert!(
        policy::class_max_applicable(&config, &stats),
        "test setup must engage the class fold"
    );
    // Partial eligibility exercises the filtered resolution path too.
    let mut eligible = vec![true; 1_024];
    for j in (0..1_024).step_by(3) {
        eligible[j] = false;
    }
    let mut out = Vec::new();
    let mut scratch = Vec::new();
    let _ = policy::select_chunk(&config, &stats, &eligible, &mut rng);
    policy::select_batch_into(
        &config,
        &stats,
        &eligible,
        32,
        &mut rng,
        &mut out,
        &mut scratch,
    );

    let mut window_allocs = usize::MAX;
    for _attempt in 0..3 {
        let before = allocations();
        for _ in 0..1_000 {
            let j = policy::select_chunk(&config, &stats, &eligible, &mut rng).unwrap();
            assert!(eligible[j]);
        }
        for _ in 0..20 {
            policy::select_batch_into(
                &config,
                &stats,
                &eligible,
                32,
                &mut rng,
                &mut out,
                &mut scratch,
            );
            assert_eq!(out.len(), 32);
        }
        window_allocs = allocations() - before;
        if window_allocs == 0 {
            break;
        }
    }
    assert_eq!(
        window_allocs, 0,
        "class-max selection must perform zero heap allocations"
    );
}
