//! Chunk-selection policies.
//!
//! Given the per-chunk statistics, a policy decides which chunk to sample from
//! next.  The paper's policy is Thompson sampling over the Gamma beliefs of
//! Eq. III.4; it also reports experimenting with Bayes-UCB and finding no
//! difference.  The greedy point-estimate policy and the uniform policy are
//! included as ablations: greedy demonstrates the "stuck on an early lucky chunk"
//! failure mode motivating Thompson sampling, and uniform reduces ExSample to the
//! random baseline.
//!
//! # The hot path
//!
//! Thompson sampling must draw from *every* eligible chunk's belief on every
//! pick, so this module is the per-pick cost centre.  Two implementations of
//! the Thompson arg-max exist:
//!
//! * the **cached path** ([`select_chunk`] / [`select_batch_into`] when the
//!   statistics' cached priors match the config, see
//!   [`ChunkStatsSet::priors`]): reads the per-chunk Marsaglia–Tsang constants
//!   from the statistics' struct-of-arrays belief cache, performs zero heap
//!   allocations, and prunes the expensive `exp` of the `shape < 1` boost
//!   factor whenever a chunk's draw provably cannot beat the incumbent
//!   (`exp(−E/shape) ≤ 1`, so `d·v³/rate` bounds the draw from above);
//! * the **reference path** ([`select_chunk_reference`]): constructs each
//!   chunk's belief distribution per draw, exactly as a from-the-paper
//!   implementation would.
//!
//! Both paths consume identical RNG streams and compare identical draw values,
//! so they select identical chunk sequences under the same seed — a property
//! the test-suite asserts draw-for-draw.  The batched selector additionally
//! replaces `batch` repeated full scans with a single pass over the chunk
//! cache that maintains `batch` running arg-maxes.
//!
//! NaN handling: arg-max folding uses a *total* "beats" relation in which any
//! non-NaN draw beats any NaN draw and NaN beats nothing.  A belief degenerate
//! enough to produce NaN draws (e.g. priors at the edge of the float range)
//! therefore can no longer mask every later chunk, which the previous
//! `draw > best` comparison allowed.
//!
//! # The class-max fold
//!
//! When [`SelectionStrategy::ClassMax`] is selected, the Thompson arg-max is
//! evaluated over the statistics' belief-*class* index instead of over chunks:
//! all chunks sharing a clamped `(N1, n)` posterior draw from the *same* Gamma,
//! so the maximum of a class's `k` iid draws is available in one exact
//! order-statistic draw ([`exsample_rand::gamma_max_of_k`]), and the winning
//! chunk is resolved by a uniform pick within the winning class (exchangeable
//! draws make every member equally likely to carry the class maximum).  The
//! fold is distributionally equivalent to the per-chunk fold — pinned by
//! chi-square tests — but costs O(classes) draws instead of O(chunks).  It
//! consumes a *different* RNG stream, so it is opt-in; knob-off runs stay
//! bitwise-identical.  [`class_max_applicable`] gates the fold: it falls back
//! to the per-chunk fold at small M or when the class count approaches the
//! chunk count (where one quantile evaluation per class would cost more than
//! the per-chunk draws it replaces).

use crate::config::{ChunkSelectionPolicy, ExSampleConfig, SelectionStrategy};
use crate::stats::ChunkStatsSet;
use exsample_rand::gamma::{gamma_draw, mt_draw_unit};
use exsample_rand::quantile::gamma_max_of_k;
use exsample_rand::ziggurat::fast_exponential;
use rand::Rng;

/// Chunk count at or below which [`select_chunk`] takes the small-M fast path.
///
/// At small M the arg-max scan is pick-overhead-bound: the zipped
/// struct-of-arrays walk and the prune's gate branch cost more than the handful
/// of `exp`s they avoid (the prune only pays off once a scan skips ~`ln M`
/// boost exponentials, and the video pipeline's typical chunk counts sit well
/// below that break-even).  The fast path is a plain indexed loop computing
/// every chunk's *full* draw via [`gamma_draw`] — the same RNG schedule as a
/// textbook per-chunk Thompson draw, which the equivalence tests exploit.
pub const SMALL_M_CHUNKS: usize = 64;

/// Minimum average class occupancy (chunks per distinct belief class) for the
/// class-max fold to engage.
///
/// One exact max-of-k draw costs a Gamma quantile evaluation (a few hundred
/// ns), versus ~12 ns for a cached per-chunk Marsaglia–Tsang draw — so the
/// fold only pays off when each class replaces a few dozen per-chunk draws.
/// Below this occupancy [`class_max_applicable`] reports `false` and selection
/// falls back to the per-chunk fold (same distribution, cheaper here).
pub const CLASS_MAX_MIN_OCCUPANCY: usize = 32;

/// Whether the class-max fold will be used for this `(config, stats)` pair.
///
/// Requires all of: the [`SelectionStrategy::ClassMax`] knob, Thompson
/// sampling (the only policy the fold applies to), more than
/// [`SMALL_M_CHUNKS`] chunks, a belief cache built for the config's priors,
/// and average class occupancy of at least [`CLASS_MAX_MIN_OCCUPANCY`].
///
/// Exposed so the sampler layer can attribute per-pick telemetry to the same
/// predicate the selection actually uses.
#[inline]
pub fn class_max_applicable(config: &ExSampleConfig, stats: &ChunkStatsSet) -> bool {
    config.selection == SelectionStrategy::ClassMax
        && config.policy == ChunkSelectionPolicy::ThompsonSampling
        && stats.len() > SMALL_M_CHUNKS
        && cache_matches(config, stats)
        && stats.class_count() * CLASS_MAX_MIN_OCCUPANCY <= stats.len()
}

/// Total-order arg-max comparison: does `candidate` strictly beat `incumbent`?
///
/// Any non-NaN value beats any NaN value; NaN beats nothing; otherwise plain
/// `>`.  Ties (and NaN vs NaN) keep the incumbent, matching the first-wins
/// behaviour of the sequential fold.
#[inline]
pub(crate) fn beats(candidate: f64, incumbent: f64) -> bool {
    if candidate.is_nan() {
        false
    } else if incumbent.is_nan() {
        true
    } else {
        candidate > incumbent
    }
}

fn assert_mask(stats: &ChunkStatsSet, eligible: &[bool]) {
    assert_eq!(
        eligible.len(),
        stats.len(),
        "eligibility mask must cover every chunk"
    );
}

/// Whether the statistics' belief cache was built for `config`'s priors.
#[inline]
fn cache_matches(config: &ExSampleConfig, stats: &ChunkStatsSet) -> bool {
    stats.priors() == (config.alpha0, config.beta0)
}

/// Score every *eligible* chunk under the configured policy and return the index of
/// the winner.
///
/// `eligible` marks chunks that still have frames left to sample; ineligible chunks
/// are never selected.  Returns `None` if no chunk is eligible.
///
/// This is the direct single-pick hot path: it performs no heap allocation and,
/// for Thompson sampling with matching cached priors, no belief construction.
pub fn select_chunk<R: Rng + ?Sized>(
    config: &ExSampleConfig,
    stats: &ChunkStatsSet,
    eligible: &[bool],
    rng: &mut R,
) -> Option<usize> {
    assert_mask(stats, eligible);
    match config.policy {
        ChunkSelectionPolicy::ThompsonSampling => {
            if class_max_applicable(config, stats) {
                thompson_pick_class_max(stats, eligible, rng)
            } else if stats.len() <= SMALL_M_CHUNKS {
                if cache_matches(config, stats) {
                    thompson_pick_cached_small(stats, eligible, rng)
                } else {
                    thompson_pick_uncached_small(config, stats, eligible, rng)
                }
            } else if cache_matches(config, stats) {
                thompson_pick_cached(stats, eligible, rng)
            } else {
                thompson_pick_uncached(config, stats, eligible, rng)
            }
        }
        ChunkSelectionPolicy::BayesUcb => bayes_ucb_pick(config, stats, eligible),
        ChunkSelectionPolicy::GreedyMean => greedy_pick(stats, eligible, rng),
        ChunkSelectionPolicy::UniformChunk => uniform_pick(eligible, rng),
    }
}

/// The uncached reference implementation of [`select_chunk`]: every Thompson
/// draw constructs the chunk's belief distribution from scratch.
///
/// Exists so tests (and benchmarks) can prove the cached path equivalent: under
/// the same RNG state both functions consume the same random stream, compute
/// the same draw values, and return the same chunk — draw for draw.
pub fn select_chunk_reference<R: Rng + ?Sized>(
    config: &ExSampleConfig,
    stats: &ChunkStatsSet,
    eligible: &[bool],
    rng: &mut R,
) -> Option<usize> {
    assert_mask(stats, eligible);
    match config.policy {
        ChunkSelectionPolicy::ThompsonSampling => {
            // The reference path mirrors the hot path's draw schedule (full
            // draws at small M, pruned folds above) so the two consume the
            // same random stream; only the belief-constant caching differs.
            if stats.len() <= SMALL_M_CHUNKS {
                thompson_pick_uncached_small(config, stats, eligible, rng)
            } else {
                thompson_pick_uncached(config, stats, eligible, rng)
            }
        }
        _ => select_chunk(config, stats, eligible, rng),
    }
}

/// Select `batch` chunk indices (with repetition allowed) under the configured
/// policy, as used by the batched-sampling optimisation of Section III-F.
///
/// For Thompson sampling this draws `batch` independent samples per chunk belief —
/// so the returned indices follow the same distribution as `batch` sequential
/// (un-updated) picks.  Deterministic policies (Bayes-UCB, greedy) return the same
/// index `batch` times, which is also their correct batched behaviour in the
/// absence of state updates.
///
/// Allocates the result vector; the hot-path variant is [`select_batch_into`].
pub fn select_batch<R: Rng + ?Sized>(
    config: &ExSampleConfig,
    stats: &ChunkStatsSet,
    eligible: &[bool],
    batch: usize,
    rng: &mut R,
) -> Vec<usize> {
    let mut out = Vec::new();
    let mut scratch = Vec::new();
    select_batch_into(config, stats, eligible, batch, rng, &mut out, &mut scratch);
    out
}

/// Allocation-free batched selection: fills `out` with up to `batch` chunk
/// indices, reusing `out` and the caller-provided `scratch_draws` buffer.
///
/// `out` is left empty when no chunk is eligible or `batch == 0`.  For Thompson
/// sampling with matching cached priors, the selection runs as a *single pass*
/// over the chunk cache maintaining `batch` running arg-maxes (rather than
/// `batch` full scans), which keeps every chunk's cached constants in registers
/// across its `batch` draws.
pub fn select_batch_into<R: Rng + ?Sized>(
    config: &ExSampleConfig,
    stats: &ChunkStatsSet,
    eligible: &[bool],
    batch: usize,
    rng: &mut R,
    out: &mut Vec<usize>,
    scratch_draws: &mut Vec<f64>,
) {
    assert_mask(stats, eligible);
    out.clear();
    if batch == 0 || !eligible.iter().any(|&e| e) {
        return;
    }
    match config.policy {
        ChunkSelectionPolicy::ThompsonSampling => {
            if class_max_applicable(config, stats) {
                thompson_batch_class_max(stats, eligible, batch, rng, out, scratch_draws);
            } else if cache_matches(config, stats) {
                thompson_batch_cached(stats, eligible, batch, rng, out, scratch_draws);
            } else {
                for _ in 0..batch {
                    let pick = thompson_pick_uncached(config, stats, eligible, rng)
                        .expect("an eligible chunk exists");
                    out.push(pick);
                }
            }
        }
        ChunkSelectionPolicy::BayesUcb => {
            let pick = bayes_ucb_pick(config, stats, eligible).expect("an eligible chunk exists");
            out.extend(std::iter::repeat_n(pick, batch));
        }
        ChunkSelectionPolicy::GreedyMean => {
            let pick = greedy_pick(stats, eligible, rng).expect("an eligible chunk exists");
            out.extend(std::iter::repeat_n(pick, batch));
        }
        ChunkSelectionPolicy::UniformChunk => {
            for _ in 0..batch {
                let pick = uniform_pick(eligible, rng).expect("an eligible chunk exists");
                out.push(pick);
            }
        }
    }
}

/// Fold one Thompson draw for a chunk into a running arg-max, given the raw
/// Marsaglia–Tsang value `t0 = d·v³` of the chunk's (boosted) belief.
///
/// The chunk's final draw is `raw / rate` with `raw ≤ t0`, because the
/// `shape < 1` boost factor `exp(−E/shape)` is ≤ 1.  A multiply-compare
/// (`t0 > best·rate`) therefore prunes chunks that cannot win *before* the
/// exponential variate, the `exp` and the division are paid — only candidates
/// that might take the lead (about `ln M` per scan, plus near-misses) do the
/// full work.  A NaN incumbent is treated as always beatable so a degenerate
/// draw can never mask later chunks (see [`beats`]).
///
/// Exactness: the prune never changes which chunk wins the arg-max, up to a
/// ≤ 1-ulp boundary (the gate compares `t0` against the *rounded* product
/// `best·rate` instead of dividing), which is far below the noise floor of the
/// draws themselves.  Both the cached and the uncached selection paths use
/// this same fold, so they consume identical random streams and return
/// identical picks under a fixed seed; distribution equivalence against a
/// textbook full-draw arg-max is asserted by a chi-square test.
///
/// Returns the new best draw value if the chunk took the lead.
#[inline(always)]
fn fold_thompson_draw<R: Rng + ?Sized>(
    rng: &mut R,
    t0: f64,
    boost_inv_shape: f64,
    rate: f64,
    best: f64,
    first: bool,
) -> Option<f64> {
    if !(first || t0 > best * rate || best.is_nan()) {
        return None;
    }
    let raw = if boost_inv_shape > 0.0 {
        let e = fast_exponential(rng);
        t0 * (-e * boost_inv_shape).exp()
    } else {
        t0
    };
    let draw = raw / rate;
    if first || beats(draw, best) {
        Some(draw)
    } else {
        None
    }
}

/// Count the eligible members of a class, or all of them when the caller has
/// already established full eligibility.
#[inline]
fn eligible_in_class(members: &[u32], eligible: &[bool], all_eligible: bool) -> usize {
    if all_eligible {
        members.len()
    } else {
        members.iter().filter(|&&m| eligible[m as usize]).count()
    }
}

/// Resolve a winning class to a concrete chunk: uniform among its eligible
/// members.  Exchangeability of iid draws makes every eligible member equally
/// likely to carry the class maximum, so this is the exact conditional
/// distribution of the per-chunk arg-max given that this class won.
#[inline]
fn resolve_class_winner<R: Rng + ?Sized>(
    members: &[u32],
    eligible: &[bool],
    all_eligible: bool,
    rng: &mut R,
) -> usize {
    if all_eligible {
        members[rng.gen_range(0..members.len())] as usize
    } else {
        let count = eligible_in_class(members, eligible, false);
        let target = rng.gen_range(0..count);
        members
            .iter()
            .filter(|&&m| eligible[m as usize])
            .nth(target)
            .map(|&m| m as usize)
            .expect("winning class has an eligible member")
    }
}

/// Thompson sampling deduplicated by belief class: one exact max-of-k draw per
/// occupied class (k = the class's eligible member count), arg-max over the
/// class maxima, winner resolved uniformly within the winning class.
/// Allocation-free; O(classes) quantile draws plus an O(chunks) eligibility
/// scan.
fn thompson_pick_class_max<R: Rng + ?Sized>(
    stats: &ChunkStatsSet,
    eligible: &[bool],
    rng: &mut R,
) -> Option<usize> {
    let all_eligible = eligible.iter().all(|&e| e);
    let mut best_slot: Option<usize> = None;
    let mut best = f64::NEG_INFINITY;
    for slot in 0..stats.class_slot_count() {
        let members = stats.class_members(slot);
        if members.is_empty() {
            continue;
        }
        let k = eligible_in_class(members, eligible, all_eligible);
        if k == 0 {
            continue;
        }
        let (shape, rate) = stats.class_belief(slot);
        let draw = gamma_max_of_k(rng, shape, rate, k as u64);
        if best_slot.is_none() || beats(draw, best) {
            best_slot = Some(slot);
            best = draw;
        }
    }
    let slot = best_slot?;
    Some(resolve_class_winner(
        stats.class_members(slot),
        eligible,
        all_eligible,
        rng,
    ))
}

/// Batched class-max selection: class-outer / slot-inner like
/// [`thompson_batch_cached`], with each batch slot folding one max-of-k draw
/// per occupied class, then a resolution pass mapping each slot's winning
/// class to a uniformly drawn eligible member.  `out` temporarily holds class
/// slots during the fold; no extra scratch is needed, so the call stays
/// allocation-free.
fn thompson_batch_class_max<R: Rng + ?Sized>(
    stats: &ChunkStatsSet,
    eligible: &[bool],
    batch: usize,
    rng: &mut R,
    out: &mut Vec<usize>,
    best: &mut Vec<f64>,
) {
    const UNSET: usize = usize::MAX;
    out.clear();
    out.resize(batch, UNSET);
    best.clear();
    best.resize(batch, f64::NEG_INFINITY);
    let all_eligible = eligible.iter().all(|&e| e);
    for slot in 0..stats.class_slot_count() {
        let members = stats.class_members(slot);
        if members.is_empty() {
            continue;
        }
        let k = eligible_in_class(members, eligible, all_eligible);
        if k == 0 {
            continue;
        }
        let (shape, rate) = stats.class_belief(slot);
        for (winner, slot_best) in out.iter_mut().zip(best.iter_mut()) {
            let draw = gamma_max_of_k(rng, shape, rate, k as u64);
            if *winner == UNSET || beats(draw, *slot_best) {
                *winner = slot;
                *slot_best = draw;
            }
        }
    }
    debug_assert!(out.iter().all(|&slot| slot != UNSET));
    for winner in out.iter_mut() {
        *winner = resolve_class_winner(stats.class_members(*winner), eligible, all_eligible, rng);
    }
}

/// The small-M fast path over the cached belief constants: a plain indexed
/// loop computing every eligible chunk's full draw, with no zip chains and no
/// prune gate (see [`SMALL_M_CHUNKS`]).  Allocation-free like the large-M
/// path; the full-draw schedule makes each pick draw-for-draw identical to a
/// textbook per-chunk Thompson arg-max under the same RNG state.
fn thompson_pick_cached_small<R: Rng + ?Sized>(
    stats: &ChunkStatsSet,
    eligible: &[bool],
    rng: &mut R,
) -> Option<usize> {
    let (ds, cs, boosts, rates) = stats.belief_soa();
    let mut best_j: Option<usize> = None;
    let mut best = f64::NEG_INFINITY;
    for j in 0..eligible.len() {
        if !eligible[j] {
            continue;
        }
        let draw = gamma_draw(rng, ds[j], cs[j], boosts[j], rates[j]);
        if best_j.is_none() || beats(draw, best) {
            best_j = Some(j);
            best = draw;
        }
    }
    best_j
}

/// Small-M fast path without the belief cache: constructs each chunk's belief
/// from the statistics, then takes the same full-draw schedule as
/// [`thompson_pick_cached_small`] (identical picks under the same seed).
fn thompson_pick_uncached_small<R: Rng + ?Sized>(
    config: &ExSampleConfig,
    stats: &ChunkStatsSet,
    eligible: &[bool],
    rng: &mut R,
) -> Option<usize> {
    let mut best_j: Option<usize> = None;
    let mut best = f64::NEG_INFINITY;
    for (j, chunk) in stats.all().iter().enumerate() {
        if !eligible[j] {
            continue;
        }
        let belief = chunk.belief(config);
        let (d, c, boost_inv_shape) = exsample_rand::gamma::mt_constants(belief.shape());
        let draw = gamma_draw(rng, d, c, boost_inv_shape, belief.rate());
        if best_j.is_none() || beats(draw, best) {
            best_j = Some(j);
            best = draw;
        }
    }
    best_j
}

/// Thompson sampling over the cached belief constants: draw from each eligible
/// chunk, take the arg-max.  Allocation- and construction-free; iterates the
/// struct-of-arrays cache zipped so the loop carries no bounds checks.
fn thompson_pick_cached<R: Rng + ?Sized>(
    stats: &ChunkStatsSet,
    eligible: &[bool],
    rng: &mut R,
) -> Option<usize> {
    let (ds, cs, boosts, rates) = stats.belief_soa();
    let mut best_j: Option<usize> = None;
    let mut best = f64::NEG_INFINITY;
    for (j, ((((&elig, &d), &c), &boost), &rate)) in eligible
        .iter()
        .zip(ds)
        .zip(cs)
        .zip(boosts)
        .zip(rates)
        .enumerate()
    {
        if !elig {
            continue;
        }
        let t0 = mt_draw_unit(rng, d, c);
        if let Some(draw) = fold_thompson_draw(rng, t0, boost, rate, best, best_j.is_none()) {
            best_j = Some(j);
            best = draw;
        }
    }
    best_j
}

/// One-pass batched Thompson sampling: for each eligible chunk, draw `batch`
/// values and fold them into `batch` independent running arg-maxes.
fn thompson_batch_cached<R: Rng + ?Sized>(
    stats: &ChunkStatsSet,
    eligible: &[bool],
    batch: usize,
    rng: &mut R,
    out: &mut Vec<usize>,
    best: &mut Vec<f64>,
) {
    const UNSET: usize = usize::MAX;
    out.clear();
    out.resize(batch, UNSET);
    best.clear();
    best.resize(batch, f64::NEG_INFINITY);
    let (ds, cs, boosts, rates) = stats.belief_soa();
    for (j, ((((&elig, &d), &c), &boost), &rate)) in eligible
        .iter()
        .zip(ds)
        .zip(cs)
        .zip(boosts)
        .zip(rates)
        .enumerate()
    {
        if !elig {
            continue;
        }
        for (slot, slot_best) in out.iter_mut().zip(best.iter_mut()) {
            let t0 = mt_draw_unit(rng, d, c);
            if let Some(draw) = fold_thompson_draw(rng, t0, boost, rate, *slot_best, *slot == UNSET)
            {
                *slot = j;
                *slot_best = draw;
            }
        }
    }
    debug_assert!(out.iter().all(|&j| j != UNSET));
}

/// Uncached Thompson sampling: identical selection algorithm to the cached
/// path, but every chunk's belief constants are rebuilt from the statistics on
/// every draw instead of being read from the struct-of-arrays cache.
///
/// Because both paths share [`fold_thompson_draw`], they consume the same
/// random stream and pick the same chunks under the same seed — exactly the
/// property the belief-cache equivalence tests pin down.
fn thompson_pick_uncached<R: Rng + ?Sized>(
    config: &ExSampleConfig,
    stats: &ChunkStatsSet,
    eligible: &[bool],
    rng: &mut R,
) -> Option<usize> {
    let mut best_j: Option<usize> = None;
    let mut best = f64::NEG_INFINITY;
    for (j, chunk) in stats.all().iter().enumerate() {
        if !eligible[j] {
            continue;
        }
        let belief = chunk.belief(config);
        let (d, c, boost_inv_shape) = exsample_rand::gamma::mt_constants(belief.shape());
        let t0 = mt_draw_unit(rng, d, c);
        if let Some(draw) = fold_thompson_draw(
            rng,
            t0,
            boost_inv_shape,
            belief.rate(),
            best,
            best_j.is_none(),
        ) {
            best_j = Some(j);
            best = draw;
        }
    }
    best_j
}

/// Bayes-UCB: rank chunks by the `1 − 1/(t+1)` quantile of their belief, where `t`
/// is the total number of samples taken so far (Kaufmann's index policy).
fn bayes_ucb_pick(
    config: &ExSampleConfig,
    stats: &ChunkStatsSet,
    eligible: &[bool],
) -> Option<usize> {
    let t = stats.total_samples() as f64;
    let level = 1.0 - 1.0 / (t + 2.0);
    let mut best_j: Option<usize> = None;
    let mut best = f64::NEG_INFINITY;
    for (j, chunk) in stats.all().iter().enumerate() {
        if !eligible[j] {
            continue;
        }
        let index = chunk.belief(config).quantile(level);
        if best_j.is_none() || beats(index, best) {
            best_j = Some(j);
            best = index;
        }
    }
    best_j
}

/// Greedy: arg-max of the point estimate, random among unsampled chunks / ties.
fn greedy_pick<R: Rng + ?Sized>(
    stats: &ChunkStatsSet,
    eligible: &[bool],
    rng: &mut R,
) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    let mut ties = 0u32;
    for (j, chunk) in stats.all().iter().enumerate() {
        if !eligible[j] {
            continue;
        }
        // Unsampled chunks get a tiny optimistic default so they are explored
        // before chunks that have produced nothing.
        let estimate = chunk.point_estimate().unwrap_or(f64::MIN_POSITIVE);
        match best {
            None => {
                best = Some((j, estimate));
                ties = 1;
            }
            Some((_, b)) if beats(estimate, b) => {
                best = Some((j, estimate));
                ties = 1;
            }
            Some((_, b)) if estimate == b => {
                // Reservoir-style uniform tie breaking.
                ties += 1;
                if rng.gen_range(0..ties) == 0 {
                    best = Some((j, estimate));
                }
            }
            _ => {}
        }
    }
    best.map(|(j, _)| j)
}

/// Uniform: ignore statistics, pick an eligible chunk uniformly at random.
fn uniform_pick<R: Rng + ?Sized>(eligible: &[bool], rng: &mut R) -> Option<usize> {
    let count = eligible.iter().filter(|&&e| e).count();
    if count == 0 {
        return None;
    }
    let target = rng.gen_range(0..count);
    eligible
        .iter()
        .enumerate()
        .filter(|(_, &e)| e)
        .nth(target)
        .map(|(j, _)| j)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn skewed_stats() -> ChunkStatsSet {
        // Chunk 1 has produced results; chunks 0 and 2 have produced nothing.
        let mut stats = ChunkStatsSet::new(3);
        for _ in 0..30 {
            stats.record(0, 0);
            stats.record(2, 0);
        }
        for _ in 0..30 {
            stats.record(1, 1);
        }
        stats
    }

    fn pick_counts(config: &ExSampleConfig, stats: &ChunkStatsSet, trials: usize) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(17);
        let eligible = vec![true; stats.len()];
        let mut counts = vec![0usize; stats.len()];
        for _ in 0..trials {
            let j = select_chunk(config, stats, &eligible, &mut rng).unwrap();
            counts[j] += 1;
        }
        counts
    }

    #[test]
    fn thompson_prefers_productive_chunk() {
        let stats = skewed_stats();
        let counts = pick_counts(&ExSampleConfig::default(), &stats, 2_000);
        assert!(counts[1] > 1_800, "counts {counts:?}");
    }

    #[test]
    fn thompson_still_explores_under_weak_evidence() {
        // With only a handful of samples per chunk the beliefs are wide, so the
        // unproductive chunks must still receive a non-trivial share of picks —
        // this is exactly the behaviour that prevents getting stuck on an early
        // lucky chunk (Section III-B).
        let mut stats = ChunkStatsSet::new(3);
        for _ in 0..5 {
            stats.record(0, 0);
            stats.record(2, 0);
        }
        for _ in 0..5 {
            stats.record(1, 1);
        }
        let counts = pick_counts(&ExSampleConfig::default(), &stats, 2_000);
        assert!(
            counts[1] > counts[0] && counts[1] > counts[2],
            "counts {counts:?}"
        );
        assert!(
            counts[0] + counts[2] > 0,
            "exploration collapsed: {counts:?}"
        );
    }

    #[test]
    fn bayes_ucb_prefers_productive_chunk() {
        let stats = skewed_stats();
        let config = ExSampleConfig::default().with_policy(ChunkSelectionPolicy::BayesUcb);
        let counts = pick_counts(&config, &stats, 50);
        assert_eq!(
            counts[1], 50,
            "Bayes-UCB is deterministic given fixed stats: {counts:?}"
        );
    }

    #[test]
    fn greedy_picks_best_point_estimate() {
        let stats = skewed_stats();
        let config = ExSampleConfig::default().with_policy(ChunkSelectionPolicy::GreedyMean);
        let counts = pick_counts(&config, &stats, 50);
        assert_eq!(counts[1], 50, "counts {counts:?}");
    }

    #[test]
    fn uniform_ignores_statistics() {
        let stats = skewed_stats();
        let config = ExSampleConfig::default().with_policy(ChunkSelectionPolicy::UniformChunk);
        let counts = pick_counts(&config, &stats, 3_000);
        for &c in &counts {
            assert!((c as f64 - 1_000.0).abs() < 150.0, "counts {counts:?}");
        }
    }

    #[test]
    fn fresh_statistics_give_uniform_thompson_choices() {
        // "During the first execution of the while loop all the belief distributions
        // are identical, but Thompson sampling effectively breaks ties at random."
        let stats = ChunkStatsSet::new(4);
        let counts = pick_counts(&ExSampleConfig::default(), &stats, 4_000);
        for &c in &counts {
            assert!((c as f64 - 1_000.0).abs() < 200.0, "counts {counts:?}");
        }
    }

    #[test]
    fn ineligible_chunks_are_never_selected() {
        let stats = skewed_stats();
        let mut rng = StdRng::seed_from_u64(3);
        let eligible = vec![true, false, true];
        for _ in 0..200 {
            let j = select_chunk(&ExSampleConfig::default(), &stats, &eligible, &mut rng).unwrap();
            assert_ne!(j, 1);
        }
    }

    #[test]
    fn no_eligible_chunk_returns_none() {
        let stats = ChunkStatsSet::new(2);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(
            select_chunk(
                &ExSampleConfig::default(),
                &stats,
                &[false, false],
                &mut rng
            ),
            None
        );
    }

    #[test]
    fn batch_selection_length_and_distribution() {
        let stats = skewed_stats();
        let mut rng = StdRng::seed_from_u64(19);
        let eligible = vec![true; 3];
        let picks = select_batch(&ExSampleConfig::default(), &stats, &eligible, 64, &mut rng);
        assert_eq!(picks.len(), 64);
        let to_best = picks.iter().filter(|&&j| j == 1).count();
        assert!(
            to_best > 48,
            "batched Thompson picks should favour chunk 1: {to_best}"
        );
    }

    #[test]
    fn batch_of_zero_is_empty() {
        let stats = skewed_stats();
        let mut rng = StdRng::seed_from_u64(19);
        assert!(
            select_batch(&ExSampleConfig::default(), &stats, &[true; 3], 0, &mut rng).is_empty()
        );
    }

    #[test]
    #[should_panic(expected = "eligibility mask")]
    fn mismatched_mask_panics() {
        let stats = ChunkStatsSet::new(3);
        let mut rng = StdRng::seed_from_u64(1);
        let _ = select_chunk(&ExSampleConfig::default(), &stats, &[true; 2], &mut rng);
    }

    #[test]
    fn cached_and_reference_paths_agree_draw_for_draw() {
        // Same seed => the cached hot path and the per-draw-construction
        // reference path must select identical chunk sequences, across both
        // evolving statistics and partial eligibility.
        let config = ExSampleConfig::default();
        let mut stats = skewed_stats();
        let mut rng_a = StdRng::seed_from_u64(23);
        let mut rng_b = StdRng::seed_from_u64(23);
        let eligible = [true, true, true];
        for i in 0..3_000 {
            let a = select_chunk(&config, &stats, &eligible, &mut rng_a).unwrap();
            let b = select_chunk_reference(&config, &stats, &eligible, &mut rng_b).unwrap();
            assert_eq!(a, b, "pick {i} diverged");
            // Keep the statistics moving so shapes cross the boost boundary.
            stats.record(a, i64::from(i % 7 == 0) - i64::from(i % 11 == 0));
        }
        let partial = [true, false, true];
        for i in 0..500 {
            let a = select_chunk(&config, &stats, &partial, &mut rng_a).unwrap();
            let b = select_chunk_reference(&config, &stats, &partial, &mut rng_b).unwrap();
            assert_eq!(a, b, "partial-eligibility pick {i} diverged");
            assert_ne!(a, 1);
        }
    }

    #[test]
    fn mismatched_priors_fall_back_to_uncached_path() {
        // Statistics cached for the default priors, scored under different
        // priors: select_chunk must agree with the reference path (which always
        // constructs beliefs from the config's priors).
        let config = ExSampleConfig::default().with_priors(0.7, 3.0);
        let stats = skewed_stats();
        let eligible = [true; 3];
        let mut rng_a = StdRng::seed_from_u64(29);
        let mut rng_b = StdRng::seed_from_u64(29);
        for _ in 0..500 {
            let a = select_chunk(&config, &stats, &eligible, &mut rng_a).unwrap();
            let b = select_chunk_reference(&config, &stats, &eligible, &mut rng_b).unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn beats_is_total_under_nan() {
        assert!(beats(1.0, f64::NAN));
        assert!(!beats(f64::NAN, 1.0));
        assert!(!beats(f64::NAN, f64::NAN));
        assert!(beats(2.0, 1.0));
        assert!(!beats(1.0, 1.0));
        assert!(beats(f64::INFINITY, 1.0));
        assert!(beats(0.0, f64::NEG_INFINITY));
    }

    #[test]
    fn degenerate_priors_still_yield_valid_eligible_picks() {
        // alpha0 = beta0 = f64::MAX makes every belief's shape and rate overflow
        // to infinity, so every Thompson draw is inf/inf = NaN.  The selection
        // must still return an eligible chunk rather than dropping chunks or
        // panicking (regression test for the non-total `draw > best` fold).
        let config = ExSampleConfig::default().with_priors(f64::MAX, f64::MAX);
        let stats = ChunkStatsSet::with_priors(3, f64::MAX, f64::MAX);
        let mut rng = StdRng::seed_from_u64(31);
        let eligible = [false, true, true];
        for _ in 0..100 {
            let j = select_chunk(&config, &stats, &eligible, &mut rng).unwrap();
            assert!(j == 1 || j == 2, "picked ineligible chunk {j}");
        }
        let batch = select_batch(&config, &stats, &eligible, 16, &mut rng);
        assert_eq!(batch.len(), 16);
        assert!(batch.iter().all(|&j| j == 1 || j == 2), "batch {batch:?}");
    }

    #[test]
    fn nan_draw_does_not_mask_later_finite_draws() {
        // Direct regression test on the fold: a NaN incumbent must lose to any
        // later finite draw, and an all-NaN scan must still return a pick.
        let fold = |draws: &[f64]| -> usize {
            let mut best_j: Option<usize> = None;
            let mut best = f64::NEG_INFINITY;
            for (j, &draw) in draws.iter().enumerate() {
                if best_j.is_none() || beats(draw, best) {
                    best_j = Some(j);
                    best = draw;
                }
            }
            best_j.unwrap()
        };
        assert_eq!(fold(&[f64::NAN, 0.25, 0.5]), 2);
        assert_eq!(fold(&[f64::NAN, 0.5, 0.25]), 1);
        assert_eq!(fold(&[0.5, f64::NAN, 0.25]), 0);
        assert_eq!(fold(&[f64::NAN, f64::NAN]), 0);
    }

    #[test]
    fn select_batch_into_reuses_buffers() {
        let stats = skewed_stats();
        let config = ExSampleConfig::default();
        let eligible = vec![true; 3];
        let mut rng = StdRng::seed_from_u64(37);
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        select_batch_into(
            &config,
            &stats,
            &eligible,
            32,
            &mut rng,
            &mut out,
            &mut scratch,
        );
        assert_eq!(out.len(), 32);
        let cap_out = out.capacity();
        let cap_scratch = scratch.capacity();
        for _ in 0..50 {
            select_batch_into(
                &config,
                &stats,
                &eligible,
                32,
                &mut rng,
                &mut out,
                &mut scratch,
            );
            assert_eq!(out.len(), 32);
        }
        assert_eq!(
            out.capacity(),
            cap_out,
            "out buffer must not be reallocated"
        );
        assert_eq!(
            scratch.capacity(),
            cap_scratch,
            "scratch buffer must not be reallocated"
        );
    }

    #[test]
    fn pruned_argmax_matches_textbook_full_draw_argmax_in_distribution() {
        // The large-M hot path prunes chunks whose draw provably cannot win
        // before paying for the boost exponential and the division.  Validate
        // the prune against a textbook Thompson arg-max that always computes
        // every chunk's full draw: per-chunk selection frequencies must agree
        // (two-sample chi-square).  The pruned fold is invoked directly
        // because `select_chunk` routes this small a chunk count to the
        // prune-free fast path.
        use exsample_rand::Sampler;
        let config = ExSampleConfig::default();
        let mut stats = ChunkStatsSet::new(6);
        for _ in 0..8 {
            stats.record(1, 1);
            stats.record(4, 0);
            stats.record(5, 1);
        }
        let eligible = vec![true; 6];
        let trials = 6_000usize;
        let mut rng = StdRng::seed_from_u64(43);
        let mut pruned_counts = vec![0usize; 6];
        for _ in 0..trials {
            pruned_counts[thompson_pick_cached(&stats, &eligible, &mut rng).unwrap()] += 1;
        }
        let mut full_counts = vec![0usize; 6];
        for _ in 0..trials {
            let mut best_j = 0usize;
            let mut best = f64::NEG_INFINITY;
            for (j, chunk) in stats.all().iter().enumerate() {
                let draw = chunk.belief(&config).sample(&mut rng);
                if j == 0 || beats(draw, best) {
                    best_j = j;
                    best = draw;
                }
            }
            full_counts[best_j] += 1;
        }
        let mut chi = 0.0;
        for (&a, &b) in pruned_counts.iter().zip(&full_counts) {
            let total = (a + b) as f64;
            if total > 0.0 {
                let diff = a as f64 - b as f64;
                chi += diff * diff / total;
            }
        }
        // df = 5, 99.99 % quantile = 25.7; fixed seeds make this deterministic.
        assert!(
            chi < 25.7,
            "chi-square {chi:.2}: pruned {pruned_counts:?} vs full {full_counts:?}"
        );
    }

    #[test]
    fn small_m_fast_path_is_draw_for_draw_a_textbook_argmax() {
        // At M ≤ SMALL_M_CHUNKS, `select_chunk` computes every eligible
        // chunk's full draw — the exact RNG schedule of `belief.sample()` —
        // so it must agree with a textbook per-chunk Thompson arg-max not just
        // in distribution but pick for pick under the same seed.
        use exsample_rand::Sampler;
        let config = ExSampleConfig::default();
        let mut stats = skewed_stats();
        let eligible = [true, true, true];
        let mut rng_a = StdRng::seed_from_u64(47);
        let mut rng_b = StdRng::seed_from_u64(47);
        for i in 0..2_000 {
            let fast = select_chunk(&config, &stats, &eligible, &mut rng_a).unwrap();
            let mut best_j = 0usize;
            let mut best = f64::NEG_INFINITY;
            for (j, chunk) in stats.all().iter().enumerate() {
                let draw = chunk.belief(&config).sample(&mut rng_b);
                if j == 0 || beats(draw, best) {
                    best_j = j;
                    best = draw;
                }
            }
            assert_eq!(fast, best_j, "pick {i} diverged from the textbook arg-max");
            stats.record(fast, i64::from(i % 5 == 0));
        }
    }

    #[test]
    fn large_m_cached_and_reference_paths_agree_draw_for_draw() {
        // Above SMALL_M_CHUNKS both public paths use the pruned fold; they
        // must keep selecting identical chunks under the same seed.
        let config = ExSampleConfig::default();
        let chunks = SMALL_M_CHUNKS + 16;
        let mut stats = ChunkStatsSet::new(chunks);
        for j in 0..chunks {
            stats.record(j, i64::from(j % 3 == 0));
        }
        let eligible = vec![true; chunks];
        let mut rng_a = StdRng::seed_from_u64(53);
        let mut rng_b = StdRng::seed_from_u64(53);
        for i in 0..500 {
            let a = select_chunk(&config, &stats, &eligible, &mut rng_a).unwrap();
            let b = select_chunk_reference(&config, &stats, &eligible, &mut rng_b).unwrap();
            assert_eq!(a, b, "pick {i} diverged");
            stats.record(a, i64::from(i % 7 == 0));
        }
    }

    /// A skewed large-M statistics set with three belief classes: two "hot"
    /// chunks at (1, 1), four "warm" chunks at (0, 1), the rest all-prior.
    /// 3 classes × 32 occupancy = 96 ≤ 128, so the class-max fold engages.
    fn classed_stats(chunks: usize) -> ChunkStatsSet {
        let mut stats = ChunkStatsSet::new(chunks);
        stats.record(0, 1);
        stats.record(1, 1);
        for j in 2..6 {
            stats.record(j, 0);
        }
        stats
    }

    fn class_max_config() -> ExSampleConfig {
        ExSampleConfig::default().with_selection(SelectionStrategy::ClassMax)
    }

    #[test]
    fn class_max_gate_requires_large_m_and_dense_classes() {
        let config = class_max_config();
        assert!(class_max_applicable(&config, &classed_stats(128)));
        // Knob off.
        assert!(!class_max_applicable(
            &ExSampleConfig::default(),
            &classed_stats(128)
        ));
        // Small M.
        assert!(!class_max_applicable(
            &config,
            &classed_stats(SMALL_M_CHUNKS)
        ));
        // Non-Thompson policy.
        assert!(!class_max_applicable(
            &class_max_config().with_policy(ChunkSelectionPolicy::GreedyMean),
            &classed_stats(128)
        ));
        // Priors mismatch: the cache (and the class keys' beliefs) are built
        // for other priors, so the fold must not engage.
        assert!(!class_max_applicable(
            &class_max_config().with_priors(0.7, 3.0),
            &classed_stats(128)
        ));
        // Diverse classes: give every chunk a distinct sample count so the
        // class count equals the chunk count.
        let mut diverse = ChunkStatsSet::new(128);
        for j in 0..128 {
            for _ in 0..j {
                diverse.record(j, 0);
            }
        }
        assert_eq!(diverse.class_count(), 128);
        assert!(!class_max_applicable(&config, &diverse));
    }

    #[test]
    fn class_max_matches_per_chunk_in_distribution() {
        // Two-sample chi-square over all 128 chunks: the class-max fold and
        // the per-chunk fold must allocate picks identically — this checks
        // both the cross-class shares (hot vs warm vs cold) and the uniform
        // within-class resolution in one statistic.
        const M: usize = 128;
        const TRIALS: usize = 40_000;
        let stats = classed_stats(M);
        let eligible = vec![true; M];
        let mut class_counts = vec![0usize; M];
        let mut rng = StdRng::seed_from_u64(61);
        for _ in 0..TRIALS {
            class_counts
                [select_chunk(&class_max_config(), &stats, &eligible, &mut rng).unwrap()] += 1;
        }
        let mut chunk_counts = vec![0usize; M];
        let mut rng = StdRng::seed_from_u64(67);
        for _ in 0..TRIALS {
            chunk_counts
                [select_chunk(&ExSampleConfig::default(), &stats, &eligible, &mut rng).unwrap()] +=
                1;
        }
        let mut chi = 0.0;
        for (&a, &b) in class_counts.iter().zip(&chunk_counts) {
            let total = (a + b) as f64;
            if total > 0.0 {
                let diff = a as f64 - b as f64;
                chi += diff * diff / total;
            }
        }
        // df = 127, 99.99 % quantile ≈ 195 (Wilson–Hilferty); fixed seeds make
        // this deterministic.
        assert!(
            chi < 195.0,
            "chi-square {chi:.1}: class-max hot {:?} vs per-chunk hot {:?}",
            &class_counts[..6],
            &chunk_counts[..6]
        );
    }

    #[test]
    fn class_max_batch_matches_per_chunk_batch_in_distribution() {
        const M: usize = 128;
        const ROUNDS: usize = 700;
        const BATCH: usize = 32;
        let stats = classed_stats(M);
        let eligible = vec![true; M];
        let count_for = |config: &ExSampleConfig, seed: u64| -> Vec<usize> {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut counts = vec![0usize; M];
            let mut out = Vec::new();
            let mut scratch = Vec::new();
            for _ in 0..ROUNDS {
                select_batch_into(
                    config,
                    &stats,
                    &eligible,
                    BATCH,
                    &mut rng,
                    &mut out,
                    &mut scratch,
                );
                assert_eq!(out.len(), BATCH);
                for &j in &out {
                    counts[j] += 1;
                }
            }
            counts
        };
        let class_counts = count_for(&class_max_config(), 71);
        let chunk_counts = count_for(&ExSampleConfig::default(), 73);
        let mut chi = 0.0;
        for (&a, &b) in class_counts.iter().zip(&chunk_counts) {
            let total = (a + b) as f64;
            if total > 0.0 {
                let diff = a as f64 - b as f64;
                chi += diff * diff / total;
            }
        }
        // df = 127, 99.99 % quantile ≈ 195.
        assert!(chi < 195.0, "chi-square {chi:.1}");
    }

    #[test]
    fn class_max_resolution_is_uniform_within_the_all_prior_class() {
        // A fresh statistics set is one big class, so every pick exercises the
        // within-class resolution alone: picks must spread uniformly.
        const M: usize = 128;
        const TRIALS: usize = 25_600; // 200 expected picks per chunk
        let stats = ChunkStatsSet::new(M);
        assert_eq!(stats.class_count(), 1);
        let eligible = vec![true; M];
        let config = class_max_config();
        let mut counts = vec![0usize; M];
        let mut rng = StdRng::seed_from_u64(79);
        for _ in 0..TRIALS {
            counts[select_chunk(&config, &stats, &eligible, &mut rng).unwrap()] += 1;
        }
        let expected = TRIALS as f64 / M as f64;
        let chi: f64 = counts
            .iter()
            .map(|&c| {
                let diff = c as f64 - expected;
                diff * diff / expected
            })
            .sum();
        // df = 127, 99.99 % quantile ≈ 195.
        assert!(
            chi < 195.0,
            "chi-square {chi:.1}, counts head {:?}",
            &counts[..8]
        );
    }

    #[test]
    fn class_max_below_small_m_falls_back_pick_for_pick() {
        // At M ≤ SMALL_M_CHUNKS the gate rejects the class fold, so the knob
        // must change *nothing*: identical picks under identical seeds.
        let mut stats = ChunkStatsSet::new(SMALL_M_CHUNKS);
        for j in 0..SMALL_M_CHUNKS {
            stats.record(j % 7, i64::from(j % 5 == 0));
        }
        let eligible = vec![true; SMALL_M_CHUNKS];
        let mut rng_a = StdRng::seed_from_u64(83);
        let mut rng_b = StdRng::seed_from_u64(83);
        for i in 0..1_000 {
            let a = select_chunk(&class_max_config(), &stats, &eligible, &mut rng_a).unwrap();
            let b =
                select_chunk(&ExSampleConfig::default(), &stats, &eligible, &mut rng_b).unwrap();
            assert_eq!(a, b, "pick {i} diverged");
        }
    }

    #[test]
    fn class_max_with_diverse_classes_falls_back_pick_for_pick() {
        // Every chunk in its own class → occupancy gate rejects the fold.
        let chunks = SMALL_M_CHUNKS + 36;
        let mut stats = ChunkStatsSet::new(chunks);
        for j in 0..chunks {
            for _ in 0..j {
                stats.record(j, 0);
            }
        }
        assert_eq!(stats.class_count(), chunks);
        let eligible = vec![true; chunks];
        let mut rng_a = StdRng::seed_from_u64(89);
        let mut rng_b = StdRng::seed_from_u64(89);
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        let mut scratch_a = Vec::new();
        let mut scratch_b = Vec::new();
        for i in 0..200 {
            let a = select_chunk(&class_max_config(), &stats, &eligible, &mut rng_a).unwrap();
            let b =
                select_chunk(&ExSampleConfig::default(), &stats, &eligible, &mut rng_b).unwrap();
            assert_eq!(a, b, "pick {i} diverged");
        }
        select_batch_into(
            &class_max_config(),
            &stats,
            &eligible,
            16,
            &mut rng_a,
            &mut out_a,
            &mut scratch_a,
        );
        select_batch_into(
            &ExSampleConfig::default(),
            &stats,
            &eligible,
            16,
            &mut rng_b,
            &mut out_b,
            &mut scratch_b,
        );
        assert_eq!(out_a, out_b);
    }

    #[test]
    fn class_max_respects_eligibility() {
        const M: usize = 128;
        let stats = classed_stats(M);
        let config = class_max_config();
        // Knock out one hot chunk, one warm chunk, and half the cold class.
        let mut eligible = vec![true; M];
        eligible[0] = false;
        eligible[2] = false;
        for j in (6..M).step_by(2) {
            eligible[j] = false;
        }
        let mut rng = StdRng::seed_from_u64(97);
        let mut seen_hot = false;
        let mut seen_cold = false;
        for _ in 0..2_000 {
            let j = select_chunk(&config, &stats, &eligible, &mut rng).unwrap();
            assert!(eligible[j], "picked ineligible chunk {j}");
            seen_hot |= j == 1;
            seen_cold |= j >= 6;
        }
        assert!(
            seen_hot && seen_cold,
            "partial eligibility collapsed the mix"
        );
        // Batch path under the same mask.
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        select_batch_into(
            &config,
            &stats,
            &eligible,
            64,
            &mut rng,
            &mut out,
            &mut scratch,
        );
        assert_eq!(out.len(), 64);
        assert!(out.iter().all(|&j| eligible[j]));
        // A fully ineligible mask returns no pick.
        assert_eq!(select_chunk(&config, &stats, &[false; M], &mut rng), None);
    }

    #[test]
    fn batched_and_sequential_thompson_share_a_distribution() {
        // Coarse agreement check here (the rigorous chi-square test lives in
        // the workspace-level properties suite): batched picks and repeated
        // un-updated single picks should allocate similar shares to the
        // productive chunk.
        let stats = skewed_stats();
        let config = ExSampleConfig::default();
        let eligible = vec![true; 3];
        let mut rng = StdRng::seed_from_u64(41);
        let batched = select_batch(&config, &stats, &eligible, 4_000, &mut rng);
        let batched_share =
            batched.iter().filter(|&&j| j == 1).count() as f64 / batched.len() as f64;
        let mut sequential_hits = 0usize;
        for _ in 0..4_000 {
            if select_chunk(&config, &stats, &eligible, &mut rng).unwrap() == 1 {
                sequential_hits += 1;
            }
        }
        let sequential_share = sequential_hits as f64 / 4_000.0;
        assert!(
            (batched_share - sequential_share).abs() < 0.03,
            "batched {batched_share} vs sequential {sequential_share}"
        );
    }
}
