//! Chunk-selection policies.
//!
//! Given the per-chunk statistics, a policy decides which chunk to sample from
//! next.  The paper's policy is Thompson sampling over the Gamma beliefs of
//! Eq. III.4; it also reports experimenting with Bayes-UCB and finding no
//! difference.  The greedy point-estimate policy and the uniform policy are
//! included as ablations: greedy demonstrates the "stuck on an early lucky chunk"
//! failure mode motivating Thompson sampling, and uniform reduces ExSample to the
//! random baseline.

use crate::config::{ChunkSelectionPolicy, ExSampleConfig};
use crate::stats::ChunkStatsSet;
use exsample_rand::Sampler;
use rand::Rng;

/// Score every *eligible* chunk under the configured policy and return the index of
/// the winner.
///
/// `eligible` marks chunks that still have frames left to sample; ineligible chunks
/// are never selected.  Returns `None` if no chunk is eligible.
pub fn select_chunk<R: Rng + ?Sized>(
    config: &ExSampleConfig,
    stats: &ChunkStatsSet,
    eligible: &[bool],
    rng: &mut R,
) -> Option<usize> {
    select_batch(config, stats, eligible, 1, rng).into_iter().next()
}

/// Select `batch` chunk indices (with repetition allowed) under the configured
/// policy, as used by the batched-sampling optimisation of Section III-F.
///
/// For Thompson sampling this draws `batch` independent samples per chunk belief —
/// equivalently, it repeats the single-draw arg-max `batch` times — so the returned
/// indices follow the same distribution as `batch` sequential (un-updated) picks.
/// Deterministic policies (Bayes-UCB, greedy) would return the same index `batch`
/// times, which is also their correct batched behaviour in the absence of state
/// updates.
pub fn select_batch<R: Rng + ?Sized>(
    config: &ExSampleConfig,
    stats: &ChunkStatsSet,
    eligible: &[bool],
    batch: usize,
    rng: &mut R,
) -> Vec<usize> {
    assert_eq!(
        eligible.len(),
        stats.len(),
        "eligibility mask must cover every chunk"
    );
    if !eligible.iter().any(|&e| e) || batch == 0 {
        return Vec::new();
    }
    match config.policy {
        ChunkSelectionPolicy::ThompsonSampling => (0..batch)
            .map(|_| thompson_pick(config, stats, eligible, rng))
            .collect(),
        ChunkSelectionPolicy::BayesUcb => {
            let pick = bayes_ucb_pick(config, stats, eligible);
            vec![pick; batch]
        }
        ChunkSelectionPolicy::GreedyMean => {
            let pick = greedy_pick(stats, eligible, rng);
            vec![pick; batch]
        }
        ChunkSelectionPolicy::UniformChunk => (0..batch)
            .map(|_| uniform_pick(eligible, rng))
            .collect(),
    }
}

/// Thompson sampling: draw from each eligible chunk's belief, take the arg-max.
fn thompson_pick<R: Rng + ?Sized>(
    config: &ExSampleConfig,
    stats: &ChunkStatsSet,
    eligible: &[bool],
    rng: &mut R,
) -> usize {
    let mut best: Option<(usize, f64)> = None;
    for (j, chunk) in stats.all().iter().enumerate() {
        if !eligible[j] {
            continue;
        }
        let draw = chunk.belief(config).sample(rng);
        if best.map_or(true, |(_, b)| draw > b) {
            best = Some((j, draw));
        }
    }
    best.expect("at least one eligible chunk").0
}

/// Bayes-UCB: rank chunks by the `1 − 1/(t+1)` quantile of their belief, where `t`
/// is the total number of samples taken so far (Kaufmann's index policy).
fn bayes_ucb_pick(config: &ExSampleConfig, stats: &ChunkStatsSet, eligible: &[bool]) -> usize {
    let t = stats.total_samples() as f64;
    let level = 1.0 - 1.0 / (t + 2.0);
    let mut best: Option<(usize, f64)> = None;
    for (j, chunk) in stats.all().iter().enumerate() {
        if !eligible[j] {
            continue;
        }
        let index = chunk.belief(config).quantile(level);
        if best.map_or(true, |(_, b)| index > b) {
            best = Some((j, index));
        }
    }
    best.expect("at least one eligible chunk").0
}

/// Greedy: arg-max of the point estimate, random among unsampled chunks / ties.
fn greedy_pick<R: Rng + ?Sized>(stats: &ChunkStatsSet, eligible: &[bool], rng: &mut R) -> usize {
    let mut best: Option<(usize, f64)> = None;
    let mut ties = 0u32;
    for (j, chunk) in stats.all().iter().enumerate() {
        if !eligible[j] {
            continue;
        }
        // Unsampled chunks get a tiny optimistic default so they are explored
        // before chunks that have produced nothing.
        let estimate = chunk.point_estimate().unwrap_or(f64::MIN_POSITIVE);
        match best {
            None => {
                best = Some((j, estimate));
                ties = 1;
            }
            Some((_, b)) if estimate > b => {
                best = Some((j, estimate));
                ties = 1;
            }
            Some((_, b)) if estimate == b => {
                // Reservoir-style uniform tie breaking.
                ties += 1;
                if rng.gen_range(0..ties) == 0 {
                    best = Some((j, estimate));
                }
            }
            _ => {}
        }
    }
    best.expect("at least one eligible chunk").0
}

/// Uniform: ignore statistics, pick an eligible chunk uniformly at random.
fn uniform_pick<R: Rng + ?Sized>(eligible: &[bool], rng: &mut R) -> usize {
    let count = eligible.iter().filter(|&&e| e).count();
    let target = rng.gen_range(0..count);
    eligible
        .iter()
        .enumerate()
        .filter(|(_, &e)| e)
        .nth(target)
        .expect("target < eligible count")
        .0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn skewed_stats() -> ChunkStatsSet {
        // Chunk 1 has produced results; chunks 0 and 2 have produced nothing.
        let mut stats = ChunkStatsSet::new(3);
        for _ in 0..30 {
            stats.record(0, 0);
            stats.record(2, 0);
        }
        for _ in 0..30 {
            stats.record(1, 1);
        }
        stats
    }

    fn pick_counts(config: &ExSampleConfig, stats: &ChunkStatsSet, trials: usize) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(17);
        let eligible = vec![true; stats.len()];
        let mut counts = vec![0usize; stats.len()];
        for _ in 0..trials {
            let j = select_chunk(config, stats, &eligible, &mut rng).unwrap();
            counts[j] += 1;
        }
        counts
    }

    #[test]
    fn thompson_prefers_productive_chunk() {
        let stats = skewed_stats();
        let counts = pick_counts(&ExSampleConfig::default(), &stats, 2_000);
        assert!(counts[1] > 1_800, "counts {counts:?}");
    }

    #[test]
    fn thompson_still_explores_under_weak_evidence() {
        // With only a handful of samples per chunk the beliefs are wide, so the
        // unproductive chunks must still receive a non-trivial share of picks —
        // this is exactly the behaviour that prevents getting stuck on an early
        // lucky chunk (Section III-B).
        let mut stats = ChunkStatsSet::new(3);
        for _ in 0..5 {
            stats.record(0, 0);
            stats.record(2, 0);
        }
        for _ in 0..5 {
            stats.record(1, 1);
        }
        let counts = pick_counts(&ExSampleConfig::default(), &stats, 2_000);
        assert!(counts[1] > counts[0] && counts[1] > counts[2], "counts {counts:?}");
        assert!(counts[0] + counts[2] > 0, "exploration collapsed: {counts:?}");
    }

    #[test]
    fn bayes_ucb_prefers_productive_chunk() {
        let stats = skewed_stats();
        let config = ExSampleConfig::default().with_policy(ChunkSelectionPolicy::BayesUcb);
        let counts = pick_counts(&config, &stats, 50);
        assert_eq!(counts[1], 50, "Bayes-UCB is deterministic given fixed stats: {counts:?}");
    }

    #[test]
    fn greedy_picks_best_point_estimate() {
        let stats = skewed_stats();
        let config = ExSampleConfig::default().with_policy(ChunkSelectionPolicy::GreedyMean);
        let counts = pick_counts(&config, &stats, 50);
        assert_eq!(counts[1], 50, "counts {counts:?}");
    }

    #[test]
    fn uniform_ignores_statistics() {
        let stats = skewed_stats();
        let config = ExSampleConfig::default().with_policy(ChunkSelectionPolicy::UniformChunk);
        let counts = pick_counts(&config, &stats, 3_000);
        for &c in &counts {
            assert!((c as f64 - 1_000.0).abs() < 150.0, "counts {counts:?}");
        }
    }

    #[test]
    fn fresh_statistics_give_uniform_thompson_choices() {
        // "During the first execution of the while loop all the belief distributions
        // are identical, but Thompson sampling effectively breaks ties at random."
        let stats = ChunkStatsSet::new(4);
        let counts = pick_counts(&ExSampleConfig::default(), &stats, 4_000);
        for &c in &counts {
            assert!((c as f64 - 1_000.0).abs() < 200.0, "counts {counts:?}");
        }
    }

    #[test]
    fn ineligible_chunks_are_never_selected() {
        let stats = skewed_stats();
        let mut rng = StdRng::seed_from_u64(3);
        let eligible = vec![true, false, true];
        for _ in 0..200 {
            let j = select_chunk(&ExSampleConfig::default(), &stats, &eligible, &mut rng).unwrap();
            assert_ne!(j, 1);
        }
    }

    #[test]
    fn no_eligible_chunk_returns_none() {
        let stats = ChunkStatsSet::new(2);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(
            select_chunk(&ExSampleConfig::default(), &stats, &[false, false], &mut rng),
            None
        );
    }

    #[test]
    fn batch_selection_length_and_distribution() {
        let stats = skewed_stats();
        let mut rng = StdRng::seed_from_u64(19);
        let eligible = vec![true; 3];
        let picks = select_batch(&ExSampleConfig::default(), &stats, &eligible, 64, &mut rng);
        assert_eq!(picks.len(), 64);
        let to_best = picks.iter().filter(|&&j| j == 1).count();
        assert!(to_best > 48, "batched Thompson picks should favour chunk 1: {to_best}");
    }

    #[test]
    fn batch_of_zero_is_empty() {
        let stats = skewed_stats();
        let mut rng = StdRng::seed_from_u64(19);
        assert!(select_batch(&ExSampleConfig::default(), &stats, &[true; 3], 0, &mut rng).is_empty());
    }

    #[test]
    #[should_panic(expected = "eligibility mask")]
    fn mismatched_mask_panics() {
        let stats = ChunkStatsSet::new(3);
        let mut rng = StdRng::seed_from_u64(1);
        let _ = select_chunk(&ExSampleConfig::default(), &stats, &[true; 2], &mut rng);
    }
}
