//! The complete Algorithm 1 loop: sampler + detector + discriminator.
//!
//! [`run_query`] wires an [`ExSample`] sampler to an object [`Detector`] and a
//! [`Discriminator`] over a concrete [`Chunking`] of a video repository, and runs
//! the paper's Algorithm 1 until a stopping condition is met.  The richer
//! experiment harness (cost accounting, recall trajectories, multi-trial sweeps)
//! lives in the `exsample-sim` crate; this driver is the minimal faithful loop and
//! is what the quickstart example uses.

use crate::exsample::ExSample;
use exsample_detect::{Detector, InstanceId};
use exsample_track::Discriminator;
use exsample_video::Chunking;
use rand::Rng;

/// Why a query run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The requested number of distinct results was found.
    ResultLimitReached,
    /// The frame budget was exhausted before enough results were found.
    FrameBudgetExhausted,
    /// Every frame of the repository was sampled.
    RepositoryExhausted,
}

/// The outcome of one query run.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Number of frames processed through the detector.
    pub frames_processed: u64,
    /// Number of distinct objects found (as judged by the discriminator).
    pub distinct_found: usize,
    /// The ground-truth instances among the found objects.
    pub found_instances: Vec<InstanceId>,
    /// Number of frames sampled from each chunk.
    pub samples_per_chunk: Vec<u64>,
    /// Why the run stopped.
    pub stop_reason: StopReason,
}

/// Run Algorithm 1.
///
/// * `sampler` — the ExSample state machine (already configured with the chunk
///   lengths of `chunking`).
/// * `chunking` — maps the sampler's (chunk, offset) picks to global frame ids.
/// * `detector` / `discriminator` — the frame-processing pipeline.
/// * `result_limit` — stop after this many distinct objects.
/// * `frame_budget` — optionally stop after this many detector invocations.
///
/// # Panics
/// Panics if the sampler's chunk count does not match `chunking`.
pub fn run_query<D, X, R>(
    sampler: &mut ExSample,
    chunking: &Chunking,
    detector: &D,
    discriminator: &mut X,
    result_limit: usize,
    frame_budget: Option<u64>,
    rng: &mut R,
) -> QueryOutcome
where
    D: Detector,
    X: Discriminator,
    R: Rng + ?Sized,
{
    assert_eq!(
        sampler.chunk_count(),
        chunking.len(),
        "sampler and chunking disagree on the number of chunks"
    );
    let mut frames_processed = 0u64;
    let stop_reason = loop {
        if discriminator.distinct_count() >= result_limit {
            break StopReason::ResultLimitReached;
        }
        if frame_budget.is_some_and(|budget| frames_processed >= budget) {
            break StopReason::FrameBudgetExhausted;
        }
        // 1) choice of chunk and frame.
        let Some(pick) = sampler.next_frame(rng) else {
            break StopReason::RepositoryExhausted;
        };
        let frame = chunking.chunks()[pick.chunk].start() + pick.offset;
        // 2) io, decode, detect, match.
        let detections = detector.detect(frame);
        let outcome = discriminator.observe(&detections);
        // 3) update state.
        sampler.record(pick.chunk, outcome.n1_delta());
        frames_processed += 1;
    };

    QueryOutcome {
        frames_processed,
        distinct_found: discriminator.distinct_count(),
        found_instances: discriminator.found_instances(),
        samples_per_chunk: sampler.stats().all().iter().map(|s| s.samples()).collect(),
        stop_reason,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExSampleConfig;
    use exsample_detect::{GroundTruth, ObjectClass, ObjectInstance, PerfectDetector};
    use exsample_track::OracleDiscriminator;
    use exsample_video::{Chunking, ChunkingPolicy, VideoRepository};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    /// A repository of 40_000 frames, 8 chunks, with all ten "car" instances packed
    /// into the final chunk.
    fn skewed_setup() -> (Chunking, Arc<GroundTruth>) {
        let repo = VideoRepository::single_clip(40_000);
        let chunking = Chunking::new(&repo, ChunkingPolicy::FixedCount { chunks: 8 });
        let mut instances = Vec::new();
        for i in 0..10u64 {
            let start = 35_000 + i * 450;
            instances.push(ObjectInstance::simple(i, "car", start, start + 300));
        }
        let truth = Arc::new(GroundTruth::from_instances(40_000, instances));
        (chunking, truth)
    }

    #[test]
    fn finds_requested_results_and_stops() {
        let (chunking, truth) = skewed_setup();
        let detector = PerfectDetector::new(Arc::clone(&truth), ObjectClass::from("car"));
        let mut discriminator = OracleDiscriminator::new();
        let mut sampler = ExSample::new(ExSampleConfig::default(), &chunking.chunk_lengths());
        let mut rng = StdRng::seed_from_u64(7);

        let outcome = run_query(
            &mut sampler,
            &chunking,
            &detector,
            &mut discriminator,
            5,
            None,
            &mut rng,
        );
        assert_eq!(outcome.stop_reason, StopReason::ResultLimitReached);
        assert!(outcome.distinct_found >= 5);
        assert_eq!(outcome.found_instances.len(), outcome.distinct_found);
        assert_eq!(
            outcome.samples_per_chunk.iter().sum::<u64>(),
            outcome.frames_processed
        );
    }

    #[test]
    fn concentrates_samples_on_the_chunk_with_results() {
        let (chunking, truth) = skewed_setup();
        let detector = PerfectDetector::new(Arc::clone(&truth), ObjectClass::from("car"));
        let mut discriminator = OracleDiscriminator::new();
        let mut sampler = ExSample::new(ExSampleConfig::default(), &chunking.chunk_lengths());
        let mut rng = StdRng::seed_from_u64(11);

        let outcome = run_query(
            &mut sampler,
            &chunking,
            &detector,
            &mut discriminator,
            10,
            Some(3_000),
            &mut rng,
        );
        // All instances live in the last chunk; it should dominate the allocation
        // once a couple of results are found.
        let last = *outcome.samples_per_chunk.last().unwrap() as f64;
        let total = outcome.frames_processed as f64;
        assert!(
            last / total > 0.3,
            "expected concentration on the last chunk: {:?}",
            outcome.samples_per_chunk
        );
    }

    #[test]
    fn frame_budget_is_respected() {
        let (chunking, truth) = skewed_setup();
        let detector = PerfectDetector::new(Arc::clone(&truth), ObjectClass::from("car"));
        let mut discriminator = OracleDiscriminator::new();
        let mut sampler = ExSample::new(ExSampleConfig::default(), &chunking.chunk_lengths());
        let mut rng = StdRng::seed_from_u64(13);

        let outcome = run_query(
            &mut sampler,
            &chunking,
            &detector,
            &mut discriminator,
            1_000_000,
            Some(50),
            &mut rng,
        );
        assert_eq!(outcome.stop_reason, StopReason::FrameBudgetExhausted);
        assert_eq!(outcome.frames_processed, 50);
    }

    #[test]
    fn repository_exhaustion_terminates_the_loop() {
        // A tiny repository with no objects at all: the loop must stop once every
        // frame has been sampled.
        let repo = VideoRepository::single_clip(64);
        let chunking = Chunking::new(&repo, ChunkingPolicy::FixedCount { chunks: 4 });
        let truth = Arc::new(GroundTruth::new(64));
        let detector = PerfectDetector::new(Arc::clone(&truth), ObjectClass::from("car"));
        let mut discriminator = OracleDiscriminator::new();
        let mut sampler = ExSample::new(ExSampleConfig::default(), &chunking.chunk_lengths());
        let mut rng = StdRng::seed_from_u64(17);

        let outcome = run_query(
            &mut sampler,
            &chunking,
            &detector,
            &mut discriminator,
            10,
            None,
            &mut rng,
        );
        assert_eq!(outcome.stop_reason, StopReason::RepositoryExhausted);
        assert_eq!(outcome.frames_processed, 64);
        assert_eq!(outcome.distinct_found, 0);
    }

    #[test]
    #[should_panic(expected = "disagree on the number of chunks")]
    fn mismatched_chunking_panics() {
        let (chunking, truth) = skewed_setup();
        let detector = PerfectDetector::new(Arc::clone(&truth), ObjectClass::from("car"));
        let mut discriminator = OracleDiscriminator::new();
        let mut sampler = ExSample::new(ExSampleConfig::default(), &[10, 10]);
        let mut rng = StdRng::seed_from_u64(1);
        let _ = run_query(
            &mut sampler,
            &chunking,
            &detector,
            &mut discriminator,
            1,
            None,
            &mut rng,
        );
    }
}
