//! The future-reward estimator `R̂` and the theoretical quantities around it.
//!
//! Section III-A of the paper defines, for a chunk from which `n` frames have been
//! sampled:
//!
//! * `R(n+1)` — the expected number of *new* (not-yet-seen) objects in one more
//!   random frame: `R(n+1) = Σ_i p_i · [i ∉ seen(n)]`;
//! * the estimator `R̂(n+1) = N1(n) / n` where `N1(n)` is the number of objects seen
//!   exactly once so far;
//! * a bias bound (Eq. III.2): `0 ≤ E[R̂ − R] / R̂ ≤ max_i p_i` and
//!   `≤ √N (µ_p + σ_p)`;
//! * a variance bound (Eq. III.3): `Var[R̂(n+1)] ≤ E[R̂(n+1)] / n`.
//!
//! The functions in this module compute all of those quantities — the estimator
//! itself for the sampler, and the ground-truth-side quantities (`π_i(n)`, the true
//! `R`, the expectation of `N1`) for the Figure 2 validation experiment and the
//! property tests that verify the bounds hold.

/// The point estimate `R̂(n+1) = N1 / n` (Eq. III.1).
///
/// Returns `None` when `n == 0` (the estimator is undefined before any samples,
/// which is exactly why the belief distribution carries a prior).
pub fn point_estimate(n1: u64, n: u64) -> Option<f64> {
    if n == 0 {
        None
    } else {
        Some(n1 as f64 / n as f64)
    }
}

/// The variance bound of Eq. III.3: `Var[R̂(n+1)] ≤ E[R̂(n+1)] / n`.
///
/// Given an estimate of `E[R̂]` (in practice the point estimate itself) and the
/// sample count, returns the bound's right-hand side.
pub fn variance_bound(expected_estimate: f64, n: u64) -> f64 {
    assert!(n > 0, "variance bound requires at least one sample");
    expected_estimate / n as f64
}

/// `π_i(n+1) = p_i (1 − p_i)^n`: the probability that instance `i` is seen for the
/// first time on the `(n+1)`-th sample (missed on the first `n`).
pub fn pi_next(p: f64, n: u64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&p));
    p * (1.0 - p).powi(n as i32)
}

/// The expectation `E[R(n+1)] = Σ_i π_i(n+1)` over all instances — the quantity the
/// estimator tries to track, computable only with knowledge of the true `p_i`.
pub fn expected_r_next(probabilities: &[f64], n: u64) -> f64 {
    probabilities.iter().map(|&p| pi_next(p, n)).sum()
}

/// The conditional `R(n+1) = Σ_{i ∉ seen} p_i` for a *particular* run in which the
/// instances in `seen` have already been found (`seen[i]` true ⇔ instance `i`
/// seen).  This is what the Figure 2 experiment histograms.
pub fn realized_r_next(probabilities: &[f64], seen: &[bool]) -> f64 {
    assert_eq!(probabilities.len(), seen.len());
    probabilities
        .iter()
        .zip(seen)
        .filter(|(_, &s)| !s)
        .map(|(&p, _)| p)
        .sum()
}

/// The expectation `E[N1(n)] = Σ_i n · p_i (1 − p_i)^{n−1}` of the number of
/// instances seen exactly once after `n` samples.
pub fn expected_n1(probabilities: &[f64], n: u64) -> f64 {
    if n == 0 {
        return 0.0;
    }
    probabilities
        .iter()
        .map(|&p| n as f64 * p * (1.0 - p).powi((n - 1) as i32))
        .sum()
}

/// The expected number of *distinct* instances found after `n` uniform samples,
/// `E[N(n)] = Σ_i 1 − (1 − p_i)^n` — the curve random sampling follows (Section
/// IV-A).
pub fn expected_distinct(probabilities: &[f64], n: u64) -> f64 {
    probabilities
        .iter()
        .map(|&p| 1.0 - (1.0 - p).powi(n as i32))
        .sum()
}

/// The upper bias bound of Eq. III.2 in its two forms: returns
/// `(max_i p_i, √N · (µ_p + σ_p))`.  The expected relative bias of `R̂` is
/// guaranteed to lie in `[0, min(of the two)]`… the paper states both forms because
/// either can be the tighter one depending on skew.
pub fn bias_bounds(probabilities: &[f64]) -> (f64, f64) {
    let n = probabilities.len();
    if n == 0 {
        return (0.0, 0.0);
    }
    let max_p = probabilities.iter().copied().fold(0.0, f64::max);
    let mean = probabilities.iter().sum::<f64>() / n as f64;
    let var = probabilities
        .iter()
        .map(|&p| (p - mean) * (p - mean))
        .sum::<f64>()
        / n as f64;
    let sigma = var.sqrt();
    (max_p, (n as f64).sqrt() * (mean + sigma))
}

/// The expected relative bias `E[R̂ − R] / E[R̂]` computed exactly from the true
/// probabilities:
///
/// `E[N1(n)/n − R(n+1)] = Σ_i p_i π_i(n)`, and `E[R̂] = Σ_i π_i(n)` (with
/// `π_i(n) = p_i (1−p_i)^{n−1}` for `n ≥ 1`).
///
/// Used by tests to verify the Eq. III.2 bounds really do bound the bias.
pub fn exact_relative_bias(probabilities: &[f64], n: u64) -> f64 {
    assert!(n > 0);
    let pi_n: Vec<f64> = probabilities.iter().map(|&p| pi_next(p, n - 1)).collect();
    let e_estimate: f64 = pi_n.iter().sum();
    if e_estimate == 0.0 {
        return 0.0;
    }
    let e_error: f64 = probabilities
        .iter()
        .zip(&pi_n)
        .map(|(&p, &pi)| p * pi)
        .sum();
    e_error / e_estimate
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probabilities() -> Vec<f64> {
        vec![0.001, 0.002, 0.01, 0.05, 0.1, 0.0005]
    }

    #[test]
    fn point_estimate_basic() {
        assert_eq!(point_estimate(5, 0), None);
        assert_eq!(point_estimate(0, 10), Some(0.0));
        assert!((point_estimate(5, 100).unwrap() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn variance_bound_shrinks_with_n() {
        assert!(variance_bound(0.1, 10) > variance_bound(0.1, 1000));
        assert!((variance_bound(0.2, 100) - 0.002).abs() < 1e-12);
    }

    #[test]
    fn pi_next_decays_geometrically() {
        let p = 0.1;
        assert!((pi_next(p, 0) - 0.1).abs() < 1e-12);
        assert!((pi_next(p, 1) - 0.09).abs() < 1e-12);
        assert!(pi_next(p, 100) < pi_next(p, 10));
    }

    #[test]
    fn expected_r_decreases_with_samples() {
        let ps = probabilities();
        let r0 = expected_r_next(&ps, 0);
        let r100 = expected_r_next(&ps, 100);
        let r1000 = expected_r_next(&ps, 1000);
        assert!(r0 > r100 && r100 > r1000);
        // Before any samples, R(1) is just the sum of probabilities.
        assert!((r0 - ps.iter().sum::<f64>()).abs() < 1e-12);
    }

    #[test]
    fn realized_r_excludes_seen_instances() {
        let ps = probabilities();
        let mut seen = vec![false; ps.len()];
        let all = realized_r_next(&ps, &seen);
        assert!((all - ps.iter().sum::<f64>()).abs() < 1e-12);
        seen[4] = true; // remove the 0.1 instance
        let rest = realized_r_next(&ps, &seen);
        assert!((all - rest - 0.1).abs() < 1e-12);
        let everything_seen = vec![true; ps.len()];
        assert_eq!(realized_r_next(&ps, &everything_seen), 0.0);
    }

    #[test]
    fn expected_n1_rises_then_falls() {
        // With a single instance of probability p, E[N1(n)] = n p (1-p)^(n-1),
        // which peaks near n = 1/p and then decays.
        let ps = vec![0.01];
        let early = expected_n1(&ps, 10);
        let peak = expected_n1(&ps, 100);
        let late = expected_n1(&ps, 2_000);
        assert!(peak > early);
        assert!(peak > late);
        assert_eq!(expected_n1(&ps, 0), 0.0);
    }

    #[test]
    fn expected_distinct_saturates_at_instance_count() {
        let ps = probabilities();
        let n_inf = expected_distinct(&ps, 1_000_000);
        assert!((n_inf - ps.len() as f64).abs() < 1e-6);
        assert!(expected_distinct(&ps, 10) < expected_distinct(&ps, 100));
        assert_eq!(expected_distinct(&ps, 0), 0.0);
    }

    #[test]
    fn bias_is_positive_and_bounded_by_eq_iii_2() {
        let ps = probabilities();
        let (max_p, sqrtn_bound) = bias_bounds(&ps);
        for n in [1u64, 5, 20, 100, 1_000, 10_000] {
            let bias = exact_relative_bias(&ps, n);
            assert!(bias >= -1e-15, "bias must be non-negative (n = {n})");
            assert!(
                bias <= max_p + 1e-12,
                "max_p bound violated at n = {n}: {bias} > {max_p}"
            );
            assert!(
                bias <= sqrtn_bound + 1e-12,
                "sqrt-N bound violated at n = {n}: {bias} > {sqrtn_bound}"
            );
        }
    }

    #[test]
    fn bias_bounds_of_empty_input() {
        assert_eq!(bias_bounds(&[]), (0.0, 0.0));
    }

    #[test]
    fn estimator_tracks_expectation_identity() {
        // E[N1(n)] / n should equal E[R(n+1)] + E[error]; verify the identity
        // E[N1(n)/n] - E[R(n+1)] = Σ p π(n) from the proof of Eq. III.2.
        let ps = probabilities();
        for n in [1u64, 10, 50, 500] {
            let lhs = expected_n1(&ps, n) / n as f64 - expected_r_next(&ps, n);
            let rhs: f64 = ps.iter().map(|&p| p * pi_next(p, n - 1)).sum();
            assert!((lhs - rhs).abs() < 1e-10, "identity failed at n = {n}");
        }
    }
}
