//! Configuration of the ExSample sampler.

/// Which rule converts per-chunk beliefs into a chunk choice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChunkSelectionPolicy {
    /// Thompson sampling: draw one value from each chunk's Gamma belief and pick
    /// the arg-max (the paper's method, Section III-C).
    ThompsonSampling,
    /// Bayes-UCB: rank chunks by an upper quantile of the belief distribution.
    /// The quantile level grows with the total number of samples as `1 - 1/(t+1)`,
    /// following Kaufmann's Bayes-UCB index policy (the paper reports results are
    /// indistinguishable from Thompson sampling).
    BayesUcb,
    /// Greedy: pick the chunk with the largest point estimate `N1/n`, breaking ties
    /// randomly.  Included as an ablation: the paper explains this gets stuck on
    /// early lucky chunks.
    GreedyMean,
    /// Ignore the statistics entirely and cycle through chunks uniformly at random.
    /// Equivalent to the `random`/`random+` baselines; included so the ablation
    /// harness can isolate the effect of the policy alone.
    UniformChunk,
}

/// How frames are sampled *within* the selected chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WithinChunkSampling {
    /// Uniformly at random without replacement.
    Uniform,
    /// The `random+` hierarchical sampler (Section III-F), which avoids sampling
    /// temporally close to previous samples.  This is the paper's default for
    /// ExSample's within-chunk sampling.
    RandomPlus,
}

/// How the Thompson arg-max over chunks is evaluated.
///
/// Both strategies target the *same* distribution over picked chunks; they
/// differ only in how many Gamma draws they spend to realise it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionStrategy {
    /// One Marsaglia–Tsang draw per eligible chunk, arg-max over the draws.
    /// The default; bitwise-identical to prior releases.
    PerChunk,
    /// One exact max-of-k order-statistic draw per belief *class* (chunks
    /// sharing a clamped `(N1, n)` posterior are exchangeable), with the
    /// winning chunk resolved uniformly within its class.  Distributionally
    /// equivalent to [`SelectionStrategy::PerChunk`] (pinned by chi-square
    /// tests) but scales with posterior diversity instead of chunk count.
    /// Falls back to the per-chunk fold below
    /// [`crate::policy::SMALL_M_CHUNKS`] chunks or when the class count
    /// approaches the chunk count (see
    /// [`crate::policy::class_max_applicable`]).
    ClassMax,
}

/// Full configuration of an [`crate::ExSample`] sampler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExSampleConfig {
    /// Prior pseudo-count added to `N1` in the Gamma belief (`α₀` in Eq. III.4).
    pub alpha0: f64,
    /// Prior pseudo-count added to `n` in the Gamma belief (`β₀` in Eq. III.4).
    pub beta0: f64,
    /// Chunk-selection policy.
    pub policy: ChunkSelectionPolicy,
    /// Within-chunk frame sampling strategy.
    pub within_chunk: WithinChunkSampling,
    /// How the Thompson arg-max is evaluated (per chunk, or deduplicated per
    /// belief class).  Only affects [`ChunkSelectionPolicy::ThompsonSampling`].
    pub selection: SelectionStrategy,
}

impl Default for ExSampleConfig {
    /// The paper's configuration: `α₀ = 0.1`, `β₀ = 1`, Thompson sampling, and
    /// `random+` within chunks.
    fn default() -> Self {
        ExSampleConfig {
            alpha0: 0.1,
            beta0: 1.0,
            policy: ChunkSelectionPolicy::ThompsonSampling,
            within_chunk: WithinChunkSampling::RandomPlus,
            selection: SelectionStrategy::PerChunk,
        }
    }
}

impl ExSampleConfig {
    /// Validate the configuration, panicking with a descriptive message if the
    /// priors are not usable.
    ///
    /// `α₀` and `β₀` must be strictly positive because the Gamma distribution is
    /// undefined at zero — this is precisely why the paper adds them.
    pub fn validate(&self) {
        assert!(
            self.alpha0 > 0.0 && self.alpha0.is_finite(),
            "alpha0 must be a positive finite number, got {}",
            self.alpha0
        );
        assert!(
            self.beta0 > 0.0 && self.beta0.is_finite(),
            "beta0 must be a positive finite number, got {}",
            self.beta0
        );
    }

    /// Builder-style setter for the chunk-selection policy.
    pub fn with_policy(mut self, policy: ChunkSelectionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Builder-style setter for the within-chunk sampling strategy.
    pub fn with_within_chunk(mut self, within: WithinChunkSampling) -> Self {
        self.within_chunk = within;
        self
    }

    /// Builder-style setter for the Gamma priors.
    pub fn with_priors(mut self, alpha0: f64, beta0: f64) -> Self {
        self.alpha0 = alpha0;
        self.beta0 = beta0;
        self
    }

    /// Builder-style setter for the arg-max evaluation strategy.
    pub fn with_selection(mut self, selection: SelectionStrategy) -> Self {
        self.selection = selection;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = ExSampleConfig::default();
        assert_eq!(c.alpha0, 0.1);
        assert_eq!(c.beta0, 1.0);
        assert_eq!(c.policy, ChunkSelectionPolicy::ThompsonSampling);
        assert_eq!(c.within_chunk, WithinChunkSampling::RandomPlus);
        assert_eq!(c.selection, SelectionStrategy::PerChunk);
        c.validate();
    }

    #[test]
    fn builder_setters() {
        let c = ExSampleConfig::default()
            .with_policy(ChunkSelectionPolicy::BayesUcb)
            .with_within_chunk(WithinChunkSampling::Uniform)
            .with_priors(0.5, 2.0)
            .with_selection(SelectionStrategy::ClassMax);
        assert_eq!(c.policy, ChunkSelectionPolicy::BayesUcb);
        assert_eq!(c.within_chunk, WithinChunkSampling::Uniform);
        assert_eq!(c.alpha0, 0.5);
        assert_eq!(c.beta0, 2.0);
        assert_eq!(c.selection, SelectionStrategy::ClassMax);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "alpha0")]
    fn zero_alpha0_rejected() {
        ExSampleConfig::default().with_priors(0.0, 1.0).validate();
    }

    #[test]
    #[should_panic(expected = "beta0")]
    fn negative_beta0_rejected() {
        ExSampleConfig::default().with_priors(0.1, -1.0).validate();
    }
}
