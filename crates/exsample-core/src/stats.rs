//! Per-chunk sampling statistics and belief distributions.
//!
//! # The belief cache
//!
//! Thompson sampling draws one value from every chunk's Gamma belief on every
//! pick, so belief construction sits directly on the hot path.  To avoid
//! rebuilding `M` distributions per pick, [`ChunkStatsSet`] maintains a
//! struct-of-arrays cache of the Marsaglia–Tsang sampling constants of each
//! chunk's belief `Γ(N1_j + α₀, n_j + β₀)`:
//!
//! * `cache_d[j]`, `cache_c[j]` — the squeeze constants `d = s − 1/3`,
//!   `c = 1/√(9d)` for the (boosted) shape `s`;
//! * `cache_boost_inv_shape[j]` — `1/shape` when `shape < 1`, else `0.0`;
//! * `cache_rate[j]` — `n_j + β₀`.
//!
//! **Invalidation rule:** the cached constants of chunk `j` depend only on that
//! chunk's `(N1_j, n_j)` pair and the priors fixed at construction, so they are
//! refreshed exactly when `(N1_j, n_j)` changes — i.e. inside
//! [`ChunkStatsSet::record`] and [`ChunkStatsSet::adjust_n1`] — and nowhere
//! else.  Draws ([`ChunkStatsSet::cached_belief_draw`]) take `&self` and never
//! touch the cache, which keeps the selection loop read-only and
//! allocation-free.
//!
//! The cache is built for the priors passed to [`ChunkStatsSet::with_priors`]
//! ([`ChunkStatsSet::new`] uses the paper defaults `α₀ = 0.1`, `β₀ = 1`).
//! Callers that score the same statistics under *different* priors (the policy
//! layer supports this for ablations) must fall back to the uncached path —
//! see [`ChunkStatsSet::priors`].
//!
//! # The belief-class index
//!
//! Two chunks with the same clamped `(N1, n)` pair have *identical* beliefs, so
//! under Thompson sampling they are exchangeable: the arg-max over `M` chunks
//! collapses to an arg-max over the distinct belief classes, with the maximum
//! of a class's `k` iid draws available in one exact order-statistic draw
//! (`exsample_rand::gamma_max_of_k`).  In ExSample's target regimes (early-run
//! all-prior state, skewed repositories where most chunks never hit) the class
//! count is orders of magnitude below `M`.
//!
//! [`ChunkStatsSet`] therefore maintains an incremental index of those classes:
//! every chunk belongs to exactly one class slot (`class_of`/`class_pos`), each
//! slot stores its key and member list, and a hash map resolves keys to slots.
//! Membership moves in O(1) (`swap_remove` + push) at the *same invalidation
//! seam as the SoA cache* — a chunk's class can only change when its `(N1, n)`
//! pair changes, i.e. inside [`ChunkStatsSet::record`] /
//! [`ChunkStatsSet::adjust_n1`].  Maintenance is RNG-free and always on, so it
//! never perturbs pick sequences; the class-max selection path in
//! [`crate::policy`] merely *reads* the index ([`ChunkStatsSet::class_count`],
//! [`ChunkStatsSet::class_members`], [`ChunkStatsSet::class_belief`]).

use crate::config::ExSampleConfig;
use exsample_rand::gamma::{gamma_draw, mt_constants};
use exsample_rand::Gamma;
use rand::Rng;
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// Sentinel for "chunk not yet assigned to a class slot" during construction.
const NO_CLASS: u32 = u32::MAX;

/// One belief class: the shared clamped `(N1, n)` key and the chunks that
/// currently carry it.  Freed slots keep their member capacity for reuse.
#[derive(Debug, Clone)]
struct ClassEntry {
    key: (u64, u64),
    members: Vec<u32>,
}

/// The `(N1, n)` statistics ExSample keeps for one chunk.
///
/// `N1` is stored as a signed integer: Algorithm 1 updates it by `|d0| − |d1|`, and
/// when an object first found in chunk *j* is later re-seen from a frame of chunk
/// *k ≠ j*, chunk *k* receives a `−1` without ever having received the `+1`, so the
/// raw counter can go (slightly) negative.  The belief distribution clamps it at
/// zero, which is the adjustment the paper's technical report describes for
/// instances spanning multiple chunks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChunkStats {
    n1: i64,
    n: u64,
}

impl ChunkStats {
    /// Fresh statistics (no samples, no results).
    pub fn new() -> Self {
        ChunkStats::default()
    }

    /// Number of frames sampled from this chunk.
    pub fn samples(&self) -> u64 {
        self.n
    }

    /// Raw `N1` counter (may be negative, see the type-level documentation).
    pub fn n1_raw(&self) -> i64 {
        self.n1
    }

    /// `N1` clamped at zero, as used in the estimator and the belief.
    pub fn n1(&self) -> u64 {
        self.n1.max(0) as u64
    }

    /// Record one sampled frame whose discriminator outcome changed `N1` by
    /// `n1_delta` (`|d0| − |d1|`).
    pub fn record(&mut self, n1_delta: i64) {
        self.n1 += n1_delta;
        self.n += 1;
    }

    /// Record a change to `N1` *without* a sample being taken from this chunk.
    ///
    /// Used when an object originally found in this chunk is re-seen from a frame
    /// belonging to a different chunk: that sighting decrements this chunk's `N1`
    /// but increments the other chunk's `n`.
    pub fn adjust_n1(&mut self, n1_delta: i64) {
        self.n1 += n1_delta;
    }

    /// The point estimate `R̂ = N1 / n` (Eq. III.1).  Defined as `+∞`-free: a chunk
    /// with no samples yet returns `f64::INFINITY`-avoiding 0/0 by reporting the
    /// prior mean implied by `config` instead would hide information, so this
    /// returns `None` when `n == 0`.
    pub fn point_estimate(&self) -> Option<f64> {
        if self.n == 0 {
            None
        } else {
            Some(self.n1() as f64 / self.n as f64)
        }
    }

    /// The Gamma belief distribution `Γ(N1 + α₀, n + β₀)` of Eq. III.4.
    pub fn belief(&self, config: &ExSampleConfig) -> Gamma {
        Gamma::new(
            self.n1() as f64 + config.alpha0,
            self.n as f64 + config.beta0,
        )
        .expect("priors validated to be positive")
    }
}

/// The statistics of every chunk, plus aggregate bookkeeping and the
/// struct-of-arrays belief cache (see the module docs).
#[derive(Debug, Clone)]
pub struct ChunkStatsSet {
    stats: Vec<ChunkStats>,
    total_samples: u64,
    alpha0: f64,
    beta0: f64,
    cache_d: Vec<f64>,
    cache_c: Vec<f64>,
    cache_boost_inv_shape: Vec<f64>,
    cache_rate: Vec<f64>,
    // Belief-class index (see the module docs): chunk → slot, chunk → position
    // in that slot's member list, the slots themselves, key → slot lookup, and
    // emptied slots kept for reuse.
    class_of: Vec<u32>,
    class_pos: Vec<u32>,
    classes: Vec<ClassEntry>,
    class_lookup: HashMap<(u64, u64), u32>,
    free_class_slots: Vec<u32>,
}

impl ChunkStatsSet {
    /// Create statistics for `chunks` chunks, caching beliefs for the paper's
    /// default priors (`α₀ = 0.1`, `β₀ = 1`).
    pub fn new(chunks: usize) -> Self {
        ChunkStatsSet::with_priors(chunks, 0.1, 1.0)
    }

    /// Create statistics for `chunks` chunks, caching beliefs for the given
    /// Gamma priors.
    pub fn with_priors(chunks: usize, alpha0: f64, beta0: f64) -> Self {
        assert!(chunks > 0, "ExSample needs at least one chunk");
        assert!(
            alpha0 > 0.0 && beta0 > 0.0,
            "belief priors must be positive (got alpha0 = {alpha0}, beta0 = {beta0})"
        );
        assert!(
            chunks < NO_CLASS as usize,
            "the class index stores chunk ids as u32"
        );
        let mut set = ChunkStatsSet {
            stats: vec![ChunkStats::new(); chunks],
            total_samples: 0,
            alpha0,
            beta0,
            cache_d: vec![0.0; chunks],
            cache_c: vec![0.0; chunks],
            cache_boost_inv_shape: vec![0.0; chunks],
            cache_rate: vec![0.0; chunks],
            class_of: vec![NO_CLASS; chunks],
            class_pos: vec![0; chunks],
            classes: Vec::new(),
            class_lookup: HashMap::new(),
            free_class_slots: Vec::new(),
        };
        for j in 0..chunks {
            set.refresh_cache(j);
        }
        set
    }

    /// The priors the belief cache is built for.
    pub fn priors(&self) -> (f64, f64) {
        (self.alpha0, self.beta0)
    }

    /// Recompute chunk `j`'s cached belief constants from its `(N1, n)` pair
    /// and move it to the matching belief class.  This is the single
    /// invalidation seam for both the SoA cache and the class index.
    fn refresh_cache(&mut self, j: usize) {
        let s = &self.stats[j];
        let shape = s.n1() as f64 + self.alpha0;
        let (d, c, boost_inv_shape) = mt_constants(shape);
        self.cache_d[j] = d;
        self.cache_c[j] = c;
        self.cache_boost_inv_shape[j] = boost_inv_shape;
        self.cache_rate[j] = s.samples() as f64 + self.beta0;
        self.update_class(j);
    }

    /// Move chunk `j` into the class slot matching its current clamped
    /// `(N1, n)` key, creating (or reusing) a slot if the key is new.  O(1).
    fn update_class(&mut self, j: usize) {
        let key = (self.stats[j].n1(), self.stats[j].samples());
        let current = self.class_of[j];
        if current != NO_CLASS {
            if self.classes[current as usize].key == key {
                return;
            }
            self.remove_from_class(j, current);
        }
        let slot = match self.class_lookup.entry(key) {
            Entry::Occupied(occupied) => *occupied.get(),
            Entry::Vacant(vacant) => {
                let slot = if let Some(freed) = self.free_class_slots.pop() {
                    self.classes[freed as usize].key = key;
                    freed
                } else {
                    let fresh = self.classes.len() as u32;
                    self.classes.push(ClassEntry {
                        key,
                        members: Vec::new(),
                    });
                    fresh
                };
                *vacant.insert(slot)
            }
        };
        let entry = &mut self.classes[slot as usize];
        self.class_pos[j] = entry.members.len() as u32;
        entry.members.push(j as u32);
        self.class_of[j] = slot;
    }

    /// Unlink chunk `j` from class slot `slot`, recycling the slot when it
    /// empties.  The member that backfills `j`'s position has its stored
    /// position fixed up, keeping every removal O(1).
    fn remove_from_class(&mut self, j: usize, slot: u32) {
        let pos = self.class_pos[j] as usize;
        let entry = &mut self.classes[slot as usize];
        entry.members.swap_remove(pos);
        if let Some(&moved) = entry.members.get(pos) {
            self.class_pos[moved as usize] = pos as u32;
        }
        if entry.members.is_empty() {
            self.class_lookup.remove(&entry.key);
            self.free_class_slots.push(slot);
        }
    }

    /// Number of distinct belief classes currently occupied.
    #[inline]
    pub fn class_count(&self) -> usize {
        self.class_lookup.len()
    }

    /// Number of class *slots* ever allocated (occupied plus recycled).  The
    /// class-max fold iterates slots and skips empty ones, so this bounds its
    /// scan; it never exceeds the chunk count.
    #[inline]
    pub fn class_slot_count(&self) -> usize {
        self.classes.len()
    }

    /// The chunks currently in class slot `slot` (empty for recycled slots).
    #[inline]
    pub fn class_members(&self, slot: usize) -> &[u32] {
        &self.classes[slot].members
    }

    /// The class slot chunk `j` currently belongs to.
    #[inline]
    pub fn chunk_class(&self, j: usize) -> usize {
        self.class_of[j] as usize
    }

    /// The clamped `(N1, n)` key of class slot `slot`.
    #[inline]
    pub fn class_key(&self, slot: usize) -> (u64, u64) {
        self.classes[slot].key
    }

    /// The `(shape, rate)` of the belief shared by every chunk in class slot
    /// `slot`, under the priors the set was built with.
    #[inline]
    pub fn class_belief(&self, slot: usize) -> (f64, f64) {
        let (n1, n) = self.classes[slot].key;
        (n1 as f64 + self.alpha0, n as f64 + self.beta0)
    }

    /// The cached Marsaglia–Tsang constants `(d, c, boost_inv_shape, rate)` of
    /// chunk `j`'s belief.  Exposed for the selection hot path in
    /// [`crate::policy`], which needs the raw constants to prune losing draws.
    #[inline]
    pub fn belief_constants(&self, j: usize) -> (f64, f64, f64, f64) {
        (
            self.cache_d[j],
            self.cache_c[j],
            self.cache_boost_inv_shape[j],
            self.cache_rate[j],
        )
    }

    /// The whole struct-of-arrays belief cache as parallel slices
    /// `(d, c, boost_inv_shape, rate)`, one entry per chunk.
    ///
    /// The selection hot path iterates these zipped, which lets the compiler
    /// elide per-chunk bounds checks.
    #[inline]
    pub fn belief_soa(&self) -> (&[f64], &[f64], &[f64], &[f64]) {
        (
            &self.cache_d,
            &self.cache_c,
            &self.cache_boost_inv_shape,
            &self.cache_rate,
        )
    }

    /// Draw one value from chunk `j`'s belief using the cached constants.
    ///
    /// Bitwise identical to `self.chunk(j).belief(config).sample(rng)` under
    /// the same RNG state, provided `config`'s priors match [`Self::priors`] —
    /// without constructing a distribution.
    #[inline]
    pub fn cached_belief_draw<R: Rng + ?Sized>(&self, j: usize, rng: &mut R) -> f64 {
        gamma_draw(
            rng,
            self.cache_d[j],
            self.cache_c[j],
            self.cache_boost_inv_shape[j],
            self.cache_rate[j],
        )
    }

    /// Number of chunks.
    pub fn len(&self) -> usize {
        self.stats.len()
    }

    /// Whether there are no chunks (never true).
    pub fn is_empty(&self) -> bool {
        self.stats.is_empty()
    }

    /// Statistics of chunk `j`.
    pub fn chunk(&self, j: usize) -> &ChunkStats {
        &self.stats[j]
    }

    /// All chunk statistics.
    pub fn all(&self) -> &[ChunkStats] {
        &self.stats
    }

    /// Total frames sampled across all chunks.
    pub fn total_samples(&self) -> u64 {
        self.total_samples
    }

    /// Record a sample of chunk `j` with the given `N1` change.
    pub fn record(&mut self, j: usize, n1_delta: i64) {
        self.stats[j].record(n1_delta);
        self.total_samples += 1;
        self.refresh_cache(j);
    }

    /// Apply an `N1`-only adjustment to chunk `j` (no sample charged).
    pub fn adjust_n1(&mut self, j: usize, n1_delta: i64) {
        self.stats[j].adjust_n1(n1_delta);
        self.refresh_cache(j);
    }

    /// Seed chunk `j` with the accumulated history of a previous run: a net
    /// `N1` change and a sample count, applied in one step.
    ///
    /// This is the warm-start seam — a recovered belief store replays each
    /// chunk's totals into a fresh sampler so it resumes with the posterior
    /// the crashed (or completed) run had earned, instead of the prior.
    /// Seeding chunk `j` with the `(Σ n1_delta, Σ samples)` of a run's
    /// records leaves the posterior identical to having called
    /// [`ChunkStatsSet::record`] once per original sample.
    pub fn seed_chunk(&mut self, j: usize, n1_delta: i64, samples_delta: u64) {
        self.stats[j].n1 += n1_delta;
        self.stats[j].n += samples_delta;
        self.total_samples += samples_delta;
        self.refresh_cache(j);
    }

    /// The empirical fraction of samples allocated to each chunk so far.
    ///
    /// This is the de-facto weight vector `w_j = n_j / n` that Section IV-A compares
    /// against the optimal offline allocation.
    pub fn allocation(&self) -> Vec<f64> {
        if self.total_samples == 0 {
            return vec![0.0; self.stats.len()];
        }
        self.stats
            .iter()
            .map(|s| s.samples() as f64 / self.total_samples as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exsample_rand::Sampler;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn record_updates_counters() {
        let mut s = ChunkStats::new();
        assert_eq!(s.point_estimate(), None);
        s.record(2);
        s.record(0);
        s.record(-1);
        assert_eq!(s.samples(), 3);
        assert_eq!(s.n1_raw(), 1);
        assert_eq!(s.n1(), 1);
        assert!((s.point_estimate().unwrap() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn negative_raw_n1_is_clamped_in_estimate_and_belief() {
        let mut s = ChunkStats::new();
        s.record(-1);
        s.record(-1);
        assert_eq!(s.n1_raw(), -2);
        assert_eq!(s.n1(), 0);
        assert_eq!(s.point_estimate(), Some(0.0));
        let belief = s.belief(&ExSampleConfig::default());
        assert!((belief.shape() - 0.1).abs() < 1e-12);
        assert!((belief.rate() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn belief_matches_eq_iii_4() {
        let mut s = ChunkStats::new();
        for _ in 0..100 {
            s.record(0);
        }
        for _ in 0..5 {
            s.record(1);
        }
        let config = ExSampleConfig::default();
        let belief = s.belief(&config);
        assert!((belief.shape() - 5.1).abs() < 1e-12);
        assert!((belief.rate() - 106.0).abs() < 1e-12);
        // Mean ≈ N1/n and variance obeys the Eq. III.3-style bound mean/n.
        assert!((belief.mean() - 5.1 / 106.0).abs() < 1e-12);
        assert!(belief.variance() <= belief.mean() / 105.0 + 1e-12);
    }

    #[test]
    fn fresh_chunk_belief_is_prior_only_and_samplable() {
        let s = ChunkStats::new();
        let belief = s.belief(&ExSampleConfig::default());
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            assert!(belief.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn stats_set_tracks_totals_and_allocation() {
        let mut set = ChunkStatsSet::new(4);
        assert_eq!(set.allocation(), vec![0.0; 4]);
        set.record(0, 1);
        set.record(0, 0);
        set.record(2, 1);
        set.record(3, 0);
        assert_eq!(set.total_samples(), 4);
        assert_eq!(set.chunk(0).samples(), 2);
        assert_eq!(set.chunk(1).samples(), 0);
        let alloc = set.allocation();
        assert!((alloc[0] - 0.5).abs() < 1e-12);
        assert!((alloc.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cross_chunk_adjustment_changes_n1_but_not_samples() {
        let mut set = ChunkStatsSet::new(2);
        set.record(0, 1);
        set.adjust_n1(0, -1);
        assert_eq!(set.chunk(0).samples(), 1);
        assert_eq!(set.chunk(0).n1(), 0);
        assert_eq!(set.total_samples(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one chunk")]
    fn zero_chunks_panics() {
        let _ = ChunkStatsSet::new(0);
    }

    #[test]
    #[should_panic(expected = "priors must be positive")]
    fn invalid_priors_panic() {
        let _ = ChunkStatsSet::with_priors(2, 0.0, 1.0);
    }

    #[test]
    fn cache_tracks_record_and_adjust() {
        use exsample_rand::gamma::mt_constants;
        let config = ExSampleConfig::default();
        let mut set = ChunkStatsSet::new(3);
        assert_eq!(set.priors(), (config.alpha0, config.beta0));
        // Mutate the statistics through both update paths and check the cached
        // constants always match a fresh computation from the belief.
        set.record(0, 1);
        set.record(0, 1);
        set.record(2, 0);
        set.adjust_n1(0, -1);
        set.adjust_n1(1, -5); // clamped at zero in the belief
        for j in 0..3 {
            let belief = set.chunk(j).belief(&config);
            let (ed, ec, eb) = mt_constants(belief.shape());
            let (d, c, b, rate) = set.belief_constants(j);
            assert_eq!(d.to_bits(), ed.to_bits(), "chunk {j} d");
            assert_eq!(c.to_bits(), ec.to_bits(), "chunk {j} c");
            assert_eq!(b.to_bits(), eb.to_bits(), "chunk {j} boost");
            assert_eq!(rate.to_bits(), belief.rate().to_bits(), "chunk {j} rate");
        }
    }

    #[test]
    fn cached_belief_draw_matches_uncached_bitwise() {
        let config = ExSampleConfig::default();
        let mut set = ChunkStatsSet::new(2);
        for _ in 0..40 {
            set.record(0, 0);
        }
        for _ in 0..10 {
            set.record(1, 1);
        }
        for j in 0..2 {
            let belief = set.chunk(j).belief(&config);
            let mut rng_a = StdRng::seed_from_u64(99);
            let mut rng_b = StdRng::seed_from_u64(99);
            for i in 0..2_000 {
                let a = set.cached_belief_draw(j, &mut rng_a);
                let b = belief.sample(&mut rng_b);
                assert_eq!(a.to_bits(), b.to_bits(), "chunk {j} draw {i}");
            }
        }
    }

    /// Cross-check the incremental class index against a from-scratch grouping
    /// of the chunks by their clamped `(N1, n)` keys.
    fn assert_class_index_consistent(set: &ChunkStatsSet) {
        use std::collections::HashMap;
        let mut expected: HashMap<(u64, u64), Vec<u32>> = HashMap::new();
        for (j, s) in set.all().iter().enumerate() {
            expected
                .entry((s.n1(), s.samples()))
                .or_default()
                .push(j as u32);
        }
        assert_eq!(set.class_count(), expected.len());
        assert!(set.class_slot_count() <= set.len());
        let mut seen = 0;
        for slot in 0..set.class_slot_count() {
            let members = set.class_members(slot);
            if members.is_empty() {
                continue;
            }
            let key = set.class_key(slot);
            let mut sorted: Vec<u32> = members.to_vec();
            sorted.sort_unstable();
            let mut want = expected
                .remove(&key)
                .unwrap_or_else(|| panic!("slot {slot} holds unexpected key {key:?}"));
            want.sort_unstable();
            assert_eq!(sorted, want, "slot {slot} membership for key {key:?}");
            for &m in members {
                assert_eq!(set.chunk_class(m as usize), slot, "chunk {m} back-pointer");
            }
            let (shape, rate) = set.class_belief(slot);
            let (alpha0, beta0) = set.priors();
            assert_eq!(shape.to_bits(), (key.0 as f64 + alpha0).to_bits());
            assert_eq!(rate.to_bits(), (key.1 as f64 + beta0).to_bits());
            seen += 1;
        }
        assert_eq!(seen, set.class_count());
        assert!(
            expected.is_empty(),
            "classes missing from index: {expected:?}"
        );
    }

    #[test]
    fn fresh_set_is_one_all_prior_class() {
        let set = ChunkStatsSet::new(10);
        assert_eq!(set.class_count(), 1);
        assert_eq!(set.class_members(set.chunk_class(0)).len(), 10);
        assert_eq!(set.class_key(set.chunk_class(0)), (0, 0));
        assert_class_index_consistent(&set);
    }

    #[test]
    fn class_index_tracks_record_and_adjust() {
        let mut set = ChunkStatsSet::new(6);
        set.record(0, 1); // (1, 1)
        assert_class_index_consistent(&set);
        set.record(1, 1); // joins (1, 1)
        assert_class_index_consistent(&set);
        assert_eq!(set.chunk_class(0), set.chunk_class(1));
        assert_eq!(set.class_count(), 2);
        set.record(2, 0); // (0, 1)
        set.record(3, 0); // joins (0, 1)
        assert_class_index_consistent(&set);
        assert_eq!(set.class_count(), 3);
        // Negative raw N1 clamps into the same class as a plain miss.
        set.record(4, -1);
        assert_class_index_consistent(&set);
        assert_eq!(set.chunk_class(4), set.chunk_class(2));
        // An N1-only adjustment moves classes without charging a sample.
        set.adjust_n1(1, -1); // (1,1) → (0,1)
        assert_class_index_consistent(&set);
        assert_eq!(set.chunk_class(1), set.chunk_class(2));
        // A no-op key change (already-clamped chunk adjusted further down)
        // leaves the index untouched.
        set.adjust_n1(4, -3);
        assert_class_index_consistent(&set);
    }

    #[test]
    fn emptied_class_slots_are_recycled() {
        let mut set = ChunkStatsSet::new(3);
        set.record(0, 1); // new slot for (1, 1)
        let slot = set.chunk_class(0);
        set.record(0, 0); // (1, 2): (1, 1) empties, slot freed
        assert!(set.class_members(slot).is_empty() || set.chunk_class(0) == slot);
        assert_class_index_consistent(&set);
        set.record(1, 1); // (1, 1) again: must reuse a freed slot, not grow
        assert_class_index_consistent(&set);
        assert!(set.class_slot_count() <= 3);
        // Slot count never exceeds the chunk count even under heavy churn.
        let mut rng_state = 0x9e3779b97f4a7c15u64;
        for step in 0..500 {
            rng_state = rng_state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (rng_state >> 33) as usize % 3;
            if step % 3 == 0 {
                set.adjust_n1(j, if step % 2 == 0 { -1 } else { 1 });
            } else {
                set.record(j, (step % 2) as i64);
            }
        }
        assert_class_index_consistent(&set);
        assert!(set.class_slot_count() <= 3);
    }

    #[test]
    fn seeding_a_chunk_is_equivalent_to_replaying_its_records() {
        // A warm start replays each chunk's (Σ n1_delta, Σ samples) in one
        // seed_chunk call; the posterior — raw counters, cached belief
        // constants, class index — must match a chunk that lived through the
        // individual records.
        let mut lived = ChunkStatsSet::new(3);
        let deltas = [1i64, -1, 0, 1, 1, -1, 0, 1];
        for (i, &d) in deltas.iter().enumerate() {
            lived.record(i % 3, d);
        }

        let mut seeded = ChunkStatsSet::new(3);
        for j in 0..3 {
            let n1: i64 = deltas
                .iter()
                .enumerate()
                .filter(|(i, _)| i % 3 == j)
                .map(|(_, &d)| d)
                .sum();
            let samples = deltas
                .iter()
                .enumerate()
                .filter(|(i, _)| i % 3 == j)
                .count() as u64;
            seeded.seed_chunk(j, n1, samples);
        }

        assert_eq!(lived.all(), seeded.all());
        assert_eq!(lived.total_samples(), seeded.total_samples());
        for j in 0..3 {
            assert_eq!(lived.belief_constants(j), seeded.belief_constants(j));
        }
        let mut rng_a = StdRng::seed_from_u64(11);
        let mut rng_b = StdRng::seed_from_u64(11);
        for j in 0..3 {
            assert_eq!(
                lived.cached_belief_draw(j, &mut rng_a).to_bits(),
                seeded.cached_belief_draw(j, &mut rng_b).to_bits()
            );
        }
    }

    #[test]
    fn non_default_priors_are_cached_for_those_priors() {
        let config = ExSampleConfig::default().with_priors(0.5, 2.0);
        let mut set = ChunkStatsSet::with_priors(4, 0.5, 2.0);
        set.record(3, 2);
        let belief = set.chunk(3).belief(&config);
        let mut rng_a = StdRng::seed_from_u64(7);
        let mut rng_b = StdRng::seed_from_u64(7);
        for _ in 0..500 {
            assert_eq!(
                set.cached_belief_draw(3, &mut rng_a).to_bits(),
                belief.sample(&mut rng_b).to_bits()
            );
        }
    }
}
