//! Per-chunk sampling statistics and belief distributions.
//!
//! # The belief cache
//!
//! Thompson sampling draws one value from every chunk's Gamma belief on every
//! pick, so belief construction sits directly on the hot path.  To avoid
//! rebuilding `M` distributions per pick, [`ChunkStatsSet`] maintains a
//! struct-of-arrays cache of the Marsaglia–Tsang sampling constants of each
//! chunk's belief `Γ(N1_j + α₀, n_j + β₀)`:
//!
//! * `cache_d[j]`, `cache_c[j]` — the squeeze constants `d = s − 1/3`,
//!   `c = 1/√(9d)` for the (boosted) shape `s`;
//! * `cache_boost_inv_shape[j]` — `1/shape` when `shape < 1`, else `0.0`;
//! * `cache_rate[j]` — `n_j + β₀`.
//!
//! **Invalidation rule:** the cached constants of chunk `j` depend only on that
//! chunk's `(N1_j, n_j)` pair and the priors fixed at construction, so they are
//! refreshed exactly when `(N1_j, n_j)` changes — i.e. inside
//! [`ChunkStatsSet::record`] and [`ChunkStatsSet::adjust_n1`] — and nowhere
//! else.  Draws ([`ChunkStatsSet::cached_belief_draw`]) take `&self` and never
//! touch the cache, which keeps the selection loop read-only and
//! allocation-free.
//!
//! The cache is built for the priors passed to [`ChunkStatsSet::with_priors`]
//! ([`ChunkStatsSet::new`] uses the paper defaults `α₀ = 0.1`, `β₀ = 1`).
//! Callers that score the same statistics under *different* priors (the policy
//! layer supports this for ablations) must fall back to the uncached path —
//! see [`ChunkStatsSet::priors`].

use crate::config::ExSampleConfig;
use exsample_rand::gamma::{gamma_draw, mt_constants};
use exsample_rand::Gamma;
use rand::Rng;

/// The `(N1, n)` statistics ExSample keeps for one chunk.
///
/// `N1` is stored as a signed integer: Algorithm 1 updates it by `|d0| − |d1|`, and
/// when an object first found in chunk *j* is later re-seen from a frame of chunk
/// *k ≠ j*, chunk *k* receives a `−1` without ever having received the `+1`, so the
/// raw counter can go (slightly) negative.  The belief distribution clamps it at
/// zero, which is the adjustment the paper's technical report describes for
/// instances spanning multiple chunks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChunkStats {
    n1: i64,
    n: u64,
}

impl ChunkStats {
    /// Fresh statistics (no samples, no results).
    pub fn new() -> Self {
        ChunkStats::default()
    }

    /// Number of frames sampled from this chunk.
    pub fn samples(&self) -> u64 {
        self.n
    }

    /// Raw `N1` counter (may be negative, see the type-level documentation).
    pub fn n1_raw(&self) -> i64 {
        self.n1
    }

    /// `N1` clamped at zero, as used in the estimator and the belief.
    pub fn n1(&self) -> u64 {
        self.n1.max(0) as u64
    }

    /// Record one sampled frame whose discriminator outcome changed `N1` by
    /// `n1_delta` (`|d0| − |d1|`).
    pub fn record(&mut self, n1_delta: i64) {
        self.n1 += n1_delta;
        self.n += 1;
    }

    /// Record a change to `N1` *without* a sample being taken from this chunk.
    ///
    /// Used when an object originally found in this chunk is re-seen from a frame
    /// belonging to a different chunk: that sighting decrements this chunk's `N1`
    /// but increments the other chunk's `n`.
    pub fn adjust_n1(&mut self, n1_delta: i64) {
        self.n1 += n1_delta;
    }

    /// The point estimate `R̂ = N1 / n` (Eq. III.1).  Defined as `+∞`-free: a chunk
    /// with no samples yet returns `f64::INFINITY`-avoiding 0/0 by reporting the
    /// prior mean implied by `config` instead would hide information, so this
    /// returns `None` when `n == 0`.
    pub fn point_estimate(&self) -> Option<f64> {
        if self.n == 0 {
            None
        } else {
            Some(self.n1() as f64 / self.n as f64)
        }
    }

    /// The Gamma belief distribution `Γ(N1 + α₀, n + β₀)` of Eq. III.4.
    pub fn belief(&self, config: &ExSampleConfig) -> Gamma {
        Gamma::new(
            self.n1() as f64 + config.alpha0,
            self.n as f64 + config.beta0,
        )
        .expect("priors validated to be positive")
    }
}

/// The statistics of every chunk, plus aggregate bookkeeping and the
/// struct-of-arrays belief cache (see the module docs).
#[derive(Debug, Clone)]
pub struct ChunkStatsSet {
    stats: Vec<ChunkStats>,
    total_samples: u64,
    alpha0: f64,
    beta0: f64,
    cache_d: Vec<f64>,
    cache_c: Vec<f64>,
    cache_boost_inv_shape: Vec<f64>,
    cache_rate: Vec<f64>,
}

impl ChunkStatsSet {
    /// Create statistics for `chunks` chunks, caching beliefs for the paper's
    /// default priors (`α₀ = 0.1`, `β₀ = 1`).
    pub fn new(chunks: usize) -> Self {
        ChunkStatsSet::with_priors(chunks, 0.1, 1.0)
    }

    /// Create statistics for `chunks` chunks, caching beliefs for the given
    /// Gamma priors.
    pub fn with_priors(chunks: usize, alpha0: f64, beta0: f64) -> Self {
        assert!(chunks > 0, "ExSample needs at least one chunk");
        assert!(
            alpha0 > 0.0 && beta0 > 0.0,
            "belief priors must be positive (got alpha0 = {alpha0}, beta0 = {beta0})"
        );
        let mut set = ChunkStatsSet {
            stats: vec![ChunkStats::new(); chunks],
            total_samples: 0,
            alpha0,
            beta0,
            cache_d: vec![0.0; chunks],
            cache_c: vec![0.0; chunks],
            cache_boost_inv_shape: vec![0.0; chunks],
            cache_rate: vec![0.0; chunks],
        };
        for j in 0..chunks {
            set.refresh_cache(j);
        }
        set
    }

    /// The priors the belief cache is built for.
    pub fn priors(&self) -> (f64, f64) {
        (self.alpha0, self.beta0)
    }

    /// Recompute chunk `j`'s cached belief constants from its `(N1, n)` pair.
    fn refresh_cache(&mut self, j: usize) {
        let s = &self.stats[j];
        let shape = s.n1() as f64 + self.alpha0;
        let (d, c, boost_inv_shape) = mt_constants(shape);
        self.cache_d[j] = d;
        self.cache_c[j] = c;
        self.cache_boost_inv_shape[j] = boost_inv_shape;
        self.cache_rate[j] = s.samples() as f64 + self.beta0;
    }

    /// The cached Marsaglia–Tsang constants `(d, c, boost_inv_shape, rate)` of
    /// chunk `j`'s belief.  Exposed for the selection hot path in
    /// [`crate::policy`], which needs the raw constants to prune losing draws.
    #[inline]
    pub fn belief_constants(&self, j: usize) -> (f64, f64, f64, f64) {
        (
            self.cache_d[j],
            self.cache_c[j],
            self.cache_boost_inv_shape[j],
            self.cache_rate[j],
        )
    }

    /// The whole struct-of-arrays belief cache as parallel slices
    /// `(d, c, boost_inv_shape, rate)`, one entry per chunk.
    ///
    /// The selection hot path iterates these zipped, which lets the compiler
    /// elide per-chunk bounds checks.
    #[inline]
    pub fn belief_soa(&self) -> (&[f64], &[f64], &[f64], &[f64]) {
        (
            &self.cache_d,
            &self.cache_c,
            &self.cache_boost_inv_shape,
            &self.cache_rate,
        )
    }

    /// Draw one value from chunk `j`'s belief using the cached constants.
    ///
    /// Bitwise identical to `self.chunk(j).belief(config).sample(rng)` under
    /// the same RNG state, provided `config`'s priors match [`Self::priors`] —
    /// without constructing a distribution.
    #[inline]
    pub fn cached_belief_draw<R: Rng + ?Sized>(&self, j: usize, rng: &mut R) -> f64 {
        gamma_draw(
            rng,
            self.cache_d[j],
            self.cache_c[j],
            self.cache_boost_inv_shape[j],
            self.cache_rate[j],
        )
    }

    /// Number of chunks.
    pub fn len(&self) -> usize {
        self.stats.len()
    }

    /// Whether there are no chunks (never true).
    pub fn is_empty(&self) -> bool {
        self.stats.is_empty()
    }

    /// Statistics of chunk `j`.
    pub fn chunk(&self, j: usize) -> &ChunkStats {
        &self.stats[j]
    }

    /// All chunk statistics.
    pub fn all(&self) -> &[ChunkStats] {
        &self.stats
    }

    /// Total frames sampled across all chunks.
    pub fn total_samples(&self) -> u64 {
        self.total_samples
    }

    /// Record a sample of chunk `j` with the given `N1` change.
    pub fn record(&mut self, j: usize, n1_delta: i64) {
        self.stats[j].record(n1_delta);
        self.total_samples += 1;
        self.refresh_cache(j);
    }

    /// Apply an `N1`-only adjustment to chunk `j` (no sample charged).
    pub fn adjust_n1(&mut self, j: usize, n1_delta: i64) {
        self.stats[j].adjust_n1(n1_delta);
        self.refresh_cache(j);
    }

    /// The empirical fraction of samples allocated to each chunk so far.
    ///
    /// This is the de-facto weight vector `w_j = n_j / n` that Section IV-A compares
    /// against the optimal offline allocation.
    pub fn allocation(&self) -> Vec<f64> {
        if self.total_samples == 0 {
            return vec![0.0; self.stats.len()];
        }
        self.stats
            .iter()
            .map(|s| s.samples() as f64 / self.total_samples as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exsample_rand::Sampler;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn record_updates_counters() {
        let mut s = ChunkStats::new();
        assert_eq!(s.point_estimate(), None);
        s.record(2);
        s.record(0);
        s.record(-1);
        assert_eq!(s.samples(), 3);
        assert_eq!(s.n1_raw(), 1);
        assert_eq!(s.n1(), 1);
        assert!((s.point_estimate().unwrap() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn negative_raw_n1_is_clamped_in_estimate_and_belief() {
        let mut s = ChunkStats::new();
        s.record(-1);
        s.record(-1);
        assert_eq!(s.n1_raw(), -2);
        assert_eq!(s.n1(), 0);
        assert_eq!(s.point_estimate(), Some(0.0));
        let belief = s.belief(&ExSampleConfig::default());
        assert!((belief.shape() - 0.1).abs() < 1e-12);
        assert!((belief.rate() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn belief_matches_eq_iii_4() {
        let mut s = ChunkStats::new();
        for _ in 0..100 {
            s.record(0);
        }
        for _ in 0..5 {
            s.record(1);
        }
        let config = ExSampleConfig::default();
        let belief = s.belief(&config);
        assert!((belief.shape() - 5.1).abs() < 1e-12);
        assert!((belief.rate() - 106.0).abs() < 1e-12);
        // Mean ≈ N1/n and variance obeys the Eq. III.3-style bound mean/n.
        assert!((belief.mean() - 5.1 / 106.0).abs() < 1e-12);
        assert!(belief.variance() <= belief.mean() / 105.0 + 1e-12);
    }

    #[test]
    fn fresh_chunk_belief_is_prior_only_and_samplable() {
        let s = ChunkStats::new();
        let belief = s.belief(&ExSampleConfig::default());
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            assert!(belief.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn stats_set_tracks_totals_and_allocation() {
        let mut set = ChunkStatsSet::new(4);
        assert_eq!(set.allocation(), vec![0.0; 4]);
        set.record(0, 1);
        set.record(0, 0);
        set.record(2, 1);
        set.record(3, 0);
        assert_eq!(set.total_samples(), 4);
        assert_eq!(set.chunk(0).samples(), 2);
        assert_eq!(set.chunk(1).samples(), 0);
        let alloc = set.allocation();
        assert!((alloc[0] - 0.5).abs() < 1e-12);
        assert!((alloc.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cross_chunk_adjustment_changes_n1_but_not_samples() {
        let mut set = ChunkStatsSet::new(2);
        set.record(0, 1);
        set.adjust_n1(0, -1);
        assert_eq!(set.chunk(0).samples(), 1);
        assert_eq!(set.chunk(0).n1(), 0);
        assert_eq!(set.total_samples(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one chunk")]
    fn zero_chunks_panics() {
        let _ = ChunkStatsSet::new(0);
    }

    #[test]
    #[should_panic(expected = "priors must be positive")]
    fn invalid_priors_panic() {
        let _ = ChunkStatsSet::with_priors(2, 0.0, 1.0);
    }

    #[test]
    fn cache_tracks_record_and_adjust() {
        use exsample_rand::gamma::mt_constants;
        let config = ExSampleConfig::default();
        let mut set = ChunkStatsSet::new(3);
        assert_eq!(set.priors(), (config.alpha0, config.beta0));
        // Mutate the statistics through both update paths and check the cached
        // constants always match a fresh computation from the belief.
        set.record(0, 1);
        set.record(0, 1);
        set.record(2, 0);
        set.adjust_n1(0, -1);
        set.adjust_n1(1, -5); // clamped at zero in the belief
        for j in 0..3 {
            let belief = set.chunk(j).belief(&config);
            let (ed, ec, eb) = mt_constants(belief.shape());
            let (d, c, b, rate) = set.belief_constants(j);
            assert_eq!(d.to_bits(), ed.to_bits(), "chunk {j} d");
            assert_eq!(c.to_bits(), ec.to_bits(), "chunk {j} c");
            assert_eq!(b.to_bits(), eb.to_bits(), "chunk {j} boost");
            assert_eq!(rate.to_bits(), belief.rate().to_bits(), "chunk {j} rate");
        }
    }

    #[test]
    fn cached_belief_draw_matches_uncached_bitwise() {
        let config = ExSampleConfig::default();
        let mut set = ChunkStatsSet::new(2);
        for _ in 0..40 {
            set.record(0, 0);
        }
        for _ in 0..10 {
            set.record(1, 1);
        }
        for j in 0..2 {
            let belief = set.chunk(j).belief(&config);
            let mut rng_a = StdRng::seed_from_u64(99);
            let mut rng_b = StdRng::seed_from_u64(99);
            for i in 0..2_000 {
                let a = set.cached_belief_draw(j, &mut rng_a);
                let b = belief.sample(&mut rng_b);
                assert_eq!(a.to_bits(), b.to_bits(), "chunk {j} draw {i}");
            }
        }
    }

    #[test]
    fn non_default_priors_are_cached_for_those_priors() {
        let config = ExSampleConfig::default().with_priors(0.5, 2.0);
        let mut set = ChunkStatsSet::with_priors(4, 0.5, 2.0);
        set.record(3, 2);
        let belief = set.chunk(3).belief(&config);
        let mut rng_a = StdRng::seed_from_u64(7);
        let mut rng_b = StdRng::seed_from_u64(7);
        for _ in 0..500 {
            assert_eq!(
                set.cached_belief_draw(3, &mut rng_a).to_bits(),
                belief.sample(&mut rng_b).to_bits()
            );
        }
    }
}
