//! Per-chunk sampling statistics and belief distributions.

use crate::config::ExSampleConfig;
use exsample_rand::Gamma;

/// The `(N1, n)` statistics ExSample keeps for one chunk.
///
/// `N1` is stored as a signed integer: Algorithm 1 updates it by `|d0| − |d1|`, and
/// when an object first found in chunk *j* is later re-seen from a frame of chunk
/// *k ≠ j*, chunk *k* receives a `−1` without ever having received the `+1`, so the
/// raw counter can go (slightly) negative.  The belief distribution clamps it at
/// zero, which is the adjustment the paper's technical report describes for
/// instances spanning multiple chunks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChunkStats {
    n1: i64,
    n: u64,
}

impl ChunkStats {
    /// Fresh statistics (no samples, no results).
    pub fn new() -> Self {
        ChunkStats::default()
    }

    /// Number of frames sampled from this chunk.
    pub fn samples(&self) -> u64 {
        self.n
    }

    /// Raw `N1` counter (may be negative, see the type-level documentation).
    pub fn n1_raw(&self) -> i64 {
        self.n1
    }

    /// `N1` clamped at zero, as used in the estimator and the belief.
    pub fn n1(&self) -> u64 {
        self.n1.max(0) as u64
    }

    /// Record one sampled frame whose discriminator outcome changed `N1` by
    /// `n1_delta` (`|d0| − |d1|`).
    pub fn record(&mut self, n1_delta: i64) {
        self.n1 += n1_delta;
        self.n += 1;
    }

    /// Record a change to `N1` *without* a sample being taken from this chunk.
    ///
    /// Used when an object originally found in this chunk is re-seen from a frame
    /// belonging to a different chunk: that sighting decrements this chunk's `N1`
    /// but increments the other chunk's `n`.
    pub fn adjust_n1(&mut self, n1_delta: i64) {
        self.n1 += n1_delta;
    }

    /// The point estimate `R̂ = N1 / n` (Eq. III.1).  Defined as `+∞`-free: a chunk
    /// with no samples yet returns `f64::INFINITY`-avoiding 0/0 by reporting the
    /// prior mean implied by `config` instead would hide information, so this
    /// returns `None` when `n == 0`.
    pub fn point_estimate(&self) -> Option<f64> {
        if self.n == 0 {
            None
        } else {
            Some(self.n1() as f64 / self.n as f64)
        }
    }

    /// The Gamma belief distribution `Γ(N1 + α₀, n + β₀)` of Eq. III.4.
    pub fn belief(&self, config: &ExSampleConfig) -> Gamma {
        Gamma::new(
            self.n1() as f64 + config.alpha0,
            self.n as f64 + config.beta0,
        )
        .expect("priors validated to be positive")
    }
}

/// The statistics of every chunk, plus aggregate bookkeeping.
#[derive(Debug, Clone)]
pub struct ChunkStatsSet {
    stats: Vec<ChunkStats>,
    total_samples: u64,
}

impl ChunkStatsSet {
    /// Create statistics for `chunks` chunks.
    pub fn new(chunks: usize) -> Self {
        assert!(chunks > 0, "ExSample needs at least one chunk");
        ChunkStatsSet {
            stats: vec![ChunkStats::new(); chunks],
            total_samples: 0,
        }
    }

    /// Number of chunks.
    pub fn len(&self) -> usize {
        self.stats.len()
    }

    /// Whether there are no chunks (never true).
    pub fn is_empty(&self) -> bool {
        self.stats.is_empty()
    }

    /// Statistics of chunk `j`.
    pub fn chunk(&self, j: usize) -> &ChunkStats {
        &self.stats[j]
    }

    /// All chunk statistics.
    pub fn all(&self) -> &[ChunkStats] {
        &self.stats
    }

    /// Total frames sampled across all chunks.
    pub fn total_samples(&self) -> u64 {
        self.total_samples
    }

    /// Record a sample of chunk `j` with the given `N1` change.
    pub fn record(&mut self, j: usize, n1_delta: i64) {
        self.stats[j].record(n1_delta);
        self.total_samples += 1;
    }

    /// Apply an `N1`-only adjustment to chunk `j` (no sample charged).
    pub fn adjust_n1(&mut self, j: usize, n1_delta: i64) {
        self.stats[j].adjust_n1(n1_delta);
    }

    /// The empirical fraction of samples allocated to each chunk so far.
    ///
    /// This is the de-facto weight vector `w_j = n_j / n` that Section IV-A compares
    /// against the optimal offline allocation.
    pub fn allocation(&self) -> Vec<f64> {
        if self.total_samples == 0 {
            return vec![0.0; self.stats.len()];
        }
        self.stats
            .iter()
            .map(|s| s.samples() as f64 / self.total_samples as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exsample_rand::Sampler;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn record_updates_counters() {
        let mut s = ChunkStats::new();
        assert_eq!(s.point_estimate(), None);
        s.record(2);
        s.record(0);
        s.record(-1);
        assert_eq!(s.samples(), 3);
        assert_eq!(s.n1_raw(), 1);
        assert_eq!(s.n1(), 1);
        assert!((s.point_estimate().unwrap() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn negative_raw_n1_is_clamped_in_estimate_and_belief() {
        let mut s = ChunkStats::new();
        s.record(-1);
        s.record(-1);
        assert_eq!(s.n1_raw(), -2);
        assert_eq!(s.n1(), 0);
        assert_eq!(s.point_estimate(), Some(0.0));
        let belief = s.belief(&ExSampleConfig::default());
        assert!((belief.shape() - 0.1).abs() < 1e-12);
        assert!((belief.rate() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn belief_matches_eq_iii_4() {
        let mut s = ChunkStats::new();
        for _ in 0..100 {
            s.record(0);
        }
        for _ in 0..5 {
            s.record(1);
        }
        let config = ExSampleConfig::default();
        let belief = s.belief(&config);
        assert!((belief.shape() - 5.1).abs() < 1e-12);
        assert!((belief.rate() - 106.0).abs() < 1e-12);
        // Mean ≈ N1/n and variance obeys the Eq. III.3-style bound mean/n.
        assert!((belief.mean() - 5.1 / 106.0).abs() < 1e-12);
        assert!(belief.variance() <= belief.mean() / 105.0 + 1e-12);
    }

    #[test]
    fn fresh_chunk_belief_is_prior_only_and_samplable() {
        let s = ChunkStats::new();
        let belief = s.belief(&ExSampleConfig::default());
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            assert!(belief.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn stats_set_tracks_totals_and_allocation() {
        let mut set = ChunkStatsSet::new(4);
        assert_eq!(set.allocation(), vec![0.0; 4]);
        set.record(0, 1);
        set.record(0, 0);
        set.record(2, 1);
        set.record(3, 0);
        assert_eq!(set.total_samples(), 4);
        assert_eq!(set.chunk(0).samples(), 2);
        assert_eq!(set.chunk(1).samples(), 0);
        let alloc = set.allocation();
        assert!((alloc[0] - 0.5).abs() < 1e-12);
        assert!((alloc.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cross_chunk_adjustment_changes_n1_but_not_samples() {
        let mut set = ChunkStatsSet::new(2);
        set.record(0, 1);
        set.adjust_n1(0, -1);
        assert_eq!(set.chunk(0).samples(), 1);
        assert_eq!(set.chunk(0).n1(), 0);
        assert_eq!(set.total_samples(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one chunk")]
    fn zero_chunks_panics() {
        let _ = ChunkStatsSet::new(0);
    }
}
