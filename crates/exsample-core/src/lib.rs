//! # exsample-core
//!
//! The ExSample algorithm: chunk-based adaptive sampling for distinct-object
//! search over video repositories (Moll et al., ICDE 2022).
//!
//! ## The algorithm in one paragraph
//!
//! The repository is partitioned into `M` temporal chunks.  For each chunk `j`,
//! ExSample tracks `n_j` (frames sampled from the chunk so far) and `N1_j` (the
//! number of distinct objects found in the chunk that have been seen *exactly once*
//! so far).  The expected number of new objects in the next frame sampled from the
//! chunk is estimated as `R̂_j = N1_j / n_j` (Eq. III.1); the uncertainty of that
//! estimate is captured by a `Gamma(N1_j + α₀, n_j + β₀)` belief (Eq. III.4) whose
//! variance matches the bound of Eq. III.3.  Each iteration Thompson-samples one
//! value from every chunk's belief, samples a frame from the winning chunk, runs
//! the object detector, asks the discriminator which detections are new (`d0`) or
//! second sightings (`d1`), and updates `N1_j += |d0| − |d1|`, `n_j += 1`.
//!
//! ## Crate layout
//!
//! * [`config`] — [`ExSampleConfig`]: priors, chunk-selection policy, within-chunk
//!   sampling strategy, batch size.
//! * [`stats`] — [`ChunkStats`] / [`ChunkStatsSet`]: the `(N1, n)` bookkeeping and
//!   belief construction.
//! * [`estimator`] — the `R̂` estimator and the theoretical quantities (bias and
//!   variance bounds, `π_i(n)` terms) used by the validation experiments.
//! * [`policy`] — chunk-selection policies: Thompson sampling (the paper's choice),
//!   Bayes-UCB, greedy point-estimate, and uniform round-robin (ablations).
//! * [`exsample`] — [`ExSample`]: the incremental sampler state machine (pick a
//!   frame / record feedback), including batched picking (Section III-F).
//!
//! The complete Algorithm 1 loop — wiring a detector and discriminator to the
//! sampler — lives in the `exsample-engine` crate (`run_query` there is a thin
//! wrapper over its batched multi-query `QueryEngine`); this crate is only the
//! sampling algorithm itself.
//!
//! ## Hot-path design
//!
//! Thompson sampling draws one Gamma value per chunk per pick, so at `M`
//! chunks the selection step executes `M` Gamma draws for every frame that
//! reaches the detector.  The selection hot path is engineered around three
//! invariants (see [`stats`] and [`policy`] for details):
//!
//! * **Belief cache (struct-of-arrays).**  [`ChunkStatsSet`] caches each
//!   chunk's Marsaglia–Tsang sampling constants (`d`, `c`, the `shape < 1`
//!   boost exponent, and the rate) in four parallel arrays.  *Invalidation
//!   rule:* chunk `j`'s entry is refreshed exactly when its `(N1_j, n_j)` pair
//!   changes — inside `record` and `adjust_n1` — and never on the read path, so
//!   a pick is `M` cheap cached draws instead of `M` distribution
//!   constructions.  The cached draws are bitwise identical to sampling a
//!   freshly constructed belief under the same RNG state.
//! * **Allocation-free selection.**  [`ExSample`] maintains the eligibility
//!   mask, eligible-chunk count and total remaining-frame count incrementally
//!   (updated the moment a chunk's last frame is handed out), and keeps
//!   reusable scratch buffers for batched selection.  `next_frame`,
//!   `next_batch_into` and `is_exhausted` perform zero heap allocations after
//!   warm-up — a counting-allocator test pins the policy layer to exactly
//!   zero.  Batched selection makes a *single pass* over the chunk cache
//!   maintaining `batch` running arg-maxes instead of `batch` full scans.
//! * **Pruned arg-max.**  A chunk's draw is `d·v³·exp(−E/shape)/rate` with the
//!   boost factor ≤ 1, so a multiply-compare against the running best prunes
//!   the exponential variate, the `exp` and the division for chunks that
//!   provably cannot win; the NaN-total `beats` relation keeps degenerate
//!   draws from masking later chunks.  Equivalence with a textbook full-draw
//!   arg-max is asserted by chi-square tests, and the cached and uncached
//!   selection paths consume identical RNG streams (same picks under the same
//!   seed, draw for draw).
//! * **Belief-class deduplication (opt-in).**  Chunks sharing a clamped
//!   `(N1, n)` posterior have identical beliefs and are exchangeable under
//!   Thompson sampling, so with [`SelectionStrategy::ClassMax`] the arg-max
//!   runs over the distinct belief *classes*: one exact max-of-k
//!   order-statistic draw per class (`exsample_rand::gamma_max_of_k`), winner
//!   resolved uniformly within the winning class.  [`ChunkStatsSet`] maintains
//!   the class index incrementally at the same invalidation seam as the belief
//!   cache (RNG-free, so the default `PerChunk` strategy stays
//!   bitwise-identical), and `policy::class_max_applicable` gates the fold —
//!   falling back to the per-chunk fold at small `M` or low class occupancy.
//!   Distributional equivalence with the per-chunk fold is pinned by
//!   chi-square tests; the pick cost scales with posterior diversity instead
//!   of repository size.
//!
//! ## Example
//!
//! ```
//! use exsample_core::{ExSample, ExSampleConfig};
//! use rand::SeedableRng;
//!
//! // Four chunks of 1000 frames each.
//! let mut sampler = ExSample::new(ExSampleConfig::default(), &[1000, 1000, 1000, 1000]);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//!
//! // Sampling loop: pretend chunk 2 is full of new objects.
//! for _ in 0..200 {
//!     let pick = sampler.next_frame(&mut rng).expect("frames remain");
//!     let found_new = if pick.chunk == 2 { 1 } else { 0 };
//!     sampler.record(pick.chunk, found_new);
//! }
//! // The sampler should have concentrated on chunk 2.
//! assert!(sampler.stats().chunk(2).samples() > 60);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod config;
pub mod estimator;
pub mod exsample;
pub mod policy;
pub mod stats;

pub use config::{ChunkSelectionPolicy, ExSampleConfig, SelectionStrategy, WithinChunkSampling};
pub use exsample::{ExSample, FramePick, SelectionTelemetry};
pub use stats::{ChunkStats, ChunkStatsSet};
