//! # exsample-core
//!
//! The ExSample algorithm: chunk-based adaptive sampling for distinct-object
//! search over video repositories (Moll et al., ICDE 2022).
//!
//! ## The algorithm in one paragraph
//!
//! The repository is partitioned into `M` temporal chunks.  For each chunk `j`,
//! ExSample tracks `n_j` (frames sampled from the chunk so far) and `N1_j` (the
//! number of distinct objects found in the chunk that have been seen *exactly once*
//! so far).  The expected number of new objects in the next frame sampled from the
//! chunk is estimated as `R̂_j = N1_j / n_j` (Eq. III.1); the uncertainty of that
//! estimate is captured by a `Gamma(N1_j + α₀, n_j + β₀)` belief (Eq. III.4) whose
//! variance matches the bound of Eq. III.3.  Each iteration Thompson-samples one
//! value from every chunk's belief, samples a frame from the winning chunk, runs
//! the object detector, asks the discriminator which detections are new (`d0`) or
//! second sightings (`d1`), and updates `N1_j += |d0| − |d1|`, `n_j += 1`.
//!
//! ## Crate layout
//!
//! * [`config`] — [`ExSampleConfig`]: priors, chunk-selection policy, within-chunk
//!   sampling strategy, batch size.
//! * [`stats`] — [`ChunkStats`] / [`ChunkStatsSet`]: the `(N1, n)` bookkeeping and
//!   belief construction.
//! * [`estimator`] — the `R̂` estimator and the theoretical quantities (bias and
//!   variance bounds, `π_i(n)` terms) used by the validation experiments.
//! * [`policy`] — chunk-selection policies: Thompson sampling (the paper's choice),
//!   Bayes-UCB, greedy point-estimate, and uniform round-robin (ablations).
//! * [`exsample`] — [`ExSample`]: the incremental sampler state machine (pick a
//!   frame / record feedback), including batched picking (Section III-F).
//! * [`driver`] — [`driver::run_query`]: the complete Algorithm 1 loop wiring a
//!   detector and discriminator to the sampler.
//!
//! ## Example
//!
//! ```
//! use exsample_core::{ExSample, ExSampleConfig};
//! use rand::SeedableRng;
//!
//! // Four chunks of 1000 frames each.
//! let mut sampler = ExSample::new(ExSampleConfig::default(), &[1000, 1000, 1000, 1000]);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//!
//! // Sampling loop: pretend chunk 2 is full of new objects.
//! for _ in 0..200 {
//!     let pick = sampler.next_frame(&mut rng).expect("frames remain");
//!     let found_new = if pick.chunk == 2 { 1 } else { 0 };
//!     sampler.record(pick.chunk, found_new);
//! }
//! // The sampler should have concentrated on chunk 2.
//! assert!(sampler.stats().chunk(2).samples() > 60);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod config;
pub mod driver;
pub mod estimator;
pub mod exsample;
pub mod policy;
pub mod stats;

pub use config::{ChunkSelectionPolicy, ExSampleConfig, WithinChunkSampling};
pub use exsample::{ExSample, FramePick};
pub use stats::{ChunkStats, ChunkStatsSet};
