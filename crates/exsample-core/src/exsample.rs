//! The ExSample sampler state machine.
//!
//! [`ExSample`] exposes the algorithm as an incremental *pick / record* interface:
//! callers ask for the next frame to process ([`ExSample::next_frame`] or
//! [`ExSample::next_batch`]) and report back what the discriminator said about that
//! frame ([`ExSample::record`]).  Keeping the detector and discriminator outside
//! the state machine lets the same sampler drive the pure simulations of Figures
//! 2–4 (where "processing a frame" is a coin-flip per instance) and the full video
//! pipeline of Section V (where it is a detector + discriminator call), and makes
//! the batched-sampling optimisation a natural extension rather than a special
//! mode.

use crate::config::{ExSampleConfig, WithinChunkSampling};
use crate::policy;
use crate::stats::ChunkStatsSet;
use exsample_video::{FrameSampler, RandomPlusSampler, UniformSampler};
use rand::Rng;

/// A frame chosen by the sampler: chunk index plus the frame's offset within that
/// chunk.  Callers translate the offset into a global frame id by adding the
/// chunk's start frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FramePick {
    /// Index of the selected chunk.
    pub chunk: usize,
    /// Offset of the selected frame within the chunk (`0 ≤ offset < chunk length`).
    pub offset: u64,
}

/// Counters describing how the chunk-selection strategy spent its draws.
///
/// Accumulated by [`ExSample`] across every pick and surfaced on reports so
/// experiments can show dedup savings next to recall.  `draws_saved` counts,
/// for each pick served by the class-max fold, the difference between the
/// eligible chunk count (what the per-chunk fold would have drawn) and the
/// class count (what the class-max fold actually drew) — the headline number
/// of the belief-class optimisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SelectionTelemetry {
    /// Picks served by the belief-class max-of-k fold.
    pub class_max_picks: u64,
    /// Picks served by the per-chunk fold (including class-max fallbacks).
    pub per_chunk_picks: u64,
    /// Per-chunk Gamma draws avoided by the class-max fold, summed over picks.
    pub draws_saved: u64,
    /// Distinct belief classes at the most recent pick.
    pub class_count: u64,
}

impl SelectionTelemetry {
    /// Merge another telemetry record into this one (used when aggregating
    /// across queries or shards).  `class_count` keeps the maximum, as a
    /// "classes live at once" summary.
    pub fn merge(&mut self, other: &SelectionTelemetry) {
        self.class_max_picks += other.class_max_picks;
        self.per_chunk_picks += other.per_chunk_picks;
        self.draws_saved += other.draws_saved;
        self.class_count = self.class_count.max(other.class_count);
    }
}

/// Within-chunk sampler, chosen by [`WithinChunkSampling`].
#[derive(Debug, Clone)]
enum WithinSampler {
    Uniform(UniformSampler),
    RandomPlus(RandomPlusSampler),
}

impl WithinSampler {
    fn new(strategy: WithinChunkSampling, len: u64) -> Self {
        match strategy {
            WithinChunkSampling::Uniform => WithinSampler::Uniform(UniformSampler::new(len)),
            WithinChunkSampling::RandomPlus => {
                WithinSampler::RandomPlus(RandomPlusSampler::new(len))
            }
        }
    }

    fn next_frame<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<u64> {
        match self {
            WithinSampler::Uniform(s) => s.next_frame(rng),
            WithinSampler::RandomPlus(s) => s.next_frame(rng),
        }
    }

    fn remaining(&self) -> u64 {
        match self {
            WithinSampler::Uniform(s) => s.remaining(),
            WithinSampler::RandomPlus(s) => s.remaining(),
        }
    }
}

/// The ExSample adaptive sampler (Algorithm 1's state).
///
/// # Hot-path state
///
/// Beyond the per-chunk statistics, the sampler maintains incrementally:
///
/// * `eligible` / `eligible_count` — which chunks still hold unsampled frames,
///   updated the moment a chunk's last frame is handed out;
/// * `remaining` — the total number of unsampled frames, so
///   [`ExSample::remaining_frames`] and [`ExSample::is_exhausted`] are O(1)
///   instead of an O(M) sum over the within-chunk samplers;
/// * reusable scratch buffers for batched selection.
///
/// Together with the belief cache in [`ChunkStatsSet`], this makes
/// [`ExSample::next_frame`] and [`ExSample::next_batch_into`] perform no heap
/// allocation after the first batched call (within-chunk samplers amortise
/// their own bookkeeping growth).
#[derive(Debug, Clone)]
pub struct ExSample {
    config: ExSampleConfig,
    stats: ChunkStatsSet,
    samplers: Vec<WithinSampler>,
    chunk_lengths: Vec<u64>,
    /// Maintained eligibility mask: `eligible[j]` iff chunk `j` has unsampled frames.
    eligible: Vec<bool>,
    /// Number of `true` entries in `eligible`.
    eligible_count: usize,
    /// Maintained count of unsampled frames across all chunks.
    remaining: u64,
    /// Scratch buffer for batched chunk selection (chunk indices).
    scratch_chunks: Vec<usize>,
    /// Scratch buffer for batched chunk selection (running best draws).
    scratch_draws: Vec<f64>,
    /// Accumulated chunk-selection telemetry (class-max vs per-chunk picks).
    telemetry: SelectionTelemetry,
}

impl ExSample {
    /// Create a sampler over chunks with the given lengths (in frames).
    ///
    /// Zero-length chunks are permitted (they are simply never selected), but at
    /// least one chunk must be non-empty.
    ///
    /// # Panics
    /// Panics if `chunk_lengths` is empty, all chunks are empty, or the
    /// configuration is invalid.
    pub fn new(config: ExSampleConfig, chunk_lengths: &[u64]) -> Self {
        config.validate();
        assert!(
            !chunk_lengths.is_empty(),
            "ExSample needs at least one chunk"
        );
        assert!(
            chunk_lengths.iter().any(|&l| l > 0),
            "at least one chunk must contain frames"
        );
        let samplers: Vec<WithinSampler> = chunk_lengths
            .iter()
            .map(|&len| WithinSampler::new(config.within_chunk, len))
            .collect();
        let eligible: Vec<bool> = chunk_lengths.iter().map(|&len| len > 0).collect();
        let eligible_count = eligible.iter().filter(|&&e| e).count();
        let remaining = chunk_lengths.iter().sum();
        ExSample {
            config,
            stats: ChunkStatsSet::with_priors(chunk_lengths.len(), config.alpha0, config.beta0),
            samplers,
            chunk_lengths: chunk_lengths.to_vec(),
            eligible,
            eligible_count,
            remaining,
            scratch_chunks: Vec::new(),
            scratch_draws: Vec::new(),
            telemetry: SelectionTelemetry::default(),
        }
    }

    /// The sampler's configuration.
    pub fn config(&self) -> &ExSampleConfig {
        &self.config
    }

    /// The per-chunk statistics accumulated so far.
    pub fn stats(&self) -> &ChunkStatsSet {
        &self.stats
    }

    /// Number of chunks.
    pub fn chunk_count(&self) -> usize {
        self.chunk_lengths.len()
    }

    /// Length (in frames) of chunk `j`.
    pub fn chunk_length(&self, j: usize) -> u64 {
        self.chunk_lengths[j]
    }

    /// Total frames not yet sampled, across all chunks.  O(1): maintained as a
    /// running counter rather than a sum over the within-chunk samplers.
    pub fn remaining_frames(&self) -> u64 {
        self.remaining
    }

    /// Whether every frame of every chunk has been sampled.  O(1).
    pub fn is_exhausted(&self) -> bool {
        self.remaining == 0
    }

    /// Chunk-selection telemetry accumulated since construction.
    pub fn selection_telemetry(&self) -> SelectionTelemetry {
        self.telemetry
    }

    /// Account `picks` chunk selections to the strategy that served them.
    ///
    /// Must run *before* the picked frames are taken, while `eligible_count`
    /// still reflects the mask the selection saw — `draws_saved` is the
    /// per-pick gap between the eligible chunk count and the class count.
    #[inline]
    fn note_selection(&mut self, picks: u64) {
        if policy::class_max_applicable(&self.config, &self.stats) {
            let classes = self.stats.class_count() as u64;
            self.telemetry.class_max_picks += picks;
            self.telemetry.draws_saved +=
                picks * (self.eligible_count as u64).saturating_sub(classes);
            self.telemetry.class_count = classes;
        } else {
            self.telemetry.per_chunk_picks += picks;
            self.telemetry.class_count = self.stats.class_count() as u64;
        }
    }

    /// Book-keeping after a frame was handed out from `chunk`.
    #[inline]
    fn note_frame_taken(&mut self, chunk: usize) {
        self.remaining -= 1;
        if self.samplers[chunk].remaining() == 0 {
            debug_assert!(self.eligible[chunk]);
            self.eligible[chunk] = false;
            self.eligible_count -= 1;
        }
    }

    /// Choose the next frame to process (lines 3–7 of Algorithm 1).
    ///
    /// Returns `None` once every frame in the repository has been sampled.
    /// This is the direct single-pick hot path: chunk selection reads the
    /// maintained eligibility mask and the cached belief constants, performing
    /// no heap allocation.
    pub fn next_frame<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<FramePick> {
        if self.eligible_count == 0 {
            return None;
        }
        let chunk = policy::select_chunk(&self.config, &self.stats, &self.eligible, rng)?;
        self.note_selection(1);
        let offset = self.samplers[chunk]
            .next_frame(rng)
            .expect("selected chunk was eligible, so it has frames remaining");
        self.note_frame_taken(chunk);
        Some(FramePick { chunk, offset })
    }

    /// Choose up to `batch` frames to process in one batched detector invocation
    /// (the batched-sampling optimisation of Section III-F).
    ///
    /// Convenience wrapper around [`ExSample::next_batch_into`] that allocates
    /// the result vector.
    pub fn next_batch<R: Rng + ?Sized>(&mut self, rng: &mut R, batch: usize) -> Vec<FramePick> {
        let mut picks = Vec::with_capacity(batch);
        self.next_batch_into(rng, batch, &mut picks);
        picks
    }

    /// Fill `picks` with up to `batch` frames to process in one batched detector
    /// invocation, reusing the caller's buffer (and the sampler's internal
    /// scratch space) so the call is allocation-free once buffers are warm.
    ///
    /// The chunk indices are drawn with the same Thompson-sampling distribution as
    /// `batch` consecutive calls to [`ExSample::next_frame`] *without* intermediate
    /// state updates; per-chunk frame draws are still without replacement.  Fewer
    /// than `batch` picks are produced only when the repository runs out of frames.
    pub fn next_batch_into<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        batch: usize,
        picks: &mut Vec<FramePick>,
    ) {
        picks.clear();
        while picks.len() < batch && self.eligible_count > 0 {
            let want = batch - picks.len();
            policy::select_batch_into(
                &self.config,
                &self.stats,
                &self.eligible,
                want,
                rng,
                &mut self.scratch_chunks,
                &mut self.scratch_draws,
            );
            if self.scratch_chunks.is_empty() {
                break;
            }
            self.note_selection(self.scratch_chunks.len() as u64);
            let mut made_progress = false;
            for i in 0..self.scratch_chunks.len() {
                let chunk = self.scratch_chunks[i];
                // A chunk may run out of frames part-way through the batch; skip
                // those picks and let the outer loop re-select.
                if let Some(offset) = self.samplers[chunk].next_frame(rng) {
                    self.note_frame_taken(chunk);
                    picks.push(FramePick { chunk, offset });
                    made_progress = true;
                    if picks.len() == batch {
                        break;
                    }
                }
            }
            if !made_progress {
                break;
            }
        }
    }

    /// Record the discriminator outcome for a frame sampled from `chunk` (lines
    /// 11–12 of Algorithm 1): `n1_delta` is `|d0| − |d1|`.
    pub fn record(&mut self, chunk: usize, n1_delta: i64) {
        self.stats.record(chunk, n1_delta);
    }

    /// Apply an `N1` adjustment to a chunk without charging it a sample.
    ///
    /// This implements the technical-report refinement for objects spanning
    /// multiple chunks: when an object originally found in chunk `j` is re-seen
    /// from a frame of a different chunk, `j`'s `N1` should be decremented even
    /// though the sample was charged elsewhere.
    pub fn adjust_n1(&mut self, chunk: usize, n1_delta: i64) {
        self.stats.adjust_n1(chunk, n1_delta);
    }

    /// Warm-start `chunk` with the accumulated `(Σ n1_delta, Σ samples)` of a
    /// previous run, recovered from a durable belief store.
    ///
    /// Only the posterior is seeded: the chunk's frame pool is untouched, so
    /// the warm sampler may re-pick frames the previous run already saw (its
    /// discriminator simply re-matches them).  What warm starting buys is the
    /// belief — the sampler skips the exploration the first run already paid
    /// for and concentrates on the chunks known to be productive.
    pub fn apply_prior(&mut self, chunk: usize, n1_delta: i64, samples_delta: u64) {
        self.stats.seed_chunk(chunk, n1_delta, samples_delta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ChunkSelectionPolicy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    #[test]
    fn adapts_towards_productive_chunk() {
        let mut sampler =
            ExSample::new(ExSampleConfig::default(), &[10_000, 10_000, 10_000, 10_000]);
        let mut rng = StdRng::seed_from_u64(101);
        // Chunk 3 yields a new object on every sample; others never do.
        for _ in 0..400 {
            let pick = sampler.next_frame(&mut rng).unwrap();
            let delta = if pick.chunk == 3 { 1 } else { 0 };
            sampler.record(pick.chunk, delta);
        }
        let samples_to_best = sampler.stats().chunk(3).samples();
        assert!(
            samples_to_best > 250,
            "expected most samples on chunk 3, got {samples_to_best}"
        );
    }

    #[test]
    fn single_chunk_behaves_like_plain_sampling() {
        let mut sampler = ExSample::new(ExSampleConfig::default(), &[100]);
        let mut rng = StdRng::seed_from_u64(102);
        let mut seen = HashSet::new();
        while let Some(pick) = sampler.next_frame(&mut rng) {
            assert_eq!(pick.chunk, 0);
            assert!(seen.insert(pick.offset), "no frame sampled twice");
            sampler.record(0, 0);
        }
        assert_eq!(seen.len(), 100);
        assert!(sampler.is_exhausted());
    }

    #[test]
    fn exhausted_chunks_are_skipped() {
        // One tiny chunk and one large chunk; once the tiny chunk is exhausted only
        // the large one is picked, and the sampler terminates exactly at the end.
        let mut sampler = ExSample::new(ExSampleConfig::default(), &[3, 50]);
        let mut rng = StdRng::seed_from_u64(103);
        let mut count = 0;
        while let Some(pick) = sampler.next_frame(&mut rng) {
            sampler.record(pick.chunk, 0);
            count += 1;
            assert!(
                count <= 53,
                "sampler must not produce more picks than frames"
            );
        }
        assert_eq!(count, 53);
        assert_eq!(sampler.remaining_frames(), 0);
        assert_eq!(sampler.stats().chunk(0).samples(), 3);
        assert_eq!(sampler.stats().chunk(1).samples(), 50);
    }

    #[test]
    fn zero_length_chunks_are_allowed_but_never_picked() {
        let mut sampler = ExSample::new(ExSampleConfig::default(), &[0, 10, 0]);
        let mut rng = StdRng::seed_from_u64(104);
        let mut count = 0;
        while let Some(pick) = sampler.next_frame(&mut rng) {
            assert_eq!(pick.chunk, 1);
            sampler.record(pick.chunk, 0);
            count += 1;
        }
        assert_eq!(count, 10);
    }

    #[test]
    fn offsets_are_within_chunk_bounds() {
        let lengths = [7u64, 13, 29];
        let mut sampler = ExSample::new(ExSampleConfig::default(), &lengths);
        let mut rng = StdRng::seed_from_u64(105);
        while let Some(pick) = sampler.next_frame(&mut rng) {
            assert!(pick.offset < lengths[pick.chunk]);
            sampler.record(pick.chunk, 0);
        }
    }

    #[test]
    fn batched_picks_cover_batch_size_and_respect_exhaustion() {
        let mut sampler = ExSample::new(ExSampleConfig::default(), &[5, 5]);
        let mut rng = StdRng::seed_from_u64(106);
        let first = sampler.next_batch(&mut rng, 8);
        assert_eq!(first.len(), 8);
        let second = sampler.next_batch(&mut rng, 8);
        assert_eq!(second.len(), 2, "only two frames remain in the repository");
        assert!(sampler.next_batch(&mut rng, 4).is_empty());
        // All ten frames distinct.
        let all: HashSet<(usize, u64)> = first
            .iter()
            .chain(second.iter())
            .map(|p| (p.chunk, p.offset))
            .collect();
        assert_eq!(all.len(), 10);
    }

    #[test]
    fn batched_distribution_matches_statistics() {
        // With strongly skewed statistics, most batched picks should target the
        // productive chunk, mirroring the sequential behaviour.
        let mut sampler = ExSample::new(ExSampleConfig::default(), &[100_000, 100_000]);
        for _ in 0..50 {
            sampler.record(0, 0);
            sampler.record(1, 1);
        }
        let mut rng = StdRng::seed_from_u64(107);
        let picks = sampler.next_batch(&mut rng, 200);
        let to_productive = picks.iter().filter(|p| p.chunk == 1).count();
        assert!(
            to_productive > 150,
            "got {to_productive}/200 picks on the productive chunk"
        );
    }

    #[test]
    fn cross_chunk_adjustment_does_not_charge_samples() {
        let mut sampler = ExSample::new(ExSampleConfig::default(), &[10, 10]);
        sampler.record(0, 1);
        sampler.adjust_n1(0, -1);
        assert_eq!(sampler.stats().chunk(0).samples(), 1);
        assert_eq!(sampler.stats().chunk(0).n1(), 0);
    }

    #[test]
    fn uniform_policy_distributes_samples_evenly() {
        let config = ExSampleConfig::default().with_policy(ChunkSelectionPolicy::UniformChunk);
        let mut sampler = ExSample::new(config, &[100_000; 4]);
        let mut rng = StdRng::seed_from_u64(108);
        for _ in 0..2_000 {
            let pick = sampler.next_frame(&mut rng).unwrap();
            // Feed it heavily skewed feedback; the uniform policy must ignore it.
            let delta = if pick.chunk == 0 { 1 } else { 0 };
            sampler.record(pick.chunk, delta);
        }
        for j in 0..4 {
            let share = sampler.stats().chunk(j).samples() as f64 / 2_000.0;
            assert!((share - 0.25).abs() < 0.06, "chunk {j} share {share}");
        }
    }

    #[test]
    fn remaining_counter_stays_consistent_with_samplers() {
        // The O(1) counter must agree with the O(M) sum over the within-chunk
        // samplers after every pick, across both single and batched picking.
        let mut sampler = ExSample::new(ExSampleConfig::default(), &[40, 0, 25, 60]);
        let mut rng = StdRng::seed_from_u64(109);
        let sum_remaining =
            |s: &ExSample| -> u64 { s.samplers.iter().map(WithinSampler::remaining).sum() };
        assert_eq!(sampler.remaining_frames(), 125);
        assert_eq!(sampler.remaining_frames(), sum_remaining(&sampler));
        let mut taken = 0u64;
        while let Some(pick) = sampler.next_frame(&mut rng) {
            sampler.record(pick.chunk, 0);
            taken += 1;
            assert_eq!(sampler.remaining_frames(), 125 - taken);
            assert_eq!(sampler.remaining_frames(), sum_remaining(&sampler));
            if taken == 50 {
                break;
            }
        }
        let mut picks = Vec::new();
        while !sampler.is_exhausted() {
            sampler.next_batch_into(&mut rng, 7, &mut picks);
            taken += picks.len() as u64;
            assert_eq!(sampler.remaining_frames(), 125 - taken);
            assert_eq!(sampler.remaining_frames(), sum_remaining(&sampler));
        }
        assert_eq!(taken, 125);
        assert!(sampler.is_exhausted());
    }

    #[test]
    fn next_batch_into_reuses_buffers_and_matches_next_batch_semantics() {
        let mut sampler = ExSample::new(ExSampleConfig::default(), &[1_000; 8]);
        let mut rng = StdRng::seed_from_u64(110);
        let mut picks = Vec::new();
        sampler.next_batch_into(&mut rng, 16, &mut picks);
        assert_eq!(picks.len(), 16);
        // Warm buffers: repeated calls must not grow any of them.
        let cap = picks.capacity();
        let scratch_cap = (
            sampler.scratch_chunks.capacity(),
            sampler.scratch_draws.capacity(),
        );
        for _ in 0..100 {
            sampler.next_batch_into(&mut rng, 16, &mut picks);
            assert_eq!(picks.len(), 16);
            for p in &picks {
                sampler.record(p.chunk, 0);
            }
        }
        assert_eq!(picks.capacity(), cap);
        assert_eq!(
            (
                sampler.scratch_chunks.capacity(),
                sampler.scratch_draws.capacity()
            ),
            scratch_cap
        );
    }

    #[test]
    fn telemetry_counts_per_chunk_picks_by_default() {
        let mut sampler = ExSample::new(ExSampleConfig::default(), &[100; 128]);
        let mut rng = StdRng::seed_from_u64(111);
        for _ in 0..10 {
            let pick = sampler.next_frame(&mut rng).unwrap();
            sampler.record(pick.chunk, 0);
        }
        let picks = sampler.next_batch(&mut rng, 6);
        let t = sampler.selection_telemetry();
        assert_eq!(t.class_max_picks, 0);
        assert_eq!(t.per_chunk_picks, 10 + picks.len() as u64);
        assert_eq!(t.draws_saved, 0);
    }

    #[test]
    fn telemetry_tracks_class_max_savings() {
        use crate::config::SelectionStrategy;
        const M: usize = 128;
        let config = ExSampleConfig::default().with_selection(SelectionStrategy::ClassMax);
        let mut sampler = ExSample::new(config, &[1_000; M]);
        let mut rng = StdRng::seed_from_u64(112);
        // First pick: one all-prior class covering all 128 chunks.
        let pick = sampler.next_frame(&mut rng).unwrap();
        let t = sampler.selection_telemetry();
        assert_eq!(t.class_max_picks, 1);
        assert_eq!(t.per_chunk_picks, 0);
        assert_eq!(t.class_count, 1);
        assert_eq!(t.draws_saved, (M - 1) as u64);
        sampler.record(pick.chunk, 0);
        // Keep sampling; the class fold must keep serving picks and savings
        // must keep growing while occupancy stays high.
        for _ in 0..50 {
            let pick = sampler.next_frame(&mut rng).unwrap();
            sampler.record(pick.chunk, 0);
        }
        let t = sampler.selection_telemetry();
        assert_eq!(t.class_max_picks + t.per_chunk_picks, 51);
        assert!(t.class_max_picks > 1, "telemetry {t:?}");
        assert!(t.draws_saved > (M - 1) as u64, "telemetry {t:?}");
        assert!(t.class_count >= 1);
        // Batched picks flow through the same counters.
        let picks = sampler.next_batch(&mut rng, 16);
        assert_eq!(picks.len(), 16);
        let t2 = sampler.selection_telemetry();
        assert_eq!(
            t2.class_max_picks + t2.per_chunk_picks,
            51 + 16,
            "telemetry {t2:?}"
        );
    }

    #[test]
    fn class_max_run_visits_everything_and_adapts() {
        use crate::config::SelectionStrategy;
        // End-to-end sanity: a ClassMax sampler still exhausts the repository
        // without repeats and still concentrates on a productive chunk.
        let config = ExSampleConfig::default().with_selection(SelectionStrategy::ClassMax);
        let mut sampler = ExSample::new(config, &[50; 100]);
        let mut rng = StdRng::seed_from_u64(113);
        let mut seen = HashSet::new();
        let mut productive_samples = 0u64;
        while let Some(pick) = sampler.next_frame(&mut rng) {
            assert!(seen.insert((pick.chunk, pick.offset)), "frame repeated");
            let delta = i64::from(pick.chunk == 7);
            if pick.chunk == 7 {
                productive_samples += 1;
            }
            sampler.record(pick.chunk, delta);
        }
        assert_eq!(seen.len(), 50 * 100);
        assert_eq!(productive_samples, 50);
        let t = sampler.selection_telemetry();
        assert!(t.class_max_picks > 0, "class fold never engaged: {t:?}");
        assert!(t.per_chunk_picks > 0, "fallback never engaged: {t:?}");
    }

    #[test]
    fn telemetry_merge_accumulates() {
        let mut a = SelectionTelemetry {
            class_max_picks: 5,
            per_chunk_picks: 2,
            draws_saved: 600,
            class_count: 3,
        };
        let b = SelectionTelemetry {
            class_max_picks: 1,
            per_chunk_picks: 7,
            draws_saved: 100,
            class_count: 9,
        };
        a.merge(&b);
        assert_eq!(a.class_max_picks, 6);
        assert_eq!(a.per_chunk_picks, 9);
        assert_eq!(a.draws_saved, 700);
        assert_eq!(a.class_count, 9);
    }

    #[test]
    #[should_panic(expected = "at least one chunk")]
    fn empty_chunk_list_panics() {
        let _ = ExSample::new(ExSampleConfig::default(), &[]);
    }

    #[test]
    #[should_panic(expected = "at least one chunk must contain frames")]
    fn all_empty_chunks_panics() {
        let _ = ExSample::new(ExSampleConfig::default(), &[0, 0]);
    }
}
