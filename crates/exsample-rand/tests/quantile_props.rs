//! Property-based coverage for the incomplete-gamma / quantile pair.
//!
//! The belief-class selection path (ClassMax) leans on `gamma_quantile` being a
//! faithful inverse of `lower_incomplete_gamma_regularized` across the whole
//! shape range ExSample produces — from the `α₀ = 0.1` prior up to beliefs with
//! tens of thousands of observations.  These properties pin round-trip
//! tolerance, monotonicity in both arguments, and extreme-shape behaviour.

use exsample_rand::gamma::lower_incomplete_gamma_regularized;
use exsample_rand::{gamma_max_of_k, gamma_quantile, Gamma};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// cdf(quantile(p)) ≈ p for any shape and interior probability.
    #[test]
    fn cdf_of_quantile_recovers_p(shape in 0.05f64..200.0, p in 1e-6f64..0.999_999) {
        let x = gamma_quantile(shape, p);
        prop_assert!(x.is_finite() && x > 0.0, "quantile({shape}, {p}) = {x}");
        let back = lower_incomplete_gamma_regularized(shape, x);
        prop_assert!(
            (back - p).abs() < 1e-9,
            "shape {shape}, p {p}: x {x}, cdf back {back}"
        );
    }

    /// quantile(cdf(x)) ≈ x wherever the CDF is not saturated.
    #[test]
    fn quantile_of_cdf_recovers_x(shape in 0.05f64..200.0, scale in 0.05f64..6.0) {
        // Probe a point proportional to the mean so every shape is exercised
        // in its own body rather than a fixed absolute range.
        let x = shape * scale;
        let p = lower_incomplete_gamma_regularized(shape, x);
        // Saturated p amplifies the inverse by 1/pdf; the comparison in x is
        // only meaningful while the CDF still has resolution.
        prop_assume!(p > 1e-9 && p < 1.0 - 1e-9);
        let back = gamma_quantile(shape, p);
        prop_assert!(
            (back - x).abs() < 1e-7 * x.max(1.0),
            "shape {shape}, x {x}: p {p}, back {back}"
        );
    }

    /// The quantile is strictly monotone in the probability level.
    #[test]
    fn quantile_monotone_in_p(shape in 0.05f64..200.0, p in 1e-6f64..0.99, gap in 1e-4f64..0.009) {
        let lo = gamma_quantile(shape, p);
        let hi = gamma_quantile(shape, p + gap);
        prop_assert!(hi > lo, "shape {shape}: q({}) = {hi} !> q({p}) = {lo}", p + gap);
    }

    /// At a fixed level the quantile is monotone in the shape: more expected
    /// events shift the whole distribution right.
    #[test]
    fn quantile_monotone_in_shape(shape in 0.05f64..100.0, p in 1e-4f64..0.999) {
        let lo = gamma_quantile(shape, p);
        let hi = gamma_quantile(shape * 1.5, p);
        prop_assert!(hi > lo, "p {p}: q(shape {}) = {hi} !> q(shape {shape}) = {lo}", shape * 1.5);
    }

    /// Extreme shapes stay finite, positive and ordered: tiny shapes (the
    /// all-prior belief is Gamma(0.1, 1)) and huge shapes (long-run beliefs)
    /// both round-trip.
    #[test]
    fn extreme_shapes_round_trip(p in 1e-4f64..0.9999) {
        for shape in [0.01, 0.1, 1_000.0, 50_000.0] {
            let x = gamma_quantile(shape, p);
            prop_assert!(x.is_finite() && x >= 0.0, "shape {shape}, p {p}: x {x}");
            if x > 0.0 {
                let back = lower_incomplete_gamma_regularized(shape, x);
                prop_assert!(
                    (back - p).abs() < 1e-8,
                    "shape {shape}, p {p}: x {x}, back {back}"
                );
            }
        }
    }

    /// `Gamma::quantile` agrees with the free function under rate scaling.
    #[test]
    fn distribution_quantile_is_scaled_unit_quantile(
        shape in 0.05f64..100.0,
        rate in 0.05f64..500.0,
        p in 1e-4f64..0.9999,
    ) {
        let dist = Gamma::new(shape, rate).unwrap();
        let expected = gamma_quantile(shape, p) / rate;
        let got = dist.quantile(p);
        prop_assert!(
            (got - expected).abs() <= 1e-12 * expected.abs().max(1.0),
            "shape {shape}, rate {rate}, p {p}: {got} vs {expected}"
        );
    }

    /// A max-of-k draw stochastically dominates the probability mass below any
    /// fixed quantile: it exceeds the plain distribution's `p`-quantile with
    /// probability `1 - p^k` — in particular it is always within the support.
    #[test]
    fn max_of_k_draws_are_finite_positive(
        shape in 0.05f64..100.0,
        rate in 0.05f64..100.0,
        k in 1u64..100_000,
        seed in 0u64..1_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = gamma_max_of_k(&mut rng, shape, rate, k);
        prop_assert!(x.is_finite() && x > 0.0, "max-of-{k} draw {x}");
    }

    /// For the same underlying uniform, raising k can only move the draw up:
    /// U^(1/k) is increasing in k, and the quantile is monotone.
    #[test]
    fn max_of_k_is_monotone_in_k(
        shape in 0.05f64..100.0,
        k in 1u64..10_000,
        seed in 0u64..1_000,
    ) {
        let lo = gamma_max_of_k(&mut StdRng::seed_from_u64(seed), shape, 1.0, k);
        let hi = gamma_max_of_k(&mut StdRng::seed_from_u64(seed), shape, 1.0, k * 4);
        prop_assert!(hi >= lo, "k {k}: max-of-{} draw {hi} < max-of-{k} draw {lo}", k * 4);
    }
}
