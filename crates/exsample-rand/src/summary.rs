//! Summary statistics over experiment trials.
//!
//! The paper reports medians, 25–75 percentile bands (Figure 3), geometric means of
//! savings ratios (Section V-C: "geometric mean of savings overall is 1.9"), and
//! percentiles over query collections (".9 percentile over the 100 bars is 3.7x").
//! This module provides the small statistics toolkit those aggregations need.

/// Accumulates a set of `f64` observations and answers summary queries.
///
/// Observations are stored (not streamed) because experiments need exact
/// percentiles; the largest collections in this workspace are a few hundred
/// thousand values, which is negligible memory.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    values: Vec<f64>,
    sorted: bool,
}

impl Summary {
    /// Create an empty summary.
    pub fn new() -> Self {
        Summary::default()
    }

    /// Create a summary from an existing vector of observations.
    pub fn from_values(values: Vec<f64>) -> Self {
        Summary {
            values,
            sorted: false,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, value: f64) {
        self.values.push(value);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Arithmetic mean. Returns 0 for an empty summary.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Unbiased sample variance. Returns 0 for fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.values.len() < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let sum_sq: f64 = self.values.iter().map(|v| (v - mean) * (v - mean)).sum();
        sum_sq / (self.values.len() - 1) as f64
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (0 if empty).
    pub fn min(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum observation (0 if empty).
    pub fn max(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Percentile by linear interpolation between closest ranks.
    ///
    /// `q` is in `[0, 1]`; `q = 0.5` is the median.  Returns 0 for an empty summary.
    pub fn percentile(&mut self, q: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&q),
            "percentile level must be in [0, 1]"
        );
        if self.values.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            self.values
                .sort_by(|a, b| a.partial_cmp(b).expect("NaN observation in Summary"));
            self.sorted = true;
        }
        let n = self.values.len();
        if n == 1 {
            return self.values[0];
        }
        let rank = q * (n - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let weight = rank - lo as f64;
        self.values[lo] * (1.0 - weight) + self.values[hi] * weight
    }

    /// Median (50th percentile).
    pub fn median(&mut self) -> f64 {
        self.percentile(0.5)
    }

    /// A copy of the raw observations.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

/// Geometric mean of a slice of positive values.
///
/// Used for the paper's headline "1.9x average savings" number, which is a
/// geometric mean over per-query savings ratios.  Non-positive values are skipped
/// (a savings ratio can never legitimately be <= 0).
pub fn geometric_mean(values: &[f64]) -> f64 {
    let logs: Vec<f64> = values
        .iter()
        .copied()
        .filter(|v| *v > 0.0)
        .map(f64::ln)
        .collect();
    if logs.is_empty() {
        return 0.0;
    }
    (logs.iter().sum::<f64>() / logs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_of_known_set() {
        let s = Summary::from_values(vec![2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample (unbiased) variance of this classic set is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn percentiles_interpolate() {
        let mut s = Summary::from_values(vec![1.0, 2.0, 3.0, 4.0]);
        assert!((s.percentile(0.0) - 1.0).abs() < 1e-12);
        assert!((s.percentile(1.0) - 4.0).abs() < 1e-12);
        assert!((s.median() - 2.5).abs() < 1e-12);
        assert!((s.percentile(0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn percentile_of_single_value() {
        let mut s = Summary::from_values(vec![3.5]);
        assert_eq!(s.percentile(0.1), 3.5);
        assert_eq!(s.percentile(0.9), 3.5);
    }

    #[test]
    fn empty_summary_is_benign() {
        let mut s = Summary::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.percentile(0.5), 0.0);
    }

    #[test]
    fn push_invalidates_sort_order() {
        let mut s = Summary::new();
        s.push(5.0);
        s.push(1.0);
        assert!((s.median() - 3.0).abs() < 1e-12);
        s.push(100.0);
        assert!((s.median() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_of_ratios() {
        // gm(2, 8) = 4
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        // gm(1, 1, 1) = 1
        assert!((geometric_mean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        // zero / negative values are ignored
        assert!((geometric_mean(&[2.0, 8.0, 0.0, -3.0]) - 4.0).abs() < 1e-12);
        // all invalid -> 0
        assert_eq!(geometric_mean(&[0.0]), 0.0);
        assert_eq!(geometric_mean(&[]), 0.0);
    }

    #[test]
    fn min_max() {
        let s = Summary::from_values(vec![3.0, -1.0, 7.0]);
        assert_eq!(s.min(), -1.0);
        assert_eq!(s.max(), 7.0);
        // Empty summaries report 0, as documented (not +/- infinity).
        let empty = Summary::new();
        assert_eq!(empty.min(), 0.0);
        assert_eq!(empty.max(), 0.0);
    }
}
