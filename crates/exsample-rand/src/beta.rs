//! Beta distribution, built from two Gamma draws.
//!
//! The Beta distribution is used by the simulated object detector to draw
//! per-instance detectability (the probability that the detector fires on a frame
//! where the object is visible), and by the proxy-model baseline to model the
//! correlation between proxy scores and ground truth.

use crate::error::DistributionError;
use crate::gamma::Gamma;
use crate::Sampler;
use rand::Rng;

/// Beta distribution with shape parameters `alpha` and `beta`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Beta {
    alpha: f64,
    beta: f64,
    gamma_a: Gamma,
    gamma_b: Gamma,
}

impl Beta {
    /// Create a Beta distribution with the given shape parameters.
    pub fn new(alpha: f64, beta: f64) -> Result<Self, DistributionError> {
        let gamma_a = Gamma::new(alpha, 1.0)?;
        let gamma_b = Gamma::new(beta, 1.0)?;
        Ok(Beta {
            alpha,
            beta,
            gamma_a,
            gamma_b,
        })
    }

    /// Create a Beta distribution with the given mean and "concentration"
    /// (`alpha + beta`). Larger concentration means tighter spread around the mean.
    pub fn with_mean_concentration(
        mean: f64,
        concentration: f64,
    ) -> Result<Self, DistributionError> {
        if !(0.0..=1.0).contains(&mean) || mean == 0.0 || mean == 1.0 {
            return Err(DistributionError::ProbabilityOutOfRange {
                distribution: "Beta",
                value: mean,
            });
        }
        Beta::new(mean * concentration, (1.0 - mean) * concentration)
    }

    /// Shape parameter `alpha`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Shape parameter `beta`.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Mean `alpha / (alpha + beta)`.
    pub fn mean(&self) -> f64 {
        self.alpha / (self.alpha + self.beta)
    }

    /// Variance `alpha * beta / ((alpha + beta)^2 (alpha + beta + 1))`.
    pub fn variance(&self) -> f64 {
        let s = self.alpha + self.beta;
        self.alpha * self.beta / (s * s * (s + 1.0))
    }
}

impl Sampler<f64> for Beta {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let x = self.gamma_a.sample(rng);
        let y = self.gamma_b.sample(rng);
        x / (x + y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::Summary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_lie_in_unit_interval() {
        let d = Beta::new(0.5, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(71);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((0.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn moments_match_formulas() {
        let d = Beta::new(2.0, 5.0).unwrap();
        let mut rng = StdRng::seed_from_u64(72);
        let mut s = Summary::new();
        for _ in 0..200_000 {
            s.push(d.sample(&mut rng));
        }
        assert!((s.mean() - d.mean()).abs() < 0.005);
        assert!((s.variance() - d.variance()).abs() < 0.005);
    }

    #[test]
    fn mean_concentration_constructor() {
        let d = Beta::with_mean_concentration(0.8, 50.0).unwrap();
        assert!((d.mean() - 0.8).abs() < 1e-12);
        assert!((d.alpha() - 40.0).abs() < 1e-12);
        assert!((d.beta() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Beta::new(0.0, 1.0).is_err());
        assert!(Beta::new(1.0, -1.0).is_err());
        assert!(Beta::with_mean_concentration(0.0, 10.0).is_err());
        assert!(Beta::with_mean_concentration(1.0, 10.0).is_err());
        assert!(Beta::with_mean_concentration(1.5, 10.0).is_err());
    }
}
