//! Exponential distribution (inverse-CDF sampling).
//!
//! Used by the dataset analogs to model inter-arrival gaps between object
//! instances within a chunk (e.g. how long a fixed camera waits between two
//! distinct pedestrians entering the scene).

use crate::error::{ensure_positive, DistributionError};
use crate::{uniform_open01, Sampler};
use rand::Rng;

/// Exponential distribution with rate `lambda` (mean `1 / lambda`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Create an Exponential distribution with the given rate.
    pub fn new(rate: f64) -> Result<Self, DistributionError> {
        ensure_positive("Exponential", "rate", rate)?;
        Ok(Exponential { rate })
    }

    /// Create an Exponential distribution with the given mean.
    pub fn with_mean(mean: f64) -> Result<Self, DistributionError> {
        ensure_positive("Exponential", "mean", mean)?;
        Ok(Exponential { rate: 1.0 / mean })
    }

    /// Rate parameter `lambda`.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Mean `1 / lambda`.
    pub fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    /// Cumulative distribution function.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - (-self.rate * x).exp()
        }
    }
}

impl Sampler<f64> for Exponential {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        -uniform_open01(rng).ln() / self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::Summary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mean_matches_parameter() {
        let d = Exponential::new(0.25).unwrap();
        let mut rng = StdRng::seed_from_u64(51);
        let mut s = Summary::new();
        for _ in 0..200_000 {
            s.push(d.sample(&mut rng));
        }
        assert!((s.mean() - 4.0).abs() < 0.05, "mean {}", s.mean());
    }

    #[test]
    fn with_mean_constructor() {
        let d = Exponential::with_mean(12.5).unwrap();
        assert!((d.mean() - 12.5).abs() < 1e-12);
        assert!((d.rate() - 0.08).abs() < 1e-12);
    }

    #[test]
    fn samples_are_positive() {
        let d = Exponential::new(3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(52);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn memorylessness_roughly_holds() {
        // P(X > s + t | X > s) == P(X > t). Check with empirical frequencies.
        let d = Exponential::new(1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(53);
        let draws: Vec<f64> = d.sample_n(&mut rng, 200_000);
        let s = 1.0;
        let t = 0.5;
        let exceed_s = draws.iter().filter(|&&x| x > s).count() as f64;
        let exceed_st = draws.iter().filter(|&&x| x > s + t).count() as f64;
        let exceed_t = draws.iter().filter(|&&x| x > t).count() as f64 / draws.len() as f64;
        let conditional = exceed_st / exceed_s;
        assert!((conditional - exceed_t).abs() < 0.02);
    }

    #[test]
    fn cdf_known_values() {
        let d = Exponential::new(2.0).unwrap();
        assert_eq!(d.cdf(-1.0), 0.0);
        assert!((d.cdf(0.5) - (1.0 - (-1.0_f64).exp())).abs() < 1e-12);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-2.0).is_err());
        assert!(Exponential::with_mean(0.0).is_err());
    }
}
