//! Gamma distribution via the Marsaglia–Tsang method.
//!
//! The Gamma distribution is the heart of ExSample's decision step: the belief over
//! a chunk's future reward `R_j(n_j + 1)` is modelled as
//! `Gamma(alpha = N1_j + alpha0, beta = n_j + beta0)` (Eq. III.4), and Thompson
//! sampling draws one value from each chunk's belief per iteration.  The paper uses
//! the *rate* parameterisation (mean `alpha / beta`, variance `alpha / beta^2`),
//! and so do we.

use crate::error::{ensure_positive, DistributionError};
use crate::ziggurat::{fast_exponential, fast_standard_normal};
use crate::{uniform_open01, Sampler};
use rand::Rng;

/// Gamma distribution with shape `alpha` and **rate** `beta`.
///
/// * mean  = `alpha / beta`
/// * variance = `alpha / beta^2`
///
/// Sampling uses Marsaglia & Tsang's squeeze method for `alpha >= 1` and the
/// `Gamma(alpha + 1) * U^(1/alpha)` boost for `alpha < 1` (the ExSample prior
/// `alpha0 = 0.1` routinely puts us in that branch early in a query).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    shape: f64,
    rate: f64,
}

impl Gamma {
    /// Create a Gamma distribution with the given shape (`alpha`) and rate (`beta`).
    pub fn new(shape: f64, rate: f64) -> Result<Self, DistributionError> {
        ensure_positive("Gamma", "shape", shape)?;
        ensure_positive("Gamma", "rate", rate)?;
        Ok(Gamma { shape, rate })
    }

    /// Create the ExSample belief distribution for a chunk.
    ///
    /// `n1` is the number of objects seen exactly once in the chunk, `n` the number
    /// of frames sampled from it, and `alpha0`/`beta0` the smoothing constants of
    /// Eq. III.4 (the paper uses `alpha0 = 0.1`, `beta0 = 1.0`).
    pub fn belief(n1: f64, n: f64, alpha0: f64, beta0: f64) -> Result<Self, DistributionError> {
        Gamma::new(n1 + alpha0, n + beta0)
    }

    /// Shape parameter `alpha`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Rate parameter `beta`.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Mean of the distribution, `alpha / beta`.
    pub fn mean(&self) -> f64 {
        self.shape / self.rate
    }

    /// Variance of the distribution, `alpha / beta^2`.
    pub fn variance(&self) -> f64 {
        self.shape / (self.rate * self.rate)
    }

    /// Probability density function at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        if x == 0.0 {
            // Density at zero: infinite for shape < 1, rate for shape == 1, zero above.
            return if self.shape < 1.0 {
                f64::INFINITY
            } else if self.shape == 1.0 {
                self.rate
            } else {
                0.0
            };
        }
        let log_pdf = self.shape * self.rate.ln() + (self.shape - 1.0) * x.ln()
            - self.rate * x
            - ln_gamma(self.shape);
        log_pdf.exp()
    }

    /// Cumulative distribution function at `x` (regularised lower incomplete gamma).
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        lower_incomplete_gamma_regularized(self.shape, self.rate * x)
    }

    /// The `q`-quantile (inverse CDF).
    ///
    /// Used by the Bayes-UCB policy, which ranks chunks by an upper quantile of the
    /// belief distribution rather than by a Thompson draw, and by the belief-class
    /// max-of-k draw.  Delegates to [`crate::quantile::gamma_quantile`]
    /// (Wilson–Hilferty seed + Halley refinement); the rate is a pure scale
    /// parameter, so the unit-rate quantile is divided by it.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile level must be in [0,1]");
        crate::quantile::gamma_quantile(self.shape, q) / self.rate
    }

    /// Draw the maximum of `k` iid copies of this distribution exactly, via the
    /// order-statistic identity `max ~ F⁻¹(U^(1/k))`.
    ///
    /// See [`crate::quantile::gamma_max_of_k`]; this is the draw behind
    /// belief-class deduplicated Thompson sampling.
    pub fn sample_max_of_k<R: Rng + ?Sized>(&self, rng: &mut R, k: u64) -> f64 {
        crate::quantile::gamma_max_of_k(rng, self.shape, self.rate, k)
    }
}

impl Sampler<f64> for Gamma {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let (d, c, boost_inv_shape) = mt_constants(self.shape);
        gamma_draw(rng, d, c, boost_inv_shape, self.rate)
    }
}

/// A Gamma distribution with its Marsaglia–Tsang sampling constants precomputed.
///
/// [`Gamma::sample`] recomputes `d = shape − 1/3` and `c = 1/√(9d)` on every
/// draw; when the *same* distribution is sampled many times (Thompson sampling
/// draws from every chunk's belief on every pick), those recomputations — one
/// square root and one division per draw — are pure overhead.  `CachedGamma`
/// hoists them into the constructor.  Draws are **bitwise identical** to
/// [`Gamma::sample`] under the same RNG state: both paths execute exactly the
/// same arithmetic on exactly the same random stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CachedGamma {
    shape: f64,
    rate: f64,
    d: f64,
    c: f64,
    /// `1/shape` when `shape < 1` (the boost branch), `0.0` otherwise.
    boost_inv_shape: f64,
}

impl CachedGamma {
    /// Create a cached Gamma sampler with the given shape and rate.
    pub fn new(shape: f64, rate: f64) -> Result<Self, DistributionError> {
        Gamma::new(shape, rate).map(|g| g.cached())
    }

    /// Shape parameter `alpha`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Rate parameter `beta`.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl Gamma {
    /// Precompute the Marsaglia–Tsang constants for repeated sampling.
    pub fn cached(&self) -> CachedGamma {
        let (d, c, boost_inv_shape) = mt_constants(self.shape);
        CachedGamma {
            shape: self.shape,
            rate: self.rate,
            d,
            c,
            boost_inv_shape,
        }
    }
}

impl Sampler<f64> for CachedGamma {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        gamma_draw(rng, self.d, self.c, self.boost_inv_shape, self.rate)
    }
}

/// The Marsaglia–Tsang constants for `Gamma(shape, 1)` sampling.
///
/// Returns `(d, c, boost_inv_shape)` where `d = s − 1/3`, `c = 1/√(9d)` for the
/// *boosted* shape `s` (`shape + 1` when `shape < 1`, else `shape`), and
/// `boost_inv_shape` is `1/shape` when the boost branch applies and `0.0`
/// otherwise.  These are the per-distribution constants cached by
/// [`CachedGamma`] and by `exsample-core`'s per-chunk belief cache.
#[inline]
pub fn mt_constants(shape: f64) -> (f64, f64, f64) {
    let boost = shape < 1.0;
    let s = if boost { shape + 1.0 } else { shape };
    let d = s - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    (d, c, if boost { 1.0 / shape } else { 0.0 })
}

/// One accepted Marsaglia–Tsang draw of `Gamma(s, 1)` (`s ≥ 1`), given the
/// precomputed constants `d = s − 1/3` and `c = 1/√(9d)`.  Returns `d·v³`.
#[inline]
pub fn mt_draw_unit<R: Rng + ?Sized>(rng: &mut R, d: f64, c: f64) -> f64 {
    loop {
        let x = fast_standard_normal(rng);
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v3 = v * v * v;
        let u = uniform_open01(rng);
        // Squeeze test (fast accept).
        if u < 1.0 - 0.0331 * x.powi(4) {
            return d * v3;
        }
        // Full acceptance test in log space.
        if u.ln() < 0.5 * x * x + d * (1.0 - v3 + v3.ln()) {
            return d * v3;
        }
    }
}

/// Complete Gamma draw from cached constants: Marsaglia–Tsang body, the
/// `shape < 1` boost, and the rate division.
///
/// The boost uses the identity `U^(1/shape) = exp(−E/shape)` with
/// `E ~ Exponential(1)` drawn from the ziggurat — distributionally identical to
/// the textbook uniform-power form but with a much cheaper random variate, and
/// (critically for the chunk-selection hot path) the expensive `exp` can be
/// *skipped by callers that only need an upper bound*, because
/// `exp(−E/shape) ≤ 1` makes `d·v³/rate` an upper bound on the final draw.
#[inline]
pub fn gamma_draw<R: Rng + ?Sized>(
    rng: &mut R,
    d: f64,
    c: f64,
    boost_inv_shape: f64,
    rate: f64,
) -> f64 {
    let mut raw = mt_draw_unit(rng, d, c);
    if boost_inv_shape > 0.0 {
        let e = fast_exponential(rng);
        raw *= (-e * boost_inv_shape).exp();
    }
    raw / rate
}

/// Natural log of the Gamma function (Lanczos approximation, g = 7, n = 9).
pub fn ln_gamma(x: f64) -> f64 {
    // Coefficients for the Lanczos approximation.
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return pi.ln() - (pi * x).sin().ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEFFS[0];
    let t = x + 7.5;
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularised lower incomplete gamma function `P(a, x)`.
///
/// Uses the series expansion for `x < a + 1` and the continued fraction for the
/// complement otherwise (Numerical Recipes style).
pub fn lower_incomplete_gamma_regularized(a: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        // Series representation.
        let mut term = 1.0 / a;
        let mut sum = term;
        let mut ap = a;
        for _ in 0..500 {
            ap += 1.0;
            term *= x / ap;
            sum += term;
            if term.abs() < sum.abs() * 1e-15 {
                break;
            }
        }
        (sum.ln() + a * x.ln() - x - ln_gamma(a)).exp().min(1.0)
    } else {
        // Continued fraction for Q(a, x); P = 1 - Q.
        let mut b = x + 1.0 - a;
        let mut c = 1.0 / 1e-300;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < 1e-300 {
                d = 1e-300;
            }
            c = b + an / c;
            if c.abs() < 1e-300 {
                c = 1e-300;
            }
            d = 1.0 / d;
            let delta = d * c;
            h *= delta;
            if (delta - 1.0).abs() < 1e-15 {
                break;
            }
        }
        let q = (a * x.ln() - x - ln_gamma(a)).exp() * h;
        (1.0 - q).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::Summary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn moments(shape: f64, rate: f64, n: usize, seed: u64) -> (f64, f64) {
        let d = Gamma::new(shape, rate).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = Summary::new();
        for _ in 0..n {
            s.push(d.sample(&mut rng));
        }
        (s.mean(), s.variance())
    }

    #[test]
    fn mean_and_variance_large_shape() {
        let (m, v) = moments(9.0, 2.0, 200_000, 31);
        assert!((m - 4.5).abs() < 0.05, "mean {m}");
        assert!((v - 2.25).abs() < 0.1, "variance {v}");
    }

    #[test]
    fn mean_and_variance_shape_below_one() {
        // ExSample's prior-only belief: Gamma(0.1, 1.0).
        let (m, v) = moments(0.1, 1.0, 400_000, 32);
        assert!((m - 0.1).abs() < 0.01, "mean {m}");
        assert!((v - 0.1).abs() < 0.02, "variance {v}");
    }

    #[test]
    fn belief_constructor_matches_paper_parameterisation() {
        let belief = Gamma::belief(5.0, 120.0, 0.1, 1.0).unwrap();
        assert!((belief.mean() - 5.1 / 121.0).abs() < 1e-12);
        assert!((belief.variance() - 5.1 / (121.0 * 121.0)).abs() < 1e-12);
    }

    #[test]
    fn samples_are_positive() {
        let d = Gamma::new(0.1, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(33);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Gamma::new(0.0, 1.0).is_err());
        assert!(Gamma::new(1.0, 0.0).is_err());
        assert!(Gamma::new(-1.0, 1.0).is_err());
        assert!(Gamma::new(f64::NAN, 1.0).is_err());
        assert!(CachedGamma::new(0.0, 1.0).is_err());
    }

    #[test]
    fn cached_sampler_matches_uncached_draw_for_draw() {
        // Same seed => bitwise-identical draw sequences, for both the plain
        // branch (shape >= 1) and the boost branch (shape < 1).
        for &(shape, rate) in &[(5.1, 106.0), (0.1, 1.0), (0.1, 400.0), (37.1, 1_201.0)] {
            let dist = Gamma::new(shape, rate).unwrap();
            let cached = dist.cached();
            let mut rng_a = StdRng::seed_from_u64(77);
            let mut rng_b = StdRng::seed_from_u64(77);
            for i in 0..5_000 {
                let a = dist.sample(&mut rng_a);
                let b = cached.sample(&mut rng_b);
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "draw {i} of Gamma({shape}, {rate})"
                );
            }
        }
    }

    #[test]
    fn mt_constants_match_documented_formulas() {
        let (d, c, boost) = mt_constants(2.5);
        assert!((d - (2.5 - 1.0 / 3.0)).abs() < 1e-15);
        assert!((c - 1.0 / (9.0 * d).sqrt()).abs() < 1e-15);
        assert_eq!(boost, 0.0);
        let (d, _, boost) = mt_constants(0.1);
        assert!((d - (1.1 - 1.0 / 3.0)).abs() < 1e-15);
        assert!((boost - 10.0).abs() < 1e-12);
    }

    #[test]
    fn ln_gamma_known_values() {
        // Gamma(1) = 1, Gamma(2) = 1, Gamma(5) = 24, Gamma(0.5) = sqrt(pi).
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24.0_f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn cdf_monotone_and_bounded() {
        let d = Gamma::new(2.5, 1.5).unwrap();
        let mut prev = 0.0;
        for i in 0..100 {
            let x = i as f64 * 0.1;
            let c = d.cdf(x);
            assert!((0.0..=1.0).contains(&c));
            assert!(c >= prev - 1e-12);
            prev = c;
        }
        assert!(d.cdf(100.0) > 0.999_999);
    }

    #[test]
    fn cdf_exponential_special_case() {
        // Gamma(1, rate) is Exponential(rate): CDF(x) = 1 - exp(-rate x).
        let d = Gamma::new(1.0, 2.0).unwrap();
        for &x in &[0.1_f64, 0.5, 1.0, 3.0] {
            let expected = 1.0 - (-2.0 * x).exp();
            assert!((d.cdf(x) - expected).abs() < 1e-9, "x = {x}");
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        let d = Gamma::new(3.0, 2.0).unwrap();
        for &q in &[0.05, 0.25, 0.5, 0.75, 0.95, 0.99] {
            let x = d.quantile(q);
            assert!((d.cdf(x) - q).abs() < 1e-9, "q = {q}");
        }
    }

    #[test]
    fn quantile_monotone_in_level() {
        let d = Gamma::new(0.1, 1.0).unwrap();
        assert!(d.quantile(0.9) > d.quantile(0.5));
        assert!(d.quantile(0.5) > d.quantile(0.1));
    }

    #[test]
    fn empirical_cdf_agrees_with_analytic_cdf() {
        let d = Gamma::new(2.0, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(35);
        let n = 100_000;
        let threshold = d.mean();
        let count = (0..n).filter(|_| d.sample(&mut rng) <= threshold).count();
        let empirical = count as f64 / n as f64;
        assert!((empirical - d.cdf(threshold)).abs() < 0.01);
    }

    #[test]
    fn pdf_integrates_to_one() {
        let d = Gamma::new(2.5, 1.0).unwrap();
        // Trapezoidal integration over a generous range.
        let mut integral = 0.0;
        let dx = 0.001;
        let mut x = 0.0;
        while x < 40.0 {
            integral += 0.5 * (d.pdf(x) + d.pdf(x + dx)) * dx;
            x += dx;
        }
        assert!((integral - 1.0).abs() < 1e-3, "integral {integral}");
    }
}
