//! Deterministic hierarchical seed derivation.
//!
//! The evaluation runs the same query configuration many times (e.g. 21 trials per
//! cell of the Figure 3 grid, 10 000 repetitions for the Figure 2 validation) and
//! aggregates percentiles across trials.  To make every experiment exactly
//! reproducible — and to let trials run on different threads without sharing RNG
//! state — each (experiment, configuration, trial) triple derives its own 64-bit
//! seed from a root seed via a SplitMix64-style mixing function.

/// A deterministic seed-derivation helper.
///
/// `SeedSequence` does not hold RNG state; it is a pure function from a root seed
/// plus a path of labels/indices to a derived 64-bit seed.  Derivations commute with
/// nothing: changing any component of the path produces an unrelated seed stream.
///
/// ```
/// use exsample_rand::SeedSequence;
///
/// let root = SeedSequence::new(42);
/// let trial_0 = root.derive("fig3").index(0);
/// let trial_1 = root.derive("fig3").index(1);
/// assert_ne!(trial_0.seed(), trial_1.seed());
/// // Re-deriving the same path gives the same seed.
/// assert_eq!(trial_0.seed(), SeedSequence::new(42).derive("fig3").index(0).seed());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSequence {
    state: u64,
}

impl SeedSequence {
    /// Create a seed sequence rooted at `root`.
    pub fn new(root: u64) -> Self {
        SeedSequence {
            state: splitmix64(root ^ 0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Derive a child sequence labelled with a string (e.g. the experiment name).
    pub fn derive(&self, label: &str) -> SeedSequence {
        let mut state = self.state;
        for byte in label.as_bytes() {
            state = splitmix64(state ^ u64::from(*byte));
        }
        // Mix in the label length so "ab"/"c" and "a"/"bc" cannot collide.
        state = splitmix64(state ^ (label.len() as u64).wrapping_mul(0xff51_afd7_ed55_8ccd));
        SeedSequence { state }
    }

    /// Derive a child sequence for a numeric index (e.g. the trial number).
    pub fn index(&self, index: u64) -> SeedSequence {
        SeedSequence {
            state: splitmix64(self.state ^ index.wrapping_mul(0xc4ce_b9fe_1a85_ec53)),
        }
    }

    /// The 64-bit seed value for this node, suitable for `SeedableRng::seed_from_u64`.
    pub fn seed(&self) -> u64 {
        self.state
    }
}

/// SplitMix64 mixing step.  Bijective on `u64`, with excellent avalanche behaviour.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn derivation_is_deterministic() {
        let a = SeedSequence::new(7).derive("table1").index(3).seed();
        let b = SeedSequence::new(7).derive("table1").index(3).seed();
        assert_eq!(a, b);
    }

    #[test]
    fn different_paths_give_different_seeds() {
        let root = SeedSequence::new(7);
        let a = root.derive("fig3").index(0).seed();
        let b = root.derive("fig3").index(1).seed();
        let c = root.derive("fig4").index(0).seed();
        let d = SeedSequence::new(8).derive("fig3").index(0).seed();
        let set: HashSet<u64> = [a, b, c, d].into_iter().collect();
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn label_boundaries_do_not_collide() {
        let root = SeedSequence::new(1);
        assert_ne!(
            root.derive("ab").derive("c").seed(),
            root.derive("a").derive("bc").seed()
        );
    }

    #[test]
    fn many_indices_have_no_collisions() {
        let root = SeedSequence::new(99).derive("trials");
        let seeds: HashSet<u64> = (0..100_000).map(|i| root.index(i).seed()).collect();
        assert_eq!(seeds.len(), 100_000);
    }

    #[test]
    fn splitmix_is_not_identity() {
        assert_ne!(splitmix64(0), 0);
        assert_ne!(splitmix64(1), 1);
    }
}
