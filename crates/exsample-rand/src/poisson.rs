//! Poisson distribution.
//!
//! Section III of the paper shows that, under an independence assumption, the
//! number of objects seen exactly once (`N1(n)`) follows a Poisson distribution
//! with parameter `lambda = sum_i pi_i(n)`.  The Figure 2 validation experiment and
//! several property tests draw from this distribution directly, and the dataset
//! analogs use Poisson counts for the number of instances per chunk.

use crate::error::{ensure_positive, DistributionError};
use crate::normal::standard_normal;
use crate::{uniform_open01, Sampler};
use rand::Rng;

/// Poisson distribution with mean `lambda`.
///
/// Sampling uses Knuth's inversion-by-multiplication for `lambda < 30` and a
/// normal-approximation with rejection correction for larger means (sufficient for
/// workload generation, where lambda rarely exceeds a few thousand).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Create a Poisson distribution with the given mean.
    pub fn new(lambda: f64) -> Result<Self, DistributionError> {
        ensure_positive("Poisson", "lambda", lambda)?;
        Ok(Poisson { lambda })
    }

    /// Mean (and variance) of the distribution.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Probability mass function at `k`.
    pub fn pmf(&self, k: u64) -> f64 {
        let k_f = k as f64;
        (k_f * self.lambda.ln() - self.lambda - crate::gamma::ln_gamma(k_f + 1.0)).exp()
    }
}

impl Sampler<u64> for Poisson {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.lambda < 30.0 {
            knuth(rng, self.lambda)
        } else {
            // Split lambda into manageable pieces so the Knuth product never
            // underflows, exploiting Poisson additivity:
            // Poisson(a + b) = Poisson(a) + Poisson(b).
            // For very large lambda fall back to a clamped normal approximation
            // which is accurate to O(1/sqrt(lambda)).
            if self.lambda > 5_000.0 {
                let z = standard_normal(rng);
                let value = self.lambda + self.lambda.sqrt() * z + 0.5;
                return value.max(0.0) as u64;
            }
            let mut remaining = self.lambda;
            let mut total = 0u64;
            while remaining > 0.0 {
                let piece = remaining.min(25.0);
                total += knuth(rng, piece);
                remaining -= piece;
            }
            total
        }
    }
}

/// Knuth's algorithm: count uniform draws until their product drops below
/// `exp(-lambda)`.
fn knuth<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    let limit = (-lambda).exp();
    let mut product = 1.0;
    let mut count = 0u64;
    loop {
        product *= uniform_open01(rng);
        if product <= limit {
            return count;
        }
        count += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::Summary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_summary(lambda: f64, n: usize, seed: u64) -> Summary {
        let d = Poisson::new(lambda).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = Summary::new();
        for _ in 0..n {
            s.push(d.sample(&mut rng) as f64);
        }
        s
    }

    #[test]
    fn small_lambda_moments() {
        let s = sample_summary(2.5, 200_000, 61);
        assert!((s.mean() - 2.5).abs() < 0.02, "mean {}", s.mean());
        assert!(
            (s.variance() - 2.5).abs() < 0.05,
            "variance {}",
            s.variance()
        );
    }

    #[test]
    fn medium_lambda_moments() {
        let s = sample_summary(150.0, 100_000, 62);
        assert!((s.mean() - 150.0).abs() < 0.5, "mean {}", s.mean());
        assert!((s.variance() - 150.0).abs() / 150.0 < 0.05);
    }

    #[test]
    fn large_lambda_moments() {
        let s = sample_summary(20_000.0, 50_000, 63);
        assert!((s.mean() - 20_000.0).abs() / 20_000.0 < 0.01);
        assert!((s.variance() - 20_000.0).abs() / 20_000.0 < 0.1);
    }

    #[test]
    fn pmf_sums_to_one() {
        let d = Poisson::new(4.0).unwrap();
        let total: f64 = (0..100).map(|k| d.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pmf_peaks_near_lambda() {
        let d = Poisson::new(7.0).unwrap();
        assert!(d.pmf(7) > d.pmf(2));
        assert!(d.pmf(7) > d.pmf(15));
    }

    #[test]
    fn zero_lambda_rejected() {
        assert!(Poisson::new(0.0).is_err());
        assert!(Poisson::new(-1.0).is_err());
        assert!(Poisson::new(f64::NAN).is_err());
    }

    #[test]
    fn tiny_lambda_mostly_zero() {
        let d = Poisson::new(0.01).unwrap();
        let mut rng = StdRng::seed_from_u64(64);
        let zeros = (0..10_000).filter(|_| d.sample(&mut rng) == 0).count();
        assert!(zeros > 9_800, "zeros {zeros}");
    }
}
