//! Ziggurat samplers for the standard Normal and Exponential distributions
//! (Marsaglia & Tsang, "The Ziggurat Method for Generating Random Variables",
//! 2000).
//!
//! These exist for one reason: ExSample's chunk-selection step draws one Gamma
//! sample *per chunk per pick*, and each Gamma draw consumes a standard-normal
//! variate (Marsaglia–Tsang squeeze) plus, for `shape < 1`, an exponential
//! variate for the boost factor.  The polar-method [`crate::StandardNormal`]
//! costs a rejection loop with two uniforms, a `ln` and a `sqrt` per variate;
//! the ziggurat costs a single `u64` draw, two table loads and one multiply in
//! ~98 % of cases.  At 10 000 chunks per pick the difference dominates the
//! whole selection hot path.
//!
//! The layer tables are precomputed and embedded as statics (see
//! `ziggurat_tables.rs`), so lookups are direct loads: no lazy initialisation,
//! and the layer index is masked to the table size so the compiler elides
//! bounds checks.  The rare wedge/tail fall-throughs are outlined with
//! `#[cold]` to keep the fast path small enough to inline.
//! [`crate::StandardNormal`] keeps the polar method so existing
//! workload-generation streams are unaffected; the Gamma sampler (and
//! therefore Thompson sampling) uses the ziggurat variants below.

use crate::uniform_open01;
use crate::ziggurat_tables::{EXP_X, EXP_Y, NORMAL_X, NORMAL_Y};
use rand::Rng;

/// Rightmost strip boundary for the 128-layer normal ziggurat.
const NORMAL_R: f64 = 3.442_619_855_899;
/// Rightmost strip boundary for the 256-layer exponential ziggurat.
const EXP_R: f64 = 7.697_117_470_131_05;

const U53: f64 = 1.0 / (1u64 << 53) as f64;

/// Draw a standard-normal variate via the 128-layer ziggurat.
///
/// Identical distribution to [`crate::StandardNormal`], roughly 3–4× faster.
/// Consumes one `u64` in the ~98 % fast path.
#[inline]
pub fn fast_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let bits = rng.next_u64();
        // Bit budget of one u64: 7 bits of layer index, 1 sign bit, 53 bits of
        // uniform mantissa (bits 11..64) — all disjoint.
        let i = (bits & 0x7F) as usize;
        let sign = if bits & 0x80 == 0 { 1.0 } else { -1.0 };
        let u = (bits >> 11) as f64 * U53;
        let z = u * NORMAL_X[i];
        if z < NORMAL_X[i + 1] {
            return sign * z;
        }
        if let Some(value) = normal_slow_path(rng, i, z, sign) {
            return value;
        }
    }
}

/// Tail and wedge handling for the normal ziggurat (~2 % of draws).
#[cold]
fn normal_slow_path<R: Rng + ?Sized>(rng: &mut R, i: usize, z: f64, sign: f64) -> Option<f64> {
    if i == 0 {
        // Tail beyond R (Marsaglia's exact tail method).
        loop {
            let e1 = -uniform_open01(rng).ln() / NORMAL_R;
            let e2 = -uniform_open01(rng).ln();
            if 2.0 * e2 >= e1 * e1 {
                return Some(sign * (NORMAL_R + e1));
            }
        }
    }
    // Wedge: strip i spans densities [y[i], y[i+1]].
    let u2: f64 = rng.gen();
    if NORMAL_Y[i] + u2 * (NORMAL_Y[i + 1] - NORMAL_Y[i]) < (-0.5 * z * z).exp() {
        return Some(sign * z);
    }
    None
}

/// Draw an `Exponential(1)` variate via the 256-layer ziggurat.
///
/// Consumes one `u64` in the ~98 % fast path; the tail loops back with an
/// offset (memorylessness: the tail of an exponential is an exponential).
#[inline]
pub fn fast_exponential<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let mut offset = 0.0;
    loop {
        let bits = rng.next_u64();
        let i = (bits & 0xFF) as usize;
        let u = (bits >> 11) as f64 * U53;
        let z = u * EXP_X[i];
        if z < EXP_X[i + 1] {
            return offset + z;
        }
        match exp_slow_path(rng, i, z) {
            SlowPath::Accept(value) => return offset + value,
            SlowPath::Tail => offset += EXP_R,
            SlowPath::Retry => {}
        }
    }
}

enum SlowPath {
    Accept(f64),
    Tail,
    Retry,
}

/// Tail and wedge handling for the exponential ziggurat (~2 % of draws).
#[cold]
fn exp_slow_path<R: Rng + ?Sized>(rng: &mut R, i: usize, z: f64) -> SlowPath {
    if i == 0 {
        // Tail: X > R is distributed as R + Exponential(1).
        return SlowPath::Tail;
    }
    let u2: f64 = rng.gen();
    if EXP_Y[i] + u2 * (EXP_Y[i + 1] - EXP_Y[i]) < (-z).exp() {
        SlowPath::Accept(z)
    } else {
        SlowPath::Retry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::Summary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn table_boundaries_satisfy_the_layer_recurrence() {
        // Spot-check the embedded tables against their defining equations.
        let f = |x: f64| (-0.5 * x * x).exp();
        assert!((NORMAL_X[1] - NORMAL_R).abs() < 1e-12);
        assert_eq!(NORMAL_X[128], 0.0);
        let v = 9.91256303526217e-3;
        for i in 2..128 {
            let expected = (-2.0 * (v / NORMAL_X[i - 1] + f(NORMAL_X[i - 1])).ln()).sqrt();
            assert!((NORMAL_X[i] - expected).abs() < 1e-12, "normal layer {i}");
            assert!(NORMAL_X[i] < NORMAL_X[i - 1], "normal layers must decrease");
            assert!((NORMAL_Y[i] - f(NORMAL_X[i])).abs() < 1e-15);
        }
        let fe = |x: f64| (-x).exp();
        let ve = 3.949_659_822_581_557e-3;
        assert!((EXP_X[1] - EXP_R).abs() < 1e-12);
        assert_eq!(EXP_X[256], 0.0);
        for i in 2..256 {
            let expected = -(ve / EXP_X[i - 1] + fe(EXP_X[i - 1])).ln();
            assert!((EXP_X[i] - expected).abs() < 1e-12, "exp layer {i}");
            assert!((EXP_Y[i] - fe(EXP_X[i])).abs() < 1e-15);
        }
    }

    #[test]
    fn normal_moments_match() {
        let mut rng = StdRng::seed_from_u64(41);
        let mut s = Summary::new();
        for _ in 0..400_000 {
            s.push(fast_standard_normal(&mut rng));
        }
        assert!(s.mean().abs() < 0.01, "mean {}", s.mean());
        assert!((s.variance() - 1.0).abs() < 0.02, "var {}", s.variance());
    }

    #[test]
    fn normal_cdf_agrees_with_analytic() {
        // Empirical CDF at several points vs the analytic Normal CDF; this
        // catches wedge/tail mistakes that moments alone would miss.
        let d = crate::Normal::new(0.0, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 400_000;
        let points = [-2.5, -1.0, -0.5, 0.0, 0.5, 1.0, 2.5, 3.5];
        let mut counts = [0usize; 8];
        for _ in 0..n {
            let z = fast_standard_normal(&mut rng);
            for (k, &p) in points.iter().enumerate() {
                if z <= p {
                    counts[k] += 1;
                }
            }
        }
        for (k, &p) in points.iter().enumerate() {
            let empirical = counts[k] as f64 / n as f64;
            assert!(
                (empirical - d.cdf(p)).abs() < 0.005,
                "point {p}: empirical {empirical} vs {}",
                d.cdf(p)
            );
        }
    }

    #[test]
    fn normal_tail_is_exercised() {
        let mut rng = StdRng::seed_from_u64(43);
        let mut beyond = 0usize;
        let n = 2_000_000;
        for _ in 0..n {
            if fast_standard_normal(&mut rng).abs() > NORMAL_R {
                beyond += 1;
            }
        }
        // P(|Z| > 3.4426) ≈ 5.74e-4.
        let rate = beyond as f64 / n as f64;
        assert!((rate - 5.74e-4).abs() < 2e-4, "tail rate {rate}");
    }

    #[test]
    fn exponential_moments_and_cdf() {
        let mut rng = StdRng::seed_from_u64(44);
        let mut s = Summary::new();
        let n = 400_000;
        let mut below_one = 0usize;
        let mut beyond_tail = 0usize;
        for _ in 0..n {
            let e = fast_exponential(&mut rng);
            assert!(e >= 0.0);
            if e <= 1.0 {
                below_one += 1;
            }
            if e > EXP_R {
                beyond_tail += 1;
            }
            s.push(e);
        }
        assert!((s.mean() - 1.0).abs() < 0.01, "mean {}", s.mean());
        assert!((s.variance() - 1.0).abs() < 0.03, "var {}", s.variance());
        let p1 = below_one as f64 / n as f64;
        assert!((p1 - (1.0 - (-1.0f64).exp())).abs() < 0.005, "P(X<=1) {p1}");
        // P(X > R) = exp(-R) ≈ 4.54e-4: the tail path must fire.
        let pt = beyond_tail as f64 / n as f64;
        assert!((pt - (-EXP_R).exp()).abs() < 2e-4, "tail rate {pt}");
    }
}
