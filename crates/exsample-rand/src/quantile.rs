//! Gamma quantiles and exact max-of-k Gamma draws.
//!
//! ExSample's belief-class selection path (see `exsample-core`) collapses the
//! Thompson arg-max over `M` chunks into an arg-max over the distinct belief
//! *classes*: all chunks sharing one `(N1, n)` posterior are exchangeable, so
//! the maximum of their `k` iid Gamma draws can be drawn *exactly* in one step
//! from the order-statistic identity
//!
//! ```text
//! max(X_1, …, X_k)  ~  F⁻¹(U^(1/k)),   U ~ Uniform(0, 1)
//! ```
//!
//! which needs a fast, numerically trustworthy Gamma quantile `F⁻¹`.  This
//! module provides it from first principles:
//!
//! * [`standard_normal_quantile`] — Acklam's rational approximation of `Φ⁻¹`
//!   (absolute error < 1.2e-9 before refinement), used only as a seed;
//! * [`gamma_quantile`] — the quantile of `Gamma(shape, 1)`: a Wilson–Hilferty
//!   initial guess (the Gamma as the cube of a shifted, scaled normal; a
//!   power/log seed below shape 1) refined by Halley iterations on the
//!   regularised lower incomplete gamma
//!   [`crate::gamma::lower_incomplete_gamma_regularized`].  The refinement
//!   converges to better than 1e-9 relative accuracy in 1–2 steps across
//!   shapes from well below the ExSample prior `α₀ = 0.1` up to the tens of
//!   thousands, stopping as soon as cubic convergence guarantees the result
//!   (each extra step costs one incomplete-gamma evaluation);
//! * [`gamma_max_of_k`] — the exact max-of-k draw built on the above, spending
//!   one uniform variate regardless of `k` (`U^(1/k)` is evaluated as
//!   `exp(ln(U)/k)` so million-member classes lose no precision).
//!
//! Round-trip (`quantile(cdf(x)) ≈ x`) and chi-square tests against `k`
//! independent Marsaglia–Tsang draws pin the implementation down; proptests in
//! `tests/quantile_props.rs` cover tolerance, monotonicity and extreme shapes.

use crate::gamma::{ln_gamma, lower_incomplete_gamma_regularized};
use crate::uniform_open01;
use rand::Rng;

/// Quantile (inverse CDF) of the standard normal distribution.
///
/// Acklam's rational approximation: three branches (lower tail, central,
/// upper tail) with absolute error below `1.2e-9` over `(0, 1)`.  The Gamma
/// quantile only uses this as an initial guess, so the approximation error is
/// removed by the Halley refinement there.
///
/// Returns `-∞` for `p <= 0` and `+∞` for `p >= 1`.
pub fn standard_normal_quantile(p: f64) -> f64 {
    if p <= 0.0 {
        return f64::NEG_INFINITY;
    }
    if p >= 1.0 {
        return f64::INFINITY;
    }
    // Coefficients of Acklam's approximation.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    let tail = |q: f64| -> f64 {
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    if p < P_LOW {
        tail((-2.0 * p.ln()).sqrt())
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -tail((-2.0 * (1.0 - p).ln()).sqrt())
    }
}

/// Halley iteration cap for [`gamma_quantile`].  The Wilson–Hilferty seed puts
/// typical inputs within 2–3 steps of convergence; the cap only matters for
/// extreme tail probabilities at extreme shapes.
const MAX_HALLEY_STEPS: usize = 16;

/// Quantile (inverse CDF) of `Gamma(shape, 1)`: the `x` with `P(shape, x) = p`,
/// where `P` is the regularised lower incomplete gamma function.
///
/// A Wilson–Hilferty initial guess (power/log seed for `shape <= 1`) is
/// refined by Halley's method on `P(shape, x) − p`, reusing the same
/// series/continued-fraction `P` as [`crate::Gamma::cdf`] — so the quantile is
/// consistent with the CDF to better than 1e-9 relative accuracy (round-trip
/// tested).  The refinement stops as soon as the applied step falls below
/// `1e-9·x`: Halley's convergence puts the remaining error far below the
/// round-trip tolerances, so a further iteration would spend an
/// incomplete-gamma evaluation confirming digits the tests never see.
///
/// For a `Gamma(shape, rate)` quantile divide the result by `rate` (the rate
/// is a pure scale parameter); [`crate::Gamma::quantile`] does exactly that.
///
/// Returns `0` for `p <= 0` and `+∞` for `p >= 1`.
///
/// # Panics
/// Panics if `shape` is not a positive finite number or `p` is NaN.
pub fn gamma_quantile(shape: f64, p: f64) -> f64 {
    assert!(
        shape > 0.0 && shape.is_finite(),
        "gamma_quantile needs a positive finite shape, got {shape}"
    );
    assert!(!p.is_nan(), "gamma_quantile needs a non-NaN probability");
    if p <= 0.0 {
        return 0.0;
    }
    if p >= 1.0 {
        return f64::INFINITY;
    }
    let a = shape;
    let a1 = a - 1.0;
    let gln = ln_gamma(a);
    // Initial guess.
    let mut x = if a > 1.0 {
        // Wilson–Hilferty: a Gamma variate is approximately the cube of a
        // shifted, scaled normal variate.
        let z = standard_normal_quantile(p);
        let t = 1.0 - 1.0 / (9.0 * a) + z / (3.0 * a.sqrt());
        (a * t * t * t).max(1e-3)
    } else {
        // Below shape 1 the cube seed is unusable; split the unit interval at
        // t ≈ P(a, 1) and seed from the power-law body / exponential tail.
        let t = 1.0 - a * (0.253 + a * 0.12);
        if p < t {
            (p / t).powf(1.0 / a)
        } else {
            1.0 - ((1.0 - p) / (1.0 - t)).ln()
        }
    };
    // `exp(a1·(ln(a1) − 1) − gln)` rescales the pdf so the large-shape branch
    // evaluates it near its mode without overflow.
    let afac = if a > 1.0 {
        (a1 * (a1.ln() - 1.0) - gln).exp()
    } else {
        0.0
    };
    for _ in 0..MAX_HALLEY_STEPS {
        if x <= 0.0 {
            return 0.0;
        }
        let err = lower_incomplete_gamma_regularized(a, x) - p;
        // The pdf of Gamma(a, 1) at x, in the branch-appropriate scaling.
        let pdf = if a > 1.0 {
            afac * (-(x - a1) + a1 * (x.ln() - a1.ln())).exp()
        } else {
            (-x + a1 * x.ln() - gln).exp()
        };
        if pdf <= 0.0 || !pdf.is_finite() {
            break;
        }
        // Halley's method: Newton's step `u = err/pdf`, corrected by half the
        // logarithmic derivative of the pdf, `(a−1)/x − 1`.
        let u = err / pdf;
        let step = u / (1.0 - 0.5 * (u * (a1 / x - 1.0)).min(1.0));
        x -= step;
        if x <= 0.0 {
            // Bounce off the support boundary instead of leaving it.
            x = 0.5 * (x + step);
        }
        if step.abs() < 1e-9 * x.max(1e-300) {
            // The step just applied already shrank the remaining relative
            // error well below the threshold (cubically near the root; by a
            // factor ≲ 3e-3 per step even in the worst large-shape regime), so
            // a further iteration only re-evaluates the incomplete gamma to
            // confirm a result we already have.  Each iteration costs one
            // `lower_incomplete_gamma_regularized` call — the dominant expense
            // of the quantile — and this break saves the trailing ones.  The
            // margin below the 1e-8 round-trip pins covers huge shapes, where
            // the body pdf grows like `√a` and amplifies x-error into p-space.
            break;
        }
    }
    x
}

/// Draw the maximum of `k` iid `Gamma(shape, rate)` variates exactly, spending
/// one uniform variate.
///
/// Uses the order-statistic identity `max ~ F⁻¹(U^(1/k))`: the CDF of the
/// maximum of `k` iid draws is `F(x)^k`, so pushing the `k`-th root of one
/// uniform through the quantile reproduces the max distribution *exactly* —
/// not approximately — for every `k ≥ 1`.  `U^(1/k)` is evaluated as
/// `exp(ln(U)/k)`, which keeps full precision even for million-member classes
/// (where `U^(1/k)` is within ulps of 1).
///
/// This is the draw behind ExSample's belief-class selection: one call
/// replaces `k` per-chunk Marsaglia–Tsang draws with a single quantile
/// evaluation.
///
/// # Panics
/// Panics if `shape` or `rate` is not positive finite, or `k == 0`.
pub fn gamma_max_of_k<R: Rng + ?Sized>(rng: &mut R, shape: f64, rate: f64, k: u64) -> f64 {
    assert!(k > 0, "the maximum of zero draws is undefined");
    assert!(
        rate > 0.0 && rate.is_finite(),
        "gamma_max_of_k needs a positive finite rate, got {rate}"
    );
    let u = uniform_open01(rng);
    let p = (u.ln() / k as f64).exp();
    gamma_quantile(shape, p) / rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Gamma, Sampler};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Shapes spanning the boost branch, the exponential special case, and
    /// large near-normal beliefs — the issue's 0.3..=64 pin plus the ExSample
    /// prior 0.1.
    const SHAPES: [f64; 8] = [0.1, 0.3, 0.5, 1.0, 2.0, 5.1, 17.0, 64.0];

    #[test]
    fn normal_quantile_known_values() {
        assert!(standard_normal_quantile(0.5).abs() < 1e-9);
        assert!((standard_normal_quantile(0.975) - 1.959_963_985).abs() < 1e-6);
        assert!((standard_normal_quantile(0.025) + 1.959_963_985).abs() < 1e-6);
        assert!((standard_normal_quantile(0.841_344_746) - 1.0).abs() < 1e-6);
        assert!(standard_normal_quantile(1e-12) < -6.0);
        assert_eq!(standard_normal_quantile(0.0), f64::NEG_INFINITY);
        assert_eq!(standard_normal_quantile(1.0), f64::INFINITY);
    }

    #[test]
    fn normal_quantile_is_antisymmetric() {
        for &p in &[1e-6, 1e-3, 0.05, 0.2, 0.45] {
            let lower = standard_normal_quantile(p);
            let upper = standard_normal_quantile(1.0 - p);
            assert!((lower + upper).abs() < 1e-8, "p = {p}");
        }
    }

    #[test]
    fn quantile_round_trips_through_the_cdf() {
        // quantile(cdf(x)) ≈ x across shapes and a wide x grid.
        for &shape in &SHAPES {
            for i in 1..=40 {
                // Cover ~0.05× to ~4× the mean (the mean of Gamma(a, 1) is a).
                let x = shape * 0.1 * i as f64;
                let p = lower_incomplete_gamma_regularized(shape, x);
                if p <= 1e-12 || p >= 1.0 - 1e-9 {
                    // Saturated p: the inverse amplifies by 1/pdf, so the
                    // round-trip comparison stops being meaningful in x.
                    continue;
                }
                let back = gamma_quantile(shape, p);
                assert!(
                    (back - x).abs() < 1e-8 * x.max(1.0),
                    "shape {shape}, x {x}: round-trip gave {back} (p = {p})"
                );
            }
        }
    }

    #[test]
    fn cdf_round_trips_through_the_quantile() {
        // cdf(quantile(p)) ≈ p, including deep tails.
        for &shape in &SHAPES {
            for &p in &[
                1e-9,
                1e-4,
                0.01,
                0.1,
                0.25,
                0.5,
                0.75,
                0.9,
                0.99,
                1.0 - 1e-6,
            ] {
                let x = gamma_quantile(shape, p);
                let back = lower_incomplete_gamma_regularized(shape, x);
                assert!(
                    (back - p).abs() < 1e-9,
                    "shape {shape}, p {p}: got x {x}, back {back}"
                );
            }
        }
    }

    #[test]
    fn quantile_is_monotone_in_p() {
        for &shape in &SHAPES {
            let mut prev = 0.0;
            for i in 1..200 {
                let p = i as f64 / 200.0;
                let x = gamma_quantile(shape, p);
                assert!(
                    x >= prev,
                    "shape {shape}: quantile not monotone at p = {p} ({x} < {prev})"
                );
                prev = x;
            }
        }
    }

    #[test]
    fn quantile_edge_probabilities() {
        assert_eq!(gamma_quantile(2.0, 0.0), 0.0);
        assert_eq!(gamma_quantile(2.0, 1.0), f64::INFINITY);
        assert_eq!(gamma_quantile(0.1, -0.5), 0.0);
        assert_eq!(gamma_quantile(0.1, 1.5), f64::INFINITY);
    }

    #[test]
    fn quantile_exponential_special_case() {
        // Gamma(1, 1) is Exponential(1): quantile(p) = −ln(1 − p).
        for &p in &[0.01_f64, 0.1, 0.5, 0.9, 0.999] {
            let expected = -(1.0 - p).ln();
            let got = gamma_quantile(1.0, p);
            assert!(
                (got - expected).abs() < 1e-10 * expected.max(1.0),
                "p = {p}: got {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn quantile_median_of_large_shape_is_near_the_mean() {
        // For large shape the Gamma is nearly normal: median ≈ a − 1/3.
        let median = gamma_quantile(1_000.0, 0.5);
        assert!(
            (median - (1_000.0 - 1.0 / 3.0)).abs() < 0.1,
            "median {median}"
        );
    }

    #[test]
    #[should_panic(expected = "positive finite shape")]
    fn quantile_rejects_bad_shape() {
        let _ = gamma_quantile(0.0, 0.5);
    }

    #[test]
    #[should_panic(expected = "maximum of zero draws")]
    fn max_of_zero_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = gamma_max_of_k(&mut rng, 1.0, 1.0, 0);
    }

    #[test]
    fn max_of_one_matches_the_plain_distribution_in_moments() {
        // k = 1 is just an inverse-CDF draw of the Gamma itself.
        let mut rng = StdRng::seed_from_u64(7);
        let n = 60_000;
        let mut sum = 0.0;
        for _ in 0..n {
            sum += gamma_max_of_k(&mut rng, 2.0, 3.0, 1);
        }
        let mean = sum / n as f64;
        assert!((mean - 2.0 / 3.0).abs() < 0.01, "mean {mean}");
    }

    /// Two-sample chi-square over analytic equal-probability bins: the bin
    /// edges are the quantiles of the max distribution itself
    /// (`F_max⁻¹(i/B) = F⁻¹((i/B)^(1/k))`), so both samples should spread
    /// uniformly across the bins.
    fn chi_square_max_vs_independent(shape: f64, rate: f64, k: u64, seed: u64) -> f64 {
        const BINS: usize = 8;
        const N: usize = 4_000;
        let edges: Vec<f64> = (1..BINS)
            .map(|i| {
                let p = (i as f64 / BINS as f64).powf(1.0 / k as f64);
                gamma_quantile(shape, p) / rate
            })
            .collect();
        let bin_of = |x: f64| edges.partition_point(|&e| e < x);
        let dist = Gamma::new(shape, rate).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut order_stat = [0usize; BINS];
        for _ in 0..N {
            order_stat[bin_of(gamma_max_of_k(&mut rng, shape, rate, k))] += 1;
        }
        let mut independent = [0usize; BINS];
        for _ in 0..N {
            let mut max = f64::NEG_INFINITY;
            for _ in 0..k {
                max = max.max(dist.sample(&mut rng));
            }
            independent[bin_of(max)] += 1;
        }
        let mut chi = 0.0;
        for (&a, &b) in order_stat.iter().zip(&independent) {
            let total = (a + b) as f64;
            if total > 0.0 {
                let diff = a as f64 - b as f64;
                chi += diff * diff / total;
            }
        }
        chi
    }

    #[test]
    fn max_of_k_matches_k_independent_draws_in_distribution() {
        // df = 7, 99.99 % quantile ≈ 29.9; fixed seeds make each run
        // deterministic.  Shapes cover the boost branch through near-normal.
        for (i, &(shape, k)) in [
            (0.3_f64, 4_u64),
            (0.3, 64),
            (1.0, 16),
            (5.1, 7),
            (8.0, 100),
            (64.0, 3),
        ]
        .iter()
        .enumerate()
        {
            let chi = chi_square_max_vs_independent(shape, 1.7, k, 1_000 + i as u64);
            assert!(
                chi < 29.9,
                "shape {shape}, k {k}: chi-square {chi:.2} rejects equivalence"
            );
        }
    }

    #[test]
    fn max_of_large_k_is_finite_and_beyond_the_body() {
        // U^(1/k) for k = 10^6 sits within ulps of 1; the log-space form must
        // keep resolution rather than collapsing to p = 1 (infinite quantile).
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..200 {
            let x = gamma_max_of_k(&mut rng, 0.1, 1.0, 1_000_000);
            assert!(x.is_finite(), "max-of-10^6 draw must stay finite");
            assert!(x > 0.0);
        }
    }
}
