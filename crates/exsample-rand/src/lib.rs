//! # exsample-rand
//!
//! From-scratch implementations of the non-uniform random distributions used by the
//! ExSample reproduction.
//!
//! The ExSample algorithm (Moll et al., ICDE 2022) relies on sampling from a
//! [`Gamma`] belief distribution for Thompson sampling (Eq. III.4 of the paper),
//! and its evaluation workloads are generated from [`LogNormal`] duration models,
//! [`Normal`] temporal placement models and [`Poisson`] count models.  The
//! crates.io distribution crates are deliberately not used: every sampler here is
//! implemented directly on top of a uniform [`rand::Rng`] source so the whole
//! pipeline is auditable and reproducible from first principles.
//!
//! ## Modules
//!
//! * [`normal`] — standard / parameterised Normal via the Marsaglia polar method.
//! * [`gamma`] — Gamma via the Marsaglia–Tsang squeeze method (with the shape < 1
//!   boost), the core of ExSample's Thompson sampling step; includes the
//!   cached-constant API ([`CachedGamma`], [`gamma::mt_constants`],
//!   [`gamma::gamma_draw`]) that the chunk-selection hot path builds on.
//! * [`quantile`] — Gamma quantile (Wilson–Hilferty seed + Halley refinement on
//!   the regularized incomplete gamma) and [`quantile::gamma_max_of_k`], the
//!   exact max-of-k order-statistic draw behind belief-class deduplicated
//!   Thompson sampling.
//! * [`ziggurat`] — fast table-based standard Normal / Exponential samplers
//!   backing the Gamma hot path.
//! * [`lognormal`] — LogNormal durations, parameterisable by target mean/sigma.
//! * [`poisson`] — Poisson counts (inversion for small mean, normal-approximation
//!   rejection for large mean).
//! * [`exponential`] — Exponential inter-arrival times.
//! * [`beta`] — Beta distribution built from two Gamma draws.
//! * [`seeding`] — deterministic hierarchical seed derivation for multi-trial
//!   experiments.
//! * [`summary`] — summary statistics (mean, variance, percentiles, geometric
//!   mean) used when aggregating experiment trials.
//! * [`histogram`] — fixed-width histograms used by the Figure 2 estimator
//!   validation experiment.
//!
//! ## Example
//!
//! ```
//! use exsample_rand::{Gamma, Sampler};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! // The ExSample belief distribution for a chunk with N1 = 3, n = 100:
//! let belief = Gamma::new(3.0 + 0.1, 100.0 + 1.0).unwrap();
//! let draw = belief.sample(&mut rng);
//! assert!(draw > 0.0);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod beta;
pub mod error;
pub mod exponential;
pub mod gamma;
pub mod histogram;
pub mod lognormal;
pub mod normal;
pub mod poisson;
pub mod quantile;
pub mod seeding;
pub mod summary;
pub mod ziggurat;
mod ziggurat_tables;

pub use beta::Beta;
pub use error::DistributionError;
pub use exponential::Exponential;
pub use gamma::{CachedGamma, Gamma};
pub use histogram::Histogram;
pub use lognormal::LogNormal;
pub use normal::{Normal, StandardNormal};
pub use poisson::Poisson;
pub use quantile::{gamma_max_of_k, gamma_quantile, standard_normal_quantile};
pub use seeding::SeedSequence;
pub use summary::{geometric_mean, Summary};

use rand::Rng;

/// A distribution from which values can be sampled given a uniform RNG.
///
/// This mirrors `rand::distributions::Distribution` but is defined locally so the
/// whole sampling stack (and its error handling) lives in this workspace.
pub trait Sampler<T> {
    /// Draw one value from the distribution.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;

    /// Draw `count` values from the distribution into a fresh vector.
    fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, count: usize) -> Vec<T> {
        (0..count).map(|_| self.sample(rng)).collect()
    }
}

/// Draw a uniform value in `(0, 1)` that is guaranteed to be strictly positive.
///
/// Several rejection samplers take `ln(u)` of a uniform draw; a literal zero would
/// produce `-inf` and poison downstream arithmetic, so we redraw in that
/// (astronomically unlikely) case.
pub(crate) fn uniform_open01<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen();
        if u > 0.0 {
            return u;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_open01_is_in_open_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let u = uniform_open01(&mut rng);
            assert!(u > 0.0 && u < 1.0);
        }
    }

    #[test]
    fn sample_n_has_requested_length() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = Exponential::new(1.5).unwrap();
        assert_eq!(d.sample_n(&mut rng, 37).len(), 37);
    }
}
