//! Fixed-width histograms.
//!
//! The Figure 2 validation experiment compares the *empirical histogram* of the true
//! next-frame reward `R(n+1)` (collected over thousands of simulated runs) against
//! the Gamma belief density of Eq. III.4.  This module provides the histogram type
//! used to collect and normalise those observations.

/// A histogram with equally sized bins over a fixed `[lo, hi)` range.
///
/// Out-of-range observations are counted in saturating under/overflow bins so that
/// totals are never silently lost.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Create a histogram over `[lo, hi)` with `bins` equally sized bins.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Add one observation.
    pub fn record(&mut self, value: f64) {
        self.total += 1;
        if value < self.lo {
            self.underflow += 1;
            return;
        }
        if value >= self.hi {
            self.overflow += 1;
            return;
        }
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        let idx = ((value - self.lo) / width) as usize;
        let idx = idx.min(self.counts.len() - 1);
        self.counts[idx] += 1;
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Lower edge of the range.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper edge of the range.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Width of a single bin.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Centre of bin `idx`.
    pub fn bin_center(&self, idx: usize) -> f64 {
        self.lo + (idx as f64 + 0.5) * self.bin_width()
    }

    /// Raw count in bin `idx`.
    pub fn count(&self, idx: usize) -> u64 {
        self.counts[idx]
    }

    /// Total number of recorded observations, including under/overflow.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Observations that fell below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations that fell at or above the upper edge.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// The bin counts normalised to a probability *density* (so the histogram can be
    /// overlaid on an analytic PDF): each value is `count / (total * bin_width)`.
    pub fn density(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        let norm = self.total as f64 * self.bin_width();
        self.counts.iter().map(|&c| c as f64 / norm).collect()
    }

    /// The fraction of in-range observations in each bin.
    pub fn fractions(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_correct_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(0.5);
        h.record(9.99);
        h.record(5.0);
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(9), 1);
        assert_eq!(h.count(5), 1);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn under_and_overflow_are_tracked() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-0.1);
        h.record(1.0);
        h.record(2.0);
        h.record(0.5);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn density_integrates_to_in_range_fraction() {
        let mut h = Histogram::new(0.0, 2.0, 8);
        for i in 0..1000 {
            h.record((i % 20) as f64 / 10.0); // values 0.0 .. 1.9, all in range
        }
        let integral: f64 = h.density().iter().map(|d| d * h.bin_width()).sum();
        assert!((integral - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bin_centers_are_midpoints() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert!((h.bin_center(0) - 0.125).abs() < 1e-12);
        assert!((h.bin_center(3) - 0.875).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_range_panics() {
        let _ = Histogram::new(1.0, 1.0, 4);
    }

    #[test]
    fn empty_histogram_density_is_zero() {
        let h = Histogram::new(0.0, 1.0, 3);
        assert_eq!(h.density(), vec![0.0, 0.0, 0.0]);
        assert_eq!(h.fractions(), vec![0.0, 0.0, 0.0]);
    }
}
