//! Normal (Gaussian) distribution via the Marsaglia polar method.
//!
//! The Figure 3 workload of the paper places object instances along the frame axis
//! according to a Normal distribution whose standard deviation controls the
//! *instance skew* of the dataset.  The Gamma sampler also consumes standard-normal
//! draws internally (Marsaglia–Tsang).

use crate::error::{ensure_finite, ensure_positive, DistributionError};
use crate::{uniform_open01, Sampler};
use rand::Rng;

/// The standard Normal distribution `N(0, 1)`.
///
/// Uses the Marsaglia polar method: draw a uniform point in the unit disc and
/// transform it into two independent standard-normal variates.  One of the pair is
/// returned and the other discarded; the sampler is stateless so it can be shared
/// freely across threads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StandardNormal;

impl StandardNormal {
    /// Create the standard normal sampler.
    pub fn new() -> Self {
        StandardNormal
    }
}

impl Sampler<f64> for StandardNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        loop {
            // Uniform point in the square [-1, 1) x [-1, 1).
            let u: f64 = rng.gen_range(-1.0..1.0);
            let v: f64 = rng.gen_range(-1.0..1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                return u * factor;
            }
        }
    }
}

/// A Normal distribution with arbitrary mean and standard deviation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Create a Normal distribution `N(mean, std_dev^2)`.
    ///
    /// `std_dev` must be strictly positive; use [`Normal::degenerate`] for a point
    /// mass.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, DistributionError> {
        ensure_finite("Normal", "mean", mean)?;
        ensure_positive("Normal", "std_dev", std_dev)?;
        Ok(Normal { mean, std_dev })
    }

    /// Create a degenerate Normal that always returns `mean`.
    ///
    /// The Figure 3 "no skew" configuration is modelled by an effectively infinite
    /// standard deviation, but some tests use a zero-variance placement, which this
    /// constructor supports without special-casing callers.
    pub fn degenerate(mean: f64) -> Self {
        Normal { mean, std_dev: 0.0 }
    }

    /// Mean of the distribution.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Standard deviation of the distribution.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Probability density function evaluated at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        if self.std_dev == 0.0 {
            return if x == self.mean { f64::INFINITY } else { 0.0 };
        }
        let z = (x - self.mean) / self.std_dev;
        (-0.5 * z * z).exp() / (self.std_dev * (2.0 * std::f64::consts::PI).sqrt())
    }

    /// Cumulative distribution function evaluated at `x`.
    ///
    /// Uses the complementary-error-function expansion (Abramowitz & Stegun 7.1.26),
    /// accurate to about `1.5e-7`, which is ample for workload generation and tests.
    pub fn cdf(&self, x: f64) -> f64 {
        if self.std_dev == 0.0 {
            return if x >= self.mean { 1.0 } else { 0.0 };
        }
        let z = (x - self.mean) / (self.std_dev * std::f64::consts::SQRT_2);
        0.5 * (1.0 + erf(z))
    }
}

impl Sampler<f64> for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.std_dev == 0.0 {
            return self.mean;
        }
        self.mean + self.std_dev * StandardNormal.sample(rng)
    }
}

/// Error function approximation (Abramowitz & Stegun formula 7.1.26).
///
/// Maximum absolute error ~1.5e-7 over the real line.
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();

    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;

    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// Draw a standard normal using the ratio-of-uniforms method.
///
/// Kept as an internal alternative used by the Poisson sampler's large-mean branch
/// where only a single variate is needed and tail accuracy matters.
pub(crate) fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Box-Muller: simpler than polar for one-off use and needs no rejection loop.
    let u1 = uniform_open01(rng);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::Summary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn draw_summary<S: Sampler<f64>>(dist: &S, n: usize, seed: u64) -> Summary {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = Summary::new();
        for _ in 0..n {
            s.push(dist.sample(&mut rng));
        }
        s
    }

    #[test]
    fn standard_normal_moments() {
        let s = draw_summary(&StandardNormal, 200_000, 11);
        assert!(s.mean().abs() < 0.02, "mean {}", s.mean());
        assert!((s.variance() - 1.0).abs() < 0.03, "var {}", s.variance());
    }

    #[test]
    fn parameterised_normal_moments() {
        let d = Normal::new(5.0, 2.5).unwrap();
        let s = draw_summary(&d, 200_000, 12);
        assert!((s.mean() - 5.0).abs() < 0.05);
        assert!((s.variance() - 6.25).abs() < 0.2);
    }

    #[test]
    fn degenerate_normal_is_constant() {
        let d = Normal::degenerate(3.25);
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 3.25);
        }
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn cdf_matches_known_values() {
        let d = Normal::new(0.0, 1.0).unwrap();
        assert!((d.cdf(0.0) - 0.5).abs() < 1e-6);
        assert!((d.cdf(1.0) - 0.841_344_7).abs() < 1e-4);
        assert!((d.cdf(-1.0) - 0.158_655_3).abs() < 1e-4);
        assert!((d.cdf(1.96) - 0.975).abs() < 1e-3);
    }

    #[test]
    fn pdf_is_symmetric_and_peaks_at_mean() {
        let d = Normal::new(2.0, 1.5).unwrap();
        assert!((d.pdf(1.0) - d.pdf(3.0)).abs() < 1e-12);
        assert!(d.pdf(2.0) > d.pdf(2.5));
        assert!(d.pdf(2.0) > d.pdf(1.5));
    }

    #[test]
    fn erf_known_values() {
        assert!((erf(0.0)).abs() < 1e-6);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-5);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-5);
        assert!((erf(3.0) - 0.999_977_9).abs() < 1e-4);
    }

    #[test]
    fn box_muller_helper_reasonable() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut s = Summary::new();
        for _ in 0..100_000 {
            s.push(standard_normal(&mut rng));
        }
        assert!(s.mean().abs() < 0.02);
        assert!((s.variance() - 1.0).abs() < 0.05);
    }
}
