//! Error type shared by all distribution constructors.

use std::fmt;

/// Error returned when a distribution is constructed with invalid parameters.
///
/// Each distribution constructor validates its parameters up front and returns this
/// error rather than panicking, so workload-generation code can surface bad
/// configurations (e.g. a negative duration mean read from a sweep definition) as
/// ordinary `Result`s.
#[derive(Debug, Clone, PartialEq)]
pub enum DistributionError {
    /// A parameter that must be strictly positive was zero or negative (or NaN).
    NonPositiveParameter {
        /// Which distribution rejected the parameter.
        distribution: &'static str,
        /// The parameter name as it appears in the constructor.
        parameter: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A parameter that must be finite was NaN or infinite.
    NonFiniteParameter {
        /// Which distribution rejected the parameter.
        distribution: &'static str,
        /// The parameter name as it appears in the constructor.
        parameter: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A probability parameter fell outside `[0, 1]`.
    ProbabilityOutOfRange {
        /// Which distribution rejected the parameter.
        distribution: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for DistributionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistributionError::NonPositiveParameter {
                distribution,
                parameter,
                value,
            } => write!(
                f,
                "{distribution}: parameter `{parameter}` must be > 0, got {value}"
            ),
            DistributionError::NonFiniteParameter {
                distribution,
                parameter,
                value,
            } => write!(
                f,
                "{distribution}: parameter `{parameter}` must be finite, got {value}"
            ),
            DistributionError::ProbabilityOutOfRange {
                distribution,
                value,
            } => write!(
                f,
                "{distribution}: probability must lie in [0, 1], got {value}"
            ),
        }
    }
}

impl std::error::Error for DistributionError {}

/// Validate that `value` is finite, returning a [`DistributionError`] otherwise.
pub(crate) fn ensure_finite(
    distribution: &'static str,
    parameter: &'static str,
    value: f64,
) -> Result<(), DistributionError> {
    if value.is_finite() {
        Ok(())
    } else {
        Err(DistributionError::NonFiniteParameter {
            distribution,
            parameter,
            value,
        })
    }
}

/// Validate that `value` is strictly positive and finite.
pub(crate) fn ensure_positive(
    distribution: &'static str,
    parameter: &'static str,
    value: f64,
) -> Result<(), DistributionError> {
    ensure_finite(distribution, parameter, value)?;
    if value > 0.0 {
        Ok(())
    } else {
        Err(DistributionError::NonPositiveParameter {
            distribution,
            parameter,
            value,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ensure_positive_accepts_positive() {
        assert!(ensure_positive("Gamma", "shape", 0.5).is_ok());
    }

    #[test]
    fn ensure_positive_rejects_zero_and_negative() {
        assert!(ensure_positive("Gamma", "shape", 0.0).is_err());
        assert!(ensure_positive("Gamma", "shape", -1.0).is_err());
    }

    #[test]
    fn ensure_positive_rejects_nan_and_inf() {
        assert!(matches!(
            ensure_positive("Gamma", "shape", f64::NAN),
            Err(DistributionError::NonFiniteParameter { .. })
        ));
        assert!(matches!(
            ensure_positive("Gamma", "shape", f64::INFINITY),
            Err(DistributionError::NonFiniteParameter { .. })
        ));
    }

    #[test]
    fn display_is_human_readable() {
        let err = DistributionError::NonPositiveParameter {
            distribution: "Gamma",
            parameter: "rate",
            value: -2.0,
        };
        let text = err.to_string();
        assert!(text.contains("Gamma"));
        assert!(text.contains("rate"));
        assert!(text.contains("-2"));
    }
}
