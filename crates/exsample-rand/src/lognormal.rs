//! LogNormal distribution.
//!
//! Both the paper's Figure 2 validation (per-instance frame probabilities `p_i`)
//! and its Figure 3 workload grid (instance durations in frames) are generated from
//! LogNormal distributions, because object visibility durations in real video are
//! heavily right-skewed: most objects are visible for a few seconds, a few (e.g. a
//! red light the camera is stopped at) for minutes.

use crate::error::{ensure_finite, ensure_positive, DistributionError};
use crate::normal::StandardNormal;
use crate::Sampler;
use rand::Rng;

/// LogNormal distribution: `exp(N(mu, sigma^2))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Create a LogNormal from the underlying normal's parameters.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, DistributionError> {
        ensure_finite("LogNormal", "mu", mu)?;
        ensure_positive("LogNormal", "sigma", sigma)?;
        Ok(LogNormal { mu, sigma })
    }

    /// Create a LogNormal whose *arithmetic* mean equals `mean`, with log-space
    /// standard deviation `sigma`.
    ///
    /// The Figure 3 workload specifies durations by their target mean (e.g. "mean
    /// duration 700 frames"); given a fixed log-space sigma this solves for `mu`
    /// such that `E[X] = exp(mu + sigma^2 / 2) = mean`.
    pub fn with_mean(mean: f64, sigma: f64) -> Result<Self, DistributionError> {
        ensure_positive("LogNormal", "mean", mean)?;
        ensure_positive("LogNormal", "sigma", sigma)?;
        let mu = mean.ln() - sigma * sigma / 2.0;
        Ok(LogNormal { mu, sigma })
    }

    /// Location parameter of the underlying normal.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Scale parameter of the underlying normal.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Arithmetic mean `exp(mu + sigma^2/2)`.
    pub fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }

    /// Arithmetic variance `(exp(sigma^2) - 1) * exp(2 mu + sigma^2)`.
    pub fn variance(&self) -> f64 {
        let s2 = self.sigma * self.sigma;
        (s2.exp() - 1.0) * (2.0 * self.mu + s2).exp()
    }

    /// Median `exp(mu)`.
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }
}

impl Sampler<f64> for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * StandardNormal.sample(rng)).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::Summary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn with_mean_hits_target_mean() {
        let d = LogNormal::with_mean(700.0, 1.0).unwrap();
        assert!((d.mean() - 700.0).abs() < 1e-9);
        let mut rng = StdRng::seed_from_u64(41);
        let mut s = Summary::new();
        for _ in 0..400_000 {
            s.push(d.sample(&mut rng));
        }
        // Within a few percent of the target mean.
        assert!((s.mean() - 700.0).abs() / 700.0 < 0.03, "mean {}", s.mean());
    }

    #[test]
    fn samples_are_positive_and_skewed() {
        let d = LogNormal::new(0.0, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let mut s = Summary::new();
        for _ in 0..100_000 {
            let x = d.sample(&mut rng);
            assert!(x > 0.0);
            s.push(x);
        }
        // Mean exceeds the median for a right-skewed distribution.
        assert!(s.mean() > s.percentile(0.5));
    }

    #[test]
    fn median_is_exp_mu() {
        let d = LogNormal::new(2.0, 0.5).unwrap();
        assert!((d.median() - 2.0_f64.exp()).abs() < 1e-12);
    }

    #[test]
    fn variance_formula_matches_samples() {
        let d = LogNormal::new(0.5, 0.4).unwrap();
        let mut rng = StdRng::seed_from_u64(43);
        let mut s = Summary::new();
        for _ in 0..400_000 {
            s.push(d.sample(&mut rng));
        }
        assert!((s.variance() - d.variance()).abs() / d.variance() < 0.05);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(LogNormal::new(0.0, 0.0).is_err());
        assert!(LogNormal::new(f64::NAN, 1.0).is_err());
        assert!(LogNormal::with_mean(0.0, 1.0).is_err());
        assert!(LogNormal::with_mean(-5.0, 1.0).is_err());
    }
}
