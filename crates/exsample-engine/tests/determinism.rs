//! Engine determinism guarantees, pinned down end to end:
//!
//! 1. a single-query engine at batch size 1 reproduces the legacy hand-written
//!    `run_query` loop **pick for pick** under the same RNG seed (the legacy
//!    loop is replicated faithfully here, since `run_query` itself is now a
//!    wrapper over the engine); and
//! 2. a multi-query run produces identical per-query outcomes for any stage
//!    interleaving — solo vs. concurrent execution, coalescing on or off,
//!    permuted registration order, extra companion queries; and
//! 3. shard invariance: for shard counts {1, 2, 3, 7} and both partitioners,
//!    the merged `EngineReport` and every query's pick sequence are identical
//!    to the unsharded run — and the explicit `RoundRobin` scheduler is
//!    pick-for-pick the default behaviour; and
//! 4. execution-mode invariance: parallel DETECT execution
//!    (`ExecutionMode::Parallel`) is bitwise-identical to serial execution —
//!    merged reports, per-query pick sequences, and logical *and* physical
//!    invocation counts — over the full matrix of threads {1, 2, 4} ×
//!    shards {1, 3, 7} × both partitioners × both dispatch runtimes (the
//!    persistent per-run worker pool, `Dispatch::Pooled`, and the legacy
//!    per-stage scoped spawn, `Dispatch::Scoped`); and
//! 5. aggregation invariance: cross-shard batch aggregation
//!    (`QueryEngine::aggregation`) — unbounded and with a max-batch cap —
//!    leaves picks and merged reports bitwise-identical to the unaggregated
//!    baseline over the same execution matrix, and unbounded aggregation
//!    collapses the physical invocation count to the logical one; and
//! 6. overlap determinism: stage-overlapped runs (`QueryEngine::overlap`) are
//!    *not* pick-for-pick with non-overlapped runs (stop decisions lag one
//!    stage by design) but are bitwise-identical to each other across the
//!    full execution matrix, with and without aggregation; and
//! 7. cache-axis determinism: with the lock-striped detections cache enabled
//!    (small enough to evict), merged reports, per-query pick sequences, and
//!    the cache accounting itself (hits/misses/evictions/admission rejects,
//!    globally and per shard) are bitwise-identical across
//!    threads {1, 2, 4} × shards {1, 3, 7} × both partitioners × both
//!    dispatch runtimes × overlap on/off × aggregation on/off — and the
//!    frequency-admission policy preserves the same guarantee.

use exsample_core::{ExSample, ExSampleConfig};
use exsample_detect::{
    Detector, FrameDetections, GroundTruth, ObjectClass, ObjectInstance, PerfectDetector,
};
use exsample_engine::{
    run_query, AdmissionPolicy, BatchAggregation, CacheConfig, Dispatch, EngineReport,
    ExSamplePolicy, ExecutionMode, FrameSamplerPolicy, QueryEngine, QueryReport, QuerySpec,
    RoundRobin, SamplingPolicy, ShardRouter, ShardedReport, StopReason,
};
use exsample_track::{Discriminator, MatchOutcome, OracleDiscriminator};
use exsample_video::{
    Chunking, ChunkingPolicy, FrameId, ShardPartitioner, ShardSpec, VideoRepository,
};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::{Arc, Mutex};

/// A detector that logs every frame it is asked about, in order.  The log is
/// behind a `Mutex` because `Detector` is `Send + Sync` — parallel engines
/// genuinely share one instance across worker threads.
struct RecordingDetector<D: Detector> {
    inner: D,
    log: Mutex<Vec<FrameId>>,
}

impl<D: Detector> RecordingDetector<D> {
    fn new(inner: D) -> Self {
        RecordingDetector {
            inner,
            log: Mutex::new(Vec::new()),
        }
    }
}

impl<D: Detector> Detector for RecordingDetector<D> {
    fn detect(&self, frame: FrameId) -> FrameDetections {
        self.log.lock().unwrap().push(frame);
        self.inner.detect(frame)
    }

    fn class(&self) -> &ObjectClass {
        self.inner.class()
    }
}

fn skewed_setup(frames: u64, chunks: u32) -> (Chunking, Arc<GroundTruth>) {
    let repo = VideoRepository::single_clip(frames);
    let chunking = Chunking::new(&repo, ChunkingPolicy::FixedCount { chunks });
    let mut instances = Vec::new();
    let start0 = frames * 4 / 5;
    let span = (frames / 64).max(2);
    for i in 0..15u64 {
        let start = start0 + i * span;
        if start >= frames {
            break;
        }
        let end = (start + span * 3).min(frames - 1);
        instances.push(ObjectInstance::simple(i, "car", start, end));
    }
    let truth = Arc::new(GroundTruth::from_instances(frames, instances));
    (chunking, truth)
}

/// Faithful replica of the legacy hand-written Algorithm 1 loop, as it stood
/// before the engine existed.  Kept as the equivalence baseline; do not
/// "improve".
fn legacy_run_query(
    sampler: &mut ExSample,
    chunking: &Chunking,
    detector: &dyn Detector,
    discriminator: &mut dyn Discriminator,
    result_limit: usize,
    frame_budget: Option<u64>,
    rng: &mut StdRng,
) -> (u64, StopReason, Vec<FrameId>) {
    let mut frames_processed = 0u64;
    let mut picked = Vec::new();
    let stop_reason = loop {
        if discriminator.distinct_count() >= result_limit {
            break StopReason::ResultLimitReached;
        }
        if frame_budget.is_some_and(|budget| frames_processed >= budget) {
            break StopReason::FrameBudgetExhausted;
        }
        let Some(pick) = sampler.next_frame(rng) else {
            break StopReason::RepositoryExhausted;
        };
        let frame = chunking.chunks()[pick.chunk].start() + pick.offset;
        picked.push(frame);
        let detections = detector.detect(frame);
        let outcome = discriminator.observe(&detections);
        sampler.record(pick.chunk, outcome.n1_delta());
        frames_processed += 1;
    };
    (frames_processed, stop_reason, picked)
}

fn assert_reports_equal(a: &QueryReport, b: &QueryReport, context: &str) {
    assert_eq!(a.label, b.label, "{context}: label");
    assert_eq!(
        a.frames_processed, b.frames_processed,
        "{context}: frames ({})",
        a.label
    );
    assert_eq!(
        a.distinct_found, b.distinct_found,
        "{context}: distinct ({})",
        a.label
    );
    assert_eq!(a.true_found, b.true_found, "{context}: true ({})", a.label);
    assert_eq!(
        a.found_instances, b.found_instances,
        "{context}: instances ({})",
        a.label
    );
    assert_eq!(
        a.trajectory, b.trajectory,
        "{context}: trajectory ({})",
        a.label
    );
    assert_eq!(
        a.stop_reason, b.stop_reason,
        "{context}: stop reason ({})",
        a.label
    );
    assert_eq!(
        a.dropped_frames, b.dropped_frames,
        "{context}: dropped frames ({})",
        a.label
    );
}

#[test]
fn engine_batch_one_reproduces_the_legacy_loop_pick_for_pick() {
    for (result_limit, frame_budget, seed) in [
        (8, None, 101u64),
        (1_000, Some(700), 102),
        (1_000, None, 103),
    ] {
        let (chunking, truth) = skewed_setup(30_000, 12);
        let class = ObjectClass::from("car");

        // Legacy loop.
        let legacy_detector =
            RecordingDetector::new(PerfectDetector::new(Arc::clone(&truth), class.clone()));
        let mut legacy_discriminator = OracleDiscriminator::new();
        let mut legacy_sampler =
            ExSample::new(ExSampleConfig::default(), &chunking.chunk_lengths());
        let mut legacy_rng = StdRng::seed_from_u64(seed);
        let (legacy_frames, legacy_stop, legacy_picks) = legacy_run_query(
            &mut legacy_sampler,
            &chunking,
            &legacy_detector,
            &mut legacy_discriminator,
            result_limit,
            frame_budget,
            &mut legacy_rng,
        );

        // Engine-backed run_query, same seed.
        let engine_detector =
            RecordingDetector::new(PerfectDetector::new(Arc::clone(&truth), class.clone()));
        let mut engine_discriminator = OracleDiscriminator::new();
        let mut engine_sampler =
            ExSample::new(ExSampleConfig::default(), &chunking.chunk_lengths());
        let mut engine_rng = StdRng::seed_from_u64(seed);
        let outcome = run_query(
            &mut engine_sampler,
            &chunking,
            &engine_detector,
            &mut engine_discriminator,
            result_limit,
            frame_budget,
            &mut engine_rng,
        )
        .expect("chunk counts match");

        assert_eq!(
            engine_detector.log.lock().unwrap().as_slice(),
            legacy_picks.as_slice(),
            "pick sequences diverged (limit {result_limit}, budget {frame_budget:?})"
        );
        assert_eq!(outcome.frames_processed, legacy_frames);
        assert_eq!(outcome.stop_reason, legacy_stop);
        assert_eq!(
            outcome.distinct_found,
            legacy_discriminator.distinct_count()
        );
        assert_eq!(
            outcome.found_instances,
            legacy_discriminator.found_instances()
        );
        assert_eq!(
            outcome.samples_per_chunk,
            legacy_sampler
                .stats()
                .all()
                .iter()
                .map(|s| s.samples())
                .collect::<Vec<_>>()
        );
        // The two runs must also leave the caller-side RNGs in the same state.
        use rand::RngCore;
        assert_eq!(engine_rng.next_u64(), legacy_rng.next_u64());
    }
}

/// Build the three standard test queries against `detector`.
fn standard_specs<'a>(
    chunking: &Chunking,
    total_frames: u64,
    detector: &'a dyn Detector,
) -> Vec<QuerySpec<'a>> {
    vec![
        QuerySpec::new(
            "exsample",
            Box::new(ExSamplePolicy::new(ExSampleConfig::default(), chunking)),
            detector,
        )
        .seed(201)
        .batch(16)
        .result_limit(10)
        .frame_budget(1_200),
        QuerySpec::new(
            "random",
            Box::new(FrameSamplerPolicy::uniform(total_frames)),
            detector,
        )
        .seed(202)
        .batch(4)
        .frame_budget(500),
        QuerySpec::new(
            "random+",
            Box::new(FrameSamplerPolicy::random_plus(total_frames)),
            detector,
        )
        .seed(203)
        .batch(32)
        .true_limit(6),
    ]
}

#[test]
fn multi_query_outcomes_are_invariant_to_stage_interleaving() {
    let frames = 4_000u64;
    let (chunking, truth) = skewed_setup(frames, 8);
    let detector = PerfectDetector::new(Arc::clone(&truth), ObjectClass::from("car"));

    // Baseline: each query runs alone in its own engine.
    let mut solo: Vec<QueryReport> = Vec::new();
    for spec in standard_specs(&chunking, frames, &detector) {
        let mut engine = QueryEngine::new();
        engine.push(spec).unwrap();
        solo.push(engine.run().unwrap().outcomes.remove(0));
    }
    assert!(solo.iter().any(|r| r.true_found > 0), "setup finds nothing");

    // Interleaving 1: all three concurrently, coalescing on.
    let mut together = QueryEngine::new();
    for spec in standard_specs(&chunking, frames, &detector) {
        together.push(spec).unwrap();
    }
    let together = together.run().unwrap();
    for (a, b) in together.outcomes.iter().zip(&solo) {
        assert_reports_equal(a, b, "concurrent+coalesced vs solo");
    }

    // Interleaving 2: coalescing off.
    let mut uncoalesced = QueryEngine::new().coalesce(false);
    for spec in standard_specs(&chunking, frames, &detector) {
        uncoalesced.push(spec).unwrap();
    }
    for (a, b) in uncoalesced.run().unwrap().outcomes.iter().zip(&solo) {
        assert_reports_equal(a, b, "uncoalesced vs solo");
    }

    // Interleaving 3: registration order reversed.
    let mut reversed = QueryEngine::new();
    for spec in standard_specs(&chunking, frames, &detector)
        .into_iter()
        .rev()
    {
        reversed.push(spec).unwrap();
    }
    for (a, b) in reversed
        .run()
        .unwrap()
        .outcomes
        .iter()
        .zip(solo.iter().rev())
    {
        assert_reports_equal(a, b, "reversed registration vs solo");
    }

    // Interleaving 4: an extra companion query changes the stage pattern but
    // no existing query's outcome.  The companion is a same-seed twin of the
    // `random` query, so its per-stage picks are identical to that query's
    // while both run — guaranteeing the coalescer genuinely shares detector
    // results between queries in this test.
    let mut crowded = QueryEngine::new();
    for spec in standard_specs(&chunking, frames, &detector) {
        crowded.push(spec).unwrap();
    }
    crowded
        .push(
            QuerySpec::new(
                "companion",
                Box::new(FrameSamplerPolicy::uniform(frames)),
                &detector,
            )
            .seed(202)
            .batch(4)
            .frame_budget(500),
        )
        .unwrap();
    let crowded = crowded.run().unwrap();
    for (a, b) in crowded.outcomes.iter().zip(&solo) {
        assert_reports_equal(a, b, "with companion vs solo");
    }
    // The twin demanded 500 frames that were all already demanded by
    // `random` in the same stages: coalescing must have absorbed them.
    assert!(
        crowded.coalesced_savings() >= 500,
        "expected the same-seed twin to be fully coalesced, saved only {}",
        crowded.coalesced_savings()
    );
}

/// A pass-through policy that logs every pick it hands to the engine, in
/// production order — the per-query pick sequence the shard-invariance suite
/// compares across shard counts.
struct RecordingPolicy<'a> {
    inner: Box<dyn SamplingPolicy + 'a>,
    log: Rc<RefCell<Vec<FrameId>>>,
}

impl SamplingPolicy for RecordingPolicy<'_> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn upfront_scan_frames(&self) -> u64 {
        self.inner.upfront_scan_frames()
    }

    fn next_batch_into(&mut self, rng: &mut dyn RngCore, batch: usize, picks: &mut Vec<FrameId>) {
        self.inner.next_batch_into(rng, batch, picks);
        self.log.borrow_mut().extend_from_slice(picks);
    }

    fn record(&mut self, frame: FrameId, outcome: &MatchOutcome) {
        self.inner.record(frame, outcome);
    }

    fn remaining(&self) -> Option<u64> {
        self.inner.remaining()
    }
}

/// A shared pick log, one per recorded query.
type PickLog = Rc<RefCell<Vec<FrameId>>>;

/// The standard specs with pick logging attached to every query.
fn recorded_specs<'a>(
    chunking: &Chunking,
    total_frames: u64,
    detector: &'a dyn Detector,
) -> (Vec<QuerySpec<'a>>, Vec<PickLog>) {
    let inner: Vec<Box<dyn SamplingPolicy>> = vec![
        Box::new(ExSamplePolicy::new(ExSampleConfig::default(), chunking)),
        Box::new(FrameSamplerPolicy::uniform(total_frames)),
        Box::new(FrameSamplerPolicy::random_plus(total_frames)),
    ];
    let mut specs = Vec::new();
    let mut logs = Vec::new();
    for (i, policy) in inner.into_iter().enumerate() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let recorded = RecordingPolicy {
            inner: policy,
            log: Rc::clone(&log),
        };
        let spec = match i {
            0 => QuerySpec::new("exsample", Box::new(recorded), detector)
                .seed(201)
                .batch(16)
                .result_limit(10)
                .frame_budget(1_200),
            1 => QuerySpec::new("random", Box::new(recorded), detector)
                .seed(202)
                .batch(4)
                .frame_budget(500),
            _ => QuerySpec::new("random+", Box::new(recorded), detector)
                .seed(203)
                .batch(32)
                .true_limit(6),
        };
        specs.push(spec);
        logs.push(log);
    }
    (specs, logs)
}

fn assert_engine_reports_equal(a: &EngineReport, b: &EngineReport, context: &str) {
    assert_eq!(a.stages, b.stages, "{context}: stages");
    assert_eq!(
        a.demanded_frames, b.demanded_frames,
        "{context}: demanded frames"
    );
    assert_eq!(
        a.detector_frames, b.detector_frames,
        "{context}: detector frames"
    );
    assert_eq!(
        a.detector_calls, b.detector_calls,
        "{context}: logical detector calls"
    );
    assert_eq!(a.detect_retries, b.detect_retries, "{context}: retries");
    assert_eq!(a.failed_frames, b.failed_frames, "{context}: failed frames");
    assert_eq!(a.backoff_cost, b.backoff_cost, "{context}: backoff cost");
    assert_eq!(
        a.quarantined_detectors, b.quarantined_detectors,
        "{context}: quarantined detectors"
    );
    assert_eq!(a.cache, b.cache, "{context}: cache accounting");
    assert_eq!(a.outcomes.len(), b.outcomes.len(), "{context}: query count");
    for (qa, qb) in a.outcomes.iter().zip(&b.outcomes) {
        assert_reports_equal(qa, qb, context);
    }
}

#[test]
fn sharded_runs_are_bitwise_identical_to_unsharded() {
    let frames = 4_000u64;
    let (chunking, truth) = skewed_setup(frames, 21);
    let detector = PerfectDetector::new(Arc::clone(&truth), ObjectClass::from("car"));

    // Baseline: the unsharded engine.
    let (specs, baseline_logs) = recorded_specs(&chunking, frames, &detector);
    let mut baseline = QueryEngine::new();
    for spec in specs {
        baseline.push(spec).unwrap();
    }
    let baseline_report = baseline.run().unwrap();
    assert!(
        baseline_report.outcomes.iter().any(|r| r.true_found > 0),
        "setup finds nothing"
    );
    let baseline_picks: Vec<Vec<FrameId>> = baseline_logs
        .iter()
        .map(|log| log.borrow().clone())
        .collect();

    for shards in [1u32, 2, 3, 7] {
        for partitioner in [ShardPartitioner::RoundRobin, ShardPartitioner::Contiguous] {
            let context = format!("{partitioner:?}/{shards} shards");
            let spec = ShardSpec::new(partitioner, chunking.len(), shards);
            let router = ShardRouter::new(&chunking, &spec).unwrap();
            let (specs, logs) = recorded_specs(&chunking, frames, &detector);
            let mut engine = QueryEngine::new().sharded(router);
            assert_eq!(engine.shard_count(), shards as usize);
            for spec in specs {
                engine.push(spec).unwrap();
            }
            let _ = engine.run().unwrap();
            let merged = engine.report_sharded();

            // The merged global report is bitwise-identical to the unsharded
            // run: picks, hits, trajectories, stop reasons, stage counts and
            // deduplicated detector work.
            assert_engine_reports_equal(&merged.report, &baseline_report, &context);

            // Every query's pick sequence is identical, frame for frame.
            for (log, expected) in logs.iter().zip(&baseline_picks) {
                assert_eq!(&*log.borrow(), expected, "{context}: pick sequence");
            }

            // The per-shard breakdown partitions every query's frames, and
            // the physical invocation count only ever exceeds the logical
            // one (the merge overhead).
            assert_eq!(merged.shards.len(), shards as usize);
            for (i, outcome) in merged.report.outcomes.iter().enumerate() {
                let routed: u64 = merged.shards.iter().map(|s| s.per_query[i].frames).sum();
                assert_eq!(routed, outcome.frames_processed, "{context}: routing");
            }
            assert!(merged.physical_detector_calls >= merged.report.detector_calls);
            if shards == 1 {
                assert_eq!(merged.physical_detector_calls, merged.report.detector_calls);
            }
        }
    }
}

/// Everything a sharded report carries, compared bitwise: the embedded global
/// report, the per-shard breakdowns (frames, hits, physical invocations,
/// per-detector tallies) and the physical invocation total.
fn assert_sharded_reports_equal(a: &ShardedReport, b: &ShardedReport, context: &str) {
    assert_engine_reports_equal(&a.report, &b.report, context);
    assert_eq!(a.shards, b.shards, "{context}: per-shard breakdowns");
    assert_eq!(
        a.physical_detector_calls, b.physical_detector_calls,
        "{context}: physical detector calls"
    );
}

#[test]
fn parallel_execution_matrix_is_bitwise_identical_to_serial() {
    let frames = 4_000u64;
    let (chunking, truth) = skewed_setup(frames, 21);
    let detector = PerfectDetector::new(Arc::clone(&truth), ObjectClass::from("car"));

    // Baseline: the unsharded, serial engine.
    let (specs, baseline_logs) = recorded_specs(&chunking, frames, &detector);
    let mut baseline = QueryEngine::new();
    for spec in specs {
        baseline.push(spec).unwrap();
    }
    let _ = baseline.run().unwrap();
    let baseline_merged = baseline.report_sharded();
    assert!(
        baseline_merged
            .report
            .outcomes
            .iter()
            .any(|r| r.true_found > 0),
        "setup finds nothing"
    );
    let baseline_picks: Vec<Vec<FrameId>> = baseline_logs
        .iter()
        .map(|log| log.borrow().clone())
        .collect();

    for shards in [1u32, 3, 7] {
        for partitioner in [ShardPartitioner::RoundRobin, ShardPartitioner::Contiguous] {
            let run = |mode: ExecutionMode, dispatch: Dispatch| {
                let spec = ShardSpec::new(partitioner, chunking.len(), shards);
                let router = ShardRouter::new(&chunking, &spec).unwrap();
                let (specs, logs) = recorded_specs(&chunking, frames, &detector);
                let mut engine = QueryEngine::new()
                    .sharded(router)
                    .execution(mode)
                    .expect("valid execution mode")
                    .dispatch(dispatch);
                for spec in specs {
                    engine.push(spec).unwrap();
                }
                let _ = engine.run().unwrap();
                let picks: Vec<Vec<FrameId>> =
                    logs.iter().map(|log| log.borrow().clone()).collect();
                (engine.report_sharded(), picks)
            };

            // The serial sharded run is the reference the parallel runs must
            // reproduce *including* the per-shard physical breakdown (which
            // legitimately differs from the 1-shard baseline's).
            let (serial, serial_picks) = run(ExecutionMode::Serial, Dispatch::Pooled);
            assert_eq!(serial_picks, baseline_picks);
            assert_engine_reports_equal(
                &serial.report,
                &baseline_merged.report,
                &format!("{partitioner:?}/{shards} shards serial vs unsharded"),
            );

            for threads in [1usize, 2, 4] {
                for dispatch in [Dispatch::Pooled, Dispatch::Scoped] {
                    let context =
                        format!("{partitioner:?}/{shards} shards/{threads} threads/{dispatch:?}");
                    let (parallel, parallel_picks) =
                        run(ExecutionMode::Parallel(threads), dispatch);
                    // Per-query pick sequences, frame for frame.
                    assert_eq!(parallel_picks, baseline_picks, "{context}: pick sequences");
                    // Merged report, per-shard breakdowns and physical
                    // invocation counts, all bitwise against the serial
                    // sharded run …
                    assert_sharded_reports_equal(&parallel, &serial, &context);
                    // … and the logical view bitwise against the unsharded
                    // run.
                    assert_engine_reports_equal(
                        &parallel.report,
                        &baseline_merged.report,
                        &context,
                    );
                    assert!(parallel.physical_detector_calls >= parallel.report.detector_calls);
                }
            }
        }
    }
}

#[test]
fn aggregated_runs_are_bitwise_identical_across_the_matrix() {
    let frames = 4_000u64;
    let (chunking, truth) = skewed_setup(frames, 21);
    let detector = PerfectDetector::new(Arc::clone(&truth), ObjectClass::from("car"));

    // Baseline: the unsharded, serial, unaggregated engine.
    let (specs, baseline_logs) = recorded_specs(&chunking, frames, &detector);
    let mut baseline = QueryEngine::new();
    for spec in specs {
        baseline.push(spec).unwrap();
    }
    let _ = baseline.run().unwrap();
    let baseline_merged = baseline.report_sharded();
    assert!(
        baseline_merged
            .report
            .outcomes
            .iter()
            .any(|r| r.true_found > 0),
        "setup finds nothing"
    );
    let baseline_picks: Vec<Vec<FrameId>> = baseline_logs
        .iter()
        .map(|log| log.borrow().clone())
        .collect();

    for aggregation in [
        BatchAggregation::unbounded(),
        BatchAggregation::max_batch(5),
    ] {
        for shards in [1u32, 3, 7] {
            for partitioner in [ShardPartitioner::RoundRobin, ShardPartitioner::Contiguous] {
                let run = |mode: ExecutionMode, dispatch: Dispatch| {
                    let spec = ShardSpec::new(partitioner, chunking.len(), shards);
                    let router = ShardRouter::new(&chunking, &spec).unwrap();
                    let (specs, logs) = recorded_specs(&chunking, frames, &detector);
                    let mut engine = QueryEngine::new()
                        .sharded(router)
                        .aggregation(Some(aggregation))
                        .execution(mode)
                        .expect("valid execution mode")
                        .dispatch(dispatch);
                    for spec in specs {
                        engine.push(spec).unwrap();
                    }
                    let _ = engine.run().unwrap();
                    let picks: Vec<Vec<FrameId>> =
                        logs.iter().map(|log| log.borrow().clone()).collect();
                    (engine.report_sharded(), picks)
                };

                // Aggregation is purely physical: picks and the merged
                // logical report must match the unaggregated baseline
                // exactly, for any layout.
                let context = format!("{partitioner:?}/{shards} shards/{aggregation:?}");
                let (serial, serial_picks) = run(ExecutionMode::Serial, Dispatch::Pooled);
                assert_eq!(serial_picks, baseline_picks, "{context}: pick sequences");
                assert_engine_reports_equal(&serial.report, &baseline_merged.report, &context);
                if aggregation == BatchAggregation::unbounded() {
                    // Unbounded aggregation issues exactly one physical call
                    // per logical detector group per stage — the aggregated
                    // batch *is* the cross-shard batch.
                    assert_eq!(
                        serial.physical_detector_calls, serial.report.detector_calls,
                        "{context}: unbounded aggregation must collapse physical to logical"
                    );
                } else {
                    assert!(serial.physical_detector_calls >= serial.report.detector_calls);
                }

                // And the physical breakdown itself is invariant across
                // thread counts and dispatch runtimes at a fixed layout.
                for threads in [1usize, 2, 4] {
                    for dispatch in [Dispatch::Pooled, Dispatch::Scoped] {
                        let context = format!("{context}/{threads} threads/{dispatch:?}");
                        let (parallel, parallel_picks) =
                            run(ExecutionMode::Parallel(threads), dispatch);
                        assert_eq!(parallel_picks, baseline_picks, "{context}: pick sequences");
                        assert_sharded_reports_equal(&parallel, &serial, &context);
                    }
                }
            }
        }
    }
}

#[test]
fn overlapped_runs_are_deterministic_across_the_matrix() {
    let frames = 4_000u64;
    let (chunking, truth) = skewed_setup(frames, 21);
    let detector = PerfectDetector::new(Arc::clone(&truth), ObjectClass::from("car"));

    // Overlap changes *when* stop conditions are decided (one stage late, by
    // design), so its reference is itself overlapped: the unsharded serial
    // overlapped run.  Every other configuration must reproduce it bitwise.
    let (specs, baseline_logs) = recorded_specs(&chunking, frames, &detector);
    let mut baseline = QueryEngine::new().overlap(true);
    for spec in specs {
        baseline.push(spec).unwrap();
    }
    let _ = baseline.run().unwrap();
    let baseline_merged = baseline.report_sharded();
    assert!(
        baseline_merged
            .report
            .outcomes
            .iter()
            .any(|r| r.true_found > 0),
        "setup finds nothing"
    );
    let baseline_picks: Vec<Vec<FrameId>> = baseline_logs
        .iter()
        .map(|log| log.borrow().clone())
        .collect();

    for aggregation in [None, Some(BatchAggregation::unbounded())] {
        for shards in [1u32, 3, 7] {
            for partitioner in [ShardPartitioner::RoundRobin, ShardPartitioner::Contiguous] {
                let run = |mode: ExecutionMode, dispatch: Dispatch| {
                    let spec = ShardSpec::new(partitioner, chunking.len(), shards);
                    let router = ShardRouter::new(&chunking, &spec).unwrap();
                    let (specs, logs) = recorded_specs(&chunking, frames, &detector);
                    let mut engine = QueryEngine::new()
                        .sharded(router)
                        .overlap(true)
                        .aggregation(aggregation)
                        .execution(mode)
                        .expect("valid execution mode")
                        .dispatch(dispatch);
                    for spec in specs {
                        engine.push(spec).unwrap();
                    }
                    let _ = engine.run().unwrap();
                    let picks: Vec<Vec<FrameId>> =
                        logs.iter().map(|log| log.borrow().clone()).collect();
                    (engine.report_sharded(), picks)
                };

                let context = format!("{partitioner:?}/{shards} shards/{aggregation:?}");
                let (serial, serial_picks) = run(ExecutionMode::Serial, Dispatch::Pooled);
                assert_eq!(serial_picks, baseline_picks, "{context}: pick sequences");
                assert_engine_reports_equal(&serial.report, &baseline_merged.report, &context);

                for threads in [1usize, 2, 4] {
                    for dispatch in [Dispatch::Pooled, Dispatch::Scoped] {
                        let context = format!("{context}/{threads} threads/{dispatch:?}");
                        let (parallel, parallel_picks) =
                            run(ExecutionMode::Parallel(threads), dispatch);
                        assert_eq!(parallel_picks, baseline_picks, "{context}: pick sequences");
                        assert_sharded_reports_equal(&parallel, &serial, &context);
                        assert_engine_reports_equal(
                            &parallel.report,
                            &baseline_merged.report,
                            &context,
                        );
                    }
                }
            }
        }
    }
}

/// Cache capacity for the cache-axis matrix: small enough that the standard
/// workload's distinct probed frames force real evictions, large enough that
/// re-picked frames still find warm entries.
const MATRIX_CACHE_CAPACITY: usize = 256;

#[test]
fn cached_runs_are_bitwise_identical_across_the_matrix() {
    let frames = 4_000u64;
    let (chunking, truth) = skewed_setup(frames, 21);
    let detector = PerfectDetector::new(Arc::clone(&truth), ObjectClass::from("car"));

    for overlap in [false, true] {
        // Overlap changes stop timing by design, so each overlap setting has
        // its own reference: the unsharded serial cached run.
        let (specs, baseline_logs) = recorded_specs(&chunking, frames, &detector);
        let mut baseline = QueryEngine::new()
            .overlap(overlap)
            .cache_capacity(MATRIX_CACHE_CAPACITY);
        for spec in specs {
            baseline.push(spec).unwrap();
        }
        let _ = baseline.run().unwrap();
        let baseline_merged = baseline.report_sharded();
        assert!(
            baseline_merged
                .report
                .outcomes
                .iter()
                .any(|r| r.true_found > 0),
            "setup finds nothing"
        );
        // The axis must actually be exercised: cold probes, warm re-probes
        // and LRU evictions all occur in the reference run.
        let activity = baseline_merged.report.cache;
        assert!(activity.misses > 0, "overlap {overlap}: no cache misses");
        assert!(activity.hits > 0, "overlap {overlap}: no cache hits");
        assert!(activity.evictions > 0, "overlap {overlap}: no evictions");
        let baseline_picks: Vec<Vec<FrameId>> = baseline_logs
            .iter()
            .map(|log| log.borrow().clone())
            .collect();

        for aggregation in [None, Some(BatchAggregation::unbounded())] {
            for shards in [1u32, 3, 7] {
                for partitioner in [ShardPartitioner::RoundRobin, ShardPartitioner::Contiguous] {
                    let run = |mode: ExecutionMode, dispatch: Dispatch| {
                        let spec = ShardSpec::new(partitioner, chunking.len(), shards);
                        let router = ShardRouter::new(&chunking, &spec).unwrap();
                        let (specs, logs) = recorded_specs(&chunking, frames, &detector);
                        let mut engine = QueryEngine::new()
                            .sharded(router)
                            .overlap(overlap)
                            .aggregation(aggregation)
                            .cache_capacity(MATRIX_CACHE_CAPACITY)
                            .execution(mode)
                            .expect("valid execution mode")
                            .dispatch(dispatch);
                        for spec in specs {
                            engine.push(spec).unwrap();
                        }
                        let _ = engine.run().unwrap();
                        let picks: Vec<Vec<FrameId>> =
                            logs.iter().map(|log| log.borrow().clone()).collect();
                        (engine.report_sharded(), picks)
                    };

                    let context = format!(
                        "cached/overlap {overlap}/{partitioner:?}/{shards} shards/{aggregation:?}"
                    );
                    let (serial, serial_picks) = run(ExecutionMode::Serial, Dispatch::Pooled);
                    assert_eq!(serial_picks, baseline_picks, "{context}: pick sequences");
                    // The merged report comparison includes the global cache
                    // accounting — identical across shard counts, not just
                    // across thread counts at a fixed layout.
                    assert_engine_reports_equal(&serial.report, &baseline_merged.report, &context);

                    for threads in [1usize, 2, 4] {
                        for dispatch in [Dispatch::Pooled, Dispatch::Scoped] {
                            let context = format!("{context}/{threads} threads/{dispatch:?}");
                            let (parallel, parallel_picks) =
                                run(ExecutionMode::Parallel(threads), dispatch);
                            assert_eq!(parallel_picks, baseline_picks, "{context}: pick sequences");
                            // Per-shard breakdowns carry per-shard cache
                            // tallies; this comparison pins those too.
                            assert_sharded_reports_equal(&parallel, &serial, &context);
                            assert_engine_reports_equal(
                                &parallel.report,
                                &baseline_merged.report,
                                &context,
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn frequency_admission_runs_are_bitwise_identical_across_threads() {
    let frames = 4_000u64;
    let (chunking, truth) = skewed_setup(frames, 21);
    let detector = PerfectDetector::new(Arc::clone(&truth), ObjectClass::from("car"));

    // The frequency gate only changes *which* inserts are admitted, never the
    // picks — so the uncached pick sequences remain the reference, and the
    // cache accounting must agree bitwise across the execution matrix at a
    // fixed shard layout.
    let config = || {
        CacheConfig::new(192)
            .stripes(4)
            .admission(AdmissionPolicy::Frequency)
    };
    let run = |mode: ExecutionMode, dispatch: Dispatch| {
        let spec = ShardSpec::new(ShardPartitioner::RoundRobin, chunking.len(), 3);
        let router = ShardRouter::new(&chunking, &spec).unwrap();
        let (specs, logs) = recorded_specs(&chunking, frames, &detector);
        let mut engine = QueryEngine::new()
            .sharded(router)
            .cache_config(config())
            .expect("valid cache config")
            .execution(mode)
            .expect("valid execution mode")
            .dispatch(dispatch);
        for spec in specs {
            engine.push(spec).unwrap();
        }
        let _ = engine.run().unwrap();
        let picks: Vec<Vec<FrameId>> = logs.iter().map(|log| log.borrow().clone()).collect();
        (engine.report_sharded(), picks)
    };

    let (serial, serial_picks) = run(ExecutionMode::Serial, Dispatch::Pooled);
    assert!(
        serial.report.cache.misses > 0,
        "frequency admission: no cache traffic"
    );
    for threads in [1usize, 2, 4] {
        for dispatch in [Dispatch::Pooled, Dispatch::Scoped] {
            let context = format!("frequency admission/{threads} threads/{dispatch:?}");
            let (parallel, parallel_picks) = run(ExecutionMode::Parallel(threads), dispatch);
            assert_eq!(parallel_picks, serial_picks, "{context}: pick sequences");
            assert_sharded_reports_equal(&parallel, &serial, &context);
        }
    }
}

#[test]
fn round_robin_scheduler_reproduces_the_default_pick_sequences() {
    let frames = 4_000u64;
    let (chunking, truth) = skewed_setup(frames, 8);
    let detector = PerfectDetector::new(Arc::clone(&truth), ObjectClass::from("car"));

    let run = |explicit: bool| {
        let (specs, logs) = recorded_specs(&chunking, frames, &detector);
        let mut engine = QueryEngine::new();
        if explicit {
            engine = engine.scheduler(Box::new(RoundRobin));
        }
        for spec in specs {
            engine.push(spec).unwrap();
        }
        let report = engine.run().unwrap();
        let picks: Vec<Vec<FrameId>> = logs.iter().map(|log| log.borrow().clone()).collect();
        (report, picks)
    };
    let (default_report, default_picks) = run(false);
    let (explicit_report, explicit_picks) = run(true);
    assert_engine_reports_equal(&explicit_report, &default_report, "explicit round-robin");
    assert_eq!(explicit_picks, default_picks);
}
