//! The stage-sink checkpoint seam, pinned down:
//!
//! 1. installing a sink never changes any query's outcome;
//! 2. the observation stream — (stage, query, frame, n1_delta, new hits,
//!    new instances), in (query registration, pick) order — is
//!    bitwise-identical across the engine's execution axes (serial vs
//!    parallel, sharded, overlapped), because the sink is flushed at the
//!    serial stage-commit boundary in every configuration;
//! 3. the stream is internally consistent with the run's report (observation
//!    counts vs frames processed, summed hits vs true found); and
//! 4. a sink refusal aborts the run as `EngineError::CheckpointFailed` with
//!    the sink's own message and the offending stage.

use exsample_core::ExSampleConfig;
use exsample_detect::{GroundTruth, ObjectClass, ObjectInstance, PerfectDetector};
use exsample_engine::{
    EngineError, ExSamplePolicy, ExecutionMode, FrameSamplerPolicy, QueryEngine, QueryReport,
    QuerySpec, ShardRouter, StageObservation, StageSink,
};
use exsample_video::{Chunking, ChunkingPolicy, ShardPartitioner, ShardSpec, VideoRepository};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

/// One recorded flush: the committed stage and its observations, verbatim.
type RecordedStages = Rc<RefCell<Vec<(u64, Vec<StageObservation>)>>>;

/// A sink that records every flush verbatim.
struct RecordingSink {
    stages: RecordedStages,
}

impl StageSink for RecordingSink {
    fn stage_committed(
        &mut self,
        stage: u64,
        observations: &[StageObservation],
    ) -> Result<(), String> {
        self.stages
            .borrow_mut()
            .push((stage, observations.to_vec()));
        Ok(())
    }
}

/// A sink that refuses every flush from `fail_at` onwards.
struct FailingSink {
    fail_at: u64,
}

impl StageSink for FailingSink {
    fn stage_committed(&mut self, stage: u64, _: &[StageObservation]) -> Result<(), String> {
        if stage >= self.fail_at {
            Err(format!("durable store rejected stage {stage}"))
        } else {
            Ok(())
        }
    }
}

fn setup(frames: u64, chunks: u32) -> (Chunking, Arc<GroundTruth>) {
    let repo = VideoRepository::single_clip(frames);
    let chunking = Chunking::new(&repo, ChunkingPolicy::FixedCount { chunks });
    let mut instances = Vec::new();
    let start0 = frames * 3 / 5;
    let span = (frames / 48).max(2);
    for i in 0..12u64 {
        let start = start0 + i * span;
        if start >= frames {
            break;
        }
        instances.push(ObjectInstance::simple(
            i,
            "car",
            start,
            (start + span * 2).min(frames - 1),
        ));
    }
    let truth = Arc::new(GroundTruth::from_instances(frames, instances));
    (chunking, truth)
}

fn specs<'a>(
    chunking: &Chunking,
    frames: u64,
    detector: &'a PerfectDetector,
) -> Vec<QuerySpec<'a>> {
    vec![
        QuerySpec::new(
            "exsample",
            Box::new(ExSamplePolicy::new(ExSampleConfig::default(), chunking)),
            detector,
        )
        .seed(301)
        .batch(8)
        .frame_budget(600),
        QuerySpec::new(
            "random",
            Box::new(FrameSamplerPolicy::uniform(frames)),
            detector,
        )
        .seed(302)
        .batch(4)
        .frame_budget(300),
    ]
}

type Flushes = Vec<(u64, Vec<StageObservation>)>;

/// `QueryReport` deliberately has no `PartialEq`; compare the outcome fields
/// the sink could plausibly perturb.
fn assert_outcomes_equal(a: &[QueryReport], b: &[QueryReport], context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: query count");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.label, y.label, "{context}: label");
        assert_eq!(
            x.frames_processed, y.frames_processed,
            "{context}: frames ({})",
            x.label
        );
        assert_eq!(x.true_found, y.true_found, "{context}: true ({})", x.label);
        assert_eq!(
            x.found_instances, y.found_instances,
            "{context}: instances ({})",
            x.label
        );
        assert_eq!(
            x.stop_reason, y.stop_reason,
            "{context}: stop ({})",
            x.label
        );
        assert_eq!(
            x.dropped_frames, y.dropped_frames,
            "{context}: dropped ({})",
            x.label
        );
    }
}

/// Run the standard queries under `configure`, with a recording sink, and
/// return the flush log plus the per-query outcomes.
fn run_recorded(
    chunking: &Chunking,
    frames: u64,
    truth: &Arc<GroundTruth>,
    configure: impl FnOnce(QueryEngine<'_>) -> QueryEngine<'_>,
) -> (Flushes, Vec<QueryReport>) {
    let detector = PerfectDetector::new(Arc::clone(truth), ObjectClass::from("car"));
    let log = Rc::new(RefCell::new(Vec::new()));
    let mut engine = configure(QueryEngine::new()).stage_sink(Box::new(RecordingSink {
        stages: Rc::clone(&log),
    }));
    for spec in specs(chunking, frames, &detector) {
        engine.push(spec).unwrap();
    }
    let report = engine.run().unwrap();
    drop(engine);
    let flushes = Rc::try_unwrap(log).unwrap().into_inner();
    (flushes, report.outcomes)
}

#[test]
fn observation_stream_is_execution_invariant_and_consistent() {
    let frames = 6_000u64;
    let (chunking, truth) = setup(frames, 9);

    // Reference: no sink at all — installing one must not perturb outcomes.
    let plain = {
        let detector = PerfectDetector::new(Arc::clone(&truth), ObjectClass::from("car"));
        let mut engine = QueryEngine::new();
        for spec in specs(&chunking, frames, &detector) {
            engine.push(spec).unwrap();
        }
        engine.run().unwrap().outcomes
    };

    let (baseline, outcomes) = run_recorded(&chunking, frames, &truth, |e| e);
    assert_outcomes_equal(&outcomes, &plain, "a sink must be a pure observer");
    assert!(!baseline.is_empty(), "setup committed no stages");

    // Internal consistency against the reports.
    let observed: usize = baseline.iter().map(|(_, obs)| obs.len()).sum();
    let processed: u64 = outcomes.iter().map(|r| r.frames_processed).sum();
    let dropped: u64 = outcomes.iter().map(|r| r.dropped_frames).sum();
    assert_eq!(observed as u64 + dropped, processed + dropped);
    assert_eq!(dropped, 0, "a perfect detector drops nothing");
    let hits: u64 = baseline
        .iter()
        .flat_map(|(_, obs)| obs)
        .map(|o| o.new_hits)
        .sum();
    let found: u64 = outcomes.iter().map(|r| r.true_found as u64).sum();
    assert_eq!(hits, found, "summed hits must equal the reports'");
    for (_, obs) in &baseline {
        for o in obs {
            assert_eq!(o.new_instances.len() as u64, o.new_hits);
        }
    }
    // Stages flush in order, each exactly once.
    for (i, (stage, _)) in baseline.iter().enumerate() {
        assert_eq!(*stage, i as u64);
    }

    // Execution invariance: sharded × parallel runs flush the identical
    // stream.  Overlapped runs are deliberately NOT pick-for-pick with
    // non-overlapped ones (stop decisions lag one stage by design), so each
    // overlap setting is compared against its own single-shard serial
    // baseline.
    for overlap in [false, true] {
        let (expected_flushes, expected_outcomes) = if overlap {
            run_recorded(&chunking, frames, &truth, |e| e.overlap(true))
        } else {
            (baseline.clone(), outcomes.clone())
        };
        for shards in [3u32, 7] {
            let spec = ShardSpec::new(ShardPartitioner::RoundRobin, chunking.len(), shards);
            let router = ShardRouter::new(&chunking, &spec).unwrap();
            let (flushes, outcomes) = run_recorded(&chunking, frames, &truth, |e| {
                e.sharded(router)
                    .overlap(overlap)
                    .execution(ExecutionMode::Parallel(2))
                    .expect("valid execution mode")
            });
            assert_eq!(
                flushes, expected_flushes,
                "observation stream diverged at {shards} shards, overlap {overlap}"
            );
            assert_outcomes_equal(
                &outcomes,
                &expected_outcomes,
                &format!("{shards} shards, overlap {overlap}"),
            );
        }
    }
}

#[test]
fn a_sink_refusal_aborts_the_run_as_checkpoint_failed() {
    let frames = 6_000u64;
    let (chunking, truth) = setup(frames, 9);
    let detector = PerfectDetector::new(Arc::clone(&truth), ObjectClass::from("car"));

    let mut engine = QueryEngine::new().stage_sink(Box::new(FailingSink { fail_at: 3 }));
    for spec in specs(&chunking, frames, &detector) {
        engine.push(spec).unwrap();
    }
    let err = engine.run().expect_err("the sink refused stage 3");
    assert_eq!(
        err,
        EngineError::CheckpointFailed {
            stage: 3,
            message: "durable store rejected stage 3".to_string(),
        }
    );
    assert!(err.to_string().contains("stage 3"));
    assert!(err.to_string().contains("durable store"));
}
