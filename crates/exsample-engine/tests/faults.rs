//! Fault-tolerance guarantees of the engine, pinned end to end:
//!
//! 1. **fault-free identity** — with retries enabled but no faults scheduled,
//!    a run is bitwise-identical to the pre-fault-tolerance engine (raw
//!    detector, no retry policy): retries stay opt-in and free;
//! 2. **fault determinism matrix** — for a fixed seed and [`FaultPlan`],
//!    degraded runs under [`FailureMode::DropFrames`] are bitwise-identical —
//!    merged reports, per-shard breakdowns, retry/backoff/failure/drop
//!    tallies — across shard counts {1, 3, 7} × threads {1, 2, 4} × both
//!    partitioners × both dispatch runtimes;
//! 3. **quarantine** — a detector exceeding its failure threshold is disabled
//!    for the rest of the run, its queries stop with
//!    [`StopReason::DetectorQuarantined`], other queries are untouched, and
//!    the whole outcome is config-invariant like every other tally;
//! 4. **fail-fast** — the default [`FailureMode::FailFast`] surfaces the
//!    first terminal failure (in shard order) as a typed
//!    [`EngineError::DetectorFailed`] with full context and a chained source,
//!    identically across thread counts and dispatch runtimes at a fixed shard
//!    layout;
//! 5. **cache hygiene** — failed frames are never committed to the detection
//!    cache (a warm re-query re-attempts and re-drops exactly them), while
//!    frames recovered by a retry are committed exactly once (a warm re-query
//!    triggers zero further retries); and
//! 6. **cache determinism under faults** — with the striped detections cache
//!    enabled and small enough to evict, degraded runs keep every tally
//!    (including the cache's own hit/miss/eviction accounting) bitwise-
//!    identical across the shard × thread × partitioner × dispatch matrix.

use exsample_core::ExSampleConfig;
use exsample_detect::{
    DetectError, Detector, FaultInjectingDetector, FaultPlan, GroundTruth, ObjectClass,
    ObjectInstance, PerfectDetector,
};
use exsample_engine::{
    BatchAggregation, Dispatch, EngineError, EngineReport, ExSamplePolicy, ExecutionMode,
    FailureMode, FrameSamplerPolicy, QueryEngine, QueryReport, QuerySpec, RetryPolicy, ShardRouter,
    ShardedReport, StopReason,
};
use exsample_video::{Chunking, ChunkingPolicy, ShardPartitioner, ShardSpec, VideoRepository};
use std::sync::Arc;

const FAULT_SEED: u64 = 2_022;

fn skewed_setup(frames: u64, chunks: u32) -> (Chunking, Arc<GroundTruth>) {
    let repo = VideoRepository::single_clip(frames);
    let chunking = Chunking::new(&repo, ChunkingPolicy::FixedCount { chunks });
    let mut instances = Vec::new();
    let start0 = frames * 4 / 5;
    let span = (frames / 64).max(2);
    for i in 0..15u64 {
        let start = start0 + i * span;
        if start >= frames {
            break;
        }
        let end = (start + span * 3).min(frames - 1);
        instances.push(ObjectInstance::simple(i, "car", start, end));
    }
    let truth = Arc::new(GroundTruth::from_instances(frames, instances));
    (chunking, truth)
}

/// The standard fault schedule the determinism matrix runs under: enough
/// transient faults to exercise retries and enough permanent ones to exercise
/// drops, deterministically from `FAULT_SEED`.
fn faulty_plan() -> FaultPlan {
    FaultPlan::new(FAULT_SEED)
        .transient_rate(0.10)
        .transient_attempts(2)
        .permanent_rate(0.03)
}

/// A fresh fault-injecting wrapper around a fresh perfect detector.  Fresh
/// per engine run: the wrapper's per-frame attempt counters are stateful, so
/// sharing one instance across runs would entangle their schedules.
fn faulty_detector(
    truth: &Arc<GroundTruth>,
    plan: FaultPlan,
) -> FaultInjectingDetector<PerfectDetector> {
    FaultInjectingDetector::new(
        PerfectDetector::new(Arc::clone(truth), ObjectClass::from("car")),
        plan,
    )
}

/// The two standard queries of the fault suite, sharing one detector.
fn fault_specs<'a>(
    chunking: &Chunking,
    total_frames: u64,
    detector: &'a dyn Detector,
) -> Vec<QuerySpec<'a>> {
    vec![
        QuerySpec::new(
            "exsample",
            Box::new(ExSamplePolicy::new(ExSampleConfig::default(), chunking)),
            detector,
        )
        .seed(301)
        .batch(16)
        .result_limit(10)
        .frame_budget(900),
        QuerySpec::new(
            "random",
            Box::new(FrameSamplerPolicy::uniform(total_frames)),
            detector,
        )
        .seed(302)
        .batch(8)
        .frame_budget(400),
    ]
}

fn assert_query_reports_equal(a: &QueryReport, b: &QueryReport, context: &str) {
    assert_eq!(a.label, b.label, "{context}: label");
    assert_eq!(
        a.frames_processed, b.frames_processed,
        "{context}: frames ({})",
        a.label
    );
    assert_eq!(
        a.found_instances, b.found_instances,
        "{context}: instances ({})",
        a.label
    );
    assert_eq!(
        a.trajectory, b.trajectory,
        "{context}: trajectory ({})",
        a.label
    );
    assert_eq!(
        a.stop_reason, b.stop_reason,
        "{context}: stop reason ({})",
        a.label
    );
    assert_eq!(
        a.dropped_frames, b.dropped_frames,
        "{context}: dropped frames ({})",
        a.label
    );
}

fn assert_engine_reports_equal(a: &EngineReport, b: &EngineReport, context: &str) {
    assert_eq!(a.stages, b.stages, "{context}: stages");
    assert_eq!(
        a.demanded_frames, b.demanded_frames,
        "{context}: demanded frames"
    );
    assert_eq!(
        a.detector_frames, b.detector_frames,
        "{context}: detector frames"
    );
    assert_eq!(
        a.detector_calls, b.detector_calls,
        "{context}: logical detector calls"
    );
    assert_eq!(a.detect_retries, b.detect_retries, "{context}: retries");
    assert_eq!(a.failed_frames, b.failed_frames, "{context}: failed frames");
    assert_eq!(a.backoff_cost, b.backoff_cost, "{context}: backoff cost");
    assert_eq!(
        a.quarantined_detectors, b.quarantined_detectors,
        "{context}: quarantined detectors"
    );
    assert_eq!(a.cache, b.cache, "{context}: cache accounting");
    assert_eq!(a.outcomes.len(), b.outcomes.len(), "{context}: query count");
    for (qa, qb) in a.outcomes.iter().zip(&b.outcomes) {
        assert_query_reports_equal(qa, qb, context);
    }
}

fn assert_sharded_reports_equal(a: &ShardedReport, b: &ShardedReport, context: &str) {
    assert_engine_reports_equal(&a.report, &b.report, context);
    assert_eq!(a.shards, b.shards, "{context}: per-shard breakdowns");
    assert_eq!(
        a.physical_detector_calls, b.physical_detector_calls,
        "{context}: physical detector calls"
    );
}

#[test]
fn fault_free_runs_with_retries_enabled_match_the_baseline() {
    let frames = 3_000u64;
    let (chunking, truth) = skewed_setup(frames, 12);

    // Pre-fault-tolerance shape: raw detector, default (no-retry) policy.
    let baseline = {
        let detector = PerfectDetector::new(Arc::clone(&truth), ObjectClass::from("car"));
        let mut engine = QueryEngine::new();
        for spec in fault_specs(&chunking, frames, &detector) {
            engine.push(spec).unwrap();
        }
        engine.run().unwrap()
    };
    assert!(
        baseline.outcomes.iter().any(|r| r.true_found > 0),
        "setup finds nothing"
    );

    // Retries armed, failure mode degraded, a fault wrapper in place — but a
    // zero-rate plan: nothing may change, bitwise.
    let guarded = {
        let detector = faulty_detector(&truth, FaultPlan::new(FAULT_SEED));
        let mut engine = QueryEngine::new()
            .retry_policy(RetryPolicy::new(3).backoff_cost(5))
            .failure_mode(FailureMode::DropFrames);
        for spec in fault_specs(&chunking, frames, &detector) {
            engine.push(spec).unwrap();
        }
        let report = engine.run().unwrap();
        assert_eq!(detector.injected_faults(), 0, "zero-rate plan injected");
        report
    };
    assert_engine_reports_equal(&guarded, &baseline, "fault-free guarded vs baseline");
    assert_eq!(guarded.detect_retries, 0);
    assert_eq!(guarded.failed_frames, 0);
    assert_eq!(guarded.backoff_cost, 0);
    assert!(guarded.quarantined_detectors.is_empty());
    assert!(guarded.outcomes.iter().all(|r| r.dropped_frames == 0));
}

#[test]
fn degraded_runs_are_bitwise_deterministic_across_the_execution_matrix() {
    let frames = 3_000u64;
    let (chunking, truth) = skewed_setup(frames, 21);

    let sharded_run =
        |shards: Option<(ShardPartitioner, u32)>, mode: ExecutionMode, dispatch: Dispatch| {
            let detector = faulty_detector(&truth, faulty_plan());
            let mut engine = QueryEngine::new()
                .retry_policy(RetryPolicy::new(3).backoff_cost(4))
                .failure_mode(FailureMode::DropFrames);
            if let Some((partitioner, shards)) = shards {
                let spec = ShardSpec::new(partitioner, chunking.len(), shards);
                engine = engine.sharded(ShardRouter::new(&chunking, &spec).unwrap());
            }
            engine = engine
                .execution(mode)
                .expect("valid execution mode")
                .dispatch(dispatch);
            for spec in fault_specs(&chunking, frames, &detector) {
                engine.push(spec).unwrap();
            }
            let _ = engine.run().unwrap();
            engine.report_sharded()
        };

    // Baseline: unsharded, serial.  The assertions below are only meaningful
    // if the plan genuinely degraded the run, so pin that first.
    let baseline = sharded_run(None, ExecutionMode::Serial, Dispatch::Pooled);
    assert!(
        baseline.report.detect_retries > 0,
        "plan scheduled no transient faults — the matrix would be vacuous"
    );
    assert!(
        baseline.report.failed_frames > 0,
        "plan scheduled no permanent faults — the matrix would be vacuous"
    );
    assert!(
        baseline.report.backoff_cost > 0,
        "retries charged no backoff"
    );
    assert!(
        baseline
            .report
            .outcomes
            .iter()
            .map(|r| r.dropped_frames)
            .sum::<u64>()
            > 0,
        "no frame was dropped"
    );
    assert!(
        baseline.report.outcomes.iter().any(|r| r.true_found > 0),
        "the degraded run found nothing at all"
    );

    for shards in [1u32, 3, 7] {
        for partitioner in [ShardPartitioner::RoundRobin, ShardPartitioner::Contiguous] {
            // The serial sharded run is the per-layout reference: parallel
            // runs must reproduce its per-shard breakdown bitwise, and its
            // merged view must equal the unsharded baseline's.
            let serial = sharded_run(
                Some((partitioner, shards)),
                ExecutionMode::Serial,
                Dispatch::Pooled,
            );
            assert_engine_reports_equal(
                &serial.report,
                &baseline.report,
                &format!("{partitioner:?}/{shards} shards serial vs unsharded"),
            );
            for threads in [1usize, 2, 4] {
                for dispatch in [Dispatch::Pooled, Dispatch::Scoped] {
                    let context =
                        format!("{partitioner:?}/{shards} shards/{threads} threads/{dispatch:?}");
                    let parallel = sharded_run(
                        Some((partitioner, shards)),
                        ExecutionMode::Parallel(threads),
                        dispatch,
                    );
                    assert_sharded_reports_equal(&parallel, &serial, &context);
                    assert_engine_reports_equal(&parallel.report, &baseline.report, &context);
                }
            }
        }
    }
}

#[test]
fn degraded_runs_with_the_striped_cache_stay_deterministic() {
    let frames = 3_000u64;
    let (chunking, truth) = skewed_setup(frames, 21);

    // The same degraded matrix as above with the striped detections cache in
    // the loop (small enough to evict): retries, drops, cache hygiene and the
    // cache accounting itself must all stay bitwise-identical across shard
    // layouts, thread counts and dispatch runtimes.
    let sharded_run =
        |shards: Option<(ShardPartitioner, u32)>, mode: ExecutionMode, dispatch: Dispatch| {
            let detector = faulty_detector(&truth, faulty_plan());
            let mut engine = QueryEngine::new()
                .retry_policy(RetryPolicy::new(3).backoff_cost(4))
                .failure_mode(FailureMode::DropFrames)
                .cache_capacity(256);
            if let Some((partitioner, shards)) = shards {
                let spec = ShardSpec::new(partitioner, chunking.len(), shards);
                engine = engine.sharded(ShardRouter::new(&chunking, &spec).unwrap());
            }
            engine = engine
                .execution(mode)
                .expect("valid execution mode")
                .dispatch(dispatch);
            for spec in fault_specs(&chunking, frames, &detector) {
                engine.push(spec).unwrap();
            }
            let _ = engine.run().unwrap();
            engine.report_sharded()
        };

    let baseline = sharded_run(None, ExecutionMode::Serial, Dispatch::Pooled);
    assert!(
        baseline.report.detect_retries > 0,
        "plan scheduled no transient faults — the matrix would be vacuous"
    );
    assert!(
        baseline.report.failed_frames > 0,
        "plan scheduled no permanent faults — the matrix would be vacuous"
    );
    assert!(
        baseline.report.cache.misses > 0,
        "the cache axis is vacuous without misses"
    );

    for shards in [1u32, 3, 7] {
        for partitioner in [ShardPartitioner::RoundRobin, ShardPartitioner::Contiguous] {
            let serial = sharded_run(
                Some((partitioner, shards)),
                ExecutionMode::Serial,
                Dispatch::Pooled,
            );
            assert_engine_reports_equal(
                &serial.report,
                &baseline.report,
                &format!("cached {partitioner:?}/{shards} shards serial vs unsharded"),
            );
            for threads in [1usize, 2, 4] {
                for dispatch in [Dispatch::Pooled, Dispatch::Scoped] {
                    let context = format!(
                        "cached {partitioner:?}/{shards} shards/{threads} threads/{dispatch:?}"
                    );
                    let parallel = sharded_run(
                        Some((partitioner, shards)),
                        ExecutionMode::Parallel(threads),
                        dispatch,
                    );
                    assert_sharded_reports_equal(&parallel, &serial, &context);
                    assert_engine_reports_equal(&parallel.report, &baseline.report, &context);
                }
            }
        }
    }
}

#[test]
fn degraded_runs_with_overlap_and_aggregation_stay_deterministic() {
    // The fault axis of the batching/overlap knobs: with cross-shard batch
    // aggregation, with stage overlap, and with both at once, a degraded
    // `DropFrames` run stays bitwise-deterministic across the execution
    // matrix.  Overlap's reference is itself overlapped (stop decisions lag
    // one stage by design); aggregation's cross-shard batches keep faults
    // per-frame (a failed batch probe recovers each frame individually), so
    // the logical fault telemetry is layout-invariant either way.
    let frames = 3_000u64;
    let (chunking, truth) = skewed_setup(frames, 21);

    for (overlap, aggregation) in [
        (false, Some(BatchAggregation::unbounded())),
        (true, None),
        (true, Some(BatchAggregation::unbounded())),
    ] {
        let sharded_run =
            |shards: Option<(ShardPartitioner, u32)>, mode: ExecutionMode, dispatch: Dispatch| {
                let detector = faulty_detector(&truth, faulty_plan());
                let mut engine = QueryEngine::new()
                    .overlap(overlap)
                    .aggregation(aggregation)
                    .retry_policy(RetryPolicy::new(3).backoff_cost(4))
                    .failure_mode(FailureMode::DropFrames);
                if let Some((partitioner, shards)) = shards {
                    let spec = ShardSpec::new(partitioner, chunking.len(), shards);
                    engine = engine.sharded(ShardRouter::new(&chunking, &spec).unwrap());
                }
                engine = engine
                    .execution(mode)
                    .expect("valid execution mode")
                    .dispatch(dispatch);
                for spec in fault_specs(&chunking, frames, &detector) {
                    engine.push(spec).unwrap();
                }
                let _ = engine.run().unwrap();
                engine.report_sharded()
            };

        let knobs = format!("overlap={overlap}/aggregation={aggregation:?}");
        let baseline = sharded_run(None, ExecutionMode::Serial, Dispatch::Pooled);
        assert!(
            baseline.report.detect_retries > 0,
            "{knobs}: no transient faults — the matrix would be vacuous"
        );
        assert!(
            baseline.report.failed_frames > 0,
            "{knobs}: no permanent faults — the matrix would be vacuous"
        );
        assert!(
            baseline
                .report
                .outcomes
                .iter()
                .map(|r| r.dropped_frames)
                .sum::<u64>()
                > 0,
            "{knobs}: no frame was dropped"
        );

        for shards in [1u32, 3, 7] {
            for partitioner in [ShardPartitioner::RoundRobin, ShardPartitioner::Contiguous] {
                let serial = sharded_run(
                    Some((partitioner, shards)),
                    ExecutionMode::Serial,
                    Dispatch::Pooled,
                );
                assert_engine_reports_equal(
                    &serial.report,
                    &baseline.report,
                    &format!("{knobs}/{partitioner:?}/{shards} shards serial vs unsharded"),
                );
                for threads in [1usize, 2, 4] {
                    for dispatch in [Dispatch::Pooled, Dispatch::Scoped] {
                        let context = format!(
                            "{knobs}/{partitioner:?}/{shards} shards/{threads} threads/{dispatch:?}"
                        );
                        let parallel = sharded_run(
                            Some((partitioner, shards)),
                            ExecutionMode::Parallel(threads),
                            dispatch,
                        );
                        assert_sharded_reports_equal(&parallel, &serial, &context);
                        assert_engine_reports_equal(&parallel.report, &baseline.report, &context);
                    }
                }
            }
        }
    }
}

#[test]
fn fast_path_fault_recovery_matches_the_lane_path() {
    // A single query, no cache, unsharded: the engine's single-batch fast
    // path.  Its per-frame recovery must be bitwise-identical to the shard
    // lane path (forced here via a 1-shard router, which routes and bounds).
    let frames = 3_000u64;
    let (chunking, truth) = skewed_setup(frames, 12);
    let run = |fast: bool| {
        let detector = faulty_detector(&truth, faulty_plan());
        let mut engine = QueryEngine::new()
            .retry_policy(RetryPolicy::new(3).backoff_cost(4))
            .failure_mode(FailureMode::DropFrames);
        if !fast {
            let spec = ShardSpec::contiguous(chunking.len(), 1);
            engine = engine.sharded(ShardRouter::new(&chunking, &spec).unwrap());
        }
        engine
            .push(
                QuerySpec::new(
                    "solo",
                    Box::new(FrameSamplerPolicy::uniform(frames)),
                    &detector,
                )
                .seed(17)
                .batch(32)
                .frame_budget(600),
            )
            .unwrap();
        engine.run().unwrap()
    };
    let fast = run(true);
    let lane = run(false);
    assert!(fast.detect_retries > 0, "vacuous: no retries exercised");
    assert!(fast.failed_frames > 0, "vacuous: no failures exercised");
    assert_engine_reports_equal(&fast, &lane, "fast path vs 1-shard lane path");
}

#[test]
fn quarantine_disables_the_faulty_detector_and_spares_the_rest() {
    let frames = 3_000u64;
    let (chunking, truth) = skewed_setup(frames, 12);
    let plan = FaultPlan::new(FAULT_SEED).permanent_rate(0.30);

    let run = |shards: u32, threads: usize, dispatch: Dispatch| {
        let faulty = faulty_detector(&truth, plan);
        let clean = PerfectDetector::new(Arc::clone(&truth), ObjectClass::from("person"));
        let spec = ShardSpec::contiguous(chunking.len(), shards);
        let mut engine = QueryEngine::new()
            .sharded(ShardRouter::new(&chunking, &spec).unwrap())
            .retry_policy(RetryPolicy::new(2).backoff_cost(1))
            .failure_mode(FailureMode::Quarantine {
                failure_threshold: 4,
            })
            .execution(ExecutionMode::Parallel(threads))
            .expect("valid execution mode")
            .dispatch(dispatch);
        engine
            .push(
                QuerySpec::new(
                    "doomed",
                    Box::new(FrameSamplerPolicy::uniform(frames)),
                    &faulty,
                )
                .seed(23)
                .batch(32)
                .frame_budget(1_000),
            )
            .unwrap();
        engine
            .push(
                QuerySpec::new(
                    "spared",
                    Box::new(FrameSamplerPolicy::uniform(frames)),
                    &clean,
                )
                .seed(29)
                .batch(32)
                .frame_budget(500),
            )
            .unwrap();
        engine.run().unwrap()
    };

    let baseline = run(1, 1, Dispatch::Pooled);
    let doomed = &baseline.outcomes[0];
    let spared = &baseline.outcomes[1];
    assert_eq!(
        doomed.stop_reason,
        Some(StopReason::DetectorQuarantined),
        "30% permanent faults must trip a threshold of 4"
    );
    assert!(
        doomed.frames_processed < 1_000,
        "quarantine must stop the query before its budget"
    );
    assert_eq!(
        spared.stop_reason,
        Some(StopReason::FrameBudgetExhausted),
        "the clean query must be untouched"
    );
    assert_eq!(spared.frames_processed, 500);
    assert_eq!(spared.dropped_frames, 0);
    assert_eq!(baseline.quarantined_detectors, vec!["car".to_string()]);
    assert!(baseline.failed_frames > 4, "threshold was never exceeded");

    // Quarantine is decided from logical failure counts at stage boundaries,
    // so the whole degraded outcome is invariant across the execution matrix.
    for shards in [1u32, 3, 7] {
        for threads in [1usize, 2, 4] {
            for dispatch in [Dispatch::Pooled, Dispatch::Scoped] {
                let context = format!("{shards} shards/{threads} threads/{dispatch:?}");
                let report = run(shards, threads, dispatch);
                assert_engine_reports_equal(&report, &baseline, &context);
            }
        }
    }
}

#[test]
fn fail_fast_surfaces_a_typed_error_with_full_context() {
    let frames = 3_000u64;
    let (chunking, truth) = skewed_setup(frames, 12);
    let plan = FaultPlan::new(FAULT_SEED).permanent_rate(0.10);

    let run = |threads: usize, dispatch: Dispatch| {
        let detector = faulty_detector(&truth, plan);
        let spec = ShardSpec::contiguous(chunking.len(), 3);
        let mut engine = QueryEngine::new()
            .sharded(ShardRouter::new(&chunking, &spec).unwrap())
            .retry_policy(RetryPolicy::new(3).backoff_cost(2))
            .execution(ExecutionMode::Parallel(threads))
            .expect("valid execution mode")
            .dispatch(dispatch);
        engine
            .push(
                QuerySpec::new(
                    "doomed",
                    Box::new(FrameSamplerPolicy::uniform(frames)),
                    &detector,
                )
                .seed(31)
                .batch(32)
                .frame_budget(1_000),
            )
            .unwrap();
        match engine.run().unwrap_err() {
            EngineError::DetectorFailed {
                class,
                frame,
                attempts,
                source,
            } => (class, frame, attempts, source),
            other => panic!("expected DetectorFailed, got {other:?}"),
        }
    };

    let (class, frame, attempts, source) = run(1, Dispatch::Pooled);
    assert_eq!(class, "car");
    assert!(
        matches!(source, DetectError::Permanent { .. }),
        "a permanent fault must surface as its typed source"
    );
    assert_eq!(source.frame(), frame);
    // Probe + the mandatory single-frame identification try; `Permanent`
    // stops the retry budget (3 attempts) from being burned.
    assert_eq!(attempts, 2);
    let err = EngineError::DetectorFailed {
        class: class.clone(),
        frame,
        attempts,
        source: source.clone(),
    };
    assert!(err.to_string().contains("`car`"));
    assert!(err.to_string().contains(&format!("frame {frame}")));
    let chained = std::error::Error::source(&err).expect("DetectorFailed chains its source");
    assert!(chained.to_string().contains("permanent"));

    // At a fixed shard layout the first fatal frame (shard order) is pinned
    // across thread counts and dispatch runtimes.
    for threads in [1usize, 2, 4] {
        for dispatch in [Dispatch::Pooled, Dispatch::Scoped] {
            let (c, f, a, s) = run(threads, dispatch);
            let context = format!("{threads} threads/{dispatch:?}");
            assert_eq!(c, class, "{context}: class");
            assert_eq!(f, frame, "{context}: frame");
            assert_eq!(a, attempts, "{context}: attempts");
            assert_eq!(s, source, "{context}: source");
        }
    }
}

#[test]
fn failed_frames_are_never_cached_and_recovered_frames_commit_once() {
    let frames = 400u64;
    let (chunking, truth) = skewed_setup(frames, 12);
    let plan = FaultPlan::new(FAULT_SEED)
        .transient_rate(0.20)
        .transient_attempts(2)
        .permanent_rate(0.05);
    let detector = faulty_detector(&truth, plan);
    let spec = ShardSpec::contiguous(chunking.len(), 3);
    let mut engine = QueryEngine::new()
        .sharded(ShardRouter::new(&chunking, &spec).unwrap())
        .cache_capacity(4_096)
        .retry_policy(RetryPolicy::new(3).backoff_cost(2))
        .failure_mode(FailureMode::DropFrames);
    engine
        .push(
            QuerySpec::new(
                "cold",
                Box::new(FrameSamplerPolicy::uniform(frames)),
                &detector,
            )
            .seed(41)
            .batch(32),
        )
        .unwrap();
    let cold = engine.run().unwrap();
    let cold_dropped = cold.outcomes[0].dropped_frames;
    let cold_retries = cold.detect_retries;
    let cold_failed = cold.failed_frames;
    assert!(cold_dropped > 0, "vacuous: no permanent faults scheduled");
    assert!(cold_retries > 0, "vacuous: no transient faults scheduled");
    assert_eq!(
        cold.outcomes[0].frames_processed,
        frames - cold_dropped,
        "a dropped frame is never observed by its query"
    );

    // Warm re-query over the same full range.  Every frame that succeeded —
    // directly or via a retry — was committed exactly once and is served from
    // the cache: zero further retries.  Every frame that failed was *never*
    // committed: the warm query re-attempts and re-drops exactly those.
    engine
        .push(
            QuerySpec::new(
                "warm",
                Box::new(FrameSamplerPolicy::uniform(frames)),
                &detector,
            )
            .seed(43)
            .batch(32),
        )
        .unwrap();
    let warm = engine.run().unwrap();
    assert_eq!(
        warm.detect_retries, cold_retries,
        "recovered frames must be cache hits on the warm run — a repeat retry \
         means a successful recovery was not committed"
    );
    assert_eq!(
        warm.outcomes[1].dropped_frames, cold_dropped,
        "the warm query must re-drop exactly the frames that failed cold"
    );
    assert_eq!(
        warm.failed_frames,
        cold_failed * 2,
        "failed frames must miss the cache and fail again"
    );
    let stats = engine.cache_stats().expect("cache is configured");
    assert!(stats.hits > 0, "the warm query never hit the cache");
}
