//! Lifecycle guarantees of the persistent worker-pool runtime:
//!
//! 1. pool helper threads are spawned once per run — not per stage — and live
//!    exactly as long as the run that spawned them: repeated pooled runs and
//!    engine drops leak no threads (observable via [`live_worker_threads`] /
//!    [`spawned_worker_threads`], which count helpers process-wide);
//! 2. a panicking detector on any lane — a helper thread *or* the
//!    coordinator's inline lane — surfaces as a typed
//!    [`EngineError::WorkerPanicked`] carrying the panic message, never a
//!    deadlock, an unwinding coordinator, or a leaked thread; and
//! 3. a fully cache-warm stage skips pool dispatch entirely (no channel send,
//!    no helper wake), pinned via [`QueryEngine::pooled_stage_dispatches`] —
//!    including under stage overlap and cross-shard batch aggregation (the
//!    warm check peeks membership without touching tallies, so the skip is
//!    invisible to accounting); and
//! 4. running the cache probe inside the dispatched lanes (parallel DETECT,
//!    overlap mode) changes no cache accounting: hit/miss/eviction tallies
//!    are bitwise-identical across the overlapped execution matrix; and
//! 5. the stripe count is invisible to accounting: stripes only shard the
//!    probe-time locks, so stripe counts {1, 2, 8, 64} produce bitwise-
//!    identical cache tallies and reports, serial or parallel.
//!
//! Every test in this file takes the local [`POOL_LOCK`] mutex: the
//! spawn/live counters are process-wide, so any test that runs a pooled
//! engine could otherwise perturb a concurrently-running test's assertions.

use exsample_detect::{
    Detector, FrameDetections, GroundTruth, ObjectClass, ObjectInstance, PerfectDetector,
};
use exsample_engine::{
    live_worker_threads, spawned_worker_threads, BatchAggregation, CacheConfig, Dispatch,
    EngineError, ExecutionMode, FrameSamplerPolicy, QueryEngine, QuerySpec, ShardRouter,
};
use exsample_video::{Chunking, ChunkingPolicy, FrameId, ShardSpec, VideoRepository};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Serialises the tests that read the process-wide live-helper counter.
static POOL_LOCK: Mutex<()> = Mutex::new(());

fn setup(frames: u64, chunks: u32) -> (Chunking, Arc<GroundTruth>) {
    let repo = VideoRepository::single_clip(frames);
    let chunking = Chunking::new(&repo, ChunkingPolicy::FixedCount { chunks });
    let mut instances = Vec::new();
    let span = (frames / 32).max(2);
    for i in 0..6u64 {
        let start = frames / 2 + i * span;
        if start >= frames {
            break;
        }
        instances.push(ObjectInstance::simple(
            i,
            "car",
            start,
            (start + span).min(frames - 1),
        ));
    }
    let truth = Arc::new(GroundTruth::from_instances(frames, instances));
    (chunking, truth)
}

/// A detector that counts its batched invocations.
struct ObservantDetector {
    inner: PerfectDetector,
    batch_calls: AtomicU64,
}

impl ObservantDetector {
    fn new(truth: Arc<GroundTruth>) -> Self {
        ObservantDetector {
            inner: PerfectDetector::new(truth, ObjectClass::from("car")),
            batch_calls: AtomicU64::new(0),
        }
    }
}

impl Detector for ObservantDetector {
    fn detect(&self, frame: FrameId) -> FrameDetections {
        self.inner.detect(frame)
    }

    fn detect_batch(&self, frames: &[FrameId], out: &mut Vec<FrameDetections>) {
        self.batch_calls.fetch_add(1, Ordering::SeqCst);
        self.inner.detect_batch(frames, out);
    }

    fn class(&self) -> &ObjectClass {
        self.inner.class()
    }
}

/// A detector that panics on frames at or beyond a threshold.
struct BombDetector {
    inner: PerfectDetector,
    panic_at: FrameId,
}

impl Detector for BombDetector {
    fn detect(&self, frame: FrameId) -> FrameDetections {
        assert!(frame < self.panic_at, "bomb detector refuses frame {frame}");
        self.inner.detect(frame)
    }

    fn class(&self) -> &ObjectClass {
        self.inner.class()
    }
}

fn pooled_engine<'a>(chunking: &Chunking, shards: u32, threads: usize) -> QueryEngine<'a> {
    let spec = ShardSpec::contiguous(chunking.len(), shards);
    QueryEngine::new()
        .sharded(ShardRouter::new(chunking, &spec).unwrap())
        .execution(ExecutionMode::Parallel(threads))
        .unwrap()
}

#[test]
fn repeated_pooled_runs_leak_no_threads() {
    let _serial = POOL_LOCK.lock().unwrap();
    let frames = 2_000u64;
    let (chunking, truth) = setup(frames, 9);
    assert_eq!(live_worker_threads(), 0, "helpers alive before any run");
    for round in 0..5 {
        let detector = ObservantDetector::new(Arc::clone(&truth));
        let mut engine = pooled_engine(&chunking, 3, 3);
        for (label, seed) in [("a", 40u64 + round), ("b", 50 + round)] {
            engine
                .push(
                    QuerySpec::new(
                        label,
                        Box::new(FrameSamplerPolicy::uniform(frames)),
                        &detector,
                    )
                    .seed(seed)
                    .batch(16)
                    .frame_budget(200),
                )
                .unwrap();
        }
        let spawned_before = spawned_worker_threads();
        let report = engine.run().unwrap();
        let stages = report.stages;
        assert_eq!(report.outcomes.len(), 2);
        assert!(detector.batch_calls.load(Ordering::SeqCst) > 0);
        assert!(engine.pooled_stage_dispatches() > 0, "pool was never used");
        assert!(
            stages > 1,
            "the spawn-per-run check needs a multi-stage run"
        );
        // Exactly n - 1 = 2 helpers were spawned for the whole run — once per
        // run, NOT once per stage (the per-stage scoped runtime this replaces
        // would have spawned ~3 × stages threads here).
        assert_eq!(
            spawned_worker_threads() - spawned_before,
            2,
            "round {round}: expected one helper spawn set per run ({stages} stages)"
        );
        // The run's scope joined its helpers before `run` returned.
        assert_eq!(
            live_worker_threads(),
            0,
            "round {round} leaked pool threads past run()"
        );
        drop(engine);
        assert_eq!(live_worker_threads(), 0, "round {round} leaked on drop");
    }
}

#[test]
fn helper_lane_detector_panic_is_a_typed_error() {
    let _serial = POOL_LOCK.lock().unwrap();
    let frames = 3_000u64;
    let (chunking, truth) = setup(frames, 9);
    // Contiguous 3-shard split: the last third of the frame range lives on
    // shard 2, which a 3-thread stage hands to a pool helper (the
    // coordinator's inline lane is shard 0's chunk).
    let detector = BombDetector {
        inner: PerfectDetector::new(Arc::clone(&truth), ObjectClass::from("car")),
        panic_at: frames * 2 / 3,
    };
    let mut engine = pooled_engine(&chunking, 3, 3);
    engine
        .push(
            QuerySpec::new(
                "doomed",
                Box::new(FrameSamplerPolicy::uniform(frames)),
                &detector,
            )
            .seed(7)
            .batch(64)
            .frame_budget(500),
        )
        .unwrap();
    let err = engine.run().unwrap_err();
    match err {
        EngineError::WorkerPanicked { ref message } => {
            assert!(
                message.contains("bomb detector refuses frame"),
                "unexpected message: {message}"
            );
        }
        ref other => panic!("expected WorkerPanicked, got {other:?}"),
    }
    assert!(err.to_string().contains("worker lane panicked"));
    drop(engine);
    assert_eq!(live_worker_threads(), 0, "panic leaked pool threads");
}

#[test]
fn inline_lane_detector_panic_is_a_typed_error() {
    let _serial = POOL_LOCK.lock().unwrap();
    let frames = 3_000u64;
    let (chunking, truth) = setup(frames, 9);
    // Panic on the *first* third of the range: shard 0, the coordinator's
    // inline lane.  The runtime catches it exactly like a helper panic.
    let detector = BombDetector {
        inner: PerfectDetector::new(Arc::clone(&truth), ObjectClass::from("car")),
        panic_at: 1,
    };
    let mut engine = pooled_engine(&chunking, 3, 3);
    engine
        .push(
            QuerySpec::new(
                "doomed",
                Box::new(FrameSamplerPolicy::uniform(frames)),
                &detector,
            )
            .seed(11)
            .batch(64)
            .frame_budget(500),
        )
        .unwrap();
    let err = engine.run().unwrap_err();
    assert!(
        matches!(err, EngineError::WorkerPanicked { .. }),
        "expected WorkerPanicked, got {err:?}"
    );
    drop(engine);
    assert_eq!(live_worker_threads(), 0, "panic leaked pool threads");
}

#[test]
fn scoped_dispatch_detector_panic_is_a_typed_error() {
    let _serial = POOL_LOCK.lock().unwrap();
    let frames = 3_000u64;
    let (chunking, truth) = setup(frames, 9);
    // Regression: scoped dispatch used to let a detector panic unwind out of
    // its `std::thread::scope` — the engine aborted the process's test thread
    // instead of returning a typed error like the pooled runtime.  Both
    // runtimes now catch panics on every lane; pin the scoped one too, for a
    // panic on a spawned lane (last third of a contiguous split) and the
    // message contract shared with the pooled path.
    let detector = BombDetector {
        inner: PerfectDetector::new(Arc::clone(&truth), ObjectClass::from("car")),
        panic_at: frames * 2 / 3,
    };
    let mut engine = pooled_engine(&chunking, 3, 3).dispatch(Dispatch::Scoped);
    engine
        .push(
            QuerySpec::new(
                "doomed",
                Box::new(FrameSamplerPolicy::uniform(frames)),
                &detector,
            )
            .seed(7)
            .batch(64)
            .frame_budget(500),
        )
        .unwrap();
    let err = engine.run().unwrap_err();
    match err {
        EngineError::WorkerPanicked { ref message } => {
            assert!(
                message.contains("bomb detector refuses frame"),
                "unexpected message: {message}"
            );
        }
        ref other => panic!("expected WorkerPanicked, got {other:?}"),
    }
    assert_eq!(
        engine.pooled_stage_dispatches(),
        0,
        "scoped dispatch must not touch the pool"
    );
}

#[test]
fn fully_cache_warm_stages_skip_pool_dispatch() {
    let _serial = POOL_LOCK.lock().unwrap();
    let frames = 400u64;
    let (chunking, truth) = setup(frames, 9);
    let detector = ObservantDetector::new(Arc::clone(&truth));
    let mut engine = pooled_engine(&chunking, 3, 3).cache_capacity(4_096);
    engine
        .push(
            QuerySpec::new(
                "cold",
                Box::new(FrameSamplerPolicy::uniform(frames)),
                &detector,
            )
            .seed(3)
            .batch(32),
        )
        .unwrap();
    let cold = engine.run().unwrap();
    assert_eq!(cold.outcomes[0].frames_processed, frames);
    let cold_dispatches = engine.pooled_stage_dispatches();
    let cold_calls = detector.batch_calls.load(Ordering::SeqCst);
    assert!(cold_dispatches > 0, "cold run never used the pool");
    assert!(cold_calls > 0);

    // The warm re-query finds every frame in the cache: zero detector
    // invocations *and* zero pool dispatches — warm stages never pay even a
    // channel wake.
    engine
        .push(
            QuerySpec::new(
                "warm",
                Box::new(FrameSamplerPolicy::uniform(frames)),
                &detector,
            )
            .seed(5)
            .batch(32),
        )
        .unwrap();
    let warm = engine.run().unwrap();
    assert_eq!(warm.outcomes[1].frames_processed, frames);
    assert_eq!(
        detector.batch_calls.load(Ordering::SeqCst),
        cold_calls,
        "warm re-query must be served entirely from the cache"
    );
    assert_eq!(
        engine.pooled_stage_dispatches(),
        cold_dispatches,
        "cache-warm stages must skip pool dispatch entirely"
    );
}

#[test]
fn warm_stages_skip_dispatch_under_overlap_and_aggregation() {
    let _serial = POOL_LOCK.lock().unwrap();
    let frames = 400u64;
    let (chunking, truth) = setup(frames, 9);
    let detector = ObservantDetector::new(Arc::clone(&truth));
    // Overlap moves the cache probe to the commit boundary and aggregation
    // funnels DETECT through a single `dispatch_whole` pool job — neither may
    // cost a warm stage a dispatch (or a detector call).
    let mut engine = pooled_engine(&chunking, 3, 3)
        .cache_capacity(4_096)
        .overlap(true)
        .aggregation(Some(BatchAggregation::unbounded()));
    engine
        .push(
            QuerySpec::new(
                "cold",
                Box::new(FrameSamplerPolicy::uniform(frames)),
                &detector,
            )
            .seed(3)
            .batch(32),
        )
        .unwrap();
    let cold = engine.run().unwrap();
    assert_eq!(cold.outcomes[0].frames_processed, frames);
    let cold_dispatches = engine.pooled_stage_dispatches();
    let cold_calls = detector.batch_calls.load(Ordering::SeqCst);
    assert!(
        cold_dispatches > 0,
        "cold overlapped run never used the pool"
    );
    assert!(cold_calls > 0);

    engine
        .push(
            QuerySpec::new(
                "warm",
                Box::new(FrameSamplerPolicy::uniform(frames)),
                &detector,
            )
            .seed(5)
            .batch(32),
        )
        .unwrap();
    let warm = engine.run().unwrap();
    assert_eq!(warm.outcomes[1].frames_processed, frames);
    assert_eq!(
        detector.batch_calls.load(Ordering::SeqCst),
        cold_calls,
        "warm overlapped re-query must be served entirely from the cache"
    );
    assert_eq!(
        engine.pooled_stage_dispatches(),
        cold_dispatches,
        "cache-warm overlapped stages must skip pool dispatch entirely"
    );
}

#[test]
fn overlapped_cache_accounting_is_execution_invariant() {
    let _serial = POOL_LOCK.lock().unwrap();
    let frames = 400u64;
    let (chunking, truth) = setup(frames, 9);
    // A cold run followed by a warm re-query on the same overlapped engine:
    // the in-lane probes must produce bitwise-identical hit/miss/eviction
    // tallies (and reports) whether DETECT runs serial, pooled, scoped, or
    // aggregated.
    let run = |mode: ExecutionMode, dispatch: Dispatch, aggregation: Option<BatchAggregation>| {
        let detector = ObservantDetector::new(Arc::clone(&truth));
        let spec = ShardSpec::contiguous(chunking.len(), 3);
        let mut engine = QueryEngine::new()
            .sharded(ShardRouter::new(&chunking, &spec).unwrap())
            .execution(mode)
            .expect("valid execution mode")
            .dispatch(dispatch)
            .cache_capacity(64)
            .overlap(true)
            .aggregation(aggregation);
        for (label, seed) in [("cold", 3u64), ("warm", 5)] {
            engine
                .push(
                    QuerySpec::new(
                        label,
                        Box::new(FrameSamplerPolicy::uniform(frames)),
                        &detector,
                    )
                    .seed(seed)
                    .batch(32),
                )
                .unwrap();
            let _ = engine.run().unwrap();
        }
        let stats = engine.cache_stats().expect("cache is configured");
        (stats, engine.report_sharded())
    };
    let (reference_stats, reference) = run(ExecutionMode::Serial, Dispatch::Pooled, None);
    // Capacity 64 over 400 frames: the run genuinely exercises eviction, and
    // the warm query still lands some hits.
    assert!(reference_stats.hits > 0, "warm query never hit the cache");
    assert!(reference_stats.evictions > 0, "cache never evicted");
    for threads in [1usize, 2, 4] {
        for dispatch in [Dispatch::Pooled, Dispatch::Scoped] {
            for aggregation in [None, Some(BatchAggregation::unbounded())] {
                let context = format!("{threads} threads/{dispatch:?}/{aggregation:?}");
                let (stats, report) = run(ExecutionMode::Parallel(threads), dispatch, aggregation);
                assert_eq!(stats, reference_stats, "{context}: cache accounting");
                assert_eq!(
                    report.report.outcomes.len(),
                    reference.report.outcomes.len()
                );
                for (a, b) in report
                    .report
                    .outcomes
                    .iter()
                    .zip(&reference.report.outcomes)
                {
                    assert_eq!(a.frames_processed, b.frames_processed, "{context}: frames");
                    assert_eq!(a.trajectory, b.trajectory, "{context}: trajectory");
                    assert_eq!(a.stop_reason, b.stop_reason, "{context}: stop reason");
                }
            }
        }
    }
}

#[test]
fn stripe_count_never_changes_cache_accounting() {
    let _serial = POOL_LOCK.lock().unwrap();
    let frames = 400u64;
    let (chunking, truth) = setup(frames, 9);
    // The stripe count only controls probe-time lock granularity; recency,
    // eviction and admission all live in the single arbitration-owned LRU
    // state.  So any stripe count must produce bitwise-identical cache
    // accounting and reports, serial or parallel.
    let run = |stripes: usize, mode: ExecutionMode| {
        let detector = ObservantDetector::new(Arc::clone(&truth));
        let spec = ShardSpec::contiguous(chunking.len(), 3);
        let mut engine = QueryEngine::new()
            .sharded(ShardRouter::new(&chunking, &spec).unwrap())
            .execution(mode)
            .expect("valid execution mode")
            .cache_config(CacheConfig::new(64).stripes(stripes))
            .expect("valid cache config");
        for (label, seed) in [("cold", 3u64), ("warm", 5)] {
            engine
                .push(
                    QuerySpec::new(
                        label,
                        Box::new(FrameSamplerPolicy::uniform(frames)),
                        &detector,
                    )
                    .seed(seed)
                    .batch(32),
                )
                .unwrap();
            let _ = engine.run().unwrap();
        }
        let stats = engine.cache_stats().expect("cache is configured");
        (stats, engine.report_sharded())
    };
    let (reference_stats, reference) = run(1, ExecutionMode::Serial);
    assert!(reference_stats.hits > 0, "warm query never hit the cache");
    assert!(reference_stats.evictions > 0, "cache never evicted");
    for stripes in [1usize, 2, 8, 64] {
        for mode in [ExecutionMode::Serial, ExecutionMode::Parallel(4)] {
            let context = format!("{stripes} stripes/{mode:?}");
            let (stats, report) = run(stripes, mode);
            assert_eq!(stats, reference_stats, "{context}: cache accounting");
            for (a, b) in report
                .report
                .outcomes
                .iter()
                .zip(&reference.report.outcomes)
            {
                assert_eq!(a.frames_processed, b.frames_processed, "{context}: frames");
                assert_eq!(a.trajectory, b.trajectory, "{context}: trajectory");
                assert_eq!(a.stop_reason, b.stop_reason, "{context}: stop reason");
            }
            assert_eq!(report.report.cache, reference.report.cache, "{context}");
        }
    }
}

#[test]
fn pooled_and_scoped_dispatch_agree_and_default_is_pooled() {
    let _serial = POOL_LOCK.lock().unwrap();
    let frames = 2_000u64;
    let (chunking, truth) = setup(frames, 9);
    let detector = PerfectDetector::new(Arc::clone(&truth), ObjectClass::from("car"));
    let run = |dispatch: Dispatch| {
        let mut engine = pooled_engine(&chunking, 3, 2).dispatch(dispatch);
        assert_eq!(engine.dispatch_mode(), dispatch);
        engine
            .push(
                QuerySpec::new(
                    "q",
                    Box::new(FrameSamplerPolicy::uniform(frames)),
                    &detector,
                )
                .seed(13)
                .batch(16)
                .frame_budget(300),
            )
            .unwrap();
        let _ = engine.run().unwrap();
        (engine.report_sharded(), engine.pooled_stage_dispatches())
    };
    assert_eq!(QueryEngine::new().dispatch_mode(), Dispatch::Pooled);
    let (pooled, pooled_dispatches) = run(Dispatch::Pooled);
    let (scoped, scoped_dispatches) = run(Dispatch::Scoped);
    assert!(pooled_dispatches > 0, "default dispatch must use the pool");
    assert_eq!(scoped_dispatches, 0, "scoped dispatch must bypass the pool");
    assert_eq!(pooled.shards, scoped.shards);
    assert_eq!(
        pooled.physical_detector_calls,
        scoped.physical_detector_calls
    );
    for (a, b) in pooled.report.outcomes.iter().zip(&scoped.report.outcomes) {
        assert_eq!(a.frames_processed, b.frames_processed);
        assert_eq!(a.found_instances, b.found_instances);
        assert_eq!(a.trajectory, b.trajectory);
        assert_eq!(a.stop_reason, b.stop_reason);
    }
}
